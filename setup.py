"""Legacy setup shim.

The execution environment has no network and an old setuptools without the
``wheel`` package, so PEP 660 editable installs fail; this shim lets
``pip install -e .`` take the legacy ``setup.py develop`` path.
"""

from setuptools import setup

setup()
