"""Adaptive puzzle difficulty — HIP's DoS valve (§II-B, §IV-B).

"The BEX also includes a computational puzzle that the server can use to
delay clients when it is under heavy load."  The base daemon serves a fixed
difficulty K; this module adds the *adaptive* behaviour the RFC envisions:
the responder monitors its inbound I1 rate and raises K when the rate (or
its CPU backlog) indicates an attack, pricing initiators out in O(2^K) work
while its own verification cost stays one hash.

Attach with :func:`install_adaptive_puzzle`; the controller re-generates the
precomputed R1 whenever the difficulty moves (R1s are signed, so this is an
off-path signing cost, exactly like rotating HIPL's R1 pool).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.crypto.puzzle import Puzzle
from repro.hip import packets as hp
from repro.hip.identity import asym_cost_for_host_id

if TYPE_CHECKING:  # pragma: no cover
    from repro.hip.daemon import HipDaemon


@dataclass
class AdaptivePuzzlePolicy:
    """Difficulty schedule: K grows with the observed I1 arrival rate."""

    base_k: int = 4
    max_k: int = 24
    window_s: float = 1.0  # rate-measurement window
    calm_rate: float = 10.0  # I1/s considered normal
    k_per_doubling: int = 2  # +K for every doubling of the rate beyond calm

    def difficulty(self, i1_rate: float) -> int:
        if i1_rate <= self.calm_rate:
            return self.base_k
        import math

        doublings = math.log2(i1_rate / self.calm_rate)
        return min(self.max_k, self.base_k + int(doublings * self.k_per_doubling))


class AdaptivePuzzleController:
    """Watches I1 arrivals and retunes the daemon's served puzzle."""

    def __init__(self, daemon: "HipDaemon",
                 policy: AdaptivePuzzlePolicy | None = None) -> None:
        self.daemon = daemon
        self.policy = policy or AdaptivePuzzlePolicy()
        self._arrivals: deque[float] = deque()
        self.current_k = self.policy.base_k
        self.escalations = 0
        self.r1_regenerations = 0
        self._retune(self.policy.base_k)
        self._hook()

    # -- wiring ---------------------------------------------------------------
    def _hook(self) -> None:
        original_i1 = self.daemon._handle_i1

        def handle_i1(i1: hp.HipPacket, ip) -> Generator:
            self._observe()
            yield from original_i1(i1, ip)

        self.daemon._handle_i1 = handle_i1  # type: ignore[method-assign]

    # -- rate sensing -----------------------------------------------------------
    def _observe(self) -> None:
        now = self.daemon.sim.now
        self._arrivals.append(now)
        cutoff = now - self.policy.window_s
        while self._arrivals and self._arrivals[0] < cutoff:
            self._arrivals.popleft()
        rate = len(self._arrivals) / self.policy.window_s
        wanted = self.policy.difficulty(rate)
        if wanted != self.current_k:
            if wanted > self.current_k:
                self.escalations += 1
            self._retune(wanted)

    def _retune(self, k: int) -> None:
        """Regenerate the (signed) R1 with the new difficulty."""
        daemon = self.daemon
        self.current_k = k
        daemon._puzzle = Puzzle.fresh(k, daemon.rng)
        daemon.config.puzzle_k = k
        daemon._r1_template = self._rebuild_r1()
        self.r1_regenerations += 1

    def _rebuild_r1(self) -> hp.HipPacket:
        daemon = self.daemon
        from repro.crypto.dh import MODP_GROUPS
        from repro.net.addresses import IPAddress

        r1 = hp.HipPacket(
            packet_type=hp.R1, sender_hit=daemon.hit, receiver_hit=IPAddress(6, 0),
        )
        r1.add(hp.PUZZLE, hp.build_puzzle(daemon._puzzle.k, 6, 0, daemon._puzzle.i))
        r1.add(hp.DIFFIE_HELLMAN,
               hp.build_dh(daemon.config.dh_group, daemon._responder_dh.public_bytes()))
        r1.add(hp.HIP_TRANSFORM, hp.build_transform([hp.SUITE_AES_CBC_HMAC_SHA1]))
        r1.add(hp.HOST_ID, hp.build_host_id(daemon.identity.public_key_bytes))
        signature = daemon.identity.sign(
            r1.bytes_for_param(hp.HIP_SIGNATURE), daemon.rng
        )
        r1.add(hp.HIP_SIGNATURE, signature)
        daemon.meter.charge(
            "asym.sign.r1",
            asym_cost_for_host_id(
                daemon.identity.public_key_bytes, "sign", daemon.node.cost_model
            ),
        )
        return r1


def install_adaptive_puzzle(
    daemon: "HipDaemon", policy: AdaptivePuzzlePolicy | None = None
) -> AdaptivePuzzleController:
    """Enable adaptive puzzle difficulty on a daemon; returns the controller."""
    return AdaptivePuzzleController(daemon, policy)
