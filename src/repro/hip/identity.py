"""Host identities: HI key pairs, HITs (ORCHIDs) and LSI allocation.

A Host Identifier (HI) is a public key — RSA in the classic deployment,
ECDSA P-256 with the RFC 5201-bis update the paper mentions for cheaper
processing.  The Host Identity Tag (HIT) is a 128-bit ORCHID (RFC 4843):
the 28-bit prefix ``2001:10::/28`` followed by a 100-bit hash of the public
key, giving the ~2^100 namespace the paper cites.  LSIs are per-host IPv4
aliases from ``1.0.0.0/8`` that let unmodified IPv4 applications name HIP
peers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Union

from repro.crypto.ecc import EcdsaKeyPair, ecdsa_verify
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey
from repro.crypto.sha import sha1
from repro.net.addresses import IPAddress, LSI_PREFIX, ORCHID_PREFIX

ORCHID_CONTEXT = bytes.fromhex("f0efb52907c1c4f20fbeba3e9ee5c2c1")  # RFC 4843 HIP context


def hit_from_public_key(public_key_bytes: bytes) -> IPAddress:
    """Derive the HIT: ORCHID prefix + 100-bit truncated SHA-1 ORCHID hash."""
    digest = sha1(ORCHID_CONTEXT + public_key_bytes)
    hash100 = int.from_bytes(digest[:13], "big") >> 4  # top 100 bits
    prefix_bits = ORCHID_PREFIX.network.value >> 100  # 28-bit prefix
    return IPAddress(6, (prefix_bits << 100) | hash100)


@dataclass(frozen=True)
class HostIdentity:
    """A host's identity: key pair + derived HIT.

    ``algorithm`` is ``"rsa"`` or ``"ecdsa"``; both sign/verify interfaces
    are normalized here so the rest of the stack is agnostic.
    """

    algorithm: str
    rsa: RsaKeyPair | None = None
    ecdsa: EcdsaKeyPair | None = None

    @classmethod
    def generate(
        cls, rng: random.Random, algorithm: str = "rsa", rsa_bits: int = 1024
    ) -> "HostIdentity":
        if algorithm == "rsa":
            return cls(algorithm="rsa", rsa=RsaKeyPair.generate(rsa_bits, rng))
        if algorithm == "ecdsa":
            return cls(algorithm="ecdsa", ecdsa=EcdsaKeyPair.generate(rng))
        raise ValueError(f"unknown HI algorithm {algorithm!r}")

    @property
    def public_key_bytes(self) -> bytes:
        """Wire encoding of the HI, as carried in the HOST_ID parameter."""
        if self.algorithm == "rsa":
            assert self.rsa is not None
            return b"RSA:" + self.rsa.public.to_bytes()
        assert self.ecdsa is not None
        return b"ECC:" + self.ecdsa.public_bytes()

    @property
    def hit(self) -> IPAddress:
        return hit_from_public_key(self.public_key_bytes)

    @property
    def rsa_bits(self) -> int:
        """Modulus size for cost accounting (0 for ECDSA identities)."""
        return self.rsa.public.bits if self.rsa is not None else 0

    def sign(self, message: bytes, rng: random.Random) -> bytes:
        if self.algorithm == "rsa":
            assert self.rsa is not None
            return self.rsa.sign(message)
        assert self.ecdsa is not None
        return self.ecdsa.sign(message, rng)


def verify_with_host_id(public_key_bytes: bytes, message: bytes, signature: bytes) -> bool:
    """Verify a signature against a wire-encoded HI; False on any failure."""
    try:
        if public_key_bytes.startswith(b"RSA:"):
            key = RsaPublicKey.from_bytes(public_key_bytes[4:])
            return key.verify(message, signature)
        if public_key_bytes.startswith(b"ECC:"):
            point = EcdsaKeyPair.public_from_bytes(public_key_bytes[4:])
            return ecdsa_verify(point, message, signature)
    except (ValueError, IndexError):
        return False
    return False


def asym_cost_for_host_id(public_key_bytes: bytes, op: str, cost_model) -> float:
    """CPU cost of ``op`` ("sign" | "verify") for the given HI type."""
    if public_key_bytes.startswith(b"RSA:"):
        bits = RsaPublicKey.from_bytes(public_key_bytes[4:]).bits
        return cost_model.rsa_sign(bits) if op == "sign" else cost_model.rsa_verify(bits)
    if op == "sign":
        return cost_model.ecdsa_sign_p256
    return cost_model.ecdsa_verify_p256


class LsiAllocator:
    """Per-host allocator of Local-Scope Identifiers (1.0.x.y).

    LSIs are host-local: two hosts may map the same peer HIT to different
    LSIs.  ``1.0.0.1`` is conventionally the host's own LSI.
    """

    def __init__(self) -> None:
        base = LSI_PREFIX.network.value
        self._own = IPAddress(4, base + 1)
        self._next = base + 2
        self._by_hit: dict[IPAddress, IPAddress] = {}
        self._by_lsi: dict[IPAddress, IPAddress] = {}

    @property
    def own_lsi(self) -> IPAddress:
        return self._own

    def assign(self, hit: IPAddress) -> IPAddress:
        """Return (allocating if needed) the LSI for a peer HIT."""
        existing = self._by_hit.get(hit)
        if existing is not None:
            return existing
        lsi = IPAddress(4, self._next)
        self._next += 1
        if not LSI_PREFIX.contains(lsi):
            raise RuntimeError("LSI space exhausted")
        self._by_hit[hit] = lsi
        self._by_lsi[lsi] = hit
        return lsi

    def hit_for(self, lsi: IPAddress) -> IPAddress | None:
        return self._by_lsi.get(lsi)

    def lsi_for(self, hit: IPAddress) -> IPAddress | None:
        return self._by_hit.get(hit)
