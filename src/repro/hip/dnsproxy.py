"""DNS-based HIP peer discovery (RFC 5205) — the HIPL "DNS proxy" role.

HIPL ships a DNS proxy that intercepts applications' queries: when a name
has a HIP resource record, the proxy returns the HIT (for AAAA queries) or
a freshly-mapped LSI (for A queries) instead of the routable address, and
primes the daemon with the HIT→locator mapping.  The application then
connects to the HIT/LSI and is transparently protected.

:class:`HipDnsProxy` implements exactly that against our
:mod:`repro.net.dns` resolver.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.hip.daemon import HipDaemon
from repro.net.addresses import IPAddress
from repro.net.dns import DnsRecord, DnsResolver, Zone

if TYPE_CHECKING:  # pragma: no cover
    pass


def publish_hip_host(
    zone: Zone,
    name: str,
    daemon: HipDaemon,
    locators: list[IPAddress],
    ttl: float = 60.0,
    rvs: tuple[str, ...] = (),
) -> None:
    """Publish a host's HIP + A records (what ``hipdnskeyparse`` feeds Bind).

    The paper recommends small TTLs for HIP records so re-contact after
    mobility works; 60 s matches that guidance.
    """
    zone.add(DnsRecord(
        name=name, rtype="HIP", ttl=ttl, hit=daemon.hit,
        host_id=daemon.identity.public_key_bytes, rvs=rvs,
    ))
    for locator in locators:
        rtype = "A" if locator.family == 4 else "AAAA"
        zone.add(DnsRecord(name=name, rtype=rtype, ttl=ttl, address=locator))


class HipDnsProxy:
    """Resolver-side interception for a HIP-enabled host."""

    def __init__(self, daemon: HipDaemon, resolver: DnsResolver) -> None:
        self.daemon = daemon
        self.resolver = resolver
        self.hip_answers = 0
        self.plain_answers = 0

    def resolve(self, name: str, family: int = 4) -> Generator:
        """Process-generator: resolve ``name`` the way a HIP host should.

        Returns an :class:`IPAddress`: the peer's HIT (family 6) or a local
        LSI (family 4) when the name has a HIP record — with the daemon
        primed for the base exchange — or the plain A/AAAA answer otherwise.
        Raises KeyError when the name does not resolve at all.
        """
        hip_records = yield from self.resolver.query(name, "HIP")
        # Locators can be either family regardless of what the application
        # asked for — the app family only selects the HIT vs LSI answer.
        addr_records = yield from self.resolver.query(name, "A")
        if not addr_records:
            addr_records = yield from self.resolver.query(name, "AAAA")
        locators = [r.address for r in addr_records if r.address is not None]
        if hip_records:
            record = hip_records[0]
            assert record.hit is not None
            if locators:
                self.daemon.add_peer(record.hit, locators)
            elif record.rvs:
                # No locator published: fall back to the rendezvous server.
                rvs_records = yield from self.resolver.query(record.rvs[0], "A")
                rvs_locators = [r.address for r in rvs_records if r.address is not None]
                if not rvs_locators:
                    raise KeyError(f"{name}: HIP record has unreachable RVS")
                self.daemon.add_peer(record.hit, rvs_locators)
            else:
                raise KeyError(f"{name}: HIP record without locators or RVS")
            self.hip_answers += 1
            if family == 6:
                return record.hit
            return self.daemon.lsi_for_peer(record.hit)
        if not locators:
            raise KeyError(f"{name} does not resolve")
        self.plain_answers += 1
        return locators[0]
