"""Host Identity Protocol (HIP) — the paper's primary contribution.

A complete RFC 5201-family HIP stack over the simulated network:

* :mod:`~repro.hip.identity` — Host Identifiers (public keys), HITs
  (ORCHID-prefixed 128-bit hashes) and Local-Scope Identifiers;
* :mod:`~repro.hip.packets` — byte-exact control packet wire format with
  TLV parameters, HMACs and signatures;
* :mod:`~repro.hip.esp` — BEET- and tunnel-mode ESP security associations
  (AES-CBC + HMAC-SHA1, anti-replay) for the data plane;
* :mod:`~repro.hip.daemon` — the per-host daemon: base exchange state
  machine, LSI/HIT flow interception, data-path translation;
* :mod:`~repro.hip.mobility` — UPDATE-based locator handoff (RFC 5206);
* :mod:`~repro.hip.rendezvous` — rendezvous server (RFC 5204);
* :mod:`~repro.hip.firewall` — HIT-based access control
  (hosts.allow/hosts.deny semantics, plus a middlebox variant);
* :mod:`~repro.hip.dnsproxy` — name resolution glue for HIP records.
"""

from repro.hip.daemon import HipConfig, HipDaemon
from repro.hip.esp import EspMode, SecurityAssociation
from repro.hip.firewall import HipFirewall, Verdict
from repro.hip.identity import HostIdentity, LsiAllocator, hit_from_public_key

__all__ = [
    "EspMode",
    "HipConfig",
    "HipDaemon",
    "HipFirewall",
    "HostIdentity",
    "LsiAllocator",
    "SecurityAssociation",
    "Verdict",
    "hit_from_public_key",
]
