"""HIP control-packet wire format (RFC 5201/5202/5203/5206).

Packets serialize to real bytes: a fixed 40-byte header (next-header, length,
type, version, checksum, controls, sender HIT, receiver HIT) followed by TLV
parameters padded to 8-byte boundaries and ordered by ascending type code.

The HMAC covers the packet with parameters up to (excluding) the HMAC
parameter; the signature covers everything up to (excluding) the SIGNATURE
parameter — both with the checksum field zeroed — matching the RFC's
construction so a single bit flip anywhere breaks verification in tests.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.net.addresses import IPAddress

HIP_VERSION = 1

# Packet types (RFC 5201 §5.3).
I1, R1, I2, R2 = 1, 2, 3, 4
UPDATE, NOTIFY, CLOSE, CLOSE_ACK = 16, 17, 18, 19

PACKET_NAMES = {
    I1: "I1", R1: "R1", I2: "I2", R2: "R2",
    UPDATE: "UPDATE", NOTIFY: "NOTIFY", CLOSE: "CLOSE", CLOSE_ACK: "CLOSE_ACK",
}

# Parameter type codes (RFC 5201 §5.2 and extensions).
ESP_INFO = 65
R1_COUNTER = 128
LOCATOR = 193
PUZZLE = 257
SOLUTION = 321
SEQ = 385
ACK = 449
DIFFIE_HELLMAN = 513
HIP_TRANSFORM = 577
HOST_ID = 705
NOTIFICATION = 832
ECHO_REQUEST_SIGNED = 897
ECHO_RESPONSE_SIGNED = 961
REG_INFO = 930
REG_REQUEST = 932
REG_RESPONSE = 934
FROM = 65498  # RFC 5204 rendezvous
VIA_RVS = 65502
HMAC_PARAM = 61505
HIP_SIGNATURE = 61697
ECHO_REQUEST_UNSIGNED = 63661
ECHO_RESPONSE_UNSIGNED = 63425


class HipParseError(Exception):
    """Malformed HIP packet or parameter."""


@dataclass(frozen=True)
class Param:
    """One TLV parameter."""

    code: int
    data: bytes

    def serialize(self) -> bytes:
        if not 0 <= self.code <= 0xFFFF:
            raise HipParseError(f"parameter code {self.code} out of range")
        if len(self.data) > 0xFFFF:
            raise HipParseError(
                f"parameter {self.code} value is {len(self.data)} bytes; "
                "the TLV length field holds at most 65535"
            )
        tlv = struct.pack(">HH", self.code, len(self.data)) + self.data
        pad = (-len(tlv)) % 8
        return tlv + b"\x00" * pad


@dataclass
class HipPacket:
    """A HIP control packet."""

    packet_type: int
    sender_hit: IPAddress
    receiver_hit: IPAddress
    params: list[Param] = field(default_factory=list)
    controls: int = 0

    def add(self, code: int, data: bytes) -> None:
        self.params.append(Param(code, data))
        self.params.sort(key=lambda p: p.code)

    def get(self, code: int) -> bytes | None:
        for p in self.params:
            if p.code == code:
                return p.data
        return None

    def get_all(self, code: int) -> list[bytes]:
        return [p.data for p in self.params if p.code == code]

    @property
    def type_name(self) -> str:
        return PACKET_NAMES.get(self.packet_type, f"type-{self.packet_type}")

    # -- serialization -------------------------------------------------------------
    def _header(self, payload_len: int) -> bytes:
        # next-header = 59 (no next header), length in 8-byte units excluding
        # the first 8 bytes, checksum transmitted as zero in our overlay.
        total = 40 + payload_len
        length_field = (total - 8) // 8
        return (
            struct.pack(
                ">BBBBHH", 59, length_field, self.packet_type, HIP_VERSION << 4 | 1,
                0, self.controls,
            )
            + self.sender_hit.packed()
            + self.receiver_hit.packed()
        )

    def serialize(self) -> bytes:
        body = b"".join(p.serialize() for p in sorted(self.params, key=lambda p: p.code))
        if len(body) % 8:
            raise HipParseError("parameter block not 8-byte aligned")
        return self._header(len(body)) + body

    def bytes_for_param(self, excluded_code: int) -> bytes:
        """Packet bytes covering parameters strictly below ``excluded_code``.

        This is the input to both HMAC (excluded_code=HMAC_PARAM) and the
        signature (excluded_code=HIP_SIGNATURE), per the RFC construction.
        """
        included = [p for p in self.params if p.code < excluded_code]
        body = b"".join(p.serialize() for p in sorted(included, key=lambda p: p.code))
        return self._header(len(body)) + body

    @classmethod
    def parse(cls, data: bytes) -> "HipPacket":
        if len(data) < 40:
            raise HipParseError("truncated HIP header")
        nxt, length_field, ptype, ver, _csum, controls = struct.unpack_from(">BBBBHH", data, 0)
        if (ver >> 4) != HIP_VERSION:
            raise HipParseError(f"unsupported HIP version {ver >> 4}")
        total = (length_field * 8) + 8
        if total != len(data):
            raise HipParseError(f"length field says {total}, packet has {len(data)} bytes")
        sender = IPAddress(6, int.from_bytes(data[8:24], "big"))
        receiver = IPAddress(6, int.from_bytes(data[24:40], "big"))
        packet = cls(packet_type=ptype, sender_hit=sender, receiver_hit=receiver,
                     controls=controls)
        off = 40
        prev_code = -1
        while off < len(data):
            if off + 4 > len(data):
                raise HipParseError("truncated parameter header")
            code, plen = struct.unpack_from(">HH", data, off)
            if code < prev_code:
                raise HipParseError("parameters out of order")
            prev_code = code
            value = data[off + 4 : off + 4 + plen]
            if len(value) != plen:
                raise HipParseError("truncated parameter value")
            packet.params.append(Param(code, bytes(value)))
            end = off + 4 + plen
            off = end + ((-(4 + plen)) % 8)
            if off > len(data):
                raise HipParseError("truncated parameter padding")
            if any(data[end:off]):
                raise HipParseError("non-zero parameter padding")
        if off != len(data):
            raise HipParseError("parameter block not 8-byte aligned")
        return packet


# -- typed parameter builders/parsers ------------------------------------------------

def build_puzzle(k: int, lifetime_exp: int, opaque: int, i: bytes) -> bytes:
    return struct.pack(">BBH", k, lifetime_exp, opaque) + i


def parse_puzzle(data: bytes) -> tuple[int, int, int, bytes]:
    if len(data) != 4 + 8:
        raise HipParseError(f"PUZZLE parameter must be 12 bytes, got {len(data)}")
    k, lifetime_exp, opaque = struct.unpack_from(">BBH", data, 0)
    return k, lifetime_exp, opaque, data[4:12]


def build_solution(k: int, opaque: int, i: bytes, j: bytes) -> bytes:
    return struct.pack(">BBH", k, 0, opaque) + i + j


def parse_solution(data: bytes) -> tuple[int, int, bytes, bytes]:
    if len(data) != 4 + 16:
        raise HipParseError(f"SOLUTION parameter must be 20 bytes, got {len(data)}")
    k, _res, opaque = struct.unpack_from(">BBH", data, 0)
    return k, opaque, data[4:12], data[12:20]


def build_dh(group_id: int, public: bytes) -> bytes:
    return struct.pack(">BH", group_id, len(public)) + public


def parse_dh(data: bytes) -> tuple[int, bytes]:
    if len(data) < 3:
        raise HipParseError("short DIFFIE_HELLMAN parameter")
    group_id, length = struct.unpack_from(">BH", data, 0)
    if len(data) != 3 + length:
        raise HipParseError(
            f"DIFFIE_HELLMAN declares {length} public-value bytes, "
            f"parameter holds {len(data) - 3}"
        )
    return group_id, data[3 : 3 + length]


def build_esp_info(old_spi: int, new_spi: int, keymat_index: int = 0) -> bytes:
    return struct.pack(">HHII", 0, keymat_index, old_spi, new_spi)


def parse_esp_info(data: bytes) -> tuple[int, int, int]:
    if len(data) != 12:
        raise HipParseError(f"ESP_INFO parameter must be 12 bytes, got {len(data)}")
    _res, keymat_index, old_spi, new_spi = struct.unpack(">HHII", data)
    return keymat_index, old_spi, new_spi


def build_host_id(public_key_bytes: bytes, domain_id: bytes = b"") -> bytes:
    return (
        struct.pack(">HH", len(public_key_bytes), len(domain_id))
        + public_key_bytes
        + domain_id
    )


def parse_host_id(data: bytes) -> tuple[bytes, bytes]:
    if len(data) < 4:
        raise HipParseError("short HOST_ID parameter")
    hi_len, di_len = struct.unpack_from(">HH", data, 0)
    if len(data) != 4 + hi_len + di_len:
        raise HipParseError(
            f"HOST_ID declares {hi_len}+{di_len} bytes, parameter holds "
            f"{len(data) - 4}"
        )
    return data[4 : 4 + hi_len], data[4 + hi_len : 4 + hi_len + di_len]


def build_locator(addrs: list[tuple[IPAddress, float]]) -> bytes:
    """LOCATOR: list of (address, preferred-lifetime)."""
    out = struct.pack(">H", len(addrs))
    for addr, lifetime in addrs:
        out += struct.pack(">Bf", addr.family, lifetime)
        out += addr.value.to_bytes(16, "big")  # v4 stored v4-mapped style
    return out


def parse_locator(data: bytes) -> list[tuple[IPAddress, float]]:
    if len(data) < 2:
        raise HipParseError("short LOCATOR parameter")
    (count,) = struct.unpack_from(">H", data, 0)
    off = 2
    out = []
    for _ in range(count):
        if off + 5 + 16 > len(data):
            raise HipParseError("truncated LOCATOR entry")
        family, lifetime = struct.unpack_from(">Bf", data, off)
        off += 5
        value = int.from_bytes(data[off : off + 16], "big")
        off += 16
        out.append((IPAddress(family, value), lifetime))
    if off != len(data):
        raise HipParseError(
            f"LOCATOR declares {count} entries, parameter has "
            f"{len(data) - off} trailing bytes"
        )
    return out


def build_seq(update_id: int) -> bytes:
    return struct.pack(">I", update_id)


def parse_seq(data: bytes) -> int:
    if len(data) != 4:
        raise HipParseError(f"SEQ parameter must be 4 bytes, got {len(data)}")
    return struct.unpack(">I", data)[0]


def build_ack(update_ids: list[int]) -> bytes:
    return struct.pack(f">{len(update_ids)}I", *update_ids)


def parse_ack(data: bytes) -> list[int]:
    if len(data) % 4:
        raise HipParseError("bad ACK parameter length")
    return list(struct.unpack(f">{len(data) // 4}I", data))


def build_transform(suite_ids: list[int]) -> bytes:
    return struct.pack(f">{len(suite_ids)}H", *suite_ids)


def parse_transform(data: bytes) -> list[int]:
    if len(data) % 2:
        raise HipParseError("bad transform parameter length")
    return list(struct.unpack(f">{len(data) // 2}H", data))


# ESP transform suite ids (RFC 5202 §5.1.2).
SUITE_AES_CBC_HMAC_SHA1 = 1
SUITE_NULL_HMAC_SHA1 = 2
