"""The HIP daemon: base exchange, data-path interception, mobility, teardown.

One :class:`HipDaemon` runs per host (VM, proxy, power-user workstation).
It mirrors HIPL's architecture:

* a virtual ``hip0`` interface owns the host's HIT and LSI, so unmodified
  applications can open TCP/UDP/ICMP flows to HIT or LSI destinations;
* an *output shim* intercepts those flows before routing.  If no association
  exists with the peer, packets are queued and a base exchange (RFC 5201)
  runs: ``I1 → R1(puzzle, DH, HI, sig) → I2(solution, DH, HMAC, sig) →
  R2(ESP info, HMAC, sig)``;
* established associations protect traffic with BEET-mode ESP
  (:mod:`repro.hip.esp`), translating HIT/LSI inner addressing to routable
  locators on the outside;
* UPDATE packets implement locator handoff with the RFC 5206 nonce-echo
  address verification (used by the VM-migration example);
* CLOSE/CLOSE_ACK tears associations down.

All asymmetric operations really sign/verify packet bytes, and every
operation charges calibrated CPU time through the node's cost model, so both
correctness and performance shape are first-class.

Responder statelessness: R1 packets are precomputed and signed off the
critical path (HIPL keeps an R1 pool), and no per-peer state is created
until a valid I2 arrives — HIP's DoS posture, which the puzzle ablation
benchmark exercises.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import StrEnum
from typing import TYPE_CHECKING, Generator

from repro.crypto.costmodel import CryptoMeter
from repro.crypto.dh import DHKeyPair, MODP_GROUPS
from repro.crypto.hmac_kdf import HmacKey, ct_equal, hip_keymat
from repro.crypto.puzzle import Puzzle, solve_puzzle, verify_solution
from repro.hip import packets as hp
from repro.hip.esp import (
    EspCiphertext,
    EspError,
    EspMode,
    SecurityAssociation,
    derive_sa_pair,
)
from repro.hip.identity import (
    HostIdentity,
    LsiAllocator,
    asym_cost_for_host_id,
    hit_from_public_key,
    verify_with_host_id,
)
from repro.metrics import METRICS, RECORDER
from repro.net.addresses import IPAddress, is_hit, is_lsi
from repro.net.packet import ESPHeader, HIPHeader, IPHeader, Packet
from repro.sim.resources import Queue

if TYPE_CHECKING:  # pragma: no cover
    from repro.hip.firewall import HipFirewall
    from repro.net.node import Node

# KEYMAT layout: HIP HMAC keys (2 x 20) then ESP keys (2 x 36).
_HIP_KEY_BYTES = 40
_ESP_KEY_BYTES = 72
KEYMAT_BYTES = _HIP_KEY_BYTES + _ESP_KEY_BYTES

I1_RETRIES = 4
I2_RETRIES = 4
RETRY_BASE_S = 0.5

# Global tallies across every daemon in the process; the per-daemon attributes
# (``data_packets_sent`` etc.) keep the same counts for single-host assertions.
_DATA_SENT = METRICS.counter("hip.data_packets_sent")
_DATA_RECV = METRICS.counter("hip.data_packets_received")
_ESP_DROPS = METRICS.counter("hip.esp_drops")
_NO_MAPPING = METRICS.counter("hip.drops_no_mapping")
_POLICY_DROPS = METRICS.counter("hip.drops_policy")
_BEX_DONE = METRICS.counter("hip.bex_completed")
_BEX_T = METRICS.histogram("hip.bex_s")

# Pre-bound meter keys: the ESP dataplane must not format strings per packet.
_ESP_ENC_LSI = "esp.encrypt.lsi"
_ESP_ENC_HIT = "esp.encrypt.hit"
_ESP_DEC_LSI = "esp.decrypt.lsi"
_ESP_DEC_HIT = "esp.decrypt.hit"


class HipError(Exception):
    """Association failure (timeout, verification failure, policy deny)."""


class HipState(StrEnum):
    """Canonical HIP association states (RFC 5201 §4.4.1, simplified).

    The single source of truth for the association FSM: every comparison and
    every :meth:`HipDaemon._transition` call uses these members, and the
    ``CONF003`` analysis rule rejects bare string literals in state
    positions.  Deviations from the RFC table, both deliberate:

    * ``R2-SENT`` is collapsed into ``ESTABLISHED`` — the responder installs
      its SAs and completes as soon as a valid I2 is accepted;
    * ``FAILED`` is an addition (the RFC retries forever; we surface
      exhausted retransmissions and policy denials to the caller).

    Values stay the historical wire-visible strings so recorded traces and
    string comparisons in older callers keep working (StrEnum members *are*
    their values).
    """

    UNASSOCIATED = "UNASSOCIATED"
    I1_SENT = "I1-SENT"
    I2_SENT = "I2-SENT"
    ESTABLISHED = "ESTABLISHED"
    CLOSING = "CLOSING"
    CLOSED = "CLOSED"
    FAILED = "FAILED"


@dataclass
class HipConfig:
    """Daemon tunables."""

    esp_mode: EspMode = EspMode.BEET
    esp_encrypt: bool = True  # confidentiality on (vs auth-only ESP)
    real_crypto: bool = True  # actually encrypt real-byte payloads
    puzzle_k: int = 8  # difficulty served in R1
    dh_group: int = 1  # MODP group id (1 = fast 768-bit test group)
    charge_costs: bool = True  # charge simulated CPU for crypto work
    queue_limit: int = 64  # packets queued per pending association


@dataclass
class Association:
    """State for one HIP association (keyed by peer HIT)."""

    peer_hit: IPAddress
    role: str  # "initiator" | "responder"
    state: HipState = HipState.UNASSOCIATED
    peer_locator: IPAddress | None = None
    peer_host_id: bytes = b""
    dh: DHKeyPair | None = None
    keymat: bytes = b""
    hmac_key_out: bytes = b""
    hmac_key_in: bytes = b""
    # Midstate-cached HMAC objects for the control channel (set alongside the
    # raw keys); every HMAC parameter after the handshake reuses them.
    hmac_out: HmacKey | None = None
    hmac_in: HmacKey | None = None
    sa_out: SecurityAssociation | None = None
    sa_in: SecurityAssociation | None = None
    queued: list[tuple[Packet, str]] = field(default_factory=list)
    established_evt: object = None  # sim Event
    update_id: int = 0
    pending_update: dict | None = None
    retries: int = 0
    close_nonce: bytes = b""
    created_at: float = 0.0
    established_at: float = 0.0
    rekey_count: int = 0
    pending_rekey: dict | None = None

    @property
    def is_established(self) -> bool:
        return self.state == HipState.ESTABLISHED

    def set_hmac_keys(self, out_key: bytes, in_key: bytes) -> None:
        """Install control-channel HMAC keys plus their cached midstates."""
        self.hmac_key_out, self.hmac_key_in = out_key, in_key
        self.hmac_out = HmacKey(out_key, "sha1")
        self.hmac_in = HmacKey(in_key, "sha1")


class HipDaemon:
    """Per-host HIP engine."""

    def __init__(
        self,
        node: "Node",
        identity: HostIdentity,
        rng: random.Random,
        config: HipConfig | None = None,
        firewall: "HipFirewall | None" = None,
    ) -> None:
        self.node = node
        self.sim = node.sim
        self.identity = identity
        self.rng = rng
        self.config = config or HipConfig()
        self.firewall = firewall
        self.meter = CryptoMeter()
        self.lsi = LsiAllocator()

        self.hit = identity.hit
        iface = node.add_interface("hip0")
        iface.add_address(self.hit)
        iface.add_address(self.lsi.own_lsi)
        # Route the HIP namespaces at hip0 so source selection picks the
        # host's HIT/LSI for HIP-addressed flows; the output shim intercepts
        # the packets before they would be emitted on the (linkless) iface.
        from repro.net.addresses import LSI_PREFIX, ORCHID_PREFIX

        node.routes.add(ORCHID_PREFIX, iface)
        node.routes.add(LSI_PREFIX, iface)

        # peer HIT -> known locators (static hosts file / DNS / RVS).
        self.hosts: dict[IPAddress, list[IPAddress]] = {}
        self.assocs: dict[IPAddress, Association] = {}
        self._spi_counter = rng.randrange(0x1000, 0xFFFF)
        self._sa_in_by_spi: dict[int, Association] = {}

        node.add_output_shim(self._output_shim)
        node.register_protocol("hip", self._on_hip_packet)
        node.register_protocol("esp", self._on_esp_packet)
        node.fluid_taxers.append(self._fluid_taxer)

        self._tx = Queue(self.sim)
        self._rx = Queue(self.sim)
        self._ctl = Queue(self.sim)
        self.sim.process(self._tx_worker(), name=f"hipd-tx-{node.name}")
        self.sim.process(self._rx_worker(), name=f"hipd-rx-{node.name}")
        self.sim.process(self._ctl_worker(), name=f"hipd-ctl-{node.name}")

        # Precompute the signed R1 (off the hot path, like HIPL's R1 pool).
        self._responder_dh = DHKeyPair.generate(MODP_GROUPS[self.config.dh_group], rng)
        self._puzzle = Puzzle.fresh(self.config.puzzle_k, rng)
        self._r1_template = self._build_r1_template()

        self.data_packets_sent = 0
        self.data_packets_received = 0
        self.drops_no_mapping = 0
        self.drops_policy = 0
        self.drops_esp = 0
        self.bex_completed = 0

    # ------------------------------------------------------------------ peers --
    def add_peer(self, peer_hit: IPAddress, locators: list[IPAddress]) -> IPAddress:
        """Register peer HIT -> locator mapping; returns the local LSI for it."""
        if not is_hit(peer_hit):
            raise ValueError(f"{peer_hit} is not a HIT")
        self.hosts[peer_hit] = list(locators)
        return self.lsi.assign(peer_hit)

    def lsi_for_peer(self, peer_hit: IPAddress) -> IPAddress:
        return self.lsi.assign(peer_hit)

    def associate(self, peer_hit: IPAddress, timeout: float = 30.0) -> Generator:
        """Process-generator: ensure an ESTABLISHED association with the peer."""
        assoc = self._ensure_assoc(peer_hit)
        if assoc.is_established:
            return assoc
        if assoc.state in (HipState.FAILED, HipState.CLOSED):
            assoc = self._restart_assoc(peer_hit)
        if assoc.state == HipState.UNASSOCIATED:
            self._start_bex(assoc)
        from repro.sim.events import AnyOf

        deadline = self.sim.timeout(timeout)
        winner, value = yield AnyOf(self.sim, [assoc.established_evt, deadline])
        if winner is deadline:
            raise HipError(f"association with {peer_hit} timed out")
        return value

    def close(self, peer_hit: IPAddress) -> None:
        """Tear down the association (CLOSE / CLOSE_ACK)."""
        assoc = self.assocs.get(peer_hit)
        if assoc is None or not assoc.is_established:
            return
        pkt = self._new_packet(hp.CLOSE, peer_hit)
        nonce = self.rng.getrandbits(64).to_bytes(8, "big")
        assoc.close_nonce = nonce
        pkt.add(hp.ECHO_REQUEST_SIGNED, nonce)
        self._finalize_and_send(pkt, assoc, sign=True)
        self._transition(assoc, HipState.CLOSING)

    # --------------------------------------------------------------- data path --
    def _output_shim(self, node: "Node", packet: Packet) -> Packet | None:
        ip = packet.outer
        if not isinstance(ip, IPHeader):
            return packet
        if is_lsi(ip.dst) and ip.dst != self.lsi.own_lsi:
            peer_hit = self.lsi.hit_for(ip.dst)
            if peer_hit is None:
                self.drops_no_mapping += 1
                _NO_MAPPING.inc()
                return None
            self._tx.try_put((peer_hit, packet, "lsi"))
            return None
        if is_hit(ip.dst) and ip.dst != self.hit:
            self._tx.try_put((ip.dst, packet, "hit"))
            return None
        return packet

    def _tx_worker(self) -> Generator:
        while True:
            peer_hit, packet, kind = yield self._tx.get()
            assoc = self._ensure_assoc(peer_hit)
            if not assoc.is_established:
                if assoc.state in (HipState.FAILED, HipState.CLOSED):
                    assoc = self._restart_assoc(peer_hit)
                if len(assoc.queued) < self.config.queue_limit:
                    assoc.queued.append((packet, kind))
                if assoc.state == HipState.UNASSOCIATED:
                    self._start_bex(assoc)
                continue
            yield from self._protect_and_send(assoc, packet, kind)

    def _protect_and_send(self, assoc: Association, packet: Packet, kind: str) -> Generator:
        cm = self.node.cost_model
        if self.config.charge_costs:
            translate = cm.lsi_translation if kind == "lsi" else cm.hit_translation
            payload_bytes = packet.size_bytes
            cost = translate + cm.esp_encrypt_cost(payload_bytes)
            self.meter.charge(_ESP_ENC_LSI if kind == "lsi" else _ESP_ENC_HIT, cost)
            yield from self.node.cpu_work(cost)
        assert assoc.sa_out is not None and assoc.peer_locator is not None
        esp_header, ciphertext = assoc.sa_out.protect(packet)
        wire = Packet(headers=(esp_header,), payload=ciphertext).with_meta(addr_kind=kind)
        self.data_packets_sent += 1
        _DATA_SENT.value += 1
        if RECORDER.enabled:
            RECORDER.record(
                self.sim.now, "hip", "esp_seal", node=self.node.name,
                spi=esp_header.spi, seq=esp_header.seq, bytes=packet.size_bytes,
            )
        self.node.send_ip(assoc.peer_locator, "esp", wire)

    def _on_esp_packet(self, node: "Node", packet: Packet, iface) -> None:
        self._rx.try_put(packet)

    def _rx_worker(self) -> Generator:
        while True:
            packet = yield self._rx.get()
            ip, rest = packet.popped()
            esp_header, body = rest.popped()
            assert isinstance(esp_header, ESPHeader)
            assoc = self._sa_in_by_spi.get(esp_header.spi)
            if assoc is None or assoc.sa_in is None:
                self._drop_esp(esp_header, "unknown_spi")
                continue
            payload = body.payload
            if not isinstance(payload, EspCiphertext):
                self._drop_esp(esp_header, "malformed_payload")
                continue
            kind = packet.meta.get("addr_kind", "hit")
            cm = self.node.cost_model
            if self.config.charge_costs:
                translate = cm.lsi_translation if kind == "lsi" else cm.hit_translation
                cost = translate + cm.esp_decrypt_cost(len(payload.inner))
                self.meter.charge(_ESP_DEC_LSI if kind == "lsi" else _ESP_DEC_HIT, cost)
                yield from self.node.cpu_work(cost)
            try:
                inner = assoc.sa_in.verify(esp_header, payload)
            except EspError as exc:
                self._drop_esp(esp_header, str(exc))
                continue
            delivered = self._rebuild_inner(inner, assoc, kind)
            if packet.meta.get("ce"):
                # RFC 6040 decapsulation: a CE mark set on the outer ESP
                # packet by a congested link is copied to the inner header
                # so the tunneled flow sees the congestion signal.
                delivered = delivered.with_meta(ce=True)
            self.data_packets_received += 1
            _DATA_RECV.value += 1
            if RECORDER.enabled:
                RECORDER.record(
                    self.sim.now, "hip", "esp_open", node=self.node.name,
                    spi=esp_header.spi, seq=esp_header.seq, bytes=delivered.size_bytes,
                )
            self.node._on_receive(delivered, None)

    def _fluid_taxer(
        self, peer_addr: IPAddress, n_bytes: int, n_segments: int, direction: str
    ) -> None:
        """Charge ESP dataplane costs for TCP fluid fast-forwarded bytes.

        A fluid flow skips per-packet events, but each skipped segment would
        have paid address translation plus ESP encrypt (out) / decrypt (in).
        Charge the same meters per virtual byte so the crypto accounting
        stays honest.  CPU busy-seconds are tallied without occupying the
        CPU slot — the closed-form rate already subsumes the transfer's
        elapsed time.
        """
        if n_segments <= 0 or not self.config.charge_costs:
            return
        if is_lsi(peer_addr) and peer_addr != self.lsi.own_lsi:
            kind = "lsi"
        elif is_hit(peer_addr) and peer_addr != self.hit:
            kind = "hit"
        else:
            return  # not a HIP-addressed flow: no ESP on this path
        cm = self.node.cost_model
        translate = cm.lsi_translation if kind == "lsi" else cm.hit_translation
        seg_bytes = n_bytes // n_segments
        if direction == "out":
            per_seg = translate + cm.esp_encrypt_cost(seg_bytes)
            self.meter.charge(_ESP_ENC_LSI if kind == "lsi" else _ESP_ENC_HIT, per_seg * n_segments)
            self.data_packets_sent += n_segments
            _DATA_SENT.value += n_segments
        else:
            per_seg = translate + cm.esp_decrypt_cost(seg_bytes)
            self.meter.charge(_ESP_DEC_LSI if kind == "lsi" else _ESP_DEC_HIT, per_seg * n_segments)
            self.data_packets_received += n_segments
            _DATA_RECV.value += n_segments
        self.node.cpu_busy_seconds += per_seg * n_segments

    def _drop_esp(self, esp_header: ESPHeader, reason: str) -> None:
        self.drops_esp += 1
        _ESP_DROPS.inc()
        if RECORDER.enabled:
            RECORDER.record(
                self.sim.now, "hip", "esp_drop", node=self.node.name,
                spi=esp_header.spi, seq=esp_header.seq, reason=reason,
            )

    def _rebuild_inner(self, inner: Packet, assoc: Association, kind: str) -> Packet:
        """Reconstruct the inner IP header with *this host's* HIT/LSI view.

        In BEET mode the inner IP header never crosses the wire; each end
        regenerates it from the SPI-bound HIT pair.  LSIs are host-local, so
        the receiver maps the peer's HIT to its *own* LSI allocation.
        """
        if inner.headers and isinstance(inner.outer, IPHeader):
            old_ip, transport = inner.popped()
        else:
            transport = inner
        if kind == "lsi":
            src = self.lsi.assign(assoc.peer_hit)
            dst = self.lsi.own_lsi
        else:
            src = assoc.peer_hit
            dst = self.hit
        return transport.pushed(IPHeader(src=src, dst=dst, proto=self._inner_proto(transport)))

    @staticmethod
    def _inner_proto(transport: Packet) -> str:
        from repro.net.packet import ICMPHeader, TCPHeader, UDPHeader

        head = transport.headers[0] if transport.headers else None
        if isinstance(head, TCPHeader):
            return "tcp"
        if isinstance(head, UDPHeader):
            return "udp"
        if isinstance(head, ICMPHeader):
            return "icmp"
        return "raw"

    # ------------------------------------------------------------ associations --
    def _transition(
        self,
        assoc: Association,
        state: HipState,
        expect_from: tuple[HipState, ...] | None = None,
    ) -> None:
        """Move the association FSM, tracing the edge when the recorder is on.

        ``expect_from`` declares the legal source states for call sites whose
        guard lives in a *caller* (shared helpers like :meth:`_established`).
        It is checked at runtime and read statically by the ``CONF001`` /
        ``CONF002`` conformance rules, so the declared FSM and the executed
        one cannot drift apart silently.
        """
        if expect_from is not None and assoc.state not in expect_from:
            raise HipError(
                f"illegal HIP transition {assoc.state} -> {state} "
                f"(expected from {', '.join(expect_from)})"
            )
        if RECORDER.enabled:
            RECORDER.record(
                self.sim.now, "hip", "bex_state",
                node=self.node.name, peer=str(assoc.peer_hit),
                frm=assoc.state, to=state,
            )
        assoc.state = state

    def _established(self, assoc: Association) -> None:
        """Common tail of both BEX completions (R2 received / I2 accepted)."""
        self._transition(
            assoc, HipState.ESTABLISHED,
            expect_from=(HipState.UNASSOCIATED, HipState.I2_SENT),
        )
        assoc.established_at = self.sim.now
        self.bex_completed += 1
        _BEX_DONE.inc()
        _BEX_T.observe(self.sim.now - assoc.created_at)
        if not assoc.established_evt.triggered:  # type: ignore[attr-defined]
            assoc.established_evt.succeed(assoc)  # type: ignore[attr-defined]

    def _ensure_assoc(self, peer_hit: IPAddress) -> Association:
        assoc = self.assocs.get(peer_hit)
        if assoc is None:
            assoc = Association(
                peer_hit=peer_hit, role="initiator", created_at=self.sim.now,
                established_evt=self.sim.event(),
            )
            self.assocs[peer_hit] = assoc
        return assoc

    def _restart_assoc(self, peer_hit: IPAddress) -> Association:
        self.assocs.pop(peer_hit, None)
        return self._ensure_assoc(peer_hit)

    def _locator_for(self, peer_hit: IPAddress) -> IPAddress | None:
        locators = self.hosts.get(peer_hit)
        return locators[0] if locators else None

    # ------------------------------------------------------------- BEX, initiator --
    def _start_bex(self, assoc: Association) -> None:
        locator = self._locator_for(assoc.peer_hit)
        if locator is None:
            self._fail_assoc(assoc, HipError(f"no locator known for {assoc.peer_hit}"))
            return
        if self.firewall is not None and not self.firewall.allow_outbound(assoc.peer_hit):
            self.drops_policy += 1
            _POLICY_DROPS.inc()
            self._fail_assoc(assoc, HipError("outbound HIP policy denies peer"))
            return
        assoc.peer_locator = locator
        self._transition(assoc, HipState.I1_SENT, expect_from=(HipState.UNASSOCIATED,))
        assoc.retries = 0
        self._send_i1(assoc)
        self.sim.process(self._i1_retransmitter(assoc), name="hip-i1-rtx")

    def _send_i1(self, assoc: Association) -> None:
        i1 = self._new_packet(hp.I1, assoc.peer_hit)
        self._send_control(i1, assoc.peer_locator)

    def _i1_retransmitter(self, assoc: Association) -> Generator:
        while assoc.state == HipState.I1_SENT:
            yield self.sim.timeout(RETRY_BASE_S * (2**assoc.retries))
            if assoc.state != HipState.I1_SENT:
                return
            assoc.retries += 1
            if assoc.retries > I1_RETRIES:
                self._fail_assoc(assoc, HipError("I1 retransmissions exhausted"))
                return
            self._send_i1(assoc)

    def _i2_retransmitter(self, assoc: Association, i2: hp.HipPacket) -> Generator:
        retries = 0
        while assoc.state == HipState.I2_SENT:
            yield self.sim.timeout(RETRY_BASE_S * (2**retries))
            if assoc.state != HipState.I2_SENT:
                return
            retries += 1
            if retries > I2_RETRIES:
                self._fail_assoc(assoc, HipError("I2 retransmissions exhausted"))
                return
            self._send_control(i2, assoc.peer_locator)

    def _fail_assoc(self, assoc: Association, error: Exception) -> None:
        self._transition(
            assoc, HipState.FAILED,
            expect_from=(HipState.UNASSOCIATED, HipState.I1_SENT, HipState.I2_SENT),
        )
        assoc.queued.clear()
        evt = assoc.established_evt
        if evt is not None and not evt.triggered:  # type: ignore[attr-defined]
            evt.fail(error)  # type: ignore[attr-defined]

    # -------------------------------------------------------------- BEX, responder --
    def _build_r1_template(self) -> hp.HipPacket:
        """Precompute the signed R1 (receiver HIT filled per-I1 with NULL rules).

        RFC 5201 signs R1 with a zeroed receiver HIT precisely so it can be
        precomputed; we follow that: the signature covers the packet with
        receiver HIT = 0, and initiators verify accordingly.
        """
        r1 = hp.HipPacket(
            packet_type=hp.R1, sender_hit=self.hit, receiver_hit=IPAddress(6, 0),
        )
        r1.add(hp.PUZZLE, hp.build_puzzle(self._puzzle.k, 6, 0, self._puzzle.i))
        r1.add(
            hp.DIFFIE_HELLMAN,
            hp.build_dh(self.config.dh_group, self._responder_dh.public_bytes()),
        )
        r1.add(hp.HIP_TRANSFORM, hp.build_transform([hp.SUITE_AES_CBC_HMAC_SHA1]))
        r1.add(hp.HOST_ID, hp.build_host_id(self.identity.public_key_bytes))
        signature = self.identity.sign(r1.bytes_for_param(hp.HIP_SIGNATURE), self.rng)
        r1.add(hp.HIP_SIGNATURE, signature)
        # Charged once, off the hot path (R1 pool generation).
        self.meter.charge(
            "asym.sign.r1",
            asym_cost_for_host_id(self.identity.public_key_bytes, "sign", self.node.cost_model),
        )
        return r1

    # ---------------------------------------------------------------- control plane --
    def _new_packet(self, ptype: int, peer_hit: IPAddress) -> hp.HipPacket:
        return hp.HipPacket(packet_type=ptype, sender_hit=self.hit, receiver_hit=peer_hit)

    def _send_control(self, packet: hp.HipPacket, locator: IPAddress | None) -> None:
        if locator is None:
            return
        raw = packet.serialize()
        wire = Packet(headers=(HIPHeader(packet_type=packet.type_name),), payload=raw[40:])
        wire = wire.with_meta(hip_raw=raw)
        self.node.send_ip(locator, "hip", wire)

    def _on_hip_packet(self, node: "Node", packet: Packet, iface) -> None:
        self._ctl.try_put(packet)

    def _ctl_worker(self) -> Generator:
        while True:
            packet = yield self._ctl.get()
            ip, _rest = packet.popped()
            raw = packet.meta.get("hip_raw")
            if raw is None:
                continue
            try:
                hip_pkt = hp.HipPacket.parse(raw)
            except hp.HipParseError:
                continue
            assert isinstance(ip, IPHeader)
            handler = {
                hp.I1: self._handle_i1,
                hp.R1: self._handle_r1,
                hp.I2: self._handle_i2,
                hp.R2: self._handle_r2,
                hp.UPDATE: self._handle_update,
                hp.CLOSE: self._handle_close,
                hp.CLOSE_ACK: self._handle_close_ack,
            }.get(hip_pkt.packet_type)
            if handler is None:
                continue
            yield from handler(hip_pkt, ip)

    def _charge(self, kind: str, cost: float) -> Generator:
        self.meter.charge(kind, cost)
        if self.config.charge_costs:
            yield from self.node.cpu_work(cost)

    # -- responder side ------------------------------------------------------------
    def _handle_i1(self, i1: hp.HipPacket, ip: IPHeader) -> Generator:
        if i1.receiver_hit != self.hit:
            return
        if self.firewall is not None and not self.firewall.allow_inbound(i1.sender_hit):
            self.drops_policy += 1
            _POLICY_DROPS.inc()
            return
        # Stateless: send the precomputed R1 with the initiator's HIT stamped
        # into the (unsigned) receiver slot.  Cheap by design.
        yield from self._charge("ctl.i1", 2e-6)
        r1 = hp.HipPacket(
            packet_type=hp.R1, sender_hit=self.hit, receiver_hit=i1.sender_hit,
            params=list(self._r1_template.params),
        )
        # RFC 5204: an I1 relayed by a rendezvous server carries the
        # initiator's address in FROM; answer the initiator directly.
        reply_to = ip.src
        from_param = i1.get(hp.FROM)
        if from_param is not None and len(from_param) >= 17:
            reply_to = IPAddress(from_param[16], int.from_bytes(from_param[:16], "big"))
        self._send_control(r1, reply_to)

    def _handle_i2(self, i2: hp.HipPacket, ip: IPHeader) -> Generator:
        if i2.receiver_hit != self.hit:
            return
        if self.firewall is not None and not self.firewall.allow_inbound(i2.sender_hit):
            self.drops_policy += 1
            _POLICY_DROPS.inc()
            return
        cm = self.node.cost_model
        solution_data = i2.get(hp.SOLUTION)
        dh_data = i2.get(hp.DIFFIE_HELLMAN)
        host_id_data = i2.get(hp.HOST_ID)
        esp_data = i2.get(hp.ESP_INFO)
        hmac_data = i2.get(hp.HMAC_PARAM)
        sig_data = i2.get(hp.HIP_SIGNATURE)
        if None in (solution_data, dh_data, host_id_data, esp_data, hmac_data, sig_data):
            return
        # 1. Puzzle check: one hash, before any expensive work (DoS posture).
        k, _opaque, puzzle_i, puzzle_j = hp.parse_solution(solution_data)
        yield from self._charge("puzzle.verify", cm.puzzle_verify_cost())
        if puzzle_i != self._puzzle.i or k != self._puzzle.k:
            return
        if not verify_solution(self._puzzle, i2.sender_hit.packed(), self.hit.packed(), puzzle_j):
            return
        # 2. Identity: HIT must match the carried host id.
        peer_hi, _di = hp.parse_host_id(host_id_data)
        if hit_from_public_key(peer_hi) != i2.sender_hit:
            return
        # 3. DH + KEYMAT.
        group_id, peer_pub = hp.parse_dh(dh_data)
        if group_id != self.config.dh_group:
            return
        yield from self._charge("asym.dh.i2", cm.dh_modexp(MODP_GROUPS[group_id].bits))
        try:
            secret = self._responder_dh.shared_secret(int.from_bytes(peer_pub, "big"))
        except ValueError:
            return
        keymat = hip_keymat(
            secret + puzzle_i + puzzle_j,
            i2.sender_hit.packed(), self.hit.packed(), KEYMAT_BYTES,
        )
        hmac_in, hmac_out = keymat[:20], keymat[20:40]
        # 4. HMAC then signature (cheap check first, per RFC processing order).
        yield from self._charge("sym.hmac.i2", cm.hmac_cost(200))
        expect_mac = HmacKey(hmac_in, "sha1").digest(i2.bytes_for_param(hp.HMAC_PARAM))
        if not ct_equal(expect_mac, hmac_data):
            return
        yield from self._charge(
            "asym.verify.i2", asym_cost_for_host_id(peer_hi, "verify", cm)
        )
        if not verify_with_host_id(peer_hi, i2.bytes_for_param(hp.HIP_SIGNATURE), sig_data):
            return
        # 5. Create association + SAs.
        _ki, _old_spi, peer_spi = hp.parse_esp_info(esp_data)
        assoc = self.assocs.get(i2.sender_hit)
        if assoc is None or not assoc.is_established:
            assoc = Association(
                peer_hit=i2.sender_hit, role="responder", created_at=self.sim.now,
                established_evt=self.sim.event(),
            )
            self.assocs[i2.sender_hit] = assoc
        assoc.peer_locator = ip.src
        assoc.peer_host_id = peer_hi
        assoc.keymat = keymat
        assoc.set_hmac_keys(out_key=hmac_out, in_key=hmac_in)
        local_spi = self._alloc_spi()
        assoc.sa_out, assoc.sa_in = derive_sa_pair(
            keymat[_HIP_KEY_BYTES:], spi_out=peer_spi, spi_in=local_spi,
            local_hit=self.hit, peer_hit=assoc.peer_hit, is_initiator=False,
            mode=self.config.esp_mode, encrypt=self.config.esp_encrypt,
        )
        self._sa_in_by_spi[local_spi] = assoc
        self.node.dataplane_epoch += 1  # new SA pair: fluid flows must re-enter
        # 6. R2: ESP_INFO + HMAC + signature.
        r2 = self._new_packet(hp.R2, assoc.peer_hit)
        r2.add(hp.ESP_INFO, hp.build_esp_info(0, local_spi))
        yield from self._charge("sym.hmac.r2", cm.hmac_cost(120))
        r2.add(hp.HMAC_PARAM, assoc.hmac_out.digest(r2.bytes_for_param(hp.HMAC_PARAM)))
        yield from self._charge(
            "asym.sign.r2",
            asym_cost_for_host_id(self.identity.public_key_bytes, "sign", cm),
        )
        r2.add(hp.HIP_SIGNATURE, self.identity.sign(r2.bytes_for_param(hp.HIP_SIGNATURE), self.rng))
        self._send_control(r2, ip.src)
        self._established(assoc)

    # -- initiator side --------------------------------------------------------------
    def _handle_r1(self, r1: hp.HipPacket, ip: IPHeader) -> Generator:
        assoc = self.assocs.get(r1.sender_hit)
        if assoc is None or assoc.state != HipState.I1_SENT:
            return
        cm = self.node.cost_model
        puzzle_data = r1.get(hp.PUZZLE)
        dh_data = r1.get(hp.DIFFIE_HELLMAN)
        host_id_data = r1.get(hp.HOST_ID)
        sig_data = r1.get(hp.HIP_SIGNATURE)
        if None in (puzzle_data, dh_data, host_id_data, sig_data):
            return
        peer_hi, _di = hp.parse_host_id(host_id_data)
        if hit_from_public_key(peer_hi) != r1.sender_hit:
            return
        # Verify the R1 signature against the precomputation rules
        # (receiver HIT zeroed).
        yield from self._charge("asym.verify.r1", asym_cost_for_host_id(peer_hi, "verify", cm))
        unsigned = hp.HipPacket(
            packet_type=hp.R1, sender_hit=r1.sender_hit, receiver_hit=IPAddress(6, 0),
            params=[p for p in r1.params],
        )
        if not verify_with_host_id(peer_hi, unsigned.bytes_for_param(hp.HIP_SIGNATURE), sig_data):
            return
        assoc.peer_host_id = peer_hi
        # Solve the puzzle (really, counting attempts for honest cost).
        k, lifetime_exp, opaque, puzzle_i = hp.parse_puzzle(puzzle_data)
        puzzle = Puzzle(i=puzzle_i, k=k, lifetime=float(2 ** (lifetime_exp - 1)))
        j, attempts = solve_puzzle(puzzle, self.hit.packed(), r1.sender_hit.packed(), self.rng)
        yield from self._charge("puzzle.solve", cm.puzzle_solve_cost(k, attempts))
        # DH: generate our key pair and compute the shared secret (2 modexps).
        group_id, peer_pub = hp.parse_dh(dh_data)
        group = MODP_GROUPS.get(group_id)
        if group is None:
            return
        yield from self._charge("asym.dh.keygen", cm.dh_modexp(group.bits))
        assoc.dh = DHKeyPair.generate(group, self.rng)
        yield from self._charge("asym.dh.shared", cm.dh_modexp(group.bits))
        try:
            secret = assoc.dh.shared_secret(int.from_bytes(peer_pub, "big"))
        except ValueError:
            return
        keymat = hip_keymat(
            secret + puzzle_i + j, self.hit.packed(), r1.sender_hit.packed(), KEYMAT_BYTES,
        )
        assoc.keymat = keymat
        assoc.set_hmac_keys(out_key=keymat[:20], in_key=keymat[20:40])
        local_spi = self._alloc_spi()
        assoc.pending_update = {"local_spi": local_spi}
        # Build I2.
        i2 = self._new_packet(hp.I2, assoc.peer_hit)
        i2.add(hp.SOLUTION, hp.build_solution(k, opaque, puzzle_i, j))
        i2.add(hp.DIFFIE_HELLMAN, hp.build_dh(group_id, assoc.dh.public_bytes()))
        i2.add(hp.ESP_INFO, hp.build_esp_info(0, local_spi))
        i2.add(hp.HOST_ID, hp.build_host_id(self.identity.public_key_bytes))
        yield from self._charge("sym.hmac.i2", cm.hmac_cost(400))
        i2.add(
            hp.HMAC_PARAM,
            assoc.hmac_out.digest(i2.bytes_for_param(hp.HMAC_PARAM)),
        )
        yield from self._charge(
            "asym.sign.i2",
            asym_cost_for_host_id(self.identity.public_key_bytes, "sign", cm),
        )
        i2.add(hp.HIP_SIGNATURE, self.identity.sign(i2.bytes_for_param(hp.HIP_SIGNATURE), self.rng))
        self._transition(assoc, HipState.I2_SENT)
        assoc.peer_locator = ip.src
        self._send_control(i2, ip.src)
        self.sim.process(self._i2_retransmitter(assoc, i2), name="hip-i2-rtx")

    def _handle_r2(self, r2: hp.HipPacket, ip: IPHeader) -> Generator:
        assoc = self.assocs.get(r2.sender_hit)
        if assoc is None or assoc.state != HipState.I2_SENT:
            return
        cm = self.node.cost_model
        esp_data = r2.get(hp.ESP_INFO)
        hmac_data = r2.get(hp.HMAC_PARAM)
        sig_data = r2.get(hp.HIP_SIGNATURE)
        if None in (esp_data, hmac_data, sig_data):
            return
        yield from self._charge("sym.hmac.r2", cm.hmac_cost(120))
        expect = assoc.hmac_in.digest(r2.bytes_for_param(hp.HMAC_PARAM))
        if not ct_equal(expect, hmac_data):
            return
        yield from self._charge(
            "asym.verify.r2", asym_cost_for_host_id(assoc.peer_host_id, "verify", cm)
        )
        if not verify_with_host_id(
            assoc.peer_host_id, r2.bytes_for_param(hp.HIP_SIGNATURE), sig_data
        ):
            return
        _ki, _old, peer_spi = hp.parse_esp_info(esp_data)
        local_spi = assoc.pending_update["local_spi"]
        assoc.pending_update = None
        assoc.sa_out, assoc.sa_in = derive_sa_pair(
            assoc.keymat[_HIP_KEY_BYTES:], spi_out=peer_spi, spi_in=local_spi,
            local_hit=self.hit, peer_hit=assoc.peer_hit, is_initiator=True,
            mode=self.config.esp_mode, encrypt=self.config.esp_encrypt,
        )
        self._sa_in_by_spi[local_spi] = assoc
        self.node.dataplane_epoch += 1  # new SA pair: fluid flows must re-enter
        self._established(assoc)
        # Flush packets queued while the exchange ran.
        queued, assoc.queued = assoc.queued, []
        for packet, kind in queued:
            yield from self._protect_and_send(assoc, packet, kind)

    # ------------------------------------------------------------------- rekeying --
    def rekey(self, peer_hit: IPAddress) -> None:
        """Initiate an ESP rekey (RFC 5202 §6): fresh SPIs and keys, same HITs.

        UPDATE(ESP_INFO old->new SPI, SEQ) → peer installs its side and
        answers with its own ESP_INFO + ACK → we install ours.  New keys are
        expanded from the association's KEYMAT with a per-rekey counter, so
        no new Diffie-Hellman is needed (matching the RFC's keymat-index
        mechanism).
        """
        assoc = self.assocs.get(peer_hit)
        if assoc is None or not assoc.is_established:
            raise HipError(f"no established association with {peer_hit}")
        assert assoc.sa_in is not None
        new_spi = self._alloc_spi()
        assoc.pending_rekey = {"old_spi": assoc.sa_in.spi, "new_spi": new_spi,
                               "count": assoc.rekey_count + 1}
        assoc.update_id += 1
        pkt = self._new_packet(hp.UPDATE, peer_hit)
        pkt.add(hp.ESP_INFO, hp.build_esp_info(assoc.sa_in.spi, new_spi,
                                               keymat_index=assoc.rekey_count + 1))
        pkt.add(hp.SEQ, hp.build_seq(assoc.update_id))
        self._finalize_and_send(pkt, assoc, sign=True)

    def _rekey_keymat(self, assoc: Association, count: int) -> bytes:
        from repro.crypto.hmac_kdf import hkdf_expand

        return hkdf_expand(
            assoc.keymat[:32], b"esp-rekey" + bytes([count & 0xFF]), _ESP_KEY_BYTES,
        )

    def _install_rekeyed_sas(
        self, assoc: Association, count: int, local_spi: int, peer_spi: int
    ) -> None:
        old_spi = assoc.sa_in.spi if assoc.sa_in is not None else None
        keymat = self._rekey_keymat(assoc, count)
        assoc.sa_out, assoc.sa_in = derive_sa_pair(
            keymat, spi_out=peer_spi, spi_in=local_spi,
            local_hit=self.hit, peer_hit=assoc.peer_hit,
            is_initiator=(assoc.role == "initiator"),
            mode=self.config.esp_mode, encrypt=self.config.esp_encrypt,
        )
        assoc.rekey_count = count
        if old_spi is not None:
            self._sa_in_by_spi.pop(old_spi, None)
        self._sa_in_by_spi[local_spi] = assoc
        self.node.dataplane_epoch += 1  # rekey: force fluid flows back to packets

    # ------------------------------------------------------------------ mobility --
    def move_to(self, new_locator: IPAddress) -> None:
        """Announce a new preferred locator to every established peer.

        Implements the RFC 5206 readdress: UPDATE(LOCATOR, SEQ) →
        UPDATE(SEQ, ACK, ECHO_REQUEST) → UPDATE(ACK, ECHO_RESPONSE); data
        continues on the new path once the peer's nonce is echoed.
        """
        for assoc in self.assocs.values():
            if not assoc.is_established:
                continue
            assoc.update_id += 1
            pkt = self._new_packet(hp.UPDATE, assoc.peer_hit)
            pkt.add(hp.LOCATOR, hp.build_locator([(new_locator, 120.0)]))
            pkt.add(hp.SEQ, hp.build_seq(assoc.update_id))
            self._finalize_and_send(pkt, assoc, sign=True)

    def _finalize_and_send(self, pkt: hp.HipPacket, assoc: Association, sign: bool) -> None:
        """Attach HMAC (+ signature) and transmit on the association's locator."""
        pkt.add(
            hp.HMAC_PARAM,
            assoc.hmac_out.digest(pkt.bytes_for_param(hp.HMAC_PARAM)),
        )
        self.meter.charge("sym.hmac.ctl", self.node.cost_model.hmac_cost(150))
        if sign:
            self.meter.charge(
                "asym.sign.ctl",
                asym_cost_for_host_id(
                    self.identity.public_key_bytes, "sign", self.node.cost_model
                ),
            )
            pkt.add(
                hp.HIP_SIGNATURE,
                self.identity.sign(pkt.bytes_for_param(hp.HIP_SIGNATURE), self.rng),
            )
        self._send_control(pkt, assoc.peer_locator)

    def _verify_control(self, pkt: hp.HipPacket, assoc: Association) -> bool:
        hmac_data = pkt.get(hp.HMAC_PARAM)
        sig_data = pkt.get(hp.HIP_SIGNATURE)
        if hmac_data is None or sig_data is None:
            return False
        expect = assoc.hmac_in.digest(pkt.bytes_for_param(hp.HMAC_PARAM))
        if not ct_equal(expect, hmac_data):
            return False
        return verify_with_host_id(
            assoc.peer_host_id or b"", pkt.bytes_for_param(hp.HIP_SIGNATURE), sig_data
        ) or not assoc.peer_host_id  # responder may not have stored HI for updates

    def _handle_update(self, pkt: hp.HipPacket, ip: IPHeader) -> Generator:
        assoc = self.assocs.get(pkt.sender_hit)
        if assoc is None or not assoc.is_established:
            return
        cm = self.node.cost_model
        yield from self._charge("sym.hmac.update", cm.hmac_cost(150))
        hmac_data = pkt.get(hp.HMAC_PARAM)
        if hmac_data is None:
            return
        expect = assoc.hmac_in.digest(pkt.bytes_for_param(hp.HMAC_PARAM))
        if not ct_equal(expect, hmac_data):
            return

        locator_data = pkt.get(hp.LOCATOR)
        seq_data = pkt.get(hp.SEQ)
        ack_data = pkt.get(hp.ACK)
        echo_req = pkt.get(hp.ECHO_REQUEST_SIGNED)
        echo_resp = pkt.get(hp.ECHO_RESPONSE_SIGNED)
        esp_data = pkt.get(hp.ESP_INFO)

        if esp_data is not None and locator_data is None:
            yield from self._handle_rekey_update(pkt, assoc, esp_data,
                                                 seq_data, ack_data)
            return

        if locator_data is not None and seq_data is not None:
            # U1: peer moved.  Verify the new address with a nonce echo (U2).
            yield from self._charge(
                "asym.verify.update", asym_cost_for_host_id(assoc.peer_host_id, "verify", cm)
            )
            sig_data = pkt.get(hp.HIP_SIGNATURE)
            if sig_data is None or not verify_with_host_id(
                assoc.peer_host_id, pkt.bytes_for_param(hp.HIP_SIGNATURE), sig_data
            ):
                return
            locators = hp.parse_locator(locator_data)
            if not locators:
                return
            candidate = locators[0][0]
            nonce = self.rng.getrandbits(64).to_bytes(8, "big")
            assoc.pending_update = {"verify_addr": candidate, "nonce": nonce}
            assoc.update_id += 1
            reply = self._new_packet(hp.UPDATE, assoc.peer_hit)
            reply.add(hp.SEQ, hp.build_seq(assoc.update_id))
            reply.add(hp.ACK, hp.build_ack([hp.parse_seq(seq_data)]))
            reply.add(hp.ECHO_REQUEST_SIGNED, nonce)
            # Address verification: send to the *candidate* address.
            old_locator = assoc.peer_locator
            assoc.peer_locator = candidate
            self._finalize_and_send(reply, assoc, sign=True)
            assoc.peer_locator = old_locator  # committed only after the echo
            return

        if echo_req is not None and seq_data is not None:
            # U2: echo the nonce back (we are the mobile node).
            assoc.update_id += 1
            reply = self._new_packet(hp.UPDATE, assoc.peer_hit)
            reply.add(hp.ACK, hp.build_ack([hp.parse_seq(seq_data)]))
            reply.add(hp.ECHO_RESPONSE_SIGNED, echo_req)
            self._finalize_and_send(reply, assoc, sign=False)
            return

        if echo_resp is not None and assoc.pending_update:
            # U3: nonce verified — commit the new peer locator.
            pending = assoc.pending_update
            if pending.get("nonce") == echo_resp:
                assoc.peer_locator = pending["verify_addr"]
                self.hosts[assoc.peer_hit] = [pending["verify_addr"]]
                assoc.pending_update = None
            return

    def _handle_rekey_update(
        self, pkt: hp.HipPacket, assoc: Association,
        esp_data: bytes, seq_data: bytes | None, ack_data: bytes | None,
    ) -> Generator:
        cm = self.node.cost_model
        keymat_index, _peer_old, peer_new = hp.parse_esp_info(esp_data)
        if ack_data is not None and assoc.pending_rekey is not None:
            # Rekey response: the peer installed; now we do.
            pending = assoc.pending_rekey
            if keymat_index != pending["count"]:
                return
            yield from self._charge("sym.rekey", cm.hmac_cost(72))
            self._install_rekeyed_sas(
                assoc, pending["count"], pending["new_spi"], peer_new,
            )
            assoc.pending_rekey = None
            return
        if seq_data is None:
            return
        # Rekey request: verify the signature before replacing keys.
        sig_data = pkt.get(hp.HIP_SIGNATURE)
        yield from self._charge(
            "asym.verify.rekey", asym_cost_for_host_id(assoc.peer_host_id, "verify", cm)
        )
        if sig_data is None or not verify_with_host_id(
            assoc.peer_host_id, pkt.bytes_for_param(hp.HIP_SIGNATURE), sig_data
        ):
            return
        local_spi = self._alloc_spi()
        yield from self._charge("sym.rekey", cm.hmac_cost(72))
        self._install_rekeyed_sas(assoc, keymat_index, local_spi, peer_new)
        assoc.update_id += 1
        reply = self._new_packet(hp.UPDATE, assoc.peer_hit)
        reply.add(hp.ESP_INFO, hp.build_esp_info(0, local_spi,
                                                 keymat_index=keymat_index))
        reply.add(hp.ACK, hp.build_ack([hp.parse_seq(seq_data)]))
        self._finalize_and_send(reply, assoc, sign=False)

    # ------------------------------------------------------------------- teardown --
    def _handle_close(self, pkt: hp.HipPacket, ip: IPHeader) -> Generator:
        assoc = self.assocs.get(pkt.sender_hit)
        if assoc is None or assoc.state not in (HipState.ESTABLISHED, HipState.CLOSING):
            return
        yield from self._charge("sym.hmac.close", self.node.cost_model.hmac_cost(100))
        hmac_data = pkt.get(hp.HMAC_PARAM)
        if hmac_data is None:
            return
        expect = assoc.hmac_in.digest(pkt.bytes_for_param(hp.HMAC_PARAM))
        if not ct_equal(expect, hmac_data):
            return
        echo = pkt.get(hp.ECHO_REQUEST_SIGNED) or b""
        ack = self._new_packet(hp.CLOSE_ACK, assoc.peer_hit)
        ack.add(hp.ECHO_RESPONSE_SIGNED, echo)
        self._finalize_and_send(ack, assoc, sign=False)
        self._drop_assoc(assoc)

    def _handle_close_ack(self, pkt: hp.HipPacket, ip: IPHeader) -> Generator:
        assoc = self.assocs.get(pkt.sender_hit)
        if assoc is None or assoc.state != HipState.CLOSING:
            return
        yield from self._charge("sym.hmac.close", self.node.cost_model.hmac_cost(100))
        # RFC 5201 §6.15: the CLOSE_ACK HMAC must verify, and the echoed
        # nonce must match the one we sent in CLOSE — otherwise any on-path
        # host that saw the CLOSE could forge the teardown completion.
        hmac_data = pkt.get(hp.HMAC_PARAM)
        if hmac_data is None or not ct_equal(
            assoc.hmac_in.digest(pkt.bytes_for_param(hp.HMAC_PARAM)), hmac_data
        ):
            return
        echo = pkt.get(hp.ECHO_RESPONSE_SIGNED)
        if echo is None or not ct_equal(echo, assoc.close_nonce):
            return
        self._drop_assoc(assoc)

    def _drop_assoc(self, assoc: Association) -> None:
        self._transition(
            assoc, HipState.CLOSED,
            expect_from=(HipState.ESTABLISHED, HipState.CLOSING),
        )
        if assoc.sa_in is not None:
            self._sa_in_by_spi.pop(assoc.sa_in.spi, None)
        assoc.sa_in = assoc.sa_out = None
        self.node.dataplane_epoch += 1  # SA teardown disturbs any fluid flow

    # --------------------------------------------------------------------- helpers --
    def _alloc_spi(self) -> int:
        spi = self._spi_counter
        self._spi_counter += 1
        while self._spi_counter in self._sa_in_by_spi:
            self._spi_counter += 1
        return spi
