"""HIP rendezvous server (RFC 5204) with RFC 5203-style registration.

Mobile responders register their current locator with an RVS over an
authenticated HIP association (REG_REQUEST carried in a signed UPDATE);
initiators send I1 to the RVS, which relays it to the responder's registered
locator with a FROM parameter carrying the initiator's address.  The
responder answers R1 *directly* to the initiator (the daemon honours FROM),
and the rest of the exchange — and all data — bypasses the RVS.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Generator

from repro.crypto.hmac_kdf import ct_equal, hmac_digest
from repro.hip import packets as hp
from repro.hip.daemon import HipDaemon
from repro.net.addresses import IPAddress
from repro.net.packet import IPHeader

if TYPE_CHECKING:  # pragma: no cover
    pass

REGTYPE_RENDEZVOUS = 1


class RendezvousServer:
    """An RVS: a HIP daemon extended with registration + I1 relaying."""

    def __init__(self, daemon: HipDaemon) -> None:
        self.daemon = daemon
        self.node = daemon.node
        self.registrations: dict[IPAddress, IPAddress] = {}  # HIT -> locator
        self.relayed_i1 = 0
        self._hook_daemon()

    def _hook_daemon(self) -> None:
        original_i1 = self.daemon._handle_i1
        original_update = self.daemon._handle_update

        def handle_i1(i1: hp.HipPacket, ip: IPHeader) -> Generator:
            if i1.receiver_hit != self.daemon.hit:
                locator = self.registrations.get(i1.receiver_hit)
                if locator is not None:
                    relayed = hp.HipPacket(
                        packet_type=hp.I1,
                        sender_hit=i1.sender_hit,
                        receiver_hit=i1.receiver_hit,
                    )
                    relayed.add(
                        hp.FROM,
                        ip.src.value.to_bytes(16, "big") + struct.pack(">B", ip.src.family),
                    )
                    self.relayed_i1 += 1
                    yield from self.node.cpu_work(3e-6)
                    self.daemon._send_control(relayed, locator)
                return
            yield from original_i1(i1, ip)

        def handle_update(pkt: hp.HipPacket, ip: IPHeader) -> Generator:
            yield from original_update(pkt, ip)
            reg = pkt.get(hp.REG_REQUEST)
            if reg is None:
                return
            assoc = self.daemon.assocs.get(pkt.sender_hit)
            if assoc is None or not assoc.is_established:
                return
            # Registrations must be authenticated: re-check the packet HMAC.
            mac = pkt.get(hp.HMAC_PARAM)
            if mac is None:
                return
            expect = hmac_digest(
                assoc.hmac_key_in, pkt.bytes_for_param(hp.HMAC_PARAM), "sha1"
            )
            if not ct_equal(expect, mac):
                return
            if REGTYPE_RENDEZVOUS in list(reg):
                self.registrations[pkt.sender_hit] = ip.src
                response = self.daemon._new_packet(hp.NOTIFY, pkt.sender_hit)
                response.add(hp.REG_RESPONSE, bytes([REGTYPE_RENDEZVOUS]))
                self.daemon._finalize_and_send(response, assoc, sign=False)

        self.daemon._handle_i1 = handle_i1  # type: ignore[method-assign]
        self.daemon._handle_update = handle_update  # type: ignore[method-assign]

    def registered_locator(self, hit: IPAddress) -> IPAddress | None:
        return self.registrations.get(hit)

    def deregister(self, hit: IPAddress) -> None:
        self.registrations.pop(hit, None)


def register_with_rvs(
    daemon: HipDaemon, rvs_hit: IPAddress, rvs_locator: IPAddress, timeout: float = 30.0
) -> Generator:
    """Process-generator: authenticate to the RVS and register our locator.

    Returns the association with the RVS once REG_REQUEST has been sent.
    Peers wanting to reach us can then use ``add_peer(our_hit,
    [rvs_locator])`` and their I1s will be relayed.
    """
    daemon.add_peer(rvs_hit, [rvs_locator])
    assoc = yield from daemon.associate(rvs_hit, timeout=timeout)
    assoc.update_id += 1
    update = daemon._new_packet(hp.UPDATE, rvs_hit)
    update.add(hp.REG_REQUEST, bytes([REGTYPE_RENDEZVOUS]))
    update.add(hp.SEQ, hp.build_seq(assoc.update_id))
    daemon._finalize_and_send(update, assoc, sign=True)
    return assoc
