"""ESP data plane for HIP: BEET- and tunnel-mode security associations.

After a base exchange, each direction of an association has a
:class:`SecurityAssociation` holding an SPI, AES-128-CBC encryption key,
HMAC-SHA1 authentication key, sequence counter and a 64-entry anti-replay
window (RFC 4303 semantics).

**BEET mode** (RFC 5202's default, and the paper's): the inner IP header is
*not* transmitted — the HIT pair is bound to the SPI at SA creation, so the
wire carries only ESP fields + transport payload.  **Tunnel mode** carries
the full inner IP header, costing 20/40 extra bytes per packet; the
difference is exactly the bandwidth-efficiency claim of §II-B, quantified by
the ESP-mode ablation benchmark.

When the inner payload is real bytes the transform genuinely encrypts and
authenticates them (tamper tests flip ciphertext bits and watch decap fail);
virtual payloads take a cost-only fast path with identical size accounting.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.crypto.aes import AES
from repro.crypto.hmac_kdf import HmacKey, ct_equal
from repro.crypto.modes import cbc_decrypt, cbc_encrypt
from repro.metrics import METRICS
from repro.net.addresses import IPAddress
from repro.net.packet import (
    ESPHeader,
    Header,
    ICMPHeader,
    IPHeader,
    Packet,
    TCPHeader,
    UDPHeader,
    VirtualPayload,
)

ICV_LEN = 12  # HMAC-SHA1-96
IV_LEN = 16
REPLAY_WINDOW = 64

# Per-SA attributes keep the same tallies for local inspection; the global
# counters aggregate across every SA in the process for the metrics report.
_PROTECTED = METRICS.counter("esp.packets_protected")
_VERIFIED = METRICS.counter("esp.packets_verified")
_REPLAY_DROPS = METRICS.counter("esp.replay_drops")
_AUTH_FAILURES = METRICS.counter("esp.auth_failures")


class EspError(Exception):
    """Authentication failure, replay, or malformed ESP payload."""


class EspMode(enum.Enum):
    BEET = "beet"
    TUNNEL = "tunnel"


def canonical_header_bytes(header: Header) -> bytes:
    """Deterministic byte encoding of transport/IP headers for real encryption."""
    if isinstance(header, IPHeader):
        return (
            b"IP" + struct.pack(">BB", header.family, header.ttl)
            + header.src.packed() + header.dst.packed() + header.proto.encode()
        )
    if isinstance(header, TCPHeader):
        flag_bits = sum(
            1 << i for i, f in enumerate(("SYN", "ACK", "FIN", "RST")) if f in header.flags
        )
        return b"TC" + struct.pack(
            ">HHIIBI", header.src_port, header.dst_port, header.seq,
            header.ack, flag_bits, header.window,
        )
    if isinstance(header, UDPHeader):
        return b"UD" + struct.pack(">HH", header.src_port, header.dst_port)
    if isinstance(header, ICMPHeader):
        return b"IC" + header.kind.encode() + struct.pack(">HI", header.ident, header.seq)
    raise TypeError(f"no canonical encoding for {type(header).__name__}")


def canonical_packet_bytes(packet: Packet) -> bytes | None:
    """Byte-serialize a packet for encryption; None if payload is virtual."""
    if not isinstance(packet.payload, (bytes, bytearray)):
        return None
    out = struct.pack(">B", len(packet.headers))
    for header in packet.headers:
        encoded = canonical_header_bytes(header)
        out += struct.pack(">H", len(encoded)) + encoded
    return out + bytes(packet.payload)


@dataclass(frozen=True)
class EspCiphertext:
    """ESP payload: the protected inner packet.

    ``inner`` rides along for simulator delivery; ``ciphertext`` is the real
    AES-CBC output when the payload was real bytes (None on the virtual fast
    path).  ``wire_len`` is the encrypted-payload length contributing to the
    packet size (already including padding).
    """

    inner: Packet
    wire_len: int
    ciphertext: bytes | None = None
    icv: bytes | None = None
    iv: bytes | None = None

    def __len__(self) -> int:
        return self.wire_len


class SecurityAssociation:
    """One direction of an ESP association."""

    def __init__(
        self,
        spi: int,
        enc_key: bytes,
        auth_key: bytes,
        src_hit: IPAddress,
        dst_hit: IPAddress,
        mode: EspMode = EspMode.BEET,
        encrypt: bool = True,
    ) -> None:
        if len(enc_key) != 16:
            raise ValueError("ESP encryption key must be 16 bytes (AES-128)")
        if len(auth_key) != 20:
            raise ValueError("ESP auth key must be 20 bytes (HMAC-SHA1)")
        self.spi = spi
        self.enc_key = enc_key
        self.auth_key = auth_key
        self.src_hit = src_hit
        self.dst_hit = dst_hit
        self.mode = mode
        self.encrypt = encrypt
        self._aes = AES(enc_key)
        # Midstate-cached HMAC keys: the per-packet IV derivation and ICV
        # computation do zero key-schedule or pad work in steady state.
        self._iv_hmac = HmacKey(enc_key, "sha1")
        self._icv_hmac = HmacKey(auth_key, "sha1")
        self.seq = 0
        # Anti-replay: highest seq seen + bitmask of the window below it.
        self._replay_top = 0
        self._replay_mask = 0
        self.packets_protected = 0
        self.packets_verified = 0
        self.replay_drops = 0
        self.auth_failures = 0

    # -- outbound ---------------------------------------------------------------
    def protect(self, inner: Packet) -> tuple[ESPHeader, EspCiphertext]:
        """Protect ``inner``; returns (ESP header, ESP payload)."""
        self.seq += 1
        self.packets_protected += 1
        _PROTECTED.value += 1
        plain = self._plaintext_view(inner)
        real = canonical_packet_bytes(plain)
        # Pad plaintext + 2 trailer bytes to the AES block size.
        base_len = len(plain)
        pad_len = (-(base_len + 2)) % 16 if self.encrypt else 0
        header = ESPHeader(
            spi=self.spi, seq=self.seq,
            iv_len=IV_LEN if self.encrypt else 0,
            icv_len=ICV_LEN, pad_len=pad_len,
        )
        if real is not None and self.encrypt:
            iv = self._iv_hmac.digest(struct.pack(">IQ", self.spi, self.seq))[:16]
            ciphertext = cbc_encrypt(self._aes, iv, real)
            icv = self._icv_hmac.digest(
                struct.pack(">II", self.spi, self.seq) + iv + ciphertext
            )[:ICV_LEN]
            # Padding/IV/ICV are accounted in ESPHeader.header_len, so the
            # ciphertext contributes exactly the plaintext length.
            return header, EspCiphertext(
                inner=inner, wire_len=base_len,
                ciphertext=ciphertext, icv=icv, iv=iv,
            )
        return header, EspCiphertext(inner=inner, wire_len=base_len)

    def _plaintext_view(self, inner: Packet) -> Packet:
        """What actually goes on the wire: BEET strips the inner IP header."""
        if self.mode is EspMode.BEET and inner.headers and isinstance(inner.outer, IPHeader):
            _ip, transport = inner.popped()
            return transport
        return inner

    # -- inbound -----------------------------------------------------------------
    def verify(self, header: ESPHeader, payload: EspCiphertext) -> Packet:
        """Authenticate, decrypt and replay-check; returns the inner packet."""
        if header.spi != self.spi:
            raise EspError(f"SPI mismatch: packet {header.spi:#x}, SA {self.spi:#x}")
        self._check_replay(header.seq)
        if payload.ciphertext is not None:
            assert payload.iv is not None and payload.icv is not None
            expect_icv = self._icv_hmac.digest(
                struct.pack(">II", header.spi, header.seq) + payload.iv + payload.ciphertext
            )[:ICV_LEN]
            if not ct_equal(expect_icv, payload.icv):
                self.auth_failures += 1
                _AUTH_FAILURES.inc()
                raise EspError("ICV verification failed")
            try:
                plain = cbc_decrypt(self._aes, payload.iv, payload.ciphertext)
            except ValueError as exc:
                self.auth_failures += 1
                _AUTH_FAILURES.inc()
                raise EspError(f"decryption failed: {exc}") from exc
            reference = canonical_packet_bytes(self._plaintext_view(payload.inner))
            if plain != reference:
                self.auth_failures += 1
                _AUTH_FAILURES.inc()
                raise EspError("decrypted plaintext does not match inner packet")
        self._accept_replay(header.seq)
        self.packets_verified += 1
        _VERIFIED.value += 1
        return payload.inner

    def _check_replay(self, seq: int) -> None:
        if seq <= 0:
            raise EspError("non-positive ESP sequence number")
        if seq > self._replay_top:
            return
        offset = self._replay_top - seq
        if offset >= REPLAY_WINDOW:
            self.replay_drops += 1
            _REPLAY_DROPS.inc()
            raise EspError(f"sequence {seq} below replay window")
        if self._replay_mask & (1 << offset):
            self.replay_drops += 1
            _REPLAY_DROPS.inc()
            raise EspError(f"replayed sequence {seq}")

    def _accept_replay(self, seq: int) -> None:
        if seq > self._replay_top:
            shift = seq - self._replay_top
            self._replay_mask = ((self._replay_mask << shift) | 1) & ((1 << REPLAY_WINDOW) - 1)
            self._replay_top = seq
        else:
            self._replay_mask |= 1 << (self._replay_top - seq)

    def overhead_bytes(self, inner: Packet) -> int:
        """Per-packet wire overhead vs sending ``inner`` unprotected."""
        plain = self._plaintext_view(inner)
        pad_len = (-(len(plain) + 2)) % 16 if self.encrypt else 0
        esp = ESPHeader(spi=self.spi, seq=0, iv_len=IV_LEN if self.encrypt else 0,
                        icv_len=ICV_LEN, pad_len=pad_len)
        protected = esp.header_len + len(plain)
        return protected - len(inner)


def derive_sa_pair(
    keymat: bytes,
    spi_out: int,
    spi_in: int,
    local_hit: IPAddress,
    peer_hit: IPAddress,
    is_initiator: bool,
    mode: EspMode = EspMode.BEET,
    encrypt: bool = True,
) -> tuple[SecurityAssociation, SecurityAssociation]:
    """Split KEYMAT into the (outbound, inbound) SA pair.

    RFC 5202 draws initiator→responder keys first, then responder→initiator;
    both sides call this with their own role and get mirror-image keys.
    """
    if len(keymat) < 72:
        raise ValueError("KEYMAT too short: need 72 bytes for two AES+HMAC key sets")
    i2r_enc, i2r_auth = keymat[0:16], keymat[16:36]
    r2i_enc, r2i_auth = keymat[36:52], keymat[52:72]
    if is_initiator:
        out_keys, in_keys = (i2r_enc, i2r_auth), (r2i_enc, r2i_auth)
    else:
        out_keys, in_keys = (r2i_enc, r2i_auth), (i2r_enc, i2r_auth)
    outbound = SecurityAssociation(
        spi=spi_out, enc_key=out_keys[0], auth_key=out_keys[1],
        src_hit=local_hit, dst_hit=peer_hit, mode=mode, encrypt=encrypt,
    )
    inbound = SecurityAssociation(
        spi=spi_in, enc_key=in_keys[0], auth_key=in_keys[1],
        src_hit=peer_hit, dst_hit=local_hit, mode=mode, encrypt=encrypt,
    )
    return outbound, inbound
