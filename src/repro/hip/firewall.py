"""HIT-based access control.

Two deployments from the paper's §IV-A:

* **End-host firewall** (scenario I): ``hosts.allow`` / ``hosts.deny``
  semantics keyed on cryptographic HITs instead of spoofable IP addresses.
  The daemon consults it before answering I1/I2 (inbound) and before
  starting a base exchange (outbound).
* **Middlebox firewall** (scenario II): installed on a hypervisor or other
  forwarding node, it inspects HIP control traffic flowing *through* the
  box and only forwards ESP flows whose HIT pair completed an observed,
  policy-permitted base exchange — the "HIP-aware firewall" of [30].
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from repro.net.addresses import IPAddress
from repro.net.packet import ESPHeader, HIPHeader, IPHeader, Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node


class Verdict(enum.Enum):
    ALLOW = "allow"
    DENY = "deny"


class HipFirewall:
    """hosts.allow / hosts.deny policy over HITs.

    Matching follows the classic TCP-wrappers order: an entry in *allow*
    admits, else an entry in *deny* rejects, else the default applies.
    """

    def __init__(self, default: Verdict = Verdict.ALLOW) -> None:
        self.default = default
        self._allow: set[IPAddress] = set()
        self._deny: set[IPAddress] = set()
        self.denied_inbound = 0
        self.denied_outbound = 0

    def allow_hit(self, hit: IPAddress) -> None:
        self._allow.add(hit)
        self._deny.discard(hit)

    def deny_hit(self, hit: IPAddress) -> None:
        self._deny.add(hit)
        self._allow.discard(hit)

    def _verdict(self, hit: IPAddress) -> Verdict:
        if hit in self._allow:
            return Verdict.ALLOW
        if hit in self._deny:
            return Verdict.DENY
        return self.default

    def allow_inbound(self, peer_hit: IPAddress) -> bool:
        ok = self._verdict(peer_hit) is Verdict.ALLOW
        if not ok:
            self.denied_inbound += 1
        return ok

    def allow_outbound(self, peer_hit: IPAddress) -> bool:
        ok = self._verdict(peer_hit) is Verdict.ALLOW
        if not ok:
            self.denied_outbound += 1
        return ok


class MiddleboxFirewall:
    """HIP-aware firewall on a forwarding node (e.g. the hypervisor vswitch).

    Tracks base exchanges seen in transit: an I2 from HIT-I to HIT-R whose
    pair is policy-permitted opens a pinhole binding the ESP SPIs announced
    in I2/R2 (we bind locator pairs, since SPIs live inside the packets).
    ESP packets between locator pairs without an observed, permitted
    exchange are dropped.
    """

    def __init__(self, node: "Node", policy: HipFirewall | None = None) -> None:
        self.node = node
        self.policy = policy or HipFirewall()
        self._pinholes: set[frozenset] = set()
        self.dropped_esp = 0
        self.dropped_hip = 0
        self._install()

    def _install(self) -> None:
        original_forward = self.node._forward

        def forward(packet: Packet) -> None:
            if not self._permit(packet):
                return
            original_forward(packet)

        self.node._forward = forward  # type: ignore[method-assign]

    def _permit(self, packet: Packet) -> bool:
        ip = packet.outer
        if not isinstance(ip, IPHeader):
            return True
        if ip.proto == "hip":
            return self._permit_hip(packet, ip)
        if ip.proto == "esp":
            key = frozenset((ip.src, ip.dst))
            if key in self._pinholes:
                return True
            self.dropped_esp += 1
            return False
        return True

    def _permit_hip(self, packet: Packet, ip: IPHeader) -> bool:
        raw = packet.meta.get("hip_raw")
        if raw is None:
            self.dropped_hip += 1
            return False
        from repro.hip import packets as hp

        try:
            hip_pkt = hp.HipPacket.parse(raw)
        except hp.HipParseError:
            self.dropped_hip += 1
            return False
        if not (
            self.policy.allow_inbound(hip_pkt.sender_hit)
            and self.policy.allow_inbound(hip_pkt.receiver_hit)
        ):
            self.dropped_hip += 1
            return False
        if hip_pkt.packet_type == hp.R2:
            # Exchange completed through us: open the data-plane pinhole.
            self._pinholes.add(frozenset((ip.src, ip.dst)))
        return True
