"""UDP: connectionless datagram service with port demultiplexing.

Used directly by DNS, Teredo and the HIP-over-UDP NAT traversal path, and
indirectly by everything that runs over those.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.addresses import IPAddress
from repro.net.packet import Packet, Payload, UDPHeader
from repro.sim.resources import Queue

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Interface, Node


class UdpSocket:
    """A bound UDP socket: receive queue + sendto."""

    def __init__(self, stack: "UdpStack", port: int) -> None:
        self.stack = stack
        self.port = port
        self.rx = Queue(stack.node.sim, capacity=1024)
        self.closed = False

    def sendto(
        self,
        payload: Payload,
        dst: IPAddress,
        dst_port: int,
        src: IPAddress | None = None,
    ) -> bool:
        """Send one datagram; returns False if dropped before the first link."""
        if self.closed:
            raise RuntimeError("socket is closed")
        inner = Packet(headers=(UDPHeader(src_port=self.port, dst_port=dst_port),),
                       payload=payload)
        return self.stack.node.send_ip(dst, "udp", inner, src=src)

    def recvfrom(self):
        """Event yielding ``(payload, (src_addr, src_port))``."""
        return self.rx.get()

    def close(self) -> None:
        self.closed = True
        self.stack._unbind(self.port)


class UdpStack:
    """Per-node UDP engine; registers itself as the node's "udp" protocol."""

    def __init__(self, node: "Node") -> None:
        self.node = node
        self._sockets: dict[int, UdpSocket] = {}
        self._next_ephemeral = 49152
        node.register_protocol("udp", self._on_packet)
        self.rx_dropped = 0

    def bind(self, port: int = 0) -> UdpSocket:
        """Bind a socket; ``port=0`` picks an ephemeral port."""
        if port == 0:
            port = self._alloc_ephemeral()
        if port in self._sockets:
            raise OSError(f"UDP port {port} already bound on {self.node.name}")
        sock = UdpSocket(self, port)
        self._sockets[port] = sock
        return sock

    def _alloc_ephemeral(self) -> int:
        start = self._next_ephemeral
        while self._next_ephemeral in self._sockets:
            self._next_ephemeral += 1
            if self._next_ephemeral > 65535:
                self._next_ephemeral = 49152
            if self._next_ephemeral == start:
                raise OSError("out of ephemeral UDP ports")
        port = self._next_ephemeral
        self._next_ephemeral += 1
        if self._next_ephemeral > 65535:
            self._next_ephemeral = 49152
        return port

    def _unbind(self, port: int) -> None:
        self._sockets.pop(port, None)

    def _on_packet(self, node: "Node", packet: Packet, iface: "Interface | None") -> None:
        ip, inner = packet.popped()
        udp, body = inner.popped()
        assert isinstance(udp, UDPHeader)
        sock = self._sockets.get(udp.dst_port)
        if sock is None or sock.closed:
            self.rx_dropped += 1
            return
        if not sock.rx.try_put((body.payload, (ip.src, udp.src_port))):
            self.rx_dropped += 1
