"""Static routing with longest-prefix match.

Routes map a destination prefix to an egress interface (links are
point-to-point, so no ARP/next-hop resolution is needed: whatever is on the
other end of the interface's link receives the packet and either consumes or
forwards it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.net.addresses import IPAddress, Prefix

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Interface


@dataclass(frozen=True)
class Route:
    prefix: Prefix
    interface: "Interface"


class RouteTable:
    """Longest-prefix-match table, per address family."""

    def __init__(self) -> None:
        self._routes: dict[int, list[Route]] = {4: [], 6: []}
        # Memoized lookup results; lookup is deterministic for a fixed table,
        # so entries stay valid until add()/remove() clears them.  The
        # one-entry identity cache fronts the dict: parsed addresses are
        # interned, so bulk flows re-present the same object every packet
        # and skip even the dict hash.
        self._cache: dict[IPAddress, "Interface | None"] = {}
        self._hot_dst: IPAddress | None = None
        self._hot_iface: "Interface | None" = None

    def add(self, prefix: Prefix, interface: "Interface") -> None:
        family = prefix.network.family
        self._routes[family].append(Route(prefix, interface))
        # Keep sorted by descending length so lookup can stop at first hit.
        self._routes[family].sort(key=lambda r: -r.prefix.length)
        self._cache.clear()
        self._hot_dst = None

    def remove(self, prefix: Prefix, interface: "Interface | None" = None) -> int:
        """Remove routes matching ``prefix`` (and iface, if given); returns count."""
        family = prefix.network.family
        before = len(self._routes[family])
        self._routes[family] = [
            r for r in self._routes[family]
            if not (r.prefix == prefix and (interface is None or r.interface is interface))
        ]
        self._cache.clear()
        self._hot_dst = None
        return before - len(self._routes[family])

    def lookup(self, dst: IPAddress) -> "Interface | None":
        for route in self._routes[dst.family]:
            if route.prefix.contains(dst):
                return route.interface
        return None

    def lookup_cached(self, dst: IPAddress) -> "Interface | None":
        """Memoized longest-prefix match (the dataplane fast path).

        Same result as :meth:`lookup`; repeated queries for the same
        destination hit a dict that table mutations invalidate.
        """
        if dst is self._hot_dst:
            return self._hot_iface
        try:
            iface = self._cache[dst]
        except KeyError:
            iface = self.lookup(dst)
            self._cache[dst] = iface
        self._hot_dst = dst
        self._hot_iface = iface
        return iface

    def routes(self, family: int | None = None) -> list[Route]:
        if family is None:
            return self._routes[4] + self._routes[6]
        return list(self._routes[family])
