"""Static routing with longest-prefix match.

Routes map a destination prefix to an egress interface (links are
point-to-point, so no ARP/next-hop resolution is needed: whatever is on the
other end of the interface's link receives the packet and either consumes or
forwards it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.net.addresses import IPAddress, Prefix

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Interface


@dataclass(frozen=True)
class Route:
    prefix: Prefix
    interface: "Interface"


class RouteTable:
    """Longest-prefix-match table, per address family."""

    def __init__(self) -> None:
        self._routes: dict[int, list[Route]] = {4: [], 6: []}

    def add(self, prefix: Prefix, interface: "Interface") -> None:
        family = prefix.network.family
        self._routes[family].append(Route(prefix, interface))
        # Keep sorted by descending length so lookup can stop at first hit.
        self._routes[family].sort(key=lambda r: -r.prefix.length)

    def remove(self, prefix: Prefix, interface: "Interface | None" = None) -> int:
        """Remove routes matching ``prefix`` (and iface, if given); returns count."""
        family = prefix.network.family
        before = len(self._routes[family])
        self._routes[family] = [
            r for r in self._routes[family]
            if not (r.prefix == prefix and (interface is None or r.interface is interface))
        ]
        return before - len(self._routes[family])

    def lookup(self, dst: IPAddress) -> "Interface | None":
        for route in self._routes[dst.family]:
            if route.prefix.contains(dst):
                return route.interface
        return None

    def routes(self, family: int | None = None) -> list[Route]:
        if family is None:
            return self._routes[4] + self._routes[6]
        return list(self._routes[family])
