"""DNSSEC-style record signing and validation (§VII future work).

"In a production-scale environment, automated DNS support fortified with
DNSSEC support would appear useful."  This module adds exactly that on top
of :mod:`repro.net.dns`: a zone key signs every record's canonical bytes
(RRSIG's role), and a :class:`ValidatingResolver` configured with the zone's
public key (the trust anchor) rejects tampered or unsigned answers.

Signed records travel as ``(record, signature)`` pairs in an extended
response encoding; unaware resolvers ignore the signatures, mirroring how
DNSSEC deploys incrementally.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Generator

from repro.crypto.rsa import RsaKeyPair, RsaPublicKey
from repro.net.dns import DnsRecord, DnsResolver, Zone, encode_response

if TYPE_CHECKING:  # pragma: no cover
    pass


class DnssecError(Exception):
    """Validation failure: bogus or missing signature."""


def record_canonical_bytes(record: DnsRecord) -> bytes:
    """Canonical signing input for one record (RFC 4034's wire-form role)."""
    out = record.name.encode() + b"|" + record.rtype.encode()
    out += struct.pack(">f", record.ttl)
    if record.address is not None:
        out += bytes([record.address.family]) + record.address.packed()
    if record.hit is not None:
        out += record.hit.packed() + record.host_id
        for rvs in record.rvs:
            out += rvs.encode() + b";"
    return out


class SignedZone(Zone):
    """A zone whose records carry signatures from the zone key."""

    def __init__(self, keypair: RsaKeyPair) -> None:
        super().__init__()
        self.keypair = keypair
        self._signatures: dict[int, bytes] = {}  # id(record) -> signature

    @property
    def public_key(self) -> RsaPublicKey:
        return self.keypair.public

    def add(self, record: DnsRecord) -> None:
        super().add(record)
        self._signatures[id(record)] = self.keypair.sign(
            record_canonical_bytes(record)
        )

    def signature_for(self, record: DnsRecord) -> bytes | None:
        return self._signatures.get(id(record))


def encode_signed_response(zone: SignedZone, qid: int,
                           records: list[DnsRecord]) -> bytes:
    """Response encoding with an appended signature section."""
    base = encode_response(qid, records)
    sig_section = struct.pack(">H", len(records))
    for record in records:
        sig = zone.signature_for(record) or b""
        sig_section += struct.pack(">H", len(sig)) + sig
    return base + sig_section


def decode_signature_section(data: bytes, base_len: int) -> list[bytes]:
    if base_len >= len(data):
        return []
    off = base_len
    (count,) = struct.unpack_from(">H", data, off)
    off += 2
    sigs = []
    for _ in range(count):
        (n,) = struct.unpack_from(">H", data, off)
        off += 2
        sigs.append(data[off : off + n])
        off += n
    return sigs


class SignedDnsServer:
    """Authoritative server answering with signatures from a SignedZone."""

    def __init__(self, node, udp, zone: SignedZone) -> None:
        from repro.net.dns import DNS_PORT, decode_query

        self.node = node
        self.zone = zone
        self.queries_served = 0
        self._sock = udp.bind(DNS_PORT)
        self._decode_query = decode_query
        node.sim.process(self._serve(), name=f"dnssec-server-{node.name}")

    def _serve(self) -> Generator:
        while True:
            data, (src, src_port) = yield self._sock.recvfrom()
            try:
                qid, qname, qtype = self._decode_query(bytes(data))
            except (ValueError, struct.error):
                continue
            # Signing happened at zone-load time; answering adds only the
            # usual lookup cost.
            yield from self.node.cpu_work(25e-6)
            answers = self.zone.lookup(qname, qtype)
            self.queries_served += 1
            self._sock.sendto(
                encode_signed_response(self.zone, qid, answers), src, src_port
            )


class ValidatingResolver(DnsResolver):
    """Resolver that verifies every record against the trust anchor.

    Returns only validated records; raises :class:`DnssecError` when an
    answer carries a missing or bogus signature (the DNSSEC "bogus" state —
    fail closed rather than use unauthenticated data).
    """

    def __init__(self, node, udp, server_addr, trust_anchor: RsaPublicKey) -> None:
        super().__init__(node, udp, server_addr)
        self.trust_anchor = trust_anchor
        self.validated = 0
        self.rejected = 0

    def query(self, qname: str, qtype: str, timeout: float = 2.0,
              retries: int = 2) -> Generator:
        from repro.net.dns import DNS_PORT, decode_response, encode_query
        from repro.sim.events import AnyOf

        sim = self.node.sim
        cached = self._cache.get((qname, qtype))
        if cached is not None and sim.now < cached[0]:
            return cached[1]
        sock = self.udp.bind(0)
        try:
            for _attempt in range(retries + 1):
                qid = self._next_id
                self._next_id += 1
                sock.sendto(encode_query(qname, qtype, qid),
                            self.server_addr, DNS_PORT)
                reply = sock.recvfrom()
                deadline = sim.timeout(timeout)
                winner, value = yield AnyOf(sim, [reply, deadline])
                if winner is not reply:
                    continue
                data, _src = value
                data = bytes(data)
                rid, records = decode_response(data)
                if rid != qid:
                    continue
                base_len = len(encode_response(rid, records))
                sigs = decode_signature_section(data, base_len)
                self._validate(records, sigs)
                if records:
                    ttl = min(r.ttl for r in records)
                    self._cache[(qname, qtype)] = (sim.now + ttl, records)
                return records
            raise TimeoutError(f"DNS query {qname}/{qtype} timed out")
        finally:
            sock.close()

    def _validate(self, records: list[DnsRecord], sigs: list[bytes]) -> None:
        if len(sigs) < len(records):
            self.rejected += 1
            raise DnssecError("answer is missing signatures")
        for record, sig in zip(records, sigs):
            if not self.trust_anchor.verify(record_canonical_bytes(record), sig):
                self.rejected += 1
                raise DnssecError(f"bogus signature for {record.name}/{record.rtype}")
            self.validated += 1
