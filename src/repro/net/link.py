"""Point-to-point links with bandwidth, propagation delay and drop-tail queues.

Each direction of a link has its own transmitter process: packets wait in a
bounded FIFO, are serialized at the link rate (``size_bytes * 8 / bandwidth``)
and arrive at the far end after the propagation delay.  This is the standard
store-and-forward model; with TCP on top it yields the familiar
``min(C, cwnd/RTT)`` throughput behaviour that the iperf experiments rely on.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import TYPE_CHECKING, Callable

from repro.metrics import METRICS, RECORDER
from repro.sim.engine import _KIND_CALL
from repro.sim.resources import Queue

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Interface
    from repro.net.packet import Packet
    from repro.sim.engine import Simulator

_TX_PACKETS = METRICS.counter("link.tx_packets")
_TX_BYTES = METRICS.counter("link.tx_bytes")
_LOST = METRICS.counter("link.lost_packets")
_QUEUE_DROPS = METRICS.counter("link.queue_drops")
_ECN_MARKS = METRICS.counter("link.ecn_marks")

#: Opt-in wire sanitizer taps.  Each callable observes every packet as it
#: enters a link queue (before any drop decision) and raises on a protocol
#: violation.  Empty in production runs — the runtime wire sanitizer in
#: :mod:`repro.analysis.wire` registers itself here from a pytest fixture.
WIRE_TAPS: list[Callable[["Packet"], None]] = []


class LinkLedger:
    """Per-simulator link accounting, owned by the Simulator that the links
    belong to (``sim.services["link.ledger"]``).

    A plain simulator's ledger *publishes*: every addition writes through to
    the process-wide ``METRICS`` counters immediately, preserving the
    established observability contract.  A shard's simulator instead gets a
    non-publishing ledger (see :class:`repro.sim.shard.Shard`): the shard
    accumulates locally and the coordinator collects :meth:`take_delta` at
    every sync window, folding it into the global counters in the parent
    process via :func:`publish_link_delta`.  That is what makes the totals
    identical between inline and fork-per-shard workers — a forked child's
    writes to process globals would otherwise die with the child.
    """

    FIELDS = ("tx_packets", "tx_bytes", "lost_packets", "queue_drops", "ecn_marks")

    __slots__ = FIELDS + ("publish", "_taken")

    def __init__(self, publish: bool = True) -> None:
        self.publish = publish
        self.tx_packets = 0
        self.tx_bytes = 0
        self.lost_packets = 0
        self.queue_drops = 0
        self.ecn_marks = 0
        self._taken = (0, 0, 0, 0, 0)

    def add_tx(self, packets: int, n_bytes: int) -> None:
        self.tx_packets += packets
        self.tx_bytes += n_bytes
        if self.publish:
            _TX_PACKETS.value += packets
            _TX_BYTES.value += n_bytes

    def add_lost(self) -> None:
        self.lost_packets += 1
        if self.publish:
            _LOST.value += 1

    def add_queue_drop(self) -> None:
        self.queue_drops += 1
        if self.publish:
            _QUEUE_DROPS.value += 1

    def add_ecn_mark(self) -> None:
        self.ecn_marks += 1
        if self.publish:
            _ECN_MARKS.value += 1

    def take_delta(self) -> tuple[int, int, int, int, int]:
        """Counts accumulated since the last take (picklable, cheap)."""
        now = (
            self.tx_packets,
            self.tx_bytes,
            self.lost_packets,
            self.queue_drops,
            self.ecn_marks,
        )
        taken = self._taken
        self._taken = now
        return tuple(a - b for a, b in zip(now, taken))


def ledger_of(sim: "Simulator") -> LinkLedger:
    """The simulator's link ledger (get-or-create; publishing by default)."""
    ledger = sim.services.get("link.ledger")
    if ledger is None:
        ledger = sim.services["link.ledger"] = LinkLedger()
    return ledger


def publish_link_delta(delta: tuple[int, int, int, int, int]) -> None:
    """Fold a shard ledger delta into the process-global METRICS counters."""
    _TX_PACKETS.value += delta[0]
    _TX_BYTES.value += delta[1]
    _LOST.value += delta[2]
    _QUEUE_DROPS.value += delta[3]
    _ECN_MARKS.value += delta[4]


#: Flush batched per-endpoint tallies into the global counters at most this
#: many packets apart while a burst is in flight (idle links always flush).
_FLUSH_EVERY = 64


class LinkEndpoint:
    """One direction of a link: egress queue + serializer.

    On the engine fast path the serializer is a callback-lane state machine:
    transmit-complete and propagation-delivery are raw ``call_later`` timers
    (FIFO per direction guaranteed by the heap's sequence tie-break), and
    the global metrics counters are fed from batched per-endpoint tallies.
    On the reference path it is the classic pair of generator processes.
    """

    def __init__(
        self,
        sim: "Simulator",
        bandwidth_bps: float,
        delay_s: float,
        queue_packets: int,
        loss_rate: float = 0.0,
        loss_rng=None,
        ecn_threshold: int | None = None,
        loss_burst: int = 1,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if delay_s < 0:
            raise ValueError("negative propagation delay")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        if loss_rate > 0.0 and loss_rng is None:
            raise ValueError("loss_rate needs a loss_rng stream")
        if ecn_threshold is not None and ecn_threshold <= 0:
            raise ValueError("ecn_threshold must be positive")
        if loss_burst < 1:
            raise ValueError("loss_burst must be >= 1")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        #: ``loss_rate`` is the *average* packet-loss rate.  With
        #: ``loss_burst > 1`` losses arrive in runs of that length (as
        #: drop-tail queues actually lose packets); the trigger probability
        #: is scaled by ``1/loss_burst`` so the average rate stays put.
        self.loss_rate = loss_rate
        self.loss_rng = loss_rng
        self.loss_burst = loss_burst
        self._loss_run = 0
        #: RED-style deterministic marking: a packet enqueued while the
        #: egress queue already holds >= ``ecn_threshold`` packets gets its
        #: CE (congestion experienced) bit set instead of waiting for a
        #: drop-tail loss.  Carried as ``packet.meta["ce"]`` (a simulation
        #: annotation, like a real router rewriting the ECN codepoint).
        self.ecn_threshold = ecn_threshold
        self.ecn_marks = 0
        self.queue = Queue(sim, capacity=queue_packets)
        self.peer: "Interface | None" = None
        # All global-counter traffic goes through the simulator's ledger so
        # shard simulators can keep accounting local (see LinkLedger).
        self._ledger = ledger_of(sim)
        self.tx_packets = 0
        self.tx_bytes = 0
        self.lost_packets = 0
        self._fast = sim.fast_path
        if self._fast:
            self._tx_busy = False
            self._tx_current: "Packet | None" = None
            self._tx_size = 0
            self._tx_timer = None  # serializer TimerHandle, rearmed per packet
            # The fast lane owns the egress queue exclusively (no process
            # ever parks a getter on it), so enqueue/dequeue touch the
            # backing deque directly.
            self._q_items = self.queue._items
            self._q_cap = self.queue.capacity
            # Ring of delivery TimerHandles owned exclusively by this
            # endpoint.  Deliveries are FIFO (fixed delay), so once the
            # oldest handle has fired it can be rearmed for a new packet
            # instead of allocating a fresh handle.
            self._deliver_ring: deque = deque()
            self._unflushed_pkts = 0
            self._unflushed_bytes = 0
            # One bound method each, created once and reused for every
            # packet — the callback lane then allocates only heap tuples
            # and TimerHandles.
            self._tx_done_cb = self._tx_done
            self._deliver_cb = self._deliver_packet
        else:
            sim.process(self._transmitter(), name="link-tx")

    def send(self, packet: "Packet") -> bool:
        """Enqueue for transmission; returns False if the queue dropped it."""
        if WIRE_TAPS:
            for tap in WIRE_TAPS:
                tap(packet)
        if self._fast:
            if self._tx_busy:
                items = self._q_items
                if self._q_cap is not None and len(items) >= self._q_cap:
                    self.queue.dropped += 1
                    ok = False
                else:
                    if (
                        self.ecn_threshold is not None
                        and len(items) >= self.ecn_threshold
                    ):
                        self._mark_ce(packet)
                    items.append(packet)
                    ok = True
            else:
                # Idle link: the packet goes straight to the serializer
                # (mirroring the reference path, where a parked getter takes
                # it without occupying queue capacity).
                self._tx_busy = True
                self._start_tx(packet)
                ok = True
        else:
            if (
                self.ecn_threshold is not None
                and len(self.queue) >= self.ecn_threshold
                and not self.queue.is_full
            ):
                self._mark_ce(packet)
            ok = self.queue.try_put(packet)
        if not ok:
            self._ledger.add_queue_drop()
            if RECORDER.enabled:
                RECORDER.record(
                    self.sim.now, "link", "queue_drop", bytes=packet.size_bytes,
                )
        return ok

    def _lose(self) -> bool:
        """Loss decision for one transmitted packet (only called when lossy)."""
        if self._loss_run:
            self._loss_run -= 1
            return True
        if self.loss_rng.random() < self.loss_rate / self.loss_burst:
            self._loss_run = self.loss_burst - 1
            return True
        return False

    def _mark_ce(self, packet: "Packet") -> None:
        packet.meta["ce"] = True
        self.ecn_marks += 1
        self._ledger.add_ecn_mark()
        if RECORDER.enabled:
            RECORDER.record(self.sim.now, "link", "ecn_mark")

    # -- fast path: callback-lane serializer ----------------------------------
    def _start_tx(self, packet: "Packet") -> None:
        self._tx_current = packet
        # Inline ``size_bytes``: this is the only hot-path consumer and the
        # measured size is reused for counters and the delivery callback.
        size = len(packet.payload)
        for header in packet.headers:
            size += header.header_len
        self._tx_size = size
        timer = self._tx_timer
        if timer is None:
            # repro: ignore[LIF001] -- serializer timer is rearmed for the link's lifetime; firing after idle is a no-op and links live as long as their sim
            self._tx_timer = self.sim.call_later(
                size * 8.0 / self.bandwidth_bps, self._tx_done_cb
            )
        else:
            # The serializer handles one packet at a time, so its timer is
            # never pending here — rearm the same handle instead of
            # allocating a fresh one per packet.  ``TimerHandle.rearm``
            # inlined (serialize time is always >= 0, so no validation):
            sim = self.sim
            # repro: ignore[ISO002] -- benchmarked fast-path inlining of TimerHandle.rearm on this link's own simulator (PR 5), not cross-shard state
            sim._seq += 1
            seq = sim._seq
            timer._when = when = sim._now + size * 8.0 / self.bandwidth_bps
            timer._entry_seq = seq
            heappush(sim._heap, (when, seq, _KIND_CALL, timer))

    def _tx_done(self) -> None:
        size = self._tx_size
        packet = self._tx_current
        self.tx_packets += 1
        self.tx_bytes += size
        self._unflushed_pkts += 1
        self._unflushed_bytes += size
        if RECORDER.enabled:
            RECORDER.record(self.sim.now, "link", "tx", bytes=size)
        if self.loss_rate and self._lose():
            self.lost_packets += 1
            self._ledger.add_lost()
            if RECORDER.enabled:
                RECORDER.record(self.sim.now, "link", "loss", bytes=size)
        else:
            # Propagation: deliver after the delay; the serializer moves on.
            # The measured size rides along so the receiving interface does
            # not recompute the ``size_bytes`` property.
            ring = self._deliver_ring
            if ring and ring[0]._entry_seq < 0:
                handle = ring.popleft()
                handle._arg = (packet, size)
                # Inlined ``TimerHandle.rearm`` (delay_s validated >= 0 at
                # construction).
                sim = self.sim
                # repro: ignore[ISO002] -- benchmarked fast-path inlining of TimerHandle.rearm on this link's own simulator (PR 5), not cross-shard state
                sim._seq += 1
                seq = sim._seq
                handle._when = when = sim._now + self.delay_s
                handle._entry_seq = seq
                heappush(sim._heap, (when, seq, _KIND_CALL, handle))
            else:
                handle = self.sim.call_later(
                    self.delay_s, self._deliver_cb, (packet, size)
                )
            ring.append(handle)
        items = self._q_items
        if items:
            if self._unflushed_pkts >= _FLUSH_EVERY:
                self.flush_stats()
            self._start_tx(items.popleft())
        else:
            self._tx_busy = False
            self._tx_current = None
            self.flush_stats()

    def _deliver_packet(self, item: "tuple[Packet, int]") -> None:
        peer = self.peer
        if peer is not None:
            # Inlined Interface.receive: the serializer already measured the
            # packet, so the size rides along instead of being recomputed
            # from the ``size_bytes`` property.
            packet, size = item
            peer.rx_packets += 1
            peer.rx_bytes += size
            peer.node._on_receive(packet, peer)

    def flush_stats(self) -> None:
        """Fold batched per-endpoint tallies into the simulator's ledger."""
        if self._unflushed_pkts:
            self._ledger.add_tx(self._unflushed_pkts, self._unflushed_bytes)
            self._unflushed_pkts = 0
            self._unflushed_bytes = 0

    def account_fluid(self, n_bytes: int, n_segments: int) -> None:
        """Charge a fluid fast-forwarded transfer to this endpoint's tallies.

        TCP fluid mode advances bulk flows without emitting packets; the
        sender's first-hop endpoint still books the payload bytes and segment
        count so link utilization totals remain comparable with per-packet
        runs (queueing and per-hop timing are intentionally not modeled —
        fluid entry requires an uncongested steady state).
        """
        self.tx_packets += n_segments
        self.tx_bytes += n_bytes
        self._ledger.add_tx(n_segments, n_bytes)

    # -- reference path: serializer + delivery processes ----------------------
    def _transmitter(self):
        while True:
            packet = yield self.queue.get()
            size = packet.size_bytes  # computed property — read it once
            serialize = size * 8.0 / self.bandwidth_bps
            yield self.sim.timeout(serialize)
            self.tx_packets += 1
            self.tx_bytes += size
            self._ledger.add_tx(1, size)
            if RECORDER.enabled:
                RECORDER.record(self.sim.now, "link", "tx", bytes=size)
            if self.loss_rate and self._lose():
                self.lost_packets += 1
                self._ledger.add_lost()
                if RECORDER.enabled:
                    RECORDER.record(self.sim.now, "link", "loss", bytes=size)
                continue
            # Propagation: deliver after delay without blocking the serializer.
            self.sim.process(self._deliver(packet), name="link-prop")

    def _deliver(self, packet: "Packet"):
        yield self.sim.timeout(self.delay_s)
        if self.peer is not None:
            self.peer.receive(packet)


class Link:
    """Full-duplex link between two interfaces.

    Attach with :meth:`connect`; per-direction parameters are symmetric by
    default but each endpoint can be tuned afterwards (e.g. asymmetric
    bandwidth).
    """

    def __init__(
        self,
        sim: "Simulator",
        bandwidth_bps: float = 1e9,
        delay_s: float = 100e-6,
        queue_packets: int = 256,
        loss_rate: float = 0.0,
        loss_rng=None,
        name: str = "",
        ecn_threshold: int | None = None,
        loss_burst: int = 1,
    ) -> None:
        self.sim = sim
        self.name = name
        self.a_to_b = LinkEndpoint(sim, bandwidth_bps, delay_s, queue_packets,
                                   loss_rate, loss_rng, ecn_threshold, loss_burst)
        self.b_to_a = LinkEndpoint(sim, bandwidth_bps, delay_s, queue_packets,
                                   loss_rate, loss_rng, ecn_threshold, loss_burst)

    def connect(self, iface_a: "Interface", iface_b: "Interface") -> None:
        """Wire the two interfaces to each other through this link."""
        self.a_to_b.peer = iface_b
        self.b_to_a.peer = iface_a
        iface_a.attach(self.a_to_b)
        iface_b.attach(self.b_to_a)

    @property
    def total_bytes(self) -> int:
        return self.a_to_b.tx_bytes + self.b_to_a.tx_bytes
