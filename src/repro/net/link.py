"""Point-to-point links with bandwidth, propagation delay and drop-tail queues.

Each direction of a link has its own transmitter process: packets wait in a
bounded FIFO, are serialized at the link rate (``size_bytes * 8 / bandwidth``)
and arrive at the far end after the propagation delay.  This is the standard
store-and-forward model; with TCP on top it yields the familiar
``min(C, cwnd/RTT)`` throughput behaviour that the iperf experiments rely on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.metrics import METRICS, RECORDER
from repro.sim.resources import Queue

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Interface
    from repro.net.packet import Packet
    from repro.sim.engine import Simulator

_TX_PACKETS = METRICS.counter("link.tx_packets")
_TX_BYTES = METRICS.counter("link.tx_bytes")
_LOST = METRICS.counter("link.lost_packets")
_QUEUE_DROPS = METRICS.counter("link.queue_drops")

#: Opt-in wire sanitizer taps.  Each callable observes every packet as it
#: enters a link queue (before any drop decision) and raises on a protocol
#: violation.  Empty in production runs — the runtime wire sanitizer in
#: :mod:`repro.analysis.wire` registers itself here from a pytest fixture.
WIRE_TAPS: list[Callable[["Packet"], None]] = []


class LinkEndpoint:
    """One direction of a link: egress queue + serializer process."""

    def __init__(
        self,
        sim: "Simulator",
        bandwidth_bps: float,
        delay_s: float,
        queue_packets: int,
        loss_rate: float = 0.0,
        loss_rng=None,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if delay_s < 0:
            raise ValueError("negative propagation delay")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        if loss_rate > 0.0 and loss_rng is None:
            raise ValueError("loss_rate needs a loss_rng stream")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self.loss_rate = loss_rate
        self.loss_rng = loss_rng
        self.queue = Queue(sim, capacity=queue_packets)
        self.peer: "Interface | None" = None
        self.tx_packets = 0
        self.tx_bytes = 0
        self.lost_packets = 0
        sim.process(self._transmitter(), name="link-tx")

    def send(self, packet: "Packet") -> bool:
        """Enqueue for transmission; returns False if the queue dropped it."""
        for tap in WIRE_TAPS:
            tap(packet)
        ok = self.queue.try_put(packet)
        if not ok:
            _QUEUE_DROPS.inc()
            if RECORDER.enabled:
                RECORDER.record(
                    self.sim.now, "link", "queue_drop", bytes=packet.size_bytes,
                )
        return ok

    def _transmitter(self):
        while True:
            packet = yield self.queue.get()
            size = packet.size_bytes  # computed property — read it once
            serialize = size * 8.0 / self.bandwidth_bps
            yield self.sim.timeout(serialize)
            self.tx_packets += 1
            self.tx_bytes += size
            _TX_PACKETS.value += 1
            _TX_BYTES.value += size
            if RECORDER.enabled:
                RECORDER.record(self.sim.now, "link", "tx", bytes=size)
            if self.loss_rate and self.loss_rng.random() < self.loss_rate:
                self.lost_packets += 1
                _LOST.inc()
                if RECORDER.enabled:
                    RECORDER.record(self.sim.now, "link", "loss", bytes=size)
                continue
            # Propagation: deliver after delay without blocking the serializer.
            self.sim.process(self._deliver(packet), name="link-prop")

    def _deliver(self, packet: "Packet"):
        yield self.sim.timeout(self.delay_s)
        if self.peer is not None:
            self.peer.receive(packet)


class Link:
    """Full-duplex link between two interfaces.

    Attach with :meth:`connect`; per-direction parameters are symmetric by
    default but each endpoint can be tuned afterwards (e.g. asymmetric
    bandwidth).
    """

    def __init__(
        self,
        sim: "Simulator",
        bandwidth_bps: float = 1e9,
        delay_s: float = 100e-6,
        queue_packets: int = 256,
        loss_rate: float = 0.0,
        loss_rng=None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.name = name
        self.a_to_b = LinkEndpoint(sim, bandwidth_bps, delay_s, queue_packets, loss_rate, loss_rng)
        self.b_to_a = LinkEndpoint(sim, bandwidth_bps, delay_s, queue_packets, loss_rate, loss_rng)

    def connect(self, iface_a: "Interface", iface_b: "Interface") -> None:
        """Wire the two interfaces to each other through this link."""
        self.a_to_b.peer = iface_b
        self.b_to_a.peer = iface_a
        iface_a.attach(self.a_to_b)
        iface_b.attach(self.b_to_a)

    @property
    def total_bytes(self) -> int:
        return self.a_to_b.tx_bytes + self.b_to_a.tx_bytes
