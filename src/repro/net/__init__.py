"""Packet-level network substrate on the discrete-event engine.

Implements everything the experiments need below the HIP/TLS layers:
IPv4/IPv6 addressing, links with bandwidth/latency/queues, nodes with
interfaces and protocol dispatch, static routing, NAT, UDP, a simplified
TCP Reno, ICMP echo, DNS (with HIP resource records) and Teredo tunneling.
"""

from repro.net.addresses import (
    IPAddress,
    Prefix,
    ipv4,
    ipv6,
    is_hit,
    is_lsi,
)
from repro.net.link import Link
from repro.net.node import Interface, Node
from repro.net.packet import Packet, VirtualPayload

__all__ = [
    "IPAddress",
    "Interface",
    "Link",
    "Node",
    "Packet",
    "Prefix",
    "VirtualPayload",
    "ipv4",
    "ipv6",
    "is_hit",
    "is_lsi",
]
