"""Network nodes: interfaces, protocol dispatch, forwarding, and a CPU model.

A :class:`Node` is anything with a network presence — a VM, a physical
router, a NAT box, the load balancer.  Protocol engines (UDP, TCP, ICMP,
ESP, HIP) register handlers for their IP protocol string; *output shims* let
the HIP daemon intercept locally-originated packets addressed to HITs/LSIs
before routing (that is exactly where HIPL's LD_PRELOAD/iptables hook sits
in the real stack).

The CPU model is deliberately simple and explicit: a node has ``cpu_cores``
worker slots and a ``cpu_scale`` multiplier (an EC2 micro instance gets
``cpu_scale > 1`` — the same work takes longer than on the reference core).
All protocol and application work passes through :meth:`Node.cpu_work`, so
CPU contention at high concurrency emerges naturally — which is what bends
the throughput curves in Figure 2.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator

from repro.crypto.costmodel import CostModel
from repro.net.addresses import IPAddress
from repro.net.packet import IPHeader, Packet
from repro.net.routing import RouteTable
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import LinkEndpoint
    from repro.sim.engine import Simulator

ProtocolHandler = Callable[["Node", Packet, "Interface"], None]
OutputShim = Callable[["Node", Packet], "Packet | None"]


class Interface:
    """A network interface: a set of addresses and an attachment to a link."""

    def __init__(self, node: "Node", name: str) -> None:
        self.node = node
        self.name = name
        self.addresses: list[IPAddress] = []
        self._endpoint: "LinkEndpoint | None" = None
        self.rx_packets = 0
        self.rx_bytes = 0

    def add_address(self, addr: IPAddress) -> None:
        if addr not in self.addresses:
            self.addresses.append(addr)
            self.node._addr_cache = None
            self.node._addr_hit = None

    def remove_address(self, addr: IPAddress) -> None:
        self.addresses.remove(addr)
        self.node._addr_cache = None
        self.node._addr_hit = None

    def attach(self, endpoint: "LinkEndpoint") -> None:
        if self._endpoint is not None:
            raise RuntimeError(f"interface {self.name} already attached to a link")
        self._endpoint = endpoint

    @property
    def is_attached(self) -> bool:
        return self._endpoint is not None

    def send(self, packet: Packet) -> bool:
        if self._endpoint is None:
            raise RuntimeError(f"interface {self.name} is not attached to a link")
        return self._endpoint.send(packet)

    def receive(self, packet: Packet) -> None:
        self.rx_packets += 1
        self.rx_bytes += packet.size_bytes
        self.node._on_receive(packet, self)


    def __repr__(self) -> str:  # pragma: no cover
        return f"<Interface {self.node.name}.{self.name} {self.addresses}>"


class Node:
    """A host, router or middlebox in the simulated network."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        cpu_cores: int = 1,
        cpu_scale: float = 1.0,
        cost_model: CostModel | None = None,
        forwarding: bool = False,
    ) -> None:
        if cpu_scale <= 0:
            raise ValueError("cpu_scale must be positive")
        self.sim = sim
        self.name = name
        self.cpu_scale = cpu_scale
        self.cost_model = cost_model or CostModel()
        self.forwarding = forwarding
        self._fast = sim.fast_path
        self._addr_cache: frozenset[IPAddress] | None = None
        # One-entry identity caches for the dataplane fast path.  Parsed
        # addresses are interned (lru_cache in repro.net.addresses) and a
        # connection reuses the same address objects for every packet, so an
        # ``is`` check replaces a hashed set lookup almost every time.
        self._addr_hit: IPAddress | None = None  # last address confirmed local
        self._ip_hdr_cache: IPHeader | None = None  # last header built by send_ip
        self.interfaces: list[Interface] = []
        self.routes = RouteTable()
        self._protocol_handlers: dict[str, ProtocolHandler] = {}
        self._output_shims: list[OutputShim] = []
        self.cpu = Resource(sim, cpu_cores)
        self.dropped_no_route = 0
        self.dropped_no_handler = 0
        self.dropped_ttl = 0
        self.cpu_busy_seconds = 0.0
        #: Dataplane taxers for TCP fluid fast-forward: when a bulk flow on
        #: this node advances as a closed-form rate integral instead of
        #: per-packet events, each taxer ``(peer_addr, n_bytes, n_segments,
        #: direction)`` charges whatever per-byte cost its subsystem would
        #: have charged packet-by-packet (ESP encrypt/decrypt, TLS records).
        self.fluid_taxers: list[Callable[[IPAddress, int, int, str], None]] = []
        #: Bumped whenever the node's secure dataplane changes shape (SA
        #: install, rekey, VPN tunnel (re)establishment).  Fluid-mode flows
        #: snapshot it at entry and fall back to packet mode when it moves.
        self.dataplane_epoch = 0

    # -- configuration -----------------------------------------------------------
    def add_interface(self, name: str, *addresses: IPAddress) -> Interface:
        iface = Interface(self, name)
        for addr in addresses:
            iface.add_address(addr)
        self.interfaces.append(iface)
        return iface

    def interface(self, name: str) -> Interface:
        for iface in self.interfaces:
            if iface.name == name:
                return iface
        raise KeyError(f"node {self.name} has no interface {name!r}")

    def addresses(self, family: int | None = None) -> list[IPAddress]:
        out = []
        for iface in self.interfaces:
            for addr in iface.addresses:
                if family is None or addr.family == family:
                    out.append(addr)
        return out

    def has_address(self, addr: IPAddress) -> bool:
        return any(addr in iface.addresses for iface in self.interfaces)

    def _addrs(self) -> frozenset[IPAddress]:
        """All local addresses as a set (fast-path ``has_address``).

        Rebuilt lazily after any address change; :meth:`Interface.add_address`
        and :meth:`Interface.remove_address` invalidate the cache.
        """
        cached = self._addr_cache
        if cached is None:
            cached = frozenset(
                addr for iface in self.interfaces for addr in iface.addresses
            )
            self._addr_cache = cached
        return cached

    def register_protocol(self, proto: str, handler: ProtocolHandler) -> None:
        if proto in self._protocol_handlers:
            raise ValueError(f"protocol {proto!r} already registered on {self.name}")
        self._protocol_handlers[proto] = handler

    def add_output_shim(self, shim: OutputShim) -> None:
        """Install an output interceptor (runs before routing on local sends).

        A shim returns a replacement packet to continue with, or ``None`` if
        it consumed the packet (e.g. the HIP daemon queued it pending a base
        exchange).
        """
        self._output_shims.append(shim)

    # -- CPU model ----------------------------------------------------------------
    def cpu_work(self, seconds: float) -> Generator:
        """Process-generator that occupies one CPU slot for scaled ``seconds``.

        Usage: ``yield from node.cpu_work(t)`` inside a process.
        """
        if seconds < 0:
            raise ValueError("negative CPU work")
        if seconds == 0:
            return
        req = self.cpu.request()
        yield req
        try:
            scaled = seconds * self.cpu_scale
            self.cpu_busy_seconds += scaled
            yield self.sim.timeout(scaled)
        finally:
            self.cpu.release(req)

    # -- sending --------------------------------------------------------------------
    def send_ip(
        self,
        dst: IPAddress,
        proto: str,
        payload_packet: Packet,
        src: IPAddress | None = None,
        ttl: int = 64,
        bypass_shims: bool = False,
    ) -> bool:
        """Wrap ``payload_packet`` in an IP header and route it out.

        Returns False if the packet was dropped (no route / egress queue
        full) or True if it was handed to a link or consumed by a shim.
        """
        if src is None:
            src = self._pick_source(dst)
            if src is None:
                self.dropped_no_route += 1
                return False
        if self._fast:
            # Same result as ``payload_packet.pushed(...)`` without the
            # ``dataclasses.replace`` machinery — this runs once per
            # locally-originated packet.  Headers are immutable values, so a
            # flow's identical (src, dst, proto, ttl) header is shared
            # between consecutive packets instead of rebuilt.
            hdr = self._ip_hdr_cache
            if (
                hdr is None
                or hdr.dst is not dst
                or hdr.src is not src
                or hdr.ttl != ttl
                or hdr.proto != proto
            ):
                hdr = IPHeader(src=src, dst=dst, proto=proto, ttl=ttl)
                self._ip_hdr_cache = hdr
            packet = Packet(
                headers=(hdr,) + payload_packet.headers,
                payload=payload_packet.payload,
                meta=payload_packet.meta,
                packet_id=payload_packet.packet_id,
            )
        else:
            packet = payload_packet.pushed(IPHeader(src=src, dst=dst, proto=proto, ttl=ttl))
        if not bypass_shims:
            for shim in self._output_shims:
                result = shim(self, packet)
                if result is None:
                    return True  # consumed by the shim
                packet = result
        return self._route_out(packet)

    def send_ip_fast(
        self,
        dst: IPAddress,
        proto: str,
        headers: tuple,
        payload,
        src: IPAddress | None = None,
        ttl: int = 64,
    ) -> bool:
        """Fast-path :meth:`send_ip` taking raw (headers, payload).

        Behaviourally identical to wrapping ``Packet(headers, payload)`` in
        :meth:`send_ip`, but builds the wire packet in one allocation instead
        of inner-packet-then-push.  Only used when ``sim.fast_path`` is on.
        """
        if src is None:
            src = self._pick_source(dst)
            if src is None:
                self.dropped_no_route += 1
                return False
        hdr = self._ip_hdr_cache
        if (
            hdr is None
            or hdr.dst is not dst
            or hdr.src is not src
            or hdr.ttl != ttl
            or hdr.proto != proto
        ):
            hdr = IPHeader(src=src, dst=dst, proto=proto, ttl=ttl)
            self._ip_hdr_cache = hdr
        packet = Packet((hdr,) + headers, payload)
        shims = self._output_shims
        if shims:
            for shim in shims:
                result = shim(self, packet)
                if result is None:
                    return True  # consumed by the shim
                packet = result
        return self._route_out(packet)

    def _pick_source(self, dst: IPAddress) -> IPAddress | None:
        iface = self.routes.lookup(dst)
        if iface is not None:
            for addr in iface.addresses:
                if addr.family == dst.family:
                    return addr
        # No route (or unnumbered egress): fall back to any same-family
        # address.  Output shims (HIP, Teredo) intercept before routing, so
        # shim-handled destinations legitimately have no route entry.
        for addr in self.addresses(dst.family):
            return addr
        return None

    def _route_out(self, packet: Packet) -> bool:
        if self._fast:
            ip = packet.headers[0]
            dst = ip.dst
            if dst is self._addr_hit:
                self._dispatch_local(packet, None)
                return True
            if dst in self._addrs():
                self._addr_hit = dst
                self._dispatch_local(packet, None)
                return True
            iface = self.routes.lookup_cached(dst)
            endpoint = None if iface is None else iface._endpoint
            if endpoint is None:  # no route, or egress not attached to a link
                self.dropped_no_route += 1
                return False
            return endpoint.send(packet)
        ip = packet.outer
        assert isinstance(ip, IPHeader)
        if self.has_address(ip.dst):
            # Loopback delivery stays inside the node.
            self._dispatch_local(packet, None)
            return True
        iface = self.routes.lookup(ip.dst)
        if iface is None or not iface.is_attached:
            self.dropped_no_route += 1
            return False
        return iface.send(packet)

    # -- receiving ---------------------------------------------------------------------
    def _on_receive(self, packet: Packet, iface: Interface | None) -> None:
        if self._fast:
            headers = packet.headers
            ip = headers[0] if headers else None
            if not isinstance(ip, IPHeader):
                self.dropped_no_handler += 1
                return
            dst = ip.dst
            if dst is self._addr_hit or dst in self._addrs():
                self._addr_hit = dst
                handler = self._protocol_handlers.get(ip.proto)
                if handler is None:
                    self.dropped_no_handler += 1
                    return
                handler(self, packet, iface)
                return
            if self.forwarding:
                self._forward(packet)
                return
            self.dropped_no_route += 1
            return
        ip = packet.outer
        if not isinstance(ip, IPHeader):
            self.dropped_no_handler += 1
            return
        if self.has_address(ip.dst):
            self._dispatch_local(packet, iface)
            return
        if self.forwarding:
            self._forward(packet)
            return
        self.dropped_no_route += 1

    def _dispatch_local(self, packet: Packet, iface: Interface | None) -> None:
        ip = packet.outer
        assert isinstance(ip, IPHeader)
        handler = self._protocol_handlers.get(ip.proto)
        if handler is None:
            self.dropped_no_handler += 1
            return
        handler(self, packet, iface)  # type: ignore[arg-type]

    def _forward(self, packet: Packet) -> None:
        if self._fast:
            headers = packet.headers
            ip = headers[0]
            if ip.ttl <= 1:
                self.dropped_ttl += 1
                return
            fresh = Packet(
                headers=(IPHeader(src=ip.src, dst=ip.dst, proto=ip.proto, ttl=ip.ttl - 1),)
                + headers[1:],
                payload=packet.payload,
                meta=packet.meta,
                packet_id=packet.packet_id,
            )
            egress = self.routes.lookup_cached(ip.dst)
            if egress is None or not egress.is_attached:
                self.dropped_no_route += 1
                return
            egress.send(fresh)
            return
        ip, inner = packet.popped()
        assert isinstance(ip, IPHeader)
        if ip.ttl <= 1:
            self.dropped_ttl += 1
            return
        fresh = inner.pushed(
            IPHeader(src=ip.src, dst=ip.dst, proto=ip.proto, ttl=ip.ttl - 1)
        )
        egress = self.routes.lookup(ip.dst)
        if egress is None or not egress.is_attached:
            self.dropped_no_route += 1
            return
        egress.send(fresh)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Node {self.name}>"
