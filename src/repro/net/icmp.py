"""ICMP echo (ping) — the RTT measurement tool behind Figure 3's right axis.

The stack auto-replies to echo requests (charging a small CPU cost) and the
:func:`ping` helper sends N requests and collects per-request RTTs, exactly
like ``ping -c N`` in the paper's measurement.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.net.addresses import IPAddress
from repro.net.packet import ICMPHeader, IPHeader, Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Interface, Node

ECHO_PAYLOAD_BYTES = 56  # default ping payload, matching iputils


class IcmpStack:
    """Per-node ICMP engine; answers echo requests, matches replies to waiters."""

    def __init__(self, node: "Node") -> None:
        self.node = node
        self._waiters: dict[tuple[int, int], object] = {}  # (ident, seq) -> Event
        self._next_ident = 1
        node.register_protocol("icmp", self._on_packet)
        self.echo_replies_sent = 0

    def _on_packet(self, node: "Node", packet: Packet, iface: "Interface | None") -> None:
        ip, inner = packet.popped()
        icmp, body = inner.popped()
        assert isinstance(ip, IPHeader) and isinstance(icmp, ICMPHeader)
        if icmp.kind == "echo-request":
            self.node.sim.process(self._reply(ip, icmp, body), name="icmp-reply")
        elif icmp.kind == "echo-reply":
            evt = self._waiters.pop((icmp.ident, icmp.seq), None)
            if evt is not None and not evt.triggered:  # type: ignore[attr-defined]
                evt.succeed(self.node.sim.now)  # type: ignore[attr-defined]

    def _reply(self, ip: IPHeader, icmp: ICMPHeader, body: Packet) -> Generator:
        # Tiny kernel cost for the reply path.
        yield from self.node.cpu_work(1e-6)
        reply = Packet(
            headers=(ICMPHeader(kind="echo-reply", ident=icmp.ident, seq=icmp.seq),),
            payload=body.payload,
        )
        self.node.send_ip(ip.src, "icmp", reply, src=ip.dst)
        self.echo_replies_sent += 1

    def echo(
        self, dst: IPAddress, timeout: float = 1.0, payload_bytes: int = ECHO_PAYLOAD_BYTES
    ) -> Generator:
        """Process-generator: one echo round trip; returns RTT seconds or None."""
        sim = self.node.sim
        ident = self._next_ident
        self._next_ident += 1
        evt = sim.event()
        key = (ident, 1)
        self._waiters[key] = evt
        sent_at = sim.now
        req = Packet(
            headers=(ICMPHeader(kind="echo-request", ident=ident, seq=1),),
            payload=b"\x00" * payload_bytes,
        )
        ok = self.node.send_ip(dst, "icmp", req)
        if not ok:
            self._waiters.pop(key, None)
            return None
        deadline = sim.timeout(timeout)
        from repro.sim.events import AnyOf

        winner, _ = yield AnyOf(sim, [evt, deadline])
        if winner is evt:
            return sim.now - sent_at
        self._waiters.pop(key, None)
        return None


def ping(
    icmp: IcmpStack,
    dst: IPAddress,
    count: int = 20,
    interval: float = 0.2,
    timeout: float = 1.0,
) -> Generator:
    """Process-generator: ``count`` echo requests; returns list of RTTs (s).

    Lost probes contribute ``None`` entries, as in real ping output.
    """
    rtts: list[float | None] = []
    for i in range(count):
        rtt = yield icmp.node.sim.process(icmp.echo(dst, timeout=timeout))
        rtts.append(rtt)
        if i != count - 1:
            yield icmp.node.sim.timeout(interval)
    return rtts
