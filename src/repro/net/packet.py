"""Packet model: a stack of typed headers over a payload.

Headers are small dataclasses; a packet's wire size is the sum of its
headers' ``header_len`` plus the payload size.  Payloads are either real
``bytes`` (used for control traffic and all unit tests) or a
:class:`VirtualPayload` — a declared length without materialized bytes — so
bulk-transfer experiments (iperf, HTTP bodies) don't burn host memory while
still paying correct serialization, encryption and queueing costs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Union

from repro.net.addresses import IPAddress

_packet_ids = itertools.count(1)


@dataclass(frozen=True)
class VirtualPayload:
    """A payload of declared size whose bytes are never materialized."""

    size: int
    tag: str = ""  # optional marker for debugging/assertions

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("negative payload size")

    def __len__(self) -> int:
        return self.size


# A payload is anything with a length: real bytes, a declared-size virtual
# payload, a tunneled Packet, or protocol wrappers (e.g. ESP ciphertext).
Payload = Union[bytes, VirtualPayload, "Packet"]


@dataclass(frozen=True)
class Header:
    """Base class for protocol headers."""

    @property
    def header_len(self) -> int:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True)
class IPHeader(Header):
    """IPv4 or IPv6 header (family follows the addresses)."""

    src: IPAddress
    dst: IPAddress
    proto: str  # "tcp" | "udp" | "icmp" | "esp" | "hip"
    ttl: int = 64

    def __post_init__(self) -> None:
        if self.src.family != self.dst.family:
            raise ValueError("IP src/dst family mismatch")

    @property
    def family(self) -> int:
        return self.src.family

    @property
    def header_len(self) -> int:
        return 20 if self.family == 4 else 40


@dataclass(frozen=True)
class UDPHeader(Header):
    src_port: int
    dst_port: int

    @property
    def header_len(self) -> int:
        return 8


@dataclass(frozen=True)
class TCPHeader(Header):
    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: frozenset[str] = frozenset()  # subset of {"SYN","ACK","FIN","RST","ECE","CWR"}
    window: int = 65535
    #: RFC 2018 SACK option: ``((start, end), ...)`` half-open received
    #: ranges above the cumulative ACK.  Empty for in-order traffic, so the
    #: common-case wire size is unchanged.
    sack: tuple = ()

    @property
    def header_len(self) -> int:
        if not self.sack:
            return 20
        # SACK option: kind(1) + length(1) + 8 bytes per block, padded to a
        # 4-byte boundary as TCP options are on the wire.
        opt = 2 + 8 * len(self.sack)
        return 20 + (opt + 3) // 4 * 4

    def has(self, flag: str) -> bool:
        return flag in self.flags


@dataclass(frozen=True)
class ICMPHeader(Header):
    kind: str  # "echo-request" | "echo-reply"
    ident: int
    seq: int

    @property
    def header_len(self) -> int:
        return 8


@dataclass(frozen=True)
class ESPHeader(Header):
    """ESP header+trailer accounting (SPI, sequence, IV, pad, ICV)."""

    spi: int
    seq: int
    iv_len: int = 16
    icv_len: int = 12  # HMAC-SHA1-96
    pad_len: int = 0

    @property
    def header_len(self) -> int:
        # SPI(4) + seq(4) + IV + pad + pad-len(1) + next-header(1) + ICV
        return 4 + 4 + self.iv_len + self.pad_len + 2 + self.icv_len


@dataclass(frozen=True)
class HIPHeader(Header):
    """HIP control-packet header marker; the payload is the serialized packet."""

    packet_type: str  # "I1" | "R1" | "I2" | "R2" | "UPDATE" | "CLOSE" | ...

    @property
    def header_len(self) -> int:
        return 40  # fixed HIP header: nexthdr..checksum + sender/receiver HITs


def payload_len(payload: Payload) -> int:
    return len(payload)


@dataclass(frozen=True)
class Packet:
    """An immutable packet: header stack (outermost first) + payload.

    ``meta`` carries simulation-only annotations (timestamps, flow ids) that
    do not contribute to the wire size.
    """

    headers: tuple[Header, ...]
    payload: Payload = b""
    meta: dict = field(default_factory=dict, compare=False)
    packet_id: int = field(default_factory=lambda: next(_packet_ids), compare=False)

    @property
    def size_bytes(self) -> int:
        return sum(h.header_len for h in self.headers) + payload_len(self.payload)

    @property
    def outer(self) -> Header:
        if not self.headers:
            raise ValueError("packet has no headers")
        return self.headers[0]

    def find(self, header_type: type) -> Header | None:
        """First header of the given type, outermost first."""
        for h in self.headers:
            if isinstance(h, header_type):
                return h
        return None

    def pushed(self, header: Header) -> "Packet":
        """New packet with ``header`` prepended (encapsulation)."""
        return replace(self, headers=(header,) + self.headers)

    def popped(self) -> tuple[Header, "Packet"]:
        """Remove the outermost header; returns (header, inner packet)."""
        if not self.headers:
            raise ValueError("cannot pop from header-less packet")
        return self.headers[0], replace(self, headers=self.headers[1:])

    def with_meta(self, **kv) -> "Packet":
        # repro: ignore[PERF001] -- meta propagation copies one small dict per rebuilt packet by design; measured in BENCH_sim.json (PR 5) and dwarfed by the crypto work on the same path
        merged = dict(self.meta)
        merged.update(kv)
        return replace(self, meta=merged)

    def __len__(self) -> int:
        """Packets can be payloads of other packets (tunneling: ESP, Teredo)."""
        return self.size_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = "/".join(type(h).__name__.replace("Header", "") for h in self.headers)
        return f"<Packet#{self.packet_id} {names} {self.size_bytes}B>"
