"""NAPT middlebox: source NAT with endpoint-independent (full-cone) mapping.

The paper's "power users" scenario has developers behind NATted access
networks reaching cloud VMs with HIP-over-Teredo; Teredo (RFC 4380) was
designed exactly for cone NATs, so that is the filtering behaviour we model.
TCP and UDP are rewritten; ICMP echo is translated by identifier.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

from repro.net.addresses import IPAddress
from repro.net.node import Node
from repro.net.packet import ICMPHeader, IPHeader, Packet, TCPHeader, UDPHeader

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Interface
    from repro.sim.engine import Simulator


class NatBox(Node):
    """Two-armed NAT: ``inside`` interface(s) and one ``outside`` interface.

    Mappings are keyed by (proto, inside_addr, inside_port) and allocate a
    port on the external address.  Inbound packets to unmapped ports are
    dropped (and counted), which is what breaks un-assisted inbound
    connections and motivates Teredo/HIP NAT traversal.
    """

    def __init__(self, sim: "Simulator", name: str, external_addr: IPAddress) -> None:
        super().__init__(sim, name, forwarding=True)
        self.external_addr = external_addr
        self._next_port = 1024
        # (proto, in_addr, in_port) -> ext_port ; and the reverse.
        self._out_map: dict[tuple, int] = {}
        self._in_map: dict[tuple, tuple[IPAddress, int]] = {}
        self._inside_ifaces: set[str] = set()
        self._outside_iface: "Interface | None" = None
        self.dropped_unsolicited = 0

    def set_outside(self, iface: "Interface") -> None:
        self._outside_iface = iface
        iface.add_address(self.external_addr)

    def mark_inside(self, iface: "Interface") -> None:
        self._inside_ifaces.add(iface.name)

    # -- packet path ---------------------------------------------------------------
    def _on_receive(self, packet: Packet, iface: "Interface | None") -> None:
        ip = packet.outer
        if not isinstance(ip, IPHeader) or iface is None:
            super()._on_receive(packet, iface)
            return
        if iface.name in self._inside_ifaces:
            self._outbound(packet)
        elif self._outside_iface is not None and iface.name == self._outside_iface.name:
            self._inbound(packet)
        else:
            super()._on_receive(packet, iface)

    def _ports(self, packet: Packet) -> tuple[str, int, int] | None:
        """Extract (proto, src_port, dst_port) from the transport header."""
        ip, inner = packet.popped()
        if not inner.headers:
            return None
        head = inner.headers[0]
        if isinstance(head, UDPHeader):
            return ("udp", head.src_port, head.dst_port)
        if isinstance(head, TCPHeader):
            return ("tcp", head.src_port, head.dst_port)
        if isinstance(head, ICMPHeader):
            return ("icmp", head.ident, head.ident)
        return None

    def _alloc_port(self) -> int:
        port = self._next_port
        self._next_port += 1
        if self._next_port > 65535:
            self._next_port = 1024
        return port

    def _outbound(self, packet: Packet) -> None:
        ip, inner = packet.popped()
        assert isinstance(ip, IPHeader)
        info = self._ports(packet)
        if info is None or self._outside_iface is None:
            self.dropped_no_handler += 1
            return
        proto, src_port, _ = info
        key = (proto, ip.src, src_port)
        ext_port = self._out_map.get(key)
        if ext_port is None:
            ext_port = self._alloc_port()
            self._out_map[key] = ext_port
            self._in_map[(proto, ext_port)] = (ip.src, src_port)
        rewritten_inner = self._rewrite_src_port(inner, ext_port)
        out = rewritten_inner.pushed(
            IPHeader(src=self.external_addr, dst=ip.dst, proto=ip.proto, ttl=ip.ttl - 1)
        )
        egress = self.routes.lookup(ip.dst)
        if egress is None:
            self.dropped_no_route += 1
            return
        egress.send(out)

    def _inbound(self, packet: Packet) -> None:
        ip, inner = packet.popped()
        assert isinstance(ip, IPHeader)
        info = self._ports(packet)
        if info is None:
            self.dropped_unsolicited += 1
            return
        proto, _, dst_port = info
        mapping = self._in_map.get((proto, dst_port))
        if mapping is None:
            self.dropped_unsolicited += 1
            return
        in_addr, in_port = mapping
        rewritten_inner = self._rewrite_dst_port(inner, in_port)
        out = rewritten_inner.pushed(
            IPHeader(src=ip.src, dst=in_addr, proto=ip.proto, ttl=ip.ttl - 1)
        )
        egress = self.routes.lookup(in_addr)
        if egress is None:
            self.dropped_no_route += 1
            return
        egress.send(out)

    @staticmethod
    def _rewrite_src_port(inner: Packet, port: int) -> Packet:
        head, body = inner.popped()
        if isinstance(head, UDPHeader):
            return body.pushed(replace(head, src_port=port))
        if isinstance(head, TCPHeader):
            return body.pushed(replace(head, src_port=port))
        if isinstance(head, ICMPHeader):
            return body.pushed(replace(head, ident=port))
        raise TypeError(f"cannot NAT header {head!r}")

    @staticmethod
    def _rewrite_dst_port(inner: Packet, port: int) -> Packet:
        head, body = inner.popped()
        if isinstance(head, UDPHeader):
            return body.pushed(replace(head, dst_port=port))
        if isinstance(head, TCPHeader):
            return body.pushed(replace(head, dst_port=port))
        if isinstance(head, ICMPHeader):
            return body.pushed(replace(head, ident=port))
        raise TypeError(f"cannot NAT header {head!r}")
