"""DNS with HIP resource records (RFC 5205).

A :class:`DnsServer` owns a zone of A / AAAA / HIP records and answers UDP
queries on port 53; :class:`DnsResolver` is the client side.  HIP records
carry the Host Identity Tag, the full Host Identifier (public key) and
optional rendezvous server names, exactly the data the paper's DNS-proxy
deployment relies on.

Messages are encoded as a compact length-prefixed binary format — simpler
than RFC 1035 compression but byte-serialized and size-realistic.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator

from repro.net.addresses import IPAddress
from repro.net.udp import UdpSocket, UdpStack

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node

DNS_PORT = 53


class DnsDecodeError(ValueError):
    """Malformed DNS wire message (truncated, oversized field, bad UTF-8)."""


@dataclass(frozen=True)
class DnsRecord:
    """One resource record."""

    name: str
    rtype: str  # "A" | "AAAA" | "HIP"
    ttl: float = 300.0
    address: IPAddress | None = None  # A / AAAA
    hit: IPAddress | None = None  # HIP
    host_id: bytes = b""  # HIP: serialized public key
    rvs: tuple[str, ...] = ()  # HIP: rendezvous server names

    def __post_init__(self) -> None:
        if self.rtype in ("A", "AAAA"):
            if self.address is None:
                raise ValueError(f"{self.rtype} record requires an address")
            expect = 4 if self.rtype == "A" else 6
            if self.address.family != expect:
                raise ValueError(f"{self.rtype} record has family-{self.address.family} address")
        elif self.rtype == "HIP":
            if self.hit is None or self.hit.family != 6:
                raise ValueError("HIP record requires an IPv6 HIT")
        else:
            raise ValueError(f"unsupported record type {self.rtype!r}")


def _pack_str(s: str) -> bytes:
    data = s.encode("utf-8")
    return struct.pack(">H", len(data)) + data


def _unpack_str(buf: bytes, off: int) -> tuple[str, int]:
    if off + 2 > len(buf):
        raise DnsDecodeError("truncated string length")
    (n,) = struct.unpack_from(">H", buf, off)
    off += 2
    if off + n > len(buf):
        raise DnsDecodeError("string runs past end of message")
    try:
        return buf[off : off + n].decode("utf-8"), off + n
    except UnicodeDecodeError as exc:
        raise DnsDecodeError(f"string is not valid UTF-8: {exc}") from exc


def encode_query(qname: str, qtype: str, qid: int) -> bytes:
    return struct.pack(">HB", qid, 0) + _pack_str(qname) + _pack_str(qtype)


def decode_query(data: bytes) -> tuple[int, str, str]:
    if len(data) < 3:
        raise DnsDecodeError("query shorter than its fixed header")
    qid, kind = struct.unpack_from(">HB", data, 0)
    if kind != 0:
        raise DnsDecodeError("not a query")
    qname, off = _unpack_str(data, 3)
    qtype, _ = _unpack_str(data, off)
    return qid, qname, qtype


def encode_response(qid: int, records: list[DnsRecord]) -> bytes:
    out = struct.pack(">HBH", qid, 1, len(records))
    for r in records:
        out += _pack_str(r.name) + _pack_str(r.rtype) + struct.pack(">f", r.ttl)
        if r.rtype in ("A", "AAAA"):
            assert r.address is not None
            out += struct.pack(">B", r.address.family) + r.address.packed()
        else:
            assert r.hit is not None
            out += r.hit.packed()
            out += struct.pack(">H", len(r.host_id)) + r.host_id
            out += struct.pack(">B", len(r.rvs))
            for name in r.rvs:
                out += _pack_str(name)
    return out


def decode_response(data: bytes) -> tuple[int, list[DnsRecord]]:
    if len(data) < 5:
        raise DnsDecodeError("response shorter than its fixed header")
    qid, kind, count = struct.unpack_from(">HBH", data, 0)
    if kind != 1:
        raise DnsDecodeError("not a response")
    off = 5
    records: list[DnsRecord] = []
    for _ in range(count):
        name, off = _unpack_str(data, off)
        rtype, off = _unpack_str(data, off)
        if off + 4 > len(data):
            raise DnsDecodeError("truncated TTL")
        (ttl,) = struct.unpack_from(">f", data, off)
        off += 4
        if rtype in ("A", "AAAA"):
            if off + 1 > len(data):
                raise DnsDecodeError("truncated address family")
            family = data[off]
            off += 1
            expect = 4 if rtype == "A" else 6
            if family != expect:
                raise DnsDecodeError(f"family-{family} address in {rtype} record")
            size = 4 if family == 4 else 16
            if off + size > len(data):
                raise DnsDecodeError("truncated address")
            addr = IPAddress(family, int.from_bytes(data[off : off + size], "big"))
            off += size
            records.append(DnsRecord(name=name, rtype=rtype, ttl=ttl, address=addr))
        elif rtype == "HIP":
            if off + 18 > len(data):
                raise DnsDecodeError("truncated HIP record")
            hit = IPAddress(6, int.from_bytes(data[off : off + 16], "big"))
            off += 16
            (hid_len,) = struct.unpack_from(">H", data, off)
            off += 2
            if off + hid_len > len(data):
                raise DnsDecodeError("host identifier runs past end of message")
            host_id = data[off : off + hid_len]
            off += hid_len
            if off + 1 > len(data):
                raise DnsDecodeError("truncated rendezvous count")
            n_rvs = data[off]
            off += 1
            # Each rendezvous name costs at least its 2-byte length prefix;
            # reject counts the remaining bytes cannot possibly satisfy.
            if off + 2 * n_rvs > len(data):
                raise DnsDecodeError("rendezvous list runs past end of message")
            rvs = []
            for _ in range(n_rvs):
                rvs_name, off = _unpack_str(data, off)
                rvs.append(rvs_name)
            records.append(
                DnsRecord(name=name, rtype=rtype, ttl=ttl, hit=hit,
                          host_id=host_id, rvs=tuple(rvs))
            )
        else:
            raise DnsDecodeError(f"bad record type {rtype!r} in response")
    return qid, records


@dataclass
class Zone:
    """A mutable set of records, indexed by (name, type)."""

    records: dict[tuple[str, str], list[DnsRecord]] = field(default_factory=dict)

    def add(self, record: DnsRecord) -> None:
        self.records.setdefault((record.name, record.rtype), []).append(record)

    def remove(self, name: str, rtype: str) -> None:
        self.records.pop((name, rtype), None)

    def lookup(self, name: str, rtype: str) -> list[DnsRecord]:
        return list(self.records.get((name, rtype), ()))


class DnsServer:
    """Authoritative server bound to a node's UDP port 53."""

    def __init__(self, node: "Node", udp: UdpStack, zone: Zone | None = None) -> None:
        self.node = node
        self.zone = zone or Zone()
        self.queries_served = 0
        self._sock = udp.bind(DNS_PORT)
        node.sim.process(self._serve(), name=f"dns-server-{node.name}")

    def _serve(self) -> Generator:
        while True:
            data, (src, src_port) = yield self._sock.recvfrom()
            try:
                qid, qname, qtype = decode_query(bytes(data))
            except DnsDecodeError:
                continue
            yield from self.node.cpu_work(20e-6)  # lookup + response build
            answers = self.zone.lookup(qname, qtype)
            self.queries_served += 1
            self._sock.sendto(encode_response(qid, answers), src, src_port)


class DnsResolver:
    """Stub resolver with a positive cache honouring record TTLs."""

    def __init__(self, node: "Node", udp: UdpStack, server_addr: IPAddress) -> None:
        self.node = node
        self.udp = udp
        self.server_addr = server_addr
        self._next_id = 1
        self._cache: dict[tuple[str, str], tuple[float, list[DnsRecord]]] = {}

    def query(self, qname: str, qtype: str, timeout: float = 2.0, retries: int = 2) -> Generator:
        """Process-generator: resolve; returns list of records (may be empty).

        Raises TimeoutError when the server never answers.
        """
        sim = self.node.sim
        cached = self._cache.get((qname, qtype))
        if cached is not None:
            expires, records = cached
            if sim.now < expires:
                return records
            del self._cache[(qname, qtype)]
        sock = self.udp.bind(0)
        try:
            for _attempt in range(retries + 1):
                qid = self._next_id
                self._next_id += 1
                sock.sendto(encode_query(qname, qtype, qid), self.server_addr, DNS_PORT)
                from repro.sim.events import AnyOf

                reply = sock.recvfrom()
                deadline = sim.timeout(timeout)
                winner, value = yield AnyOf(sim, [reply, deadline])
                if winner is reply:
                    data, _src = value
                    try:
                        rid, records = decode_response(bytes(data))
                    except DnsDecodeError:
                        continue  # hostile or corrupt response: retry
                    if rid != qid:
                        continue  # stale response; retry
                    if records:
                        ttl = min(r.ttl for r in records)
                        self._cache[(qname, qtype)] = (sim.now + ttl, records)
                    return records
            raise TimeoutError(f"DNS query {qname}/{qtype} timed out")
        finally:
            sock.close()
