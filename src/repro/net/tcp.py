"""Simplified TCP with NewReno + SACK loss recovery.

Implements the behaviourally-relevant subset for the paper's experiments:

* three-way handshake, FIN teardown, RFC 793 reset generation for segments
  arriving at closed ports;
* byte-stream transfer with MSS segmentation, cumulative ACKs, out-of-order
  reassembly with overlap trimming;
* NewReno congestion control (RFC 6582): slow start, congestion avoidance,
  fast retransmit on three duplicate ACKs, a real fast-recovery state with
  cwnd inflation/deflation and partial-ACK retransmission, RTO with
  Jacobson/Karels estimation and exponential backoff;
* SACK (RFC 2018): receivers advertise out-of-order ranges as
  :class:`~repro.net.packet.TCPHeader` option blocks; the sender keeps a
  scoreboard and retransmits only un-SACKed holes during recovery;
* ECN (RFC 3168 subset): links can CE-mark instead of dropping
  (``Link(ecn_threshold=...)``); receivers echo ``ECE`` until the sender
  acknowledges the window reduction with ``CWR``;
* receiver flow control with a configurable advertised window — the iperf
  experiment sets the paper's 85.3 KB / 16 KB windows explicitly — plus a
  zero-window persist timer that probes a closed window so a lost window
  update cannot deadlock the connection;
* optional callback-lane pacing (``pacing=True``): segments leave at
  ``cwnd/srtt`` instead of in back-to-back window bursts;
* optional fluid fast-forward (``fluid=True``): a window-limited bulk flow
  whose congestion window has stopped moving drains its pipe, locates its
  peer endpoint (via an in-band probe that crosses ESP/VPN encapsulation
  like any other segment), and then advances as a closed-form rate integral
  ``min(cwnd, peer_window)/srtt`` — skipping per-segment events entirely —
  until the transfer completes or the steady state is disturbed (loss, ECN
  echo, a rekey bumping ``Node.dataplane_epoch``, or a competing flow
  appearing on either stack), at which point it re-enters packet mode with
  bit-identical ``snd_nxt``/``cwnd``/``bytes_acked``.  Crypto costs are
  still charged per virtual byte through ``Node.fluid_taxers``.  ``fluid``
  implies RFC 2861-style congestion-window validation (``cwnd`` only grows
  while the flow is cwnd-limited), which is what pins ``cwnd`` exactly in
  the window-limited steady state.

``cc="reno"`` selects the legacy Reno machine (no SACK, no recovery state)
— retained as the baseline for ``benchmarks/bench_tcp.py``.

Segments carry either real bytes (all unit tests, HTTP control traffic) or
:class:`~repro.net.packet.VirtualPayload` sizes (bulk benchmarks), and the
stream machinery is agnostic between them.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import TYPE_CHECKING, Generator

from repro.metrics import METRICS, RECORDER
from repro.sim.engine import _KIND_CALL
from repro.net.addresses import IPAddress
from repro.net.packet import Packet, Payload, TCPHeader, VirtualPayload
from repro.sim.resources import Queue

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Interface, Node

_SEGMENTS_SENT = METRICS.counter("tcp.segments_sent")
_RETRANSMITS = METRICS.counter("tcp.segments_retransmitted")
_CONNECTS = METRICS.counter("tcp.connects")
_ACCEPTS = METRICS.counter("tcp.accepts")
_FAILURES = METRICS.counter("tcp.connection_failures")
_FAST_RECOVERIES = METRICS.counter("tcp.fast_recoveries")
_ECN_REDUCTIONS = METRICS.counter("tcp.ecn_reductions")
_ZW_PROBES = METRICS.counter("tcp.zero_window_probes")
_FLUID_ENTERS = METRICS.counter("tcp.fluid_enters")
_FLUID_EXITS = METRICS.counter("tcp.fluid_exits")
_FLUID_BYTES = METRICS.counter("tcp.fluid_bytes")
_RTT = METRICS.histogram("tcp.rtt_s")

DEFAULT_MSS = 1448  # bytes of payload per segment (Ethernet MTU - headers)
DEFAULT_WINDOW = 65535
MIN_RTO = 0.2
MAX_RTO = 60.0
DELACK_TIMEOUT = 0.04
PERSIST_MIN = 0.5  # zero-window probe interval bounds (RFC 1122 §4.2.2.17)
PERSIST_MAX = 60.0
SACK_MAX_BLOCKS = 3  # blocks per ACK, as a timestamped real header would fit
#: Fluid fast-forward tuning.  A flow is considered steady once this many
#: effective windows of data have been cleanly acknowledged (no loss, SACK,
#: ECN or retransmission since the counter last reset), and entry is only
#: worthwhile if at least this many windows remain to fast-forward.
FLUID_STABLE_WINDOWS = 2
FLUID_MIN_WINDOWS = 3
#: Simulated seconds advanced per fluid checkpoint: each chunk re-validates
#: the steady-state guards (peer alive, no rekey, no competing flow) so a
#: disturbance is noticed within one chunk.
FLUID_CHUNK_S = 0.25
FLUID_PROBE_RETRIES = 3

#: Shared flag set for the overwhelmingly common case (data segments and
#: pure ACKs) — the fast path reuses it instead of allocating a fresh
#: ``frozenset`` per segment.
_ACK_FLAGS = frozenset({"ACK"})
_NO_FLAGS: frozenset[str] = frozenset()
_ECE_FLAGS = frozenset({"ECE"})
_CWR_FLAGS = frozenset({"CWR"})
_RST_FLAGS = frozenset({"RST"})
_RST_ACK_FLAGS = frozenset({"RST", "ACK"})
_FIN_FLAGS = frozenset({"FIN"})
_EMPTY_SACK: tuple = ()

#: Free list for inflight-segment metadata dicts.  Every data segment
#: allocates one of these and the ACK path pops it a round-trip later; the
#: pool recycles them so bulk transfers stop churning the allocator.  Dicts
#: are released only once popped from an inflight deque (never while a
#: retransmit path can still hold a reference) and every field is
#: reassigned on reuse.
_SEG_POOL: list[dict] = []
_SEG_POOL_MAX = 512


def _seg_release(entry: dict) -> None:
    if len(_SEG_POOL) < _SEG_POOL_MAX:
        entry["payload"] = None  # don't pin payload bytes while pooled
        # repro: ignore[ISO001] -- allocator recycling only: pooled dicts never carry state between users (every field reassigned on reuse), so per-process pools cannot diverge observably
        _SEG_POOL.append(entry)


class TcpError(Exception):
    """Connection-level failure (reset, timeout, closed)."""


def _slice_payload(payload: Payload, start: int, length: int) -> Payload:
    if isinstance(payload, VirtualPayload):
        return VirtualPayload(size=length, tag=payload.tag)
    return payload[start : start + length]


class TcpConnection:
    """One TCP connection endpoint."""

    def __init__(
        self,
        stack: "TcpStack",
        local_addr: IPAddress,
        local_port: int,
        remote_addr: IPAddress,
        remote_port: int,
        mss: int = DEFAULT_MSS,
        recv_window: int = DEFAULT_WINDOW,
        cc: str = "newreno",
        pacing: bool = False,
        fluid: bool = False,
        fluid_flow_guard: bool = True,
        cwnd_validation: bool | None = None,
    ) -> None:
        if cc not in ("newreno", "reno"):
            raise ValueError(f"unknown congestion control {cc!r}")
        self.stack = stack
        self.node = stack.node
        self.sim = stack.node.sim
        self.local_addr = local_addr
        self.local_port = local_port
        self.remote_addr = remote_addr
        self.remote_port = remote_port
        # Timer-process names, formatted once: the arm paths run per event.
        self._persist_proc_name = f"tcp-persist-{local_port}"
        self._pace_proc_name = f"tcp-pace-{local_port}"
        self._rto_proc_name = f"tcp-rto-{local_port}"
        self.mss = mss
        self._fast = self.sim.fast_path
        self.state = "CLOSED"

        # --- send side ---
        self.snd_una = 0  # oldest unacked sequence number
        self.snd_nxt = 0  # next sequence number to send
        self.snd_buf: deque[tuple[int, Payload]] = deque()  # (start_seq, chunk)
        self.snd_buf_end = 1  # stream offsets live in seq space; SYN consumes 0
        self.inflight: deque[dict] = deque()  # segments awaiting ACK
        self.cwnd = 2 * mss
        self.ssthresh = 64 * 1024 * 1024
        self.peer_window = DEFAULT_WINDOW
        self.dup_acks = 0
        self.srtt: float | None = None
        self.rttvar = 0.0
        self.rto = 1.0
        self._handshake_retx = 0
        self._timer_gen = 0
        self._rto_timer = None  # TimerHandle (fast path); rearmed in place
        self._delack_handle = None  # TimerHandle (fast path); rearmed in place
        # NewReno fast-recovery state (RFC 6582) + SACK scoreboard (RFC 2018).
        self.cc = cc
        self.sack_enabled = cc == "newreno"
        self.in_recovery = False
        self.recover = 0  # snd_nxt when loss was detected; full ACKs pass it
        self._sacked: list[list[int]] = []  # merged [start, end) peer-SACKed ranges
        self._high_rtx = 0  # end of the highest hole retransmitted this recovery
        self.fast_recoveries = 0
        # ECN (sender reacts to ECE once per window; receiver echoes CE).
        self._ecn_echo = False
        self._cwr_pending = False
        self._ecn_recover = 0
        self.ecn_reductions = 0
        # Zero-window persist (probe a closed peer window, RFC 1122).
        self._persist_armed = False
        self._persist_timer = None  # TimerHandle (fast path)
        self._persist_gen = 0
        self._persist_backoff = PERSIST_MIN
        self.zero_window_probes = 0
        # Pacing: spread segments at cwnd/srtt through the callback lane
        # instead of bursting the whole window per ACK.
        self.pacing = pacing
        self._pace_armed = False
        self._pace_timer = None  # TimerHandle (fast path)
        self._pace_gen = 0
        # Fast path: bulk senders cut identical VirtualPayload slices (one
        # MSS each) for thousands of segments in a row; VirtualPayload is
        # immutable, so one shared instance per (size, tag) is safe.
        self._vp_cache: VirtualPayload | None = None
        self._vp_cache_key: tuple[int, str] = (-1, "")
        self._fin_queued = False
        self._fin_seq: int | None = None
        # Fluid fast-forward (flow-level bulk mode); see the module docstring.
        # ``cwnd_validation`` defaults to following ``fluid`` — a fluid flow
        # needs the frozen-cwnd steady state, everything else keeps today's
        # unvalidated growth so existing experiments are untouched.
        self.fluid = fluid
        # The competing-flow guard exits fluid mode when either endpoint's
        # stack gains or loses a connection (a new flow may share the
        # bottleneck).  A dedicated bulk tier serving many *window-limited*
        # transfers concurrently turns it off — there each flow's throughput
        # is wnd/rtt regardless of its neighbours, so arrivals aren't
        # disturbances.
        self.fluid_flow_guard = fluid_flow_guard
        self.cwnd_validation = fluid if cwnd_validation is None else cwnd_validation
        self._fluid_want = False  # draining the pipe before jumping
        self._fluid_active = False  # advancing as a rate integral
        self._fluid_peer: TcpConnection | None = None
        self._fluid_timer = None  # TimerHandle shared by probe-wait and chunks
        self._fluid_clean = 0  # bytes cleanly acked since last disturbance
        self._fluid_goal = 0  # snd_buf_end snapshot at entry
        self._fluid_chunk = 0
        self._fluid_rate = 0.0  # bytes per simulated second while active
        self._fluid_wait_tries = 0
        self._fluid_entry_flows = 0
        self._fluid_entry_epoch = 0
        self._fluid_entry_wnd = 0
        self.fluid_bytes = 0
        self.fluid_enters = 0
        self.fluid_exits = 0
        #: ("enter" | "exit:<why>", time, snd_nxt, cwnd, bytes_acked) at every
        #: mode boundary — the replay-equality tests diff this against the
        #: pure per-packet run.
        self.fluid_log: list[tuple] = []
        if fluid:
            # Sim-scoped peer directory: the in-band probe carries this id so
            # the receiving endpoint can link the two connection objects even
            # when the 4-tuples don't mirror (HIP LSI/HIT translation).
            services = self.sim.services
            ident = services.get("tcp.fluid_next_id", 1)
            services["tcp.fluid_next_id"] = ident + 1
            self._fluid_id = ident
            services.setdefault("tcp.fluid_conns", {})[ident] = self
        else:
            self._fluid_id = 0

        # --- receive side ---
        self.recv_window = recv_window
        self.rcv_nxt = 0
        self.ooo: dict[int, tuple[Payload, bool]] = {}  # seq -> (payload, fin)
        self.rx = Queue(self.sim)
        self._leftover: Payload | None = None  # partial chunk from recv_bytes
        self._peer_fin_seen = False
        # Delayed ACKs (RFC 1122): ack every 2nd in-order segment, or after
        # the delayed-ack timer.
        self._delack_pending = 0
        self._delack_timer_armed = False

        # --- connection lifecycle events ---
        self._established_evt = self.sim.event()
        self._closed_evt = self.sim.event()

        # --- statistics ---
        self.bytes_sent = 0
        self.bytes_acked = 0
        self.bytes_received = 0
        self.segments_sent = 0
        self.segments_retransmitted = 0
        self.rtos = 0

    # -- public API ------------------------------------------------------------
    @property
    def established(self):
        """Event that fires when the connection reaches ESTABLISHED."""
        return self._established_evt

    @property
    def closed(self):
        return self._closed_evt

    def write(self, payload: Payload) -> None:
        """Queue application data on the stream."""
        if self.state not in ("ESTABLISHED", "SYN_SENT", "SYN_RCVD"):
            raise TcpError(f"write on {self.state} connection")
        if self._fin_queued:
            raise TcpError("write after close")
        if len(payload) == 0:
            return
        self.snd_buf.append((self.snd_buf_end, payload))
        self.snd_buf_end += len(payload)
        if self.state == "ESTABLISHED":
            self._pump()

    def recv(self):
        """Event yielding the next in-order chunk (``b""`` signals EOF)."""
        return self.rx.get()

    def recv_bytes(self, n: int) -> Generator:
        """Process-generator: accumulate exactly ``n`` stream bytes.

        Consumes partial chunks (the remainder is buffered for the next
        read).  Returns real bytes if every consumed piece was real, else a
        VirtualPayload of the total.  Raises TcpError on EOF before ``n``.
        """
        got = 0
        real_parts: list[bytes] = []
        all_real = True
        while got < n:
            if self._leftover is not None:
                chunk, self._leftover = self._leftover, None
            else:
                chunk = yield self.recv()
            if isinstance(chunk, (bytes, bytearray)) and len(chunk) == 0:
                raise TcpError(f"EOF after {got}/{n} bytes")
            take = min(len(chunk), n - got)
            if take < len(chunk):
                if isinstance(chunk, VirtualPayload):
                    self._leftover = VirtualPayload(len(chunk) - take, tag=chunk.tag)
                    chunk = VirtualPayload(take, tag=chunk.tag)
                else:
                    self._leftover = bytes(chunk[take:])
                    chunk = bytes(chunk[:take])
            got += take
            if isinstance(chunk, VirtualPayload):
                all_real = False
            else:
                real_parts.append(bytes(chunk))
        if all_real:
            return b"".join(real_parts)
        return VirtualPayload(size=n)

    def close(self) -> None:
        """Half-close: queue a FIN after any pending data."""
        if self._fin_queued or self.state in ("CLOSED",):
            return
        self._fin_queued = True
        self._fin_seq = self.snd_buf_end
        if self.state == "ESTABLISHED":
            self._pump()

    def abort(self) -> None:
        """Hard close: send RST and drop all state."""
        if self.state != "CLOSED":
            self._send_segment(flags=frozenset({"RST"}))
            self._teardown(TcpError("connection reset locally"))

    # -- connection setup ---------------------------------------------------------
    def _start_connect(self) -> None:
        _CONNECTS.inc()
        self.state = "SYN_SENT"
        self.snd_nxt = 1  # SYN consumes sequence 0
        self.snd_una = 0
        self._send_segment(flags=frozenset({"SYN"}), seq=0)
        self._arm_timer()

    def _start_accept(self) -> None:
        _ACCEPTS.inc()
        self.state = "SYN_RCVD"
        self.rcv_nxt = 1
        self.snd_nxt = 1
        self.snd_una = 0
        self._send_segment(flags=frozenset({"SYN", "ACK"}), seq=0)
        self._arm_timer()

    # -- segment transmission -------------------------------------------------------
    def _send_segment(
        self,
        flags: frozenset[str] = frozenset(),
        seq: int | None = None,
        payload: Payload = b"",
        register_inflight: bool = False,
    ) -> None:
        if "SYN" in flags and self.state == "SYN_SENT":
            eff_flags = flags
        elif flags:
            eff_flags = flags | _ACK_FLAGS
        elif self._fast:
            eff_flags = _ACK_FLAGS  # shared set, no per-segment allocation
        else:
            eff_flags = flags | frozenset({"ACK"})  # reference path, as before
        if self._ecn_echo:
            eff_flags = eff_flags | _ECE_FLAGS
        if self._cwr_pending:
            eff_flags = eff_flags | _CWR_FLAGS
            self._cwr_pending = False
        if self._fast:
            # ``_rx_backlog()`` is a constant 0 — skip the call per segment.
            window = self.recv_window
        else:
            window = max(0, self.recv_window - self._rx_backlog())
        header = TCPHeader(
            self.local_port,
            self.remote_port,
            self.snd_nxt if seq is None else seq,
            self.rcv_nxt,
            eff_flags,
            window,
            self._sack_blocks() if (self.sack_enabled and self.ooo) else _EMPTY_SACK,
        )
        if self._fast:
            self.node.send_ip_fast(
                self.remote_addr, "tcp", (header,), payload, self.local_addr
            )
        else:
            packet = Packet(headers=(header,), payload=payload)
            self.node.send_ip(self.remote_addr, "tcp", packet, src=self.local_addr)
        self.segments_sent += 1
        _SEGMENTS_SENT.value += 1
        if RECORDER.enabled:
            RECORDER.record(
                self.sim.now, "tcp", "tx",
                node=self.node.name, dst_port=self.remote_port,
                seq=header.seq, flags=sorted(header.flags), len=len(payload),
            )
        if register_inflight:
            seg_len = len(payload) + (1 if "FIN" in flags or "SYN" in flags else 0)
            if _SEG_POOL:
                # repro: ignore[ISO001] -- allocator recycling only: see _seg_release; pool contents never affect behavior
                entry = _SEG_POOL.pop()
                entry["seq"] = header.seq
                entry["len"] = seg_len
                entry["payload"] = payload
                entry["flags"] = flags
                entry["sent_at"] = self.sim.now
                entry["retx"] = 0
            else:
                # repro: ignore[PERF001] -- pool-miss fallback: this dict is built only while _SEG_POOL is warming up, then recycled indefinitely by _seg_release
                entry = {
                    "seq": header.seq,
                    "len": seg_len,
                    "payload": payload,
                    "flags": flags,
                    "sent_at": self.sim.now,
                    "retx": 0,
                }
            self.inflight.append(entry)

    def _rx_backlog(self) -> int:
        return 0  # the rx queue is drained by the app; modeling backlog is out of scope

    def _pump(self) -> None:
        """Send as much queued data as the congestion/flow windows allow."""
        if self._fluid_active or self._fluid_want:
            return  # flow-level mode (or draining into it): no new segments
        if self.peer_window == 0:
            # Honor a closed peer window (the old code treated 0 as one MSS
            # and kept transmitting).  If data or a FIN is pending, arm the
            # persist timer so a lost window update cannot deadlock us.
            if (
                not self._persist_armed
                and self.state in ("ESTABLISHED", "FIN_WAIT")
                and (self.snd_buf_end > self.snd_nxt or self._fin_queued)
            ):
                self._persist_start()
            return
        if self.pacing and self.srtt is not None and self.state == "ESTABLISHED":
            # Paced mode: release one segment per timer firing at cwnd/srtt
            # instead of bursting the whole window.  Until the first RTT
            # sample exists there is no rate to pace at — fall through and
            # burst (slow-start's first flight).
            self._pump_paced()
            return
        window = min(self.cwnd, self.peer_window)
        while True:
            available = self.snd_buf_end - self.snd_nxt
            in_flight = self.snd_nxt - self.snd_una
            room = window - in_flight
            if available > 0 and room > 0:
                want = min(self.mss, available, room)
                payload = self._gather(self.snd_nxt, want)
                # _gather may stop at a chunk boundary and return fewer
                # bytes; advance by what was actually segmented.
                seg_len = len(payload)
                seq = self.snd_nxt
                self.snd_nxt += seg_len
                self.bytes_sent += seg_len
                self._send_segment(_NO_FLAGS, seq, payload, True)
                continue
            if (
                self._fin_queued
                and self._fin_seq is not None
                and self.snd_nxt == self._fin_seq
                and available == 0
                and self.state == "ESTABLISHED"
            ):
                self.state = "FIN_WAIT"
                seq = self.snd_nxt
                self.snd_nxt += 1
                self._send_segment(flags=frozenset({"FIN"}), seq=seq, register_inflight=True)
            break
        if self.snd_una < self.snd_nxt:
            self._arm_timer()

    def _gather(self, seq: int, length: int) -> Payload:
        """Extract ``length`` stream bytes starting at ``seq`` from the send buffer."""
        # Drop chunks that are fully before the window base to bound memory.
        while self.snd_buf and self.snd_buf[0][0] + len(self.snd_buf[0][1]) <= self.snd_una:
            self.snd_buf.popleft()
        for start, chunk in self.snd_buf:
            clen = len(chunk)
            if start <= seq < start + clen:
                take = min(length, start + clen - seq)
                if self._fast and isinstance(chunk, VirtualPayload):
                    key = (take, chunk.tag)
                    if key == self._vp_cache_key:
                        return self._vp_cache
                    vp = VirtualPayload(size=take, tag=chunk.tag)
                    self._vp_cache, self._vp_cache_key = vp, key
                    return vp
                return _slice_payload(chunk, seq - start, take)
        raise TcpError(f"send buffer does not cover seq {seq}")

    # -- zero-window persist (RFC 1122 §4.2.2.17) --------------------------------------
    def _persist_start(self) -> None:
        self._persist_armed = True
        self._persist_backoff = max(min(self.rto, PERSIST_MAX), PERSIST_MIN)
        self._persist_rearm(self._persist_backoff)

    def _persist_rearm(self, delay: float) -> None:
        if self._fast:
            handle = self._persist_timer
            if handle is None:
                self._persist_timer = self.sim.call_later(
                    delay, TcpConnection._persist_fired, self
                )
            else:
                handle.rearm(delay)
            return
        self._persist_gen += 1
        self.sim.process(
            self._persist_proc(self._persist_gen, delay),
            name=self._persist_proc_name,
        )

    def _persist_proc(self, gen: int, delay: float) -> Generator:
        yield self.sim.timeout(delay)
        if gen != self._persist_gen:
            return
        self._persist_fired()

    def _persist_fired(self) -> None:
        if not self._persist_armed or self.state == "CLOSED":
            return
        if self.peer_window > 0:
            # Window reopened between firings (the reopen normally cancels
            # the timer from _on_segment; this covers a race with teardown).
            self._persist_stop()
            self._pump()
            return
        # Probe: one byte of new data past the window edge.  The probe is a
        # real segment (registered in flight) — the elicited ACK carries the
        # peer's current window, and if the window opened the byte is simply
        # the first byte of the resumed stream.
        if self.snd_buf_end > self.snd_nxt:
            payload = self._gather(self.snd_nxt, 1)
            seq = self.snd_nxt
            self.snd_nxt += len(payload)
            self.bytes_sent += len(payload)
            self.zero_window_probes += 1
            _ZW_PROBES.inc()
            if RECORDER.enabled:
                RECORDER.record(
                    self.sim.now, "tcp", "zero_window_probe",
                    node=self.node.name, seq=seq,
                )
            self._send_segment(_NO_FLAGS, seq, payload, True)
            self._arm_timer()
        elif self._fin_queued and self._fin_seq is not None and self.snd_nxt == self._fin_seq:
            # No data left — probe with the FIN itself.
            self.state = "FIN_WAIT"
            seq = self.snd_nxt
            self.snd_nxt += 1
            self.zero_window_probes += 1
            _ZW_PROBES.inc()
            self._send_segment(flags=_FIN_FLAGS, seq=seq, register_inflight=True)
            self._arm_timer()
        else:
            self._persist_stop()
            return
        self._persist_backoff = min(self._persist_backoff * 2, PERSIST_MAX)
        self._persist_rearm(self._persist_backoff)

    def _persist_stop(self) -> None:
        if not self._persist_armed:
            return
        self._persist_armed = False
        self._persist_gen += 1  # invalidates reference-path processes
        self._persist_backoff = PERSIST_MIN
        if self._persist_timer is not None:
            self._persist_timer.cancel()

    # -- paced transmission ------------------------------------------------------------
    def _pace_interval(self) -> float:
        # One segment every srtt/(cwnd/mss): the window spread over an RTT.
        return self.srtt * self.mss / max(self.cwnd, self.mss)

    def _pump_paced(self) -> None:
        if self._pace_armed:
            return  # timer already draining the buffer
        self._pace_send_one()

    def _pace_send_one(self) -> None:
        """Send at most one segment, then rearm the pacing timer if more remain."""
        self._pace_armed = False
        if self.state not in ("ESTABLISHED", "FIN_WAIT") or self.peer_window == 0:
            if self.peer_window == 0:
                self._pump()  # route through the persist logic
            return
        window = min(self.cwnd, self.peer_window)
        available = self.snd_buf_end - self.snd_nxt
        in_flight = self.snd_nxt - self.snd_una
        room = window - in_flight
        if available > 0 and room > 0:
            want = min(self.mss, available, room)
            payload = self._gather(self.snd_nxt, want)
            seg_len = len(payload)
            seq = self.snd_nxt
            self.snd_nxt += seg_len
            self.bytes_sent += seg_len
            self._send_segment(_NO_FLAGS, seq, payload, True)
            self._arm_timer()
            if self.snd_buf_end > self.snd_nxt:
                self._pace_armed = True
                self._pace_rearm(self._pace_interval())
            return
        if (
            self._fin_queued
            and self._fin_seq is not None
            and self.snd_nxt == self._fin_seq
            and available == 0
            and self.state == "ESTABLISHED"
        ):
            self.state = "FIN_WAIT"
            seq = self.snd_nxt
            self.snd_nxt += 1
            self._send_segment(flags=_FIN_FLAGS, seq=seq, register_inflight=True)
            self._arm_timer()

    def _pace_rearm(self, delay: float) -> None:
        if self._fast:
            handle = self._pace_timer
            if handle is None:
                self._pace_timer = self.sim.call_later(
                    delay, TcpConnection._pace_fired, self
                )
            else:
                handle.rearm(delay)
            return
        self._pace_gen += 1
        self.sim.process(
            self._pace_proc(self._pace_gen, delay),
            name=self._pace_proc_name,
        )

    def _pace_proc(self, gen: int, delay: float) -> Generator:
        yield self.sim.timeout(delay)
        if gen != self._pace_gen:
            return
        self._pace_fired()

    def _pace_fired(self) -> None:
        if not self._pace_armed or self.state == "CLOSED":
            self._pace_armed = False
            return
        self._pace_send_one()

    # -- timers -----------------------------------------------------------------------
    def _arm_timer(self) -> None:
        if self._fast:
            # Callback-lane timer, rearmed in place: no generator process,
            # no Event, no per-arm name string.  Stale firings are skipped
            # by the handle's lazy-deletion check in the engine.
            handle = self._rto_timer
            if handle is None:
                self._rto_timer = self.sim.call_later(
                    self.rto, TcpConnection._rto_fired, self
                )
            else:
                # Inlined ``TimerHandle.rearm`` (self.rto is clamped > 0).
                sim = self.sim
                # repro: ignore[ISO002] -- benchmarked fast-path inlining of TimerHandle.rearm on this connection's own simulator (PR 5), not cross-shard state
                sim._seq += 1
                seq = sim._seq
                handle._when = when = sim._now + self.rto
                handle._entry_seq = seq
                heappush(sim._heap, (when, seq, _KIND_CALL, handle))
            return
        self._timer_gen += 1
        gen = self._timer_gen
        self.sim.process(self._timer(gen), name=self._rto_proc_name)

    def _cancel_timer(self) -> None:
        self._timer_gen += 1  # invalidates reference-path timer processes
        if self._rto_timer is not None:
            self._rto_timer.cancel()

    def _rto_fired(self) -> None:
        if self.state == "CLOSED":
            return
        if self.snd_una >= self.snd_nxt and self.state in ("ESTABLISHED",):
            return  # everything acked meanwhile
        self._on_rto()

    def _timer(self, gen: int) -> Generator:
        yield self.sim.timeout(self.rto)
        if gen != self._timer_gen or self.state == "CLOSED":
            return
        if self.snd_una >= self.snd_nxt and self.state in ("ESTABLISHED",):
            return  # everything acked meanwhile
        self._on_rto()

    def _on_rto(self) -> None:
        if self.state in ("SYN_SENT", "SYN_RCVD"):
            self._handshake_retx += 1
            if self._handshake_retx > 6:
                self._teardown(TcpError("connection attempt timed out"))
                return
            if self.state == "SYN_SENT":
                # repro: ignore[PERF001] -- handshake RTO slow path: one dict per retransmission timeout, not per segment
                seg = {"seq": 0, "flags": frozenset({"SYN"}), "payload": b""}
            else:
                # repro: ignore[PERF001] -- handshake RTO slow path: one dict per retransmission timeout, not per segment
                seg = {"seq": 0, "flags": frozenset({"SYN", "ACK"}), "payload": b""}
        elif self.inflight:
            entry = self.inflight[0]
            entry["retx"] += 1
            if entry["retx"] > 8:
                self._teardown(TcpError("too many retransmissions"))
                return
            seg = entry
        else:
            return
        # Exponential backoff + collapse the window (RFC 5681).
        flight = max(self.snd_nxt - self.snd_una, self.mss)
        self.ssthresh = max(flight // 2, 2 * self.mss)
        self.cwnd = self.mss
        self.dup_acks = 0
        self._fluid_clean = 0
        self._fluid_want = False  # a timeout while draining aborts the jump
        # Timeout aborts any fast recovery and discards the SACK scoreboard
        # (RFC 2018 §8: the receiver may renege on SACKed data).
        self.in_recovery = False
        self._high_rtx = 0
        if self._sacked:
            self._sacked.clear()
        self.rto = min(self.rto * 2, MAX_RTO)
        self.rtos += 1
        self.segments_retransmitted += 1
        _RETRANSMITS.inc()
        if RECORDER.enabled:
            RECORDER.record(
                self.sim.now, "tcp", "retransmit",
                node=self.node.name, kind="rto", seq=seg["seq"], rto=self.rto,
            )
        self._send_segment(
            flags=seg.get("flags", frozenset()), seq=seg["seq"], payload=seg.get("payload", b"")
        )
        self._arm_timer()

    # -- inbound segment processing ------------------------------------------------------
    def _on_segment(self, tcp: TCPHeader, payload: Payload, ce: bool = False) -> None:
        if self.state == "CLOSED":
            return
        flags = tcp.flags  # bound once; this runs for every delivered segment
        if "RST" in flags:
            self._teardown(TcpError("connection reset by peer"))
            return
        # Capture the previously-advertised window before updating: RFC 5681
        # duplicate-ACK classification needs to know whether this segment
        # changed it (a pure window update is not a dup ACK).
        prev_window = self.peer_window
        self.peer_window = tcp.window

        if self.state == "SYN_SENT":
            if "SYN" in flags and "ACK" in flags and tcp.ack == 1:
                self.rcv_nxt = 1
                self.snd_una = 1
                self.state = "ESTABLISHED"
                self._send_segment()  # pure ACK completes the handshake
                self._established_evt.succeed(self)
                self._pump()
            return

        if self.state == "SYN_RCVD":
            if "ACK" in flags and tcp.ack >= 1:
                self.snd_una = 1
                self.state = "ESTABLISHED"
                self._established_evt.succeed(self)
                self.stack._deliver_accept(self)
                self._pump()
            # fall through: the ACK may carry data too

        if "ACK" in flags:
            self._process_ack(tcp, payload, prev_window)

        if self._persist_armed and self.peer_window > 0:
            # Window reopened — stop probing and resume normal transmission.
            self._persist_stop()
            if self.state in ("ESTABLISHED", "FIN_WAIT"):
                self._pump()

        # ECN echo state (RFC 3168 subset): CWR from the peer means our ECE
        # was heard — clear it first, so a CE mark on this very segment
        # re-raises the echo for the *next* window.
        if "CWR" in flags:
            self._ecn_echo = False
        if ce:
            self._ecn_echo = True

        fin = "FIN" in flags
        if fin or len(payload):
            self._process_data(tcp.seq, payload, fin)

    def _process_ack(self, tcp: TCPHeader, payload: Payload, prev_window: int) -> None:
        ack = tcp.ack
        if ack > self.snd_nxt:
            return  # acks data we never sent; ignore
        if tcp.sack and self.sack_enabled:
            self._register_sack(tcp.sack)
        if "ECE" in tcp.flags:
            self._on_ece()
        if ack > self.snd_una:
            acked = ack - self.snd_una
            # Captured before snd_una moves: RFC 2861-style congestion-window
            # validation needs to know whether the flow was actually
            # cwnd-limited when this window of data was sent.
            flight_before = self.snd_nxt - self.snd_una
            self.snd_una = ack
            self.bytes_acked += acked
            self.dup_acks = 0
            self.rto = min(max(self.rto, MIN_RTO), MAX_RTO)
            # RTT sampling from the oldest newly-acked, non-retransmitted segment.
            inflight = self.inflight
            while inflight and inflight[0]["seq"] + inflight[0]["len"] <= ack:
                entry = inflight.popleft()
                if entry["retx"] == 0:
                    self._update_rtt(self.sim.now - entry["sent_at"])
                _seg_release(entry)
            if self._sacked:
                self._drop_sacked_below(ack)
            if self.in_recovery:
                # RFC 6582: full vs partial acknowledgment.  ``recover`` was
                # ``snd_nxt`` at recovery entry, so ``ack == recover`` already
                # covers the whole epoch — only a *smaller* ACK is partial.
                if ack >= self.recover or ack >= self.snd_nxt:
                    # Full ACK — deflate to ssthresh and leave recovery.
                    self.in_recovery = False
                    self._high_rtx = 0
                    flight = max(self.snd_nxt - self.snd_una, self.mss)
                    self.cwnd = min(self.ssthresh, flight + self.mss)
                else:
                    # Partial ACK — the next hole is lost too: retransmit it
                    # immediately and deflate by the amount acknowledged.
                    self._partial_retransmit(ack)
                    self.cwnd = max(self.cwnd - acked + self.mss, self.mss)
            elif not self.cwnd_validation or flight_before + self.mss >= self.cwnd:
                # With validation on, a flow that was not using its window
                # (receiver- or application-limited) does not grow it — so a
                # window-limited steady flow pins cwnd exactly (RFC 2861).
                if self.cwnd < self.ssthresh:
                    self.cwnd += min(acked, self.mss)  # slow start
                else:
                    self.cwnd += max(1, self.mss * self.mss // self.cwnd)  # AIMD
            if self.fluid:
                self._fluid_clean += acked
            if self.snd_una >= self.snd_nxt:
                self._cancel_timer()  # everything acked
                if self.state == "FIN_WAIT" and self._fin_seq is not None and ack > self._fin_seq:
                    self._maybe_finish()
            else:
                self._arm_timer()
            self._pump()
            if self.fluid:
                if self._fluid_want:
                    if self.snd_una >= self.snd_nxt:
                        self._fluid_try_jump()
                elif not self._fluid_active:
                    self._maybe_fluid_enter()
        elif (
            ack == self.snd_una
            and self.snd_una < self.snd_nxt
            and len(payload) == 0
            and tcp.window == prev_window
            and "SYN" not in tcp.flags
            and "FIN" not in tcp.flags
        ):
            # A true duplicate ACK per RFC 5681 §2: no data, no window
            # change, nothing new acknowledged, data still outstanding.
            # (The old code counted *any* ack == snd_una — the peer's data
            # segments in a bidirectional transfer triggered spurious fast
            # retransmits.)
            self.dup_acks += 1
            if self.cc == "reno":
                # Legacy baseline: halve on the 3rd dup ACK, no recovery
                # state, no cwnd inflation (benchmarks compare against this).
                if self.dup_acks == 3 and self.inflight:
                    entry = self.inflight[0]
                    flight = max(self.snd_nxt - self.snd_una, self.mss)
                    self.ssthresh = max(flight // 2, 2 * self.mss)
                    self.cwnd = self.ssthresh
                    self._retransmit_entry(entry, "fast")
                    self._arm_timer()
                return
            if not self.in_recovery:
                if self.dup_acks == 3 and self.inflight:
                    self._enter_recovery()
            else:
                # Each further dup ACK means another segment left the
                # network — inflate cwnd and try to fill known SACK holes.
                self.cwnd += self.mss
                if self._sacked:
                    self._sack_retransmit()
                self._pump()

    # -- NewReno fast recovery (RFC 6582) ----------------------------------------------
    def _enter_recovery(self) -> None:
        self.recover = self.snd_nxt
        flight = max(self.snd_nxt - self.snd_una, self.mss)
        self.ssthresh = max(flight // 2, 2 * self.mss)
        self.in_recovery = True
        self._fluid_clean = 0
        self._fluid_want = False  # loss while draining aborts the jump
        self._high_rtx = self.snd_una
        self.fast_recoveries += 1
        _FAST_RECOVERIES.inc()
        if RECORDER.enabled:
            RECORDER.record(
                self.sim.now, "tcp", "fast_recovery",
                node=self.node.name, recover=self.recover,
            )
        self._retransmit_entry(self.inflight[0], "fast")
        # Inflate by the three dup ACKs that signalled the loss.
        self.cwnd = self.ssthresh + 3 * self.mss
        self._arm_timer()

    def _partial_retransmit(self, ack: int) -> None:
        """Retransmit the first unacked, un-SACKed segment after a partial ACK."""
        for entry in self.inflight:
            seq = entry["seq"]
            if seq < ack:
                continue
            if self._sack_covered(seq, seq + entry["len"]):
                continue
            self._retransmit_entry(entry, "partial")
            self._arm_timer()
            return

    def _retransmit_entry(self, entry: dict, kind: str) -> None:
        entry["retx"] += 1
        self.segments_retransmitted += 1
        _RETRANSMITS.inc()
        if RECORDER.enabled:
            RECORDER.record(
                self.sim.now, "tcp", "retransmit",
                node=self.node.name, kind=kind, seq=entry["seq"],
            )
        self._send_segment(
            flags=entry.get("flags", _NO_FLAGS),
            seq=entry["seq"],
            payload=entry.get("payload", b""),
        )
        end = entry["seq"] + entry["len"]
        if end > self._high_rtx:
            self._high_rtx = end

    # -- SACK scoreboard (RFC 2018) ----------------------------------------------------
    def _register_sack(self, blocks: tuple) -> None:
        """Merge peer-reported received ranges into the sorted scoreboard."""
        self._fluid_clean = 0  # reordering/loss signal: not a steady flow
        sacked = self._sacked
        una = self.snd_una
        for start, end in blocks:
            if end <= una:
                continue  # stale block below the cumulative ACK
            if start < una:
                start = una
            # Insertion + merge keeping ``sacked`` sorted and disjoint.
            merged = False
            for rng in sacked:
                if start <= rng[1] and end >= rng[0]:  # overlaps/abuts
                    if start < rng[0]:
                        rng[0] = start
                    if end > rng[1]:
                        rng[1] = end
                    merged = True
                    break
            if not merged:
                sacked.append([start, end])
        if len(sacked) > 1:
            sacked.sort()
            # Coalesce neighbours that merging may have brought together.
            out = [sacked[0]]
            for rng in sacked[1:]:
                if rng[0] <= out[-1][1]:
                    if rng[1] > out[-1][1]:
                        out[-1][1] = rng[1]
                else:
                    out.append(rng)
            self._sacked = out

    def _drop_sacked_below(self, ack: int) -> None:
        self._sacked = [
            rng if rng[0] >= ack else [ack, rng[1]]
            for rng in self._sacked
            if rng[1] > ack
        ]

    def _sack_covered(self, start: int, end: int) -> bool:
        for s, e in self._sacked:
            if s <= start and end <= e:
                return True
        return False

    def _sack_retransmit(self) -> None:
        """Fill the lowest un-SACKed hole below the highest SACKed byte.

        A hole is only *known* lost once SACKed data sits above it; at most
        one hole is filled per incoming ACK (matching the one-segment-per-ACK
        clocking of fast recovery).
        """
        top = self._sacked[-1][1]  # scoreboard is sorted: highest SACKed byte
        high_rtx = self._high_rtx
        for entry in self.inflight:
            seq = entry["seq"]
            end = seq + entry["len"]
            if end > top:
                break  # not known-lost: no SACKed data above this hole
            if seq < high_rtx:
                continue  # already retransmitted this recovery
            if self._sack_covered(seq, end):
                continue  # peer has it
            self._retransmit_entry(entry, "sack")
            self._arm_timer()
            return

    # -- ECN (RFC 3168 subset) ---------------------------------------------------------
    def _on_ece(self) -> None:
        """Peer echoed a CE mark: reduce once per window, then signal CWR."""
        if self.snd_una < self._ecn_recover or self.in_recovery:
            return  # already reduced for this window (or recovering from loss)
        flight = max(self.snd_nxt - self.snd_una, self.mss)
        self.ssthresh = max(flight // 2, 2 * self.mss)
        self.cwnd = self.ssthresh
        self._ecn_recover = self.snd_nxt
        self._cwr_pending = True
        self.ecn_reductions += 1
        _ECN_REDUCTIONS.inc()
        if RECORDER.enabled:
            RECORDER.record(
                self.sim.now, "tcp", "ecn_reduction", node=self.node.name,
            )
        self._fluid_clean = 0
        if self._fluid_active:
            self._fluid_exit("ecn")  # congestion: back to per-packet fidelity
        elif self._fluid_want:
            self._fluid_want = False

    def _sack_blocks(self) -> tuple:
        """Receiver side: out-of-order ranges to advertise (ascending)."""
        spans = sorted(
            (seq, seq + len(p) + (1 if fin else 0))
            for seq, (p, fin) in self.ooo.items()
        )
        blocks: list[tuple[int, int]] = []
        for start, end in spans:
            if blocks and start <= blocks[-1][1]:
                if end > blocks[-1][1]:
                    blocks[-1] = (blocks[-1][0], end)
            else:
                blocks.append((start, end))
        return tuple(blocks[:SACK_MAX_BLOCKS])

    def _update_rtt(self, sample: float) -> None:
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = min(max(self.srtt + 4 * self.rttvar, MIN_RTO), MAX_RTO)
        _RTT.observe(sample)

    # -- fluid fast-forward (flow-level bulk mode) ---------------------------------------
    #
    # Protocol: once a window-limited bulk flow has been steady for
    # FLUID_STABLE_WINDOWS windows, the sender (1) stops emitting new
    # segments and sends an in-band probe announcing its directory id,
    # (2) waits for the pipe to drain (snd_una == snd_nxt) and for the
    # probe to have linked the peer connection object, then (3) advances
    # both endpoints in closed form at min(cwnd, peer_window)/srtt via one
    # rearmed callback timer, charging crypto/link costs per virtual byte.
    # Any disturbance — loss, ECN echo, a dataplane rekey, a competing flow
    # on either stack, peer teardown — drops the flow back to packet mode
    # with exactly the sender/receiver state a per-packet run would have at
    # that stream offset.

    def _fluid_eligible(self) -> bool:
        if (
            self.state != "ESTABLISHED"
            or self.in_recovery
            or self._sacked
            or self._ecn_echo
            or self._cwr_pending
            or self._persist_armed
            or self.pacing
            or self.srtt is None
            or self.ooo
        ):
            return False
        wnd = self.peer_window
        # Strictly past the cwnd-validation equilibrium (cwnd > wnd + mss):
        # below it cwnd is still creeping up each ACK, and freezing early
        # would diverge from the per-packet run.
        if wnd <= 0 or self.cwnd <= wnd + self.mss:
            return False
        if self._fluid_clean < FLUID_STABLE_WINDOWS * wnd:
            return False
        remaining = self.snd_buf_end - self.snd_nxt
        if remaining < FLUID_MIN_WINDOWS * wnd or remaining < 4 * self.mss:
            return False
        # Every byte that would be fast-forwarded must be virtual — real
        # bytes always travel as segments.
        for start, chunk in self.snd_buf:
            if start + len(chunk) <= self.snd_nxt:
                continue
            if not isinstance(chunk, VirtualPayload):
                return False
        return True

    def _maybe_fluid_enter(self) -> None:
        if not self._fluid_eligible():
            return
        self._fluid_want = True
        self._fluid_goal = self.snd_buf_end
        self._fluid_wait_tries = 0
        if self._fluid_peer is None:
            self._fluid_send_probe()
        if self.snd_una >= self.snd_nxt:
            self._fluid_try_jump()

    def _fluid_send_probe(self) -> None:
        """In-band peer discovery: a pure ACK whose meta names our directory id.

        It rides the normal dataplane — through output shims, ESP/VPN
        encapsulation and decapsulation — so whatever endpoint demultiplexes
        it *is* the peer connection object, LSI/HIT translation included.
        """
        header = TCPHeader(
            self.local_port, self.remote_port, self.snd_nxt, self.rcv_nxt,
            _ACK_FLAGS, self.recv_window, _EMPTY_SACK,
        )
        packet = Packet(
            # repro: ignore[PERF001] -- fluid probes fire once per discovery round-trip, not per fluid-advance event; the meta dict is how the peer demultiplexes them
            headers=(header,), payload=b"", meta={"fluid_probe": self._fluid_id}
        )
        self.node.send_ip(self.remote_addr, "tcp", packet, src=self.local_addr)
        self.segments_sent += 1
        _SEGMENTS_SENT.value += 1
        if RECORDER.enabled:
            RECORDER.record(
                self.sim.now, "tcp", "fluid_probe",
                node=self.node.name, dst_port=self.remote_port,
            )

    def _on_fluid_probe(self, sender_id: int) -> None:
        if self.state not in ("ESTABLISHED", "FIN_WAIT"):
            return
        conns = self.sim.services.get("tcp.fluid_conns")
        sender = None if conns is None else conns.get(sender_id)
        if sender is None or sender is self or sender.sim is not self.sim:
            return
        sender._fluid_peer = self
        self._fluid_peer = sender  # back-link severed on either teardown

    def _fluid_try_jump(self) -> None:
        if not self._fluid_want or self.state != "ESTABLISHED":
            return
        peer = self._fluid_peer
        if peer is None:
            # Probe (or its link-back) still in flight: check again in an
            # RTT, give up after a few tries.
            self._fluid_wait_tries += 1
            if self._fluid_wait_tries > FLUID_PROBE_RETRIES:
                self._fluid_abort()
                return
            if self._fluid_wait_tries > 1:
                self._fluid_send_probe()
            self._fluid_arm(max(self.srtt or 0.0, 0.01))
            return
        if (
            peer.state != "ESTABLISHED"
            or peer.sim is not self.sim
            or peer.rcv_nxt != self.snd_nxt
            or peer.ooo
            or peer._fluid_active
        ):
            self._fluid_abort()
            return
        wnd = min(self.cwnd, self.peer_window)
        if wnd <= 0 or self.srtt is None:
            self._fluid_abort()
            return
        self._fluid_want = False
        self._fluid_active = True
        self._fluid_rate = wnd / self.srtt
        self._fluid_entry_flows = len(self.stack._connections) + len(
            peer.stack._connections
        )
        self._fluid_entry_epoch = (
            self.node.dataplane_epoch + peer.node.dataplane_epoch
        )
        self._fluid_entry_wnd = self.peer_window
        self.fluid_enters += 1
        _FLUID_ENTERS.inc()
        self.fluid_log.append(
            ("enter", self.sim.now, self.snd_nxt, self.cwnd, self.bytes_acked)
        )
        if RECORDER.enabled:
            RECORDER.record(
                self.sim.now, "tcp", "fluid_enter",
                node=self.node.name, dst_port=self.remote_port,
                seq=self.snd_nxt, rate_bps=self._fluid_rate * 8.0,
            )
        self._fluid_schedule()

    def _fluid_abort(self) -> None:
        """Leave the drain state without having jumped; resume packet mode."""
        self._fluid_want = False
        self._fluid_clean = 0
        if self.state in ("ESTABLISHED", "FIN_WAIT"):
            self._pump()

    def _fluid_arm(self, delay: float) -> None:
        handle = self._fluid_timer
        if handle is None:
            self._fluid_timer = self.sim.call_later(
                delay, TcpConnection._fluid_fired, self
            )
        else:
            handle.rearm(delay)

    def _fluid_schedule(self) -> None:
        remaining = self._fluid_goal - self.snd_nxt
        chunk = min(remaining, max(int(self._fluid_rate * FLUID_CHUNK_S), self.mss))
        self._fluid_chunk = chunk
        self._fluid_arm(chunk / self._fluid_rate)

    def _fluid_fired(self) -> None:
        if self._fluid_active:
            self._fluid_advance()
        elif self._fluid_want:
            if self.snd_una >= self.snd_nxt:
                self._fluid_try_jump()
            # else: still draining; the ACK path retries the jump.

    def _fluid_advance(self) -> None:
        if self.state != "ESTABLISHED":
            return
        peer = self._fluid_peer
        if (
            peer is None
            or peer.state != "ESTABLISHED"
            or (
                self.fluid_flow_guard
                and len(self.stack._connections) + len(peer.stack._connections)
                != self._fluid_entry_flows
            )
            or self.node.dataplane_epoch + peer.node.dataplane_epoch
            != self._fluid_entry_epoch
            or self.peer_window != self._fluid_entry_wnd
        ):
            self._fluid_exit("disturbed")
            return
        n = min(self._fluid_chunk, self._fluid_goal - self.snd_nxt)
        if n <= 0:
            self._fluid_exit("complete")
            return
        # Deliver the stream slice(s) to the peer's receive queue exactly as
        # per-packet _accept_data would, minus the segment events.
        seq = self.snd_nxt
        end = seq + n
        while seq < end:
            piece = self._gather(seq, end - seq)
            peer.rx.try_put(piece)
            seq += len(piece)
        self.snd_nxt = end
        self.snd_una = end
        self.bytes_sent += n
        self.bytes_acked += n
        self.fluid_bytes += n
        peer.rcv_nxt = end
        peer.bytes_received += n
        _FLUID_BYTES.value += n
        self._fluid_charge(n)
        # Trim delivered chunks (same drop rule as _gather's).
        buf = self.snd_buf
        while buf and buf[0][0] + len(buf[0][1]) <= self.snd_una:
            buf.popleft()
        if self.snd_nxt < self._fluid_goal:
            self._fluid_schedule()
        else:
            self._fluid_exit("complete")

    def _fluid_charge(self, n: int) -> None:
        """Charge per-byte dataplane costs the skipped segments would have paid."""
        segs = (n + self.mss - 1) // self.mss
        node = self.node
        if node.fluid_taxers:
            for taxer in node.fluid_taxers:
                taxer(self.remote_addr, n, segs, "out")
        peer = self._fluid_peer
        pnode = peer.node
        if pnode.fluid_taxers:
            for taxer in pnode.fluid_taxers:
                taxer(peer.remote_addr, n, segs, "in")
        # First-hop wire accounting on the sender's egress (if it has a
        # routed one — shim-handled LSI/HIT destinations are charged by
        # their daemon's taxer instead).
        iface = node.routes.lookup(self.remote_addr)
        if iface is not None and iface._endpoint is not None:
            iface._endpoint.account_fluid(n, segs)

    def _fluid_exit(self, why: str) -> None:
        if not self._fluid_active:
            return
        self._fluid_active = False
        self._fluid_clean = 0  # require fresh stability before re-entering
        self.fluid_exits += 1
        _FLUID_EXITS.inc()
        self.fluid_log.append(
            ("exit:" + why, self.sim.now, self.snd_nxt, self.cwnd, self.bytes_acked)
        )
        if RECORDER.enabled:
            RECORDER.record(
                self.sim.now, "tcp", "fluid_exit",
                node=self.node.name, dst_port=self.remote_port,
                seq=self.snd_nxt, why=why,
            )
        if self._fluid_timer is not None:
            self._fluid_timer.cancel()
        if self.state == "ESTABLISHED":
            self._pump()  # resume per-packet transmission (FIN included)

    def _process_data(self, seq: int, payload: Payload, fin: bool) -> None:
        rcv_nxt = self.rcv_nxt
        if seq > rcv_nxt:
            self.ooo[seq] = (payload, fin)
            self._ack_now()  # immediate dup ACK (with SACK blocks) signals the gap
            return
        if seq + len(payload) + (1 if fin else 0) <= rcv_nxt:
            self._send_segment()  # pure duplicate; re-ACK
            return
        # In-order, possibly overlapping data already delivered (SACK
        # retransmits and zero-window probes produce real overlap): trim the
        # payload to start at rcv_nxt so bytes are never double-counted.
        if seq < rcv_nxt:
            trim = rcv_nxt - seq
            plen = len(payload)
            if trim >= plen:
                payload = b""  # only the FIN is new
            else:
                payload = _slice_payload(payload, trim, plen - trim)
        had_ooo = bool(self.ooo)
        self._accept_data(payload, fin)
        # Pull any queued out-of-order continuations, trimming overlaps.
        ooo = self.ooo
        while ooo:
            nxt = self.rcv_nxt
            if nxt in ooo:
                nxt_payload, nxt_fin = ooo.pop(nxt)
                self._accept_data(nxt_payload, nxt_fin)
                continue
            # No exact match: look for a stored segment straddling rcv_nxt
            # (deterministic: dict iteration is insertion-ordered).
            straddle = None
            for s, (p, f) in ooo.items():
                if s < nxt:
                    straddle = (s, p, f)
                    break
            if straddle is None:
                break
            s, p, f = straddle
            del ooo[s]
            end = s + len(p) + (1 if f else 0)
            if end <= nxt:
                continue  # fully stale; drop
            trim = nxt - s
            plen = len(p)
            self._accept_data(
                b"" if trim >= plen else _slice_payload(p, trim, plen - trim), f
            )
        if fin or had_ooo:
            self._ack_now()
            return
        self._delack_pending += 1
        if self._delack_pending >= 2:
            self._ack_now()
        elif not self._delack_timer_armed:
            self._delack_timer_armed = True
            if self._fast:
                handle = self._delack_handle
                if handle is None:
                    self._delack_handle = self.sim.call_later(
                        DELACK_TIMEOUT, TcpConnection._delack_fired, self
                    )
                else:
                    # Inlined ``TimerHandle.rearm`` (constant positive delay).
                    sim = self.sim
                    # repro: ignore[ISO002] -- benchmarked fast-path inlining of TimerHandle.rearm on this connection's own simulator (PR 5), not cross-shard state
                    sim._seq += 1
                    seq = sim._seq
                    handle._when = when = sim._now + DELACK_TIMEOUT
                    handle._entry_seq = seq
                    heappush(sim._heap, (when, seq, _KIND_CALL, handle))
            else:
                self.sim.process(self._delack_timer(), name="tcp-delack")

    def _ack_now(self) -> None:
        self._delack_pending = 0
        self._send_segment()  # cumulative ACK

    def _delack_fired(self) -> None:
        self._delack_timer_armed = False
        if self._delack_pending and self.state not in ("CLOSED",):
            self._ack_now()

    def _delack_timer(self) -> Generator:
        yield self.sim.timeout(DELACK_TIMEOUT)
        self._delack_timer_armed = False
        if self._delack_pending and self.state not in ("CLOSED",):
            self._ack_now()

    def _accept_data(self, payload: Payload, fin: bool) -> None:
        plen = len(payload)
        if plen:
            self.rcv_nxt += plen
            self.bytes_received += plen
            self.rx.try_put(payload)
        if fin:
            self.rcv_nxt += 1
            self._peer_fin_seen = True
            self.rx.try_put(b"")  # EOF marker
            self._maybe_finish()

    def _maybe_finish(self) -> None:
        """Close fully once our FIN is acked and the peer's FIN arrived."""
        ours_done = (
            self._fin_seq is not None and self.snd_una > self._fin_seq
        ) or not self._fin_queued
        if self._peer_fin_seen and self._fin_queued and ours_done:
            self._teardown(None)

    def _teardown(self, error: TcpError | None) -> None:
        if self.state == "CLOSED":
            return
        self.state = "CLOSED"
        self._cancel_timer()
        if self._delack_handle is not None:
            # LIF001 catch: a pending delayed-ACK timer survived teardown,
            # keeping the closed connection live on the heap until it fired.
            self._delack_handle.cancel()
            self._delack_timer_armed = False
        self._persist_stop()
        self._pace_armed = False
        self._pace_gen += 1
        if self._pace_timer is not None:
            self._pace_timer.cancel()
        if self._fluid_timer is not None:
            self._fluid_timer.cancel()
        self._fluid_active = False
        self._fluid_want = False
        if self._fluid_id:
            conns = self.sim.services.get("tcp.fluid_conns")
            if conns is not None:
                conns.pop(self._fluid_id, None)
        peer = self._fluid_peer
        if peer is not None:
            self._fluid_peer = None
            if peer._fluid_peer is self:
                peer._fluid_peer = None
                if peer._fluid_active:
                    peer._fluid_exit("peer_closed")
        self.stack._forget(self)
        if error is not None:
            _FAILURES.inc()
            if RECORDER.enabled:
                RECORDER.record(
                    self.sim.now, "tcp", "teardown",
                    node=self.node.name, dst_port=self.remote_port, error=str(error),
                )
        if not self._established_evt.triggered:
            self._established_evt.fail(error or TcpError("closed before established"))
        if not self._closed_evt.triggered:
            self._closed_evt.succeed(error)
        if error is not None:
            self.rx.try_put(b"")  # unblock readers with EOF

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<TcpConnection {self.local_addr}:{self.local_port} -> "
            f"{self.remote_addr}:{self.remote_port} {self.state}>"
        )


class TcpListener:
    """Passive socket: queue of established inbound connections."""

    def __init__(
        self,
        stack: "TcpStack",
        port: int,
        recv_window: int,
        mss: int,
        cc: str = "newreno",
        fluid: bool = False,
        fluid_flow_guard: bool = True,
    ) -> None:
        self.stack = stack
        self.port = port
        self.recv_window = recv_window
        self.mss = mss
        self.cc = cc
        self.fluid = fluid
        self.fluid_flow_guard = fluid_flow_guard
        self.backlog = Queue(stack.node.sim, capacity=128)

    def accept(self):
        """Event yielding the next ESTABLISHED TcpConnection."""
        return self.backlog.get()

    def close(self) -> None:
        self.stack._listeners.pop(self.port, None)


class TcpStack:
    """Per-node TCP engine."""

    def __init__(self, node: "Node") -> None:
        self.node = node
        self._connections: dict[tuple, TcpConnection] = {}
        self._listeners: dict[int, TcpListener] = {}
        #: Refcount of live connections per local port — the ephemeral
        #: allocator must not hand out a port that still keys a connection
        #: (the demux tuple would collide).
        self._local_ports: dict[int, int] = {}
        self._next_ephemeral = 33000
        self._fast = node.sim.fast_path
        node.register_protocol("tcp", self._on_packet)
        self.rx_unmatched = 0

    # -- API ----------------------------------------------------------------------
    def listen(
        self,
        port: int,
        recv_window: int = DEFAULT_WINDOW,
        mss: int = DEFAULT_MSS,
        cc: str = "newreno",
        fluid: bool = False,
        fluid_flow_guard: bool = True,
    ) -> TcpListener:
        if port in self._listeners:
            raise OSError(f"TCP port {port} already listening on {self.node.name}")
        listener = TcpListener(self, port, recv_window, mss, cc, fluid=fluid,
                               fluid_flow_guard=fluid_flow_guard)
        self._listeners[port] = listener
        return listener

    def connect(
        self,
        remote_addr: IPAddress,
        remote_port: int,
        local_addr: IPAddress | None = None,
        recv_window: int = DEFAULT_WINDOW,
        mss: int = DEFAULT_MSS,
        cc: str = "newreno",
        pacing: bool = False,
        fluid: bool = False,
        fluid_flow_guard: bool = True,
        cwnd_validation: bool | None = None,
    ) -> TcpConnection:
        """Initiate a connection; wait on ``conn.established`` to use it."""
        if local_addr is None:
            local_addr = self.node._pick_source(remote_addr)
            if local_addr is None:
                raise TcpError(f"no route to {remote_addr}")
        local_port = self._alloc_ephemeral()
        conn = TcpConnection(
            self, local_addr, local_port, remote_addr, remote_port,
            mss=mss, recv_window=recv_window, cc=cc, pacing=pacing,
            fluid=fluid, fluid_flow_guard=fluid_flow_guard,
            cwnd_validation=cwnd_validation,
        )
        self._connections[self._key(local_port, remote_addr, remote_port)] = conn
        self._local_ports[local_port] = self._local_ports.get(local_port, 0) + 1
        conn._start_connect()
        return conn

    def open_connection(self, remote_addr: IPAddress, remote_port: int, **kw) -> Generator:
        """Process-generator: connect and wait until established."""
        conn = self.connect(remote_addr, remote_port, **kw)
        yield conn.established
        return conn

    # -- internals ---------------------------------------------------------------------
    @staticmethod
    def _key(local_port: int, remote_addr: IPAddress, remote_port: int) -> tuple:
        return (local_port, remote_addr.family, remote_addr.value, remote_port)

    def _alloc_ephemeral(self) -> int:
        # Skip ports still held by live connections or listeners: handing a
        # long-lived connection's port out twice would corrupt the demux key.
        in_use = self._local_ports
        listeners = self._listeners
        for _ in range(65536 - 33000):
            port = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral > 65535:
                self._next_ephemeral = 33000
            if not in_use.get(port) and port not in listeners:
                return port
        raise TcpError("ephemeral port space exhausted")

    def _forget(self, conn: TcpConnection) -> None:
        removed = self._connections.pop(
            self._key(conn.local_port, conn.remote_addr, conn.remote_port), None
        )
        if removed is not None:
            port = conn.local_port
            count = self._local_ports.get(port, 0) - 1
            if count > 0:
                self._local_ports[port] = count
            else:
                self._local_ports.pop(port, None)

    def _deliver_accept(self, conn: TcpConnection) -> None:
        listener = self._listeners.get(conn.local_port)
        if listener is not None:
            listener.backlog.try_put(conn)

    def _on_packet(self, node: "Node", packet: Packet, iface: "Interface | None") -> None:
        if self._fast:
            # Index the header stack in place: ``popped()`` allocates a new
            # Packet per layer via ``dataclasses.replace`` and this handler
            # runs once per delivered segment.  The inner packet's payload
            # is the same object, so nothing else changes.
            headers = packet.headers
            ip = headers[0]
            tcp = headers[1]
            body_payload = packet.payload
        else:
            ip, inner = packet.popped()
            tcp, body = inner.popped()
            body_payload = body.payload
            assert isinstance(tcp, TCPHeader)
        key = self._key(tcp.dst_port, ip.src, tcp.src_port)
        conn = self._connections.get(key)
        if conn is not None:
            meta = packet.meta
            if meta:
                probe = meta.get("fluid_probe")
                if probe:
                    conn._on_fluid_probe(probe)
            conn._on_segment(tcp, body_payload, True if meta and meta.get("ce") else False)
            return
        if tcp.has("SYN") and not tcp.has("ACK"):
            listener = self._listeners.get(tcp.dst_port)
            if listener is not None:
                conn = TcpConnection(
                    self, ip.dst, tcp.dst_port, ip.src, tcp.src_port,
                    mss=listener.mss, recv_window=listener.recv_window,
                    cc=listener.cc, fluid=listener.fluid,
                    fluid_flow_guard=listener.fluid_flow_guard,
                )
                self._connections[key] = conn
                self._local_ports[tcp.dst_port] = (
                    self._local_ports.get(tcp.dst_port, 0) + 1
                )
                conn._start_accept()
                return
        self.rx_unmatched += 1
        if not tcp.has("RST"):
            # Refuse with RST per RFC 793 §3.4 reset generation: if the
            # offending segment carried an ACK, the reset takes its seq from
            # that ACK; otherwise seq is 0 and the reset ACKs the segment so
            # the peer can match it (the old code used tcp.ack even for
            # ACK-less segments — garbage/zero seq on the wire).
            if tcp.has("ACK"):
                rst = TCPHeader(
                    src_port=tcp.dst_port, dst_port=tcp.src_port,
                    seq=tcp.ack, ack=0, flags=_RST_FLAGS,
                )
            else:
                seg_len = (
                    len(body_payload)
                    + (1 if tcp.has("SYN") else 0)
                    + (1 if tcp.has("FIN") else 0)
                )
                rst = TCPHeader(
                    src_port=tcp.dst_port, dst_port=tcp.src_port,
                    seq=0, ack=tcp.seq + seg_len, flags=_RST_ACK_FLAGS,
                )
            node.send_ip(ip.src, "tcp", Packet(headers=(rst,)), src=ip.dst)
