"""IP addresses and prefixes, including the HIP-specific ranges.

Addresses are immutable (family, int) pairs.  Two special ranges matter for
HIP (RFC 4843 / RFC 5338):

* **HITs** live in the ORCHID prefix ``2001:10::/28`` — IPv6-shaped
  identifiers that applications can use like addresses.
* **LSIs** live in ``1.0.0.0/8`` — locally-scoped IPv4 aliases for HITs so
  unmodified IPv4 applications can address HIP peers.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache


@dataclass(frozen=True, order=True)
class IPAddress:
    """An IPv4 (family=4) or IPv6 (family=6) address."""

    family: int
    value: int

    def __post_init__(self) -> None:
        if self.family == 4:
            if not 0 <= self.value < (1 << 32):
                raise ValueError("IPv4 address out of range")
        elif self.family == 6:
            if not 0 <= self.value < (1 << 128):
                raise ValueError("IPv6 address out of range")
        else:
            raise ValueError(f"unknown address family {self.family}")

    @property
    def bits(self) -> int:
        return 32 if self.family == 4 else 128

    def packed(self) -> bytes:
        return self.value.to_bytes(self.bits // 8, "big")

    def __str__(self) -> str:
        if self.family == 4:
            return ".".join(str((self.value >> s) & 0xFF) for s in (24, 16, 8, 0))
        groups = [(self.value >> s) & 0xFFFF for s in range(112, -16, -16)]
        return ":".join(f"{g:x}" for g in groups)

    def __repr__(self) -> str:
        return f"ip('{self}')"


@lru_cache(maxsize=4096)
def ipv4(text_or_int: str | int) -> IPAddress:
    """Parse dotted-quad text (or accept a raw int) into an IPv4 address."""
    if isinstance(text_or_int, int):
        return IPAddress(4, text_or_int)
    parts = text_or_int.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address {text_or_int!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"IPv4 octet out of range in {text_or_int!r}")
        value = (value << 8) | octet
    return IPAddress(4, value)


@lru_cache(maxsize=4096)
def ipv6(text_or_int: str | int) -> IPAddress:
    """Parse (possibly ``::``-compressed) IPv6 text into an address."""
    if isinstance(text_or_int, int):
        return IPAddress(6, text_or_int)
    text = text_or_int
    if "::" in text:
        head, _, tail = text.partition("::")
        if "::" in tail:
            raise ValueError(f"multiple '::' in IPv6 address {text!r}")
        head_groups = head.split(":") if head else []
        tail_groups = tail.split(":") if tail else []
        missing = 8 - len(head_groups) - len(tail_groups)
        if missing < 1:
            raise ValueError(f"malformed IPv6 address {text!r}")
        groups = head_groups + ["0"] * missing + tail_groups
    else:
        groups = text.split(":")
    if len(groups) != 8 or any(g == "" for g in groups):
        raise ValueError(f"malformed IPv6 address {text!r}")
    value = 0
    for g in groups:
        part = int(g, 16)
        if not 0 <= part <= 0xFFFF:
            raise ValueError(f"IPv6 group out of range in {text!r}")
        value = (value << 16) | part
    return IPAddress(6, value)


@dataclass(frozen=True)
class Prefix:
    """A routing prefix: network address + length."""

    network: IPAddress
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= self.network.bits:
            raise ValueError(f"prefix length {self.length} out of range")
        shift = self.network.bits - self.length
        if self.network.value & ((1 << shift) - 1):
            raise ValueError(f"host bits set in prefix {self.network}/{self.length}")

    def contains(self, addr: IPAddress) -> bool:
        if addr.family != self.network.family:
            return False
        shift = addr.bits - self.length
        return (addr.value >> shift) == (self.network.value >> shift)

    def __str__(self) -> str:
        return f"{self.network}/{self.length}"


def prefix(text: str) -> Prefix:
    """Parse ``'10.0.0.0/8'`` or ``'2001:10::/28'`` style prefix text."""
    addr_text, _, len_text = text.partition("/")
    if not len_text:
        raise ValueError(f"prefix missing length: {text!r}")
    parse = ipv6 if ":" in addr_text else ipv4
    return Prefix(parse(addr_text), int(len_text))


# HIP-specific ranges.
ORCHID_PREFIX = prefix("2001:10::/28")  # HITs (RFC 4843)
LSI_PREFIX = prefix("1.0.0.0/8")  # Local-Scope Identifiers (HIPL convention)
TEREDO_PREFIX = prefix("2001:0::/32")  # Teredo (RFC 4380)


def is_hit(addr: IPAddress) -> bool:
    """True if ``addr`` is a Host Identity Tag (ORCHID-prefixed IPv6)."""
    return addr.family == 6 and ORCHID_PREFIX.contains(addr)


def is_lsi(addr: IPAddress) -> bool:
    """True if ``addr`` is a Local-Scope Identifier (1.x.x.x IPv4)."""
    return addr.family == 4 and LSI_PREFIX.contains(addr)


def is_teredo(addr: IPAddress) -> bool:
    return addr.family == 6 and TEREDO_PREFIX.contains(addr)
