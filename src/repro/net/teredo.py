"""Teredo tunneling (RFC 4380, simplified): IPv6 over UDP over IPv4.

The paper's power users reach cloud VMs over HIP combined with Teredo when
they sit behind NATs (native HIP NAT traversal was not yet implemented in
2012).  We implement the three roles:

* **server** — answers router solicitations, telling the client its
  NAT-mapped (address, port) from which the client derives its Teredo IPv6
  address ``2001:0:<server-v4>:<flags>:<~port>:<~addr>``;
* **client** — qualifies against a server, owns the derived address, and
  encapsulates/decapsulates IPv6 packets in UDP;
* **relay** — forwards between native IPv6 hosts and Teredo clients.

Client↔client traffic flows directly between the mapped endpoints (both our
NATs are full-cone), but every packet crosses the *userspace* Teredo daemon
on each host — the dominant cost in practice (miredo in the paper's setup)
and the reason Teredo shows the worst RTT in Figure 3.  That per-packet
daemon cost is charged from :class:`~repro.crypto.costmodel.CostModel`.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Generator

from repro.net.addresses import IPAddress, TEREDO_PREFIX, ipv4, is_teredo
from repro.net.packet import IPHeader, Packet
from repro.net.udp import UdpStack
from repro.sim.resources import Queue

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node

TEREDO_PORT = 3544

# Control message tags (first byte of a Teredo UDP payload in our encoding).
_TAG_RS = 0x01  # router solicitation
_TAG_RA = 0x02  # router advertisement
_TAG_DATA = 0x00  # encapsulated IPv6 packet follows (as a tunneled Packet)

_RA_LEN = 7  # tag + mapped IPv4 (4) + mapped port (2)


class TeredoParseError(ValueError):
    """Malformed Teredo control message."""


def parse_ra(data: bytes) -> tuple[IPAddress, int]:
    """Parse a router advertisement into (mapped_addr, mapped_port)."""
    if len(data) != _RA_LEN:
        raise TeredoParseError(f"RA must be {_RA_LEN} bytes, got {len(data)}")
    mapped_addr = ipv4(int.from_bytes(bytes(data[1:5]), "big"))
    (mapped_port,) = struct.unpack(">H", bytes(data[5:7]))
    return mapped_addr, mapped_port


def make_teredo_address(server_v4: IPAddress, mapped_addr: IPAddress, mapped_port: int) -> IPAddress:
    """Derive the client's Teredo IPv6 address (RFC 4380 §4)."""
    if server_v4.family != 4 or mapped_addr.family != 4:
        raise ValueError("Teredo requires IPv4 server and mapped addresses")
    value = (
        (TEREDO_PREFIX.network.value >> 96) << 96
        | server_v4.value << 64
        | 0x0000 << 48  # flags: cone NAT
        | (mapped_port ^ 0xFFFF) << 32
        | (mapped_addr.value ^ 0xFFFFFFFF)
    )
    return IPAddress(6, value)


def parse_teredo_address(addr: IPAddress) -> tuple[IPAddress, IPAddress, int]:
    """Extract (server_v4, mapped_addr, mapped_port) from a Teredo address."""
    if not is_teredo(addr):
        raise ValueError(f"{addr} is not a Teredo address")
    server_v4 = ipv4((addr.value >> 64) & 0xFFFFFFFF)
    mapped_port = ((addr.value >> 32) & 0xFFFF) ^ 0xFFFF
    mapped_addr = ipv4((addr.value & 0xFFFFFFFF) ^ 0xFFFFFFFF)
    return server_v4, mapped_addr, mapped_port


class TeredoServer:
    """Qualification server: reflects the client's mapped address back."""

    def __init__(self, node: "Node", udp: UdpStack) -> None:
        self.node = node
        self.sock = udp.bind(TEREDO_PORT)
        self.solicitations = 0
        node.sim.process(self._serve(), name=f"teredo-server-{node.name}")

    def _serve(self) -> Generator:
        while True:
            data, (src, src_port) = yield self.sock.recvfrom()
            if not isinstance(data, (bytes, bytearray)) or not data or data[0] != _TAG_RS:
                continue
            self.solicitations += 1
            yield from self.node.cpu_work(10e-6)
            # RA: tag + mapped IPv4 + mapped port
            ra = bytes([_TAG_RA]) + src.packed() + struct.pack(">H", src_port)
            self.sock.sendto(ra, src, src_port)


class TeredoClient:
    """Per-host Teredo engine: qualification + encap/decap daemon.

    ``relay_v4`` names the relay used to reach *native* IPv6 destinations
    (RFC 4380 clients discover one via their server; we configure it).
    Client-to-client traffic always goes direct to the peer's mapped
    endpoint.
    """

    def __init__(self, node: "Node", udp: UdpStack, server_v4: IPAddress,
                 relay_v4: IPAddress | None = None) -> None:
        self.node = node
        self.udp = udp
        self.server_v4 = server_v4
        self.relay_v4 = relay_v4
        self.sock = udp.bind(TEREDO_PORT)
        self.address: IPAddress | None = None
        self._iface = node.add_interface("teredo0")
        self._tx = Queue(node.sim)
        self.packets_encapsulated = 0
        self.packets_decapsulated = 0
        node.add_output_shim(self._output_shim)
        node.sim.process(self._tx_daemon(), name=f"teredo-tx-{node.name}")
        # The rx daemon starts after qualification so it cannot steal the RA.

    def qualify(self, timeout: float = 2.0) -> Generator:
        """Process-generator: RS/RA exchange; returns our Teredo address."""
        sim = self.node.sim
        self.sock.sendto(bytes([_TAG_RS]), self.server_v4, TEREDO_PORT)
        from repro.sim.events import AnyOf

        reply = self._await_ra()
        deadline = sim.timeout(timeout)
        winner, value = yield AnyOf(sim, [sim.process(reply), deadline])
        if winner is deadline or value is None:
            raise TimeoutError("Teredo qualification timed out")
        mapped_addr, mapped_port = value
        self.address = make_teredo_address(self.server_v4, mapped_addr, mapped_port)
        self._iface.add_address(self.address)
        sim.process(self._rx_daemon(), name=f"teredo-rx-{self.node.name}")
        return self.address

    def _await_ra(self) -> Generator:
        while True:
            data, _src = yield self.sock.recvfrom()
            if isinstance(data, (bytes, bytearray)) and data and data[0] == _TAG_RA:
                try:
                    return parse_ra(data)
                except TeredoParseError:
                    continue  # hostile or corrupt RA: keep waiting
            # Not the RA (early data packet): hand to the decap path.
            self._handle_encapsulated(data)

    # -- outbound ---------------------------------------------------------------
    def _output_shim(self, node: "Node", packet: Packet) -> Packet | None:
        from repro.net.addresses import ORCHID_PREFIX

        ip = packet.outer
        if not isinstance(ip, IPHeader) or ip.family != 6:
            return packet
        if self.address is None or ip.dst == self.address:
            return packet
        if ORCHID_PREFIX.contains(ip.dst):
            return packet  # HITs belong to the HIP daemon, not the tunnel
        if is_teredo(ip.dst):
            self._tx.try_put(packet)
            return None
        if self.relay_v4 is not None:
            # Native IPv6 destination: hand to the configured relay.
            self._tx.try_put(packet)
            return None
        return packet

    def _tx_daemon(self) -> Generator:
        while True:
            packet = yield self._tx.get()
            # Userspace daemon cost dominates the Teredo data path.
            yield from self.node.cpu_work(self.node.cost_model.teredo_encap)
            ip = packet.outer
            assert isinstance(ip, IPHeader)
            if is_teredo(ip.dst):
                _server, peer_addr, peer_port = parse_teredo_address(ip.dst)
            else:
                peer_addr, peer_port = self.relay_v4, TEREDO_PORT
            self.packets_encapsulated += 1
            self.sock.sendto(packet, peer_addr, peer_port)

    # -- inbound -----------------------------------------------------------------
    def _rx_daemon(self) -> Generator:
        while True:
            data, _src = yield self.sock.recvfrom()
            if isinstance(data, (bytes, bytearray)):
                continue  # control traffic is handled during qualification
            yield from self.node.cpu_work(self.node.cost_model.teredo_encap)
            self._handle_encapsulated(data)

    def _handle_encapsulated(self, data) -> None:
        if isinstance(data, Packet):
            self.packets_decapsulated += 1
            self.node._on_receive(data, self._iface)


class TeredoRelay:
    """Relay between native IPv6 and Teredo clients.

    Installed on a dual-stack router: IPv6 packets routed to it with a
    Teredo destination get encapsulated toward the client's mapped endpoint;
    encapsulated packets from clients get decapsulated and forwarded
    natively.
    """

    def __init__(self, node: "Node", udp: UdpStack) -> None:
        self.node = node
        self.sock = udp.bind(TEREDO_PORT)
        self.relayed = 0
        node.add_output_shim(self._output_shim)
        node.sim.process(self._serve(), name=f"teredo-relay-{node.name}")

    def _output_shim(self, node: "Node", packet: Packet) -> Packet | None:
        # Relays forward, they do not originate; shim kept for symmetry.
        return packet

    def relay_ipv6(self, packet: Packet) -> None:
        """Called by the owning node's forwarding hook for Teredo destinations."""
        ip = packet.outer
        assert isinstance(ip, IPHeader) and is_teredo(ip.dst)
        _server, peer_addr, peer_port = parse_teredo_address(ip.dst)
        self.relayed += 1
        self.sock.sendto(packet, peer_addr, peer_port)

    def _serve(self) -> Generator:
        while True:
            data, _src = yield self.sock.recvfrom()
            if not isinstance(data, Packet):
                continue
            yield from self.node.cpu_work(5e-6)
            self.relayed += 1
            if isinstance(data.outer, IPHeader):
                self.node._forward(data)


def install_relay_forwarding(node: "Node", relay: TeredoRelay) -> None:
    """Divert the node's IPv6 forwarding for Teredo destinations to the relay."""
    original_forward = node._forward

    def forward(packet: Packet) -> None:
        ip = packet.outer
        if isinstance(ip, IPHeader) and ip.family == 6 and is_teredo(ip.dst):
            relay.relay_ipv6(packet)
            return
        original_forward(packet)

    node._forward = forward  # type: ignore[method-assign]
