"""Small topology-building helpers shared by tests, examples and scenarios."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.addresses import IPAddress, Prefix, prefix
from repro.net.link import Link
from repro.net.node import Interface, Node

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


def wire(
    sim: "Simulator",
    node_a: Node,
    node_b: Node,
    addr_a: IPAddress | None = None,
    addr_b: IPAddress | None = None,
    bandwidth_bps: float = 1e9,
    delay_s: float = 100e-6,
    queue_packets: int = 256,
    name: str = "",
    loss_rate: float = 0.0,
    loss_rng=None,
    ecn_threshold: int | None = None,
    loss_burst: int = 1,
) -> tuple[Interface, Interface, Link]:
    """Create a link between two nodes, adding one interface on each.

    Interface names are auto-numbered ``eth0``, ``eth1``, ... per node.
    """
    link = Link(sim, bandwidth_bps=bandwidth_bps, delay_s=delay_s,
                queue_packets=queue_packets, name=name,
                loss_rate=loss_rate, loss_rng=loss_rng,
                ecn_threshold=ecn_threshold, loss_burst=loss_burst)
    iface_a = node_a.add_interface(f"eth{sum(i.name.startswith('eth') for i in node_a.interfaces)}")
    iface_b = node_b.add_interface(f"eth{sum(i.name.startswith('eth') for i in node_b.interfaces)}")
    if addr_a is not None:
        iface_a.add_address(addr_a)
    if addr_b is not None:
        iface_b.add_address(addr_b)
    link.connect(iface_a, iface_b)
    return iface_a, iface_b, link


def wire_cross_shard(
    shard,
    node: Node,
    addr: IPAddress | None,
    out_port: str,
    in_port: str,
    dst_shard: str,
    bandwidth_bps: float = 1e9,
    delay_s: float = 1e-3,
    queue_packets: int = 256,
) -> Interface:
    """Attach ``node`` to one end of a link whose far side is another shard.

    Creates an interface wired to a :class:`~repro.sim.shard.ShardPortal`
    egress (``out_port``) and registers the same interface as the landing
    point for the remote shard's matching egress (``in_port``).  Both shards
    must call this with mirrored port ids — shard A's ``out_port`` is shard
    B's ``in_port`` and vice versa — and the same link parameters, so the
    two directions replicate one full-duplex link's timing.
    """
    iface = node.add_interface(
        f"eth{sum(i.name.startswith('eth') for i in node.interfaces)}"
    )
    if addr is not None:
        iface.add_address(addr)
    portal = shard.open_egress(
        out_port, dst_shard, bandwidth_bps, delay_s, queue_packets
    )
    iface.attach(portal)
    shard.open_ingress(in_port, iface)
    return iface


def default_route(node: Node, iface: Interface) -> None:
    """Point both v4 and v6 default routes at ``iface``."""
    node.routes.add(prefix("0.0.0.0/0"), iface)
    node.routes.add(prefix("::/0"), iface)


def lan_pair(
    sim: "Simulator",
    name_a: str = "a",
    name_b: str = "b",
    subnet: str = "10.0.0.0/24",
    bandwidth_bps: float = 1e9,
    delay_s: float = 100e-6,
    queue_packets: int = 256,
    loss_rate: float = 0.0,
    loss_rng=None,
    ecn_threshold: int | None = None,
    loss_burst: int = 1,
    **node_kw,
) -> tuple[Node, Node]:
    """Two hosts on one subnet with routes both ways — the minimal testbed."""
    from repro.net.addresses import ipv4

    net = prefix(subnet)
    base = net.network.value
    node_a = Node(sim, name_a, **node_kw)
    node_b = Node(sim, name_b, **node_kw)
    iface_a, iface_b, _ = wire(
        sim, node_a, node_b,
        addr_a=ipv4(base + 1), addr_b=ipv4(base + 2),
        bandwidth_bps=bandwidth_bps, delay_s=delay_s,
        queue_packets=queue_packets, loss_rate=loss_rate, loss_rng=loss_rng,
        ecn_threshold=ecn_threshold, loss_burst=loss_burst,
    )
    node_a.routes.add(net, iface_a)
    node_b.routes.add(net, iface_b)
    return node_a, node_b
