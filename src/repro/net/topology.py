"""Small topology-building helpers shared by tests, examples and scenarios.

Also home of :func:`plan_shard_placement`, the shard-aware placement pass:
given communicating items (e.g. the member VMs of tenants that span
availability zones) it assigns each to a shard so that heavy chat stays
shard-local while per-shard load remains balanced — the knob that decides
how much cross-shard envelope traffic the sharded simulator has to carry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, Iterable

from repro.net.addresses import IPAddress, Prefix, prefix
from repro.net.link import Link
from repro.net.node import Interface, Node

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


def wire(
    sim: "Simulator",
    node_a: Node,
    node_b: Node,
    addr_a: IPAddress | None = None,
    addr_b: IPAddress | None = None,
    bandwidth_bps: float = 1e9,
    delay_s: float = 100e-6,
    queue_packets: int = 256,
    name: str = "",
    loss_rate: float = 0.0,
    loss_rng=None,
    ecn_threshold: int | None = None,
    loss_burst: int = 1,
) -> tuple[Interface, Interface, Link]:
    """Create a link between two nodes, adding one interface on each.

    Interface names are auto-numbered ``eth0``, ``eth1``, ... per node.
    """
    link = Link(sim, bandwidth_bps=bandwidth_bps, delay_s=delay_s,
                queue_packets=queue_packets, name=name,
                loss_rate=loss_rate, loss_rng=loss_rng,
                ecn_threshold=ecn_threshold, loss_burst=loss_burst)
    iface_a = node_a.add_interface(f"eth{sum(i.name.startswith('eth') for i in node_a.interfaces)}")
    iface_b = node_b.add_interface(f"eth{sum(i.name.startswith('eth') for i in node_b.interfaces)}")
    if addr_a is not None:
        iface_a.add_address(addr_a)
    if addr_b is not None:
        iface_b.add_address(addr_b)
    link.connect(iface_a, iface_b)
    return iface_a, iface_b, link


def wire_cross_shard(
    shard,
    node: Node,
    addr: IPAddress | None,
    out_port: str,
    in_port: str,
    dst_shard: str,
    bandwidth_bps: float = 1e9,
    delay_s: float = 1e-3,
    queue_packets: int = 256,
) -> Interface:
    """Attach ``node`` to one end of a link whose far side is another shard.

    Creates an interface wired to a :class:`~repro.sim.shard.ShardPortal`
    egress (``out_port``) and registers the same interface as the landing
    point for the remote shard's matching egress (``in_port``).  Both shards
    must call this with mirrored port ids — shard A's ``out_port`` is shard
    B's ``in_port`` and vice versa — and the same link parameters, so the
    two directions replicate one full-duplex link's timing.
    """
    iface = node.add_interface(
        f"eth{sum(i.name.startswith('eth') for i in node.interfaces)}"
    )
    if addr is not None:
        iface.add_address(addr)
    portal = shard.open_egress(
        out_port, dst_shard, bandwidth_bps, delay_s, queue_packets
    )
    iface.attach(portal)
    shard.open_ingress(in_port, iface)
    return iface


def default_route(node: Node, iface: Interface) -> None:
    """Point both v4 and v6 default routes at ``iface``."""
    node.routes.add(prefix("0.0.0.0/0"), iface)
    node.routes.add(prefix("::/0"), iface)


def lan_pair(
    sim: "Simulator",
    name_a: str = "a",
    name_b: str = "b",
    subnet: str = "10.0.0.0/24",
    bandwidth_bps: float = 1e9,
    delay_s: float = 100e-6,
    queue_packets: int = 256,
    loss_rate: float = 0.0,
    loss_rng=None,
    ecn_threshold: int | None = None,
    loss_burst: int = 1,
    **node_kw,
) -> tuple[Node, Node]:
    """Two hosts on one subnet with routes both ways — the minimal testbed."""
    from repro.net.addresses import ipv4

    net = prefix(subnet)
    base = net.network.value
    node_a = Node(sim, name_a, **node_kw)
    node_b = Node(sim, name_b, **node_kw)
    iface_a, iface_b, _ = wire(
        sim, node_a, node_b,
        addr_a=ipv4(base + 1), addr_b=ipv4(base + 2),
        bandwidth_bps=bandwidth_bps, delay_s=delay_s,
        queue_packets=queue_packets, loss_rate=loss_rate, loss_rng=loss_rng,
        ecn_threshold=ecn_threshold, loss_burst=loss_burst,
    )
    node_a.routes.add(net, iface_a)
    node_b.routes.add(net, iface_b)
    return node_a, node_b


# ------------------------------------------------------ shard-aware placement


@dataclass
class PlacementPlan:
    """Result of :func:`plan_shard_placement`.

    ``assignment`` maps each item to its shard index; :meth:`quality`
    summarizes how much communication the plan keeps shard-local and how
    evenly load is spread — the stat the scale benchmark reports so
    placement regressions are visible in ``BENCH_scale.json``.
    """

    n_shards: int
    assignment: dict[Hashable, int]
    #: (a, b, weight) edges the plan was computed from (normalized).
    edges: list[tuple[Hashable, Hashable, float]] = field(default_factory=list)
    #: Per-item load weight used for balancing.
    weights: dict[Hashable, float] = field(default_factory=dict)

    def shard_of(self, item: Hashable) -> int:
        return self.assignment[item]

    def quality(self) -> dict[str, object]:
        """Placement-quality stats: cut fraction and per-shard load balance."""
        cross_edges = 0
        cross_weight = 0.0
        total_weight = 0.0
        for a, b, w in self.edges:
            total_weight += w
            if self.assignment[a] != self.assignment[b]:
                cross_edges += 1
                cross_weight += w
        loads = [0.0] * self.n_shards
        for item, shard in self.assignment.items():
            loads[shard] += self.weights.get(item, 1.0)
        mean = sum(loads) / len(loads) if loads else 0.0
        imbalance = (max(loads) / mean - 1.0) if mean > 0 else 0.0
        return {
            "n_shards": self.n_shards,
            "items": len(self.assignment),
            "edges": len(self.edges),
            "cross_edges": cross_edges,
            "cross_edge_fraction": (
                cross_edges / len(self.edges) if self.edges else 0.0
            ),
            "cross_weight": cross_weight,
            "cross_weight_fraction": (
                cross_weight / total_weight if total_weight > 0 else 0.0
            ),
            "shard_load": loads,
            "load_imbalance": imbalance,
        }


def plan_shard_placement(
    items: Iterable[Hashable],
    edges: Iterable[tuple[Hashable, Hashable, float]],
    n_shards: int,
    anchors: dict[Hashable, int] | None = None,
    weights: dict[Hashable, float] | None = None,
    balance_tolerance: float = 0.25,
    sweeps: int = 4,
) -> PlacementPlan:
    """Assign communicating items to shards, minimizing the weighted cut.

    Deterministic two-phase heuristic:

    1. **Anchored greedy** — items are placed in descending order of
       incident edge weight (ties broken by input order).  Anchored items
       (e.g. a tenant's "home zone" member, which must sit next to a
       physical resource) are pinned first; every other item lands on the
       shard holding most of its already-placed neighbors' edge weight,
       subject to a load cap of ``mean * (1 + balance_tolerance)``.
    2. **KL-style refinement** — ``sweeps`` passes over the unanchored
       items, moving any item whose local edge affinity strictly improves
       on another shard that has capacity.  Each sweep visits items in the
       deterministic phase-1 order, so the plan is a pure function of its
       inputs.

    ``edges`` weights model expected traffic (e.g. messages per second);
    ``weights`` model per-item event load (defaults to 1.0 each).
    """
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    item_list = list(dict.fromkeys(items))
    item_set = set(item_list)
    anchors = dict(anchors or {})
    weights = dict(weights or {})
    edge_list: list[tuple[Hashable, Hashable, float]] = []
    adjacency: dict[Hashable, list[tuple[Hashable, float]]] = {
        item: [] for item in item_list
    }
    incident: dict[Hashable, float] = {item: 0.0 for item in item_list}
    for a, b, w in edges:
        if a not in item_set or b not in item_set:
            raise ValueError(f"edge ({a!r}, {b!r}) references an unknown item")
        if a == b or w <= 0:
            continue
        edge_list.append((a, b, float(w)))
        adjacency[a].append((b, float(w)))
        adjacency[b].append((a, float(w)))
        incident[a] += w
        incident[b] += w
    for item, shard in anchors.items():
        if item not in item_set:
            raise ValueError(f"anchor {item!r} is not an item")
        if not 0 <= shard < n_shards:
            raise ValueError(f"anchor shard {shard} out of range for {item!r}")

    total_load = sum(weights.get(item, 1.0) for item in item_list)
    cap = (total_load / n_shards) * (1.0 + balance_tolerance) if item_list else 0.0
    order = sorted(
        range(len(item_list)), key=lambda i: (-incident[item_list[i]], i)
    )
    assignment: dict[Hashable, int] = {}
    loads = [0.0] * n_shards
    for item, shard in anchors.items():
        assignment[item] = shard
        loads[shard] += weights.get(item, 1.0)
    for i in order:
        item = item_list[i]
        if item in assignment:
            continue
        affinity = [0.0] * n_shards
        for neighbor, w in adjacency[item]:
            placed = assignment.get(neighbor)
            if placed is not None:
                affinity[placed] += w
        load = weights.get(item, 1.0)
        best = -1
        best_key: tuple[float, float] | None = None
        for shard in range(n_shards):
            if loads[shard] + load > cap and any(
                loads[s] + load <= cap for s in range(n_shards)
            ):
                continue  # over cap while a feasible shard exists
            key = (affinity[shard], -loads[shard])
            if best_key is None or key > best_key:
                best, best_key = shard, key
        assignment[item] = best
        loads[best] += load
    for _ in range(max(0, sweeps)):
        moved = False
        for i in order:
            item = item_list[i]
            if item in anchors:
                continue
            current = assignment[item]
            affinity = [0.0] * n_shards
            for neighbor, w in adjacency[item]:
                affinity[assignment[neighbor]] += w
            load = weights.get(item, 1.0)
            best, best_gain = current, 0.0
            for shard in range(n_shards):
                if shard == current or loads[shard] + load > cap:
                    continue
                gain = affinity[shard] - affinity[current]
                if gain > best_gain:
                    best, best_gain = shard, gain
            if best != current:
                assignment[item] = best
                loads[current] -= load
                loads[best] += load
                moved = True
        if not moved:
            break
    return PlacementPlan(
        n_shards=n_shards,
        assignment=assignment,
        edges=edge_list,
        weights={item: weights.get(item, 1.0) for item in item_list},
    )
