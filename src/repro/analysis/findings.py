"""Finding and suppression models shared by the checkers and reporters."""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field, replace


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a source location.

    Orders by (path, line, col, rule) so reports are stable regardless of
    checker execution order.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    suppressed: bool = False
    justification: str | None = None
    #: Accepted by a baseline file (``--baseline``): reported, not gating.
    baselined: bool = False

    def suppress(self, justification: str | None) -> "Finding":
        return replace(self, suppressed=True, justification=justification)

    def baseline(self) -> "Finding":
        return replace(self, baselined=True)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def as_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "suppressed": self.suppressed,
            "justification": self.justification,
            "baselined": self.baselined,
        }


# A suppression directive must open the comment, e.g. one rule, several, or
# a wildcard, each optionally justified after a double dash:
# ignore one rule / ignore a list / ignore[*] all, justification after `--`.
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore\[(?P<rules>[A-Z0-9*,\s]+)\]\s*(?:--\s*(?P<why>.*\S))?"
)


@dataclass
class Suppression:
    """One parsed ``# repro: ignore[...]`` comment."""

    path: str
    line: int  # line the comment sits on
    rules: frozenset[str]  # rule ids, or {"*"}
    justification: str | None
    standalone: bool  # comment is alone on its line (applies to line+1)
    used: bool = field(default=False, compare=False)

    def covers(self, rule: str) -> bool:
        return "*" in self.rules or rule in self.rules

    @property
    def target_line(self) -> int:
        """The source line this suppression applies to."""
        return self.line + 1 if self.standalone else self.line


def parse_suppressions(source: str, path: str) -> list[Suppression]:
    """Scan ``source`` for suppression comments.

    Only real COMMENT tokens count — the directive pattern appearing inside a
    string or docstring (this package documents itself, after all) is not a
    suppression.  The directive must open the comment; trailing prose after
    the ``-- justification`` belongs to the justification.
    """
    out: list[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The runner reports the parse failure as ANA000; no comments then.
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.match(tok.string)
        if match is None:
            continue
        rules = frozenset(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        if not rules:
            continue
        out.append(
            Suppression(
                path=path,
                line=tok.start[0],
                rules=rules,
                justification=match.group("why"),
                standalone=not tok.line[: tok.start[1]].strip(),
            )
        )
    return out
