"""Whole-program call graph over the ``repro`` package.

The intra-procedural passes (``taint``, ``rules``) stop at function
boundaries; the interprocedural rules (SEC003/004, VAL003, PERF001/002)
need to know *who calls whom* across the whole tree.  This module builds
that graph statically from the ASTs the runner already parsed:

* :class:`ProgramIndex` — every module, class and function in the analyzed
  set, keyed by dotted qualname (``repro.net.tcp.TcpConnection._pump``),
  plus per-module import aliases and the repro-internal import graph;
* :class:`CallGraph` — caller→callee edges with CHA-style method
  resolution, per-call-site target sets, reachability with root
  provenance, and Tarjan SCCs in callee-first order for the dataflow
  fixpoint (:mod:`repro.analysis.dataflow`).

Method resolution is class-hierarchy based and name-driven, the same
bargain as the rest of the analysis package:

* ``self.m()`` / ``cls.m()`` / ``super().m()`` resolve through the
  enclosing class's bases *and* its subclasses (an override may be the
  one that runs);
* ``alias.f()`` resolves through the module's import aliases
  (``import repro.hip.packets as hp; hp.build_puzzle`` →
  ``repro.hip.packets.build_puzzle``);
* ``obj.m()`` on an opaque receiver falls back to CHA: an edge to every
  program method named ``m``.  Over-approximate, which is the sound
  direction for reachability-style clients;
* a function *reference* passed as a call argument (callback
  registration: ``sim.call_later(d, self._fire)``) also produces an edge
  — the fast lanes are wired almost entirely through callbacks.

Soundness limits (documented, deliberate): calls through values stored in
containers or attributes (``self._cb = f; self._cb()``) and dynamically
computed names are invisible.  The PERF pass compensates by naming its
dispatch roots explicitly.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


def module_name_of(path: str) -> str | None:
    """Dotted module name for a path inside the ``repro`` package.

    ``src/repro/net/tcp.py`` → ``repro.net.tcp``; ``.../repro/__init__.py``
    → ``repro``.  Files outside the package (tests, benchmarks) return
    ``None`` — they are analyzed per-module but are not part of the
    whole-program graph.
    """
    parts = [p for p in path.replace("\\", "/").split("/") if p]
    if "repro" not in parts or not parts[-1].endswith(".py"):
        return None
    start = parts.index("repro")
    mod_parts = parts[start:-1] + [parts[-1][: -len(".py")]]
    if mod_parts[-1] == "__init__":
        mod_parts = mod_parts[:-1]
    return ".".join(mod_parts)


@dataclass
class FunctionInfo:
    """One function or method in the analyzed program."""

    qualname: str  # repro.net.tcp.TcpConnection._pump
    module: str  # repro.net.tcp
    path: str  # as reported in findings
    name: str  # _pump
    class_name: str | None  # TcpConnection, or None for module functions
    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: tuple[str, ...] = ()

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass
class ClassInfo:
    """One class definition: bare base names and name→qualname methods."""

    qualname: str
    module: str
    name: str
    bases: tuple[str, ...]
    methods: dict[str, str] = field(default_factory=dict)


def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    args = node.args
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    return tuple(names)


def _base_name(node: ast.expr) -> str | None:
    """Bare name of a base-class expression (``Foo`` or ``mod.Foo``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):  # Generic[...] and friends
        return _base_name(node.value)
    return None


class ProgramIndex:
    """Modules, classes and functions of the analyzed set, cross-linked."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: bare class name -> sorted class qualnames (collisions possible)
        self.class_by_name: dict[str, list[str]] = {}
        #: method name -> sorted function qualnames across all classes
        self.methods_by_name: dict[str, list[str]] = {}
        #: (module, bare function name) -> qualname (module-level functions)
        self.module_functions: dict[tuple[str, str], str] = {}
        #: module -> import aliases (local name -> dotted target)
        self.aliases: dict[str, dict[str, str]] = {}
        #: module -> repro-internal modules it imports (for --changed-only)
        self.module_imports: dict[str, set[str]] = {}
        #: path (as analyzed) -> module dotted name
        self.module_of_path: dict[str, str] = {}

    # -- construction --------------------------------------------------------
    @classmethod
    def build(cls, contexts) -> "ProgramIndex":
        """Index every product module among ``contexts``.

        ``contexts`` are :class:`~repro.analysis.base.ModuleContext`-shaped
        (``path``/``tree``/``_aliases``); non-``repro`` files are skipped.
        """
        index = cls()
        for ctx in contexts:
            module = module_name_of(ctx.path)
            if module is None:
                continue
            index.module_of_path[ctx.path] = module
            index.aliases[module] = dict(ctx._aliases)
            index.module_imports[module] = index._imported_modules(ctx.tree)
            index._index_module(module, ctx.path, ctx.tree)
        for name_map in (index.class_by_name, index.methods_by_name):
            for key in name_map:
                name_map[key] = sorted(set(name_map[key]))
        return index

    @staticmethod
    def _imported_modules(tree: ast.Module) -> set[str]:
        """Dotted ``repro.*`` modules this module imports (either form)."""
        out: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                out.update(
                    alias.name for alias in node.names
                    if alias.name.split(".")[0] == "repro"
                )
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.module.split(".")[0] == "repro":
                    out.add(node.module)
        return out

    def _index_module(self, module: str, path: str, tree: ast.Module) -> None:
        def add_function(
            node, class_info: ClassInfo | None, prefix: str
        ) -> None:
            qualname = f"{prefix}.{node.name}"
            info = FunctionInfo(
                qualname=qualname,
                module=module,
                path=path,
                name=node.name,
                class_name=class_info.name if class_info else None,
                node=node,
                params=_param_names(node),
            )
            self.functions[qualname] = info
            if class_info is not None:
                class_info.methods.setdefault(node.name, qualname)
                self.methods_by_name.setdefault(node.name, []).append(qualname)
            else:
                self.module_functions.setdefault((module, node.name), qualname)
            # Nested defs are separate graph nodes reached from the enclosing
            # function (closure creation counts as a potential call).
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    add_function(child, class_info, qualname)

        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                add_function(stmt, None, module)
            elif isinstance(stmt, ast.ClassDef):
                cls_info = ClassInfo(
                    qualname=f"{module}.{stmt.name}",
                    module=module,
                    name=stmt.name,
                    bases=tuple(
                        b for b in map(_base_name, stmt.bases) if b is not None
                    ),
                )
                self.classes[cls_info.qualname] = cls_info
                self.class_by_name.setdefault(stmt.name, []).append(
                    cls_info.qualname
                )
                for child in stmt.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        add_function(child, cls_info, cls_info.qualname)

    # -- hierarchy queries ---------------------------------------------------
    def mro_lookup(self, class_name: str, method: str) -> list[str]:
        """Method ``method`` resolved through ``class_name`` and its bases."""
        out: list[str] = []
        seen: set[str] = set()
        queue = [class_name]
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            for qual in self.class_by_name.get(name, ()):
                info = self.classes[qual]
                if method in info.methods:
                    out.append(info.methods[method])
                queue.extend(info.bases)
        return out

    def override_lookup(self, class_name: str, method: str) -> list[str]:
        """``method`` in subclasses of ``class_name`` (overrides may run)."""
        out: list[str] = []
        for qual in sorted(self.classes):
            info = self.classes[qual]
            if class_name in self._ancestry(info) and method in info.methods:
                out.append(info.methods[method])
        return out

    def _ancestry(self, info: ClassInfo) -> set[str]:
        seen: set[str] = set()
        queue = list(info.bases)
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            for qual in self.class_by_name.get(name, ()):
                queue.extend(self.classes[qual].bases)
        return seen

    def changed_closure(self, changed_modules: set[str]) -> set[str]:
        """Modules whose analysis may change when ``changed_modules`` change:
        the changed set plus everything that (transitively) imports it."""
        closure = set(changed_modules)
        grew = True
        while grew:
            grew = False
            for module, imports in self.module_imports.items():
                if module not in closure and imports & closure:
                    closure.add(module)
                    grew = True
        return closure


class CallGraph:
    """Caller→callee edges plus per-call-site resolution."""

    def __init__(self, index: ProgramIndex) -> None:
        self.index = index
        self.edges: dict[str, tuple[str, ...]] = {}
        #: id(ast.Call node) -> resolved callee qualnames (for dataflow)
        self.call_targets: dict[int, tuple[str, ...]] = {}

    @classmethod
    def build(cls, index: ProgramIndex) -> "CallGraph":
        graph = cls(index)
        for qualname in sorted(index.functions):
            graph.edges[qualname] = graph._resolve_function(
                index.functions[qualname]
            )
        return graph

    # -- resolution ----------------------------------------------------------
    def _resolve_function(self, fn: FunctionInfo) -> tuple[str, ...]:
        callees: set[str] = set()
        aliases = self.index.aliases.get(fn.module, {})
        for node in self._own_nodes(fn.node):
            if isinstance(node, ast.Call):
                targets = self._resolve_call(fn, node, aliases)
                self.call_targets[id(node)] = targets
                callees.update(targets)
                # Callback registration: function references as arguments.
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    callees.update(self._resolve_reference(fn, arg, aliases))
        # Defining a nested function counts as reaching it.
        for child in fn.node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                callees.add(f"{fn.qualname}.{child.name}")
        return tuple(sorted(callees))

    @staticmethod
    def _own_nodes(fn_node):
        """Walk a function body without descending into nested defs."""
        stack: list[ast.AST] = list(fn_node.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _resolve_call(
        self, fn: FunctionInfo, node: ast.Call, aliases: dict[str, str]
    ) -> tuple[str, ...]:
        func = node.func
        if isinstance(func, ast.Name):
            return self._resolve_bare(fn, func.id, aliases)
        if isinstance(func, ast.Attribute):
            return self._resolve_method(fn, func, aliases)
        return ()

    def _resolve_bare(
        self, fn: FunctionInfo, name: str, aliases: dict[str, str]
    ) -> tuple[str, ...]:
        # Local (possibly nested) function in the same module/class scope.
        for scope in (fn.qualname, *_scope_chain(fn.qualname)):
            nested = f"{scope}.{name}"
            if nested in self.index.functions:
                return (nested,)
        local = self.index.module_functions.get((fn.module, name))
        if local is not None:
            return (local,)
        dotted = aliases.get(name)
        if dotted is not None:
            if dotted in self.index.functions:
                return (dotted,)
            if dotted in self.index.classes:
                return self._class_init(dotted)
        for qual in self.index.class_by_name.get(name, ()):
            if (
                self.index.classes[qual].module == fn.module
                or aliases.get(name) == qual
            ):
                return self._class_init(qual)
        return ()

    def _class_init(self, class_qual: str) -> tuple[str, ...]:
        info = self.classes_get(class_qual)
        if info is None:
            return ()
        inits = self.index.mro_lookup(info.name, "__init__")
        return tuple(sorted(inits)) if inits else ()

    def classes_get(self, qual: str) -> ClassInfo | None:
        return self.index.classes.get(qual)

    def _resolve_method(
        self, fn: FunctionInfo, func: ast.Attribute, aliases: dict[str, str]
    ) -> tuple[str, ...]:
        method = func.attr
        base = func.value
        # self.m() / cls.m() / super().m(): class hierarchy of the enclosing
        # class, plus overrides in subclasses (dynamic dispatch may pick one).
        is_super = (
            isinstance(base, ast.Call)
            and isinstance(base.func, ast.Name)
            and base.func.id == "super"
        )
        if fn.class_name is not None and (
            is_super
            or (isinstance(base, ast.Name) and base.id in ("self", "cls"))
        ):
            found = self.index.mro_lookup(fn.class_name, method)
            if not is_super:
                found += self.index.override_lookup(fn.class_name, method)
            if found:
                return tuple(sorted(set(found)))
            # The attribute may be a callback slot, not a method — fall
            # through to CHA below.
        if isinstance(base, ast.Name):
            dotted = aliases.get(base.id)
            if dotted is not None:
                target = f"{dotted}.{method}"
                if target in self.index.functions:
                    return (target,)
                if dotted in self.index.classes:  # Class.m(instance, ...)
                    info = self.index.classes[dotted]
                    found = self.index.mro_lookup(info.name, method)
                    if found:
                        return tuple(sorted(set(found)))
            if base.id in self.index.class_by_name:
                found = self.index.mro_lookup(base.id, method)
                if found:
                    return tuple(sorted(set(found)))
        # Opaque receiver: CHA by method name over the whole program.
        return tuple(self.index.methods_by_name.get(method, ()))

    def _resolve_reference(
        self, fn: FunctionInfo, node: ast.expr, aliases: dict[str, str]
    ) -> tuple[str, ...]:
        """A bare function/method *reference* (not a call) used as an argument."""
        if isinstance(node, ast.Attribute) and not isinstance(node.value, ast.Call):
            if isinstance(node.value, ast.Name) and node.value.id in ("self", "cls"):
                if fn.class_name is not None:
                    found = self.index.mro_lookup(fn.class_name, node.attr)
                    found += self.index.override_lookup(fn.class_name, node.attr)
                    return tuple(sorted(set(found)))
            if isinstance(node.value, ast.Name):
                dotted = aliases.get(node.value.id)
                if dotted is not None:
                    target = f"{dotted}.{node.attr}"
                    if target in self.index.functions:
                        return (target,)
        elif isinstance(node, ast.Name):
            local = self.index.module_functions.get((fn.module, node.id))
            if local is not None:
                return (local,)
        return ()

    # -- queries -------------------------------------------------------------
    def callees(self, qualname: str) -> tuple[str, ...]:
        return self.edges.get(qualname, ())

    def reachable(self, root_suffixes) -> dict[str, str]:
        """BFS closure from roots named by dotted suffix.

        Returns ``{reached qualname: root suffix it was reached from}`` —
        the provenance makes PERF messages explain *why* a function is hot.
        """
        roots: list[tuple[str, str]] = []
        for suffix in root_suffixes:
            for qualname in sorted(self.edges):
                if qualname == suffix or qualname.endswith("." + suffix):
                    roots.append((qualname, suffix))
        reached: dict[str, str] = {}
        queue = list(roots)
        while queue:
            qualname, root = queue.pop(0)
            if qualname in reached:
                continue
            reached[qualname] = root
            for callee in self.edges.get(qualname, ()):
                if callee not in reached:
                    queue.append((callee, root))
        return reached

    def sccs(self) -> list[tuple[str, ...]]:
        """Tarjan SCCs, emitted callees-first (reverse topological order of
        the condensation) — exactly the order a bottom-up summary fixpoint
        wants to process them in.  Iterative: the repo's call chains are
        deeper than the default recursion limit allows for."""
        index_of: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        out: list[tuple[str, ...]] = []
        counter = [0]

        def strongconnect(root: str) -> None:
            work = [(root, iter(self.edges.get(root, ())))]
            index_of[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for succ in it:
                    if succ not in self.edges:
                        continue
                    if succ not in index_of:
                        index_of[succ] = lowlink[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(self.edges.get(succ, ()))))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index_of[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index_of[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    out.append(tuple(sorted(component)))

        for qualname in sorted(self.edges):
            if qualname not in index_of:
                strongconnect(qualname)
        return out


def _scope_chain(qualname: str) -> tuple[str, ...]:
    """Enclosing scopes of a qualname, innermost first (for nested defs)."""
    parts = qualname.split(".")
    return tuple(".".join(parts[:i]) for i in range(len(parts) - 1, 0, -1))


def build_program(contexts) -> tuple[ProgramIndex, CallGraph]:
    """Convenience: index + call graph in one step (memoised by callers)."""
    index = ProgramIndex.build(contexts)
    return index, CallGraph.build(index)
