"""Untrusted wire-input validation rules (VAL001-003).

Every byte a peer can put on the wire — HIP control packets, DNS
responses, Teredo bubbles, TLS records — is attacker-controlled, and the
parsers in this tree consume it with ``struct.unpack``, slicing and
indexing.  These rules prove, per parse function, that no wire-derived
length/count/offset reaches an allocation, loop bound, slice bound or
index without a dominating length check, and that malformed input
surfaces as a *domain* error (``HipParseError``-style), never a raw
``struct.error`` / ``IndexError``.

The pass is deliberately scoped to the modules that touch raw wire
bytes (:data:`SCOPED_SUFFIXES`); elsewhere byte-level parsing is a
design smell the architecture already avoids (headers are dataclasses).

Per-function symbolic scan, in the same bargain as the rest of the
package (name-driven, flow-sensitive down straight-line code and guard
branches, no joins):

* *wire buffers* — parameters with wire-ish names (``data``, ``buf``,
  ``body``…), ``recvfrom``/``recv_bytes`` results, and slices/copies of
  either;
* *wire ints* — ``struct.unpack`` targets, byte indexing and
  ``int.from_bytes`` of wire buffers, plus arithmetic over them;
* *facts* — dominating guards establish per-name facts: numeric
  ``len()`` lower bounds / exact lengths, coarse "some length check
  mentions this buffer" blessing, truthiness non-emptiness, numeric
  lower bounds on ints, and a *validated* mark for any name a dominating
  comparison constrains.  ``and``/``or`` short-circuit semantics are
  honoured, so ``if not data or data[0] != TAG`` does not trip the
  index check.

VAL001 flags unvalidated wire ints reaching ``range()``, ``bytes(n)`` /
``bytearray(n)`` / ``b"x" * n`` allocation, or an index; VAL002 flags
slices whose bounds are not proven inside the buffer (silent
truncation); VAL003 lifts each function's unguarded ``struct.error`` /
``IndexError`` sites through the call graph
(:func:`repro.analysis.dataflow.propagate_raises`) and flags scoped
functions the raw exception can escape from.
"""

from __future__ import annotations

import ast
import struct as _struct

from repro.analysis.base import ProgramChecker, ProgramContext, register_program
from repro.analysis.callgraph import CallGraph
from repro.analysis.dataflow import propagate_raises

#: Modules whose functions are scanned (path suffixes).
SCOPED_SUFFIXES = (
    "hip/packets.py",
    "net/teredo.py",
    "net/nat.py",
    "net/dns.py",
    "net/icmp.py",
    "tls/connection.py",
)

#: Parameter names presumed to hold attacker-controlled wire bytes.
WIRE_PARAMS = frozenset(
    {"data", "buf", "body", "payload", "wire", "raw", "cert", "header", "encrypted"}
)

#: Call names whose result is wire bytes (receive-side primitives).
_RECV_CALLS = frozenset({"recvfrom", "recv_bytes", "_recv_message", "recv"})

STRUCT_ERROR = "struct.error"
INDEX_ERROR = "IndexError"
_RAW_KINDS = frozenset({STRUCT_ERROR, INDEX_ERROR})

#: For-loop bodies containing a ``len()``-guarded raise re-validate the
#: wire-derived trip count every iteration (the ``parse_locator`` idiom).


def scoped_path(path: str) -> bool:
    norm = path.replace("\\", "/")
    return any(norm.endswith(suffix) for suffix in SCOPED_SUFFIXES)


def module_consts(tree: ast.Module) -> dict[str, int]:
    """Module-level integer constants (``RECORD_HEADER_LEN = 5``)."""
    consts: dict[str, int] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                value = _const_int(stmt.value, consts)
                if value is not None:
                    consts[target.id] = value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if stmt.value is not None:
                value = _const_int(stmt.value, consts)
                if value is not None:
                    consts[stmt.target.id] = value
    return consts


def _const_int(node: ast.expr | None, consts: dict[str, int]) -> int | None:
    """Evaluate a compile-time integer expression, or None."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value if not isinstance(node.value, bool) else None
    if isinstance(node, ast.Name):
        return consts.get(node.id)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _const_int(node.operand, consts)
        return -inner if inner is not None else None
    if isinstance(node, ast.BinOp):
        left = _const_int(node.left, consts)
        right = _const_int(node.right, consts)
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Mult):
            return left * right
        if isinstance(node.op, ast.FloorDiv) and right:
            return left // right
        if isinstance(node.op, ast.Mod) and right:
            return left % right
    return None


def _names_in(node: ast.expr) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _len_arg(node: ast.expr) -> str | None:
    """``len(name)`` -> ``name``, else None."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "len"
        and len(node.args) == 1
        and isinstance(node.args[0], ast.Name)
    ):
        return node.args[0].id
    return None


def _unwrap_bytes(node: ast.expr) -> ast.expr:
    """Strip ``bytes(...)`` / ``bytearray(...)`` single-argument wrappers."""
    while (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("bytes", "bytearray", "memoryview")
        and len(node.args) == 1
        and not node.keywords
    ):
        node = node.args[0]
    return node


def _terminates(body: list[ast.stmt]) -> bool:
    """Does this block unconditionally leave the enclosing scope/loop?"""
    return bool(body) and isinstance(
        body[-1], (ast.Raise, ast.Return, ast.Continue, ast.Break)
    )


def _handler_kinds(type_node: ast.expr | None) -> frozenset[str]:
    """Which of the raw exception kinds an ``except`` clause catches."""
    if type_node is None:  # bare except
        return _RAW_KINDS
    if isinstance(type_node, ast.Tuple):
        out: frozenset[str] = frozenset()
        for elt in type_node.elts:
            out |= _handler_kinds(elt)
        return out
    name = None
    if isinstance(type_node, ast.Attribute):
        if isinstance(type_node.value, ast.Name) and type_node.value.id == "struct":
            name = f"struct.{type_node.attr}"
    elif isinstance(type_node, ast.Name):
        name = type_node.id
    if name in ("struct.error", "error"):
        return frozenset({STRUCT_ERROR})
    if name in ("IndexError", "LookupError"):
        return frozenset({INDEX_ERROR})
    if name in ("Exception", "BaseException"):
        return _RAW_KINDS
    return frozenset()


class _State:
    """Per-path facts about names (copied at branch points, never joined)."""

    __slots__ = (
        "bufs", "ints", "validated", "blessed", "nonempty",
        "minlen", "exact", "minint", "symlen",
    )

    def __init__(self) -> None:
        self.bufs: set[str] = set()
        self.ints: set[str] = set()
        self.validated: set[str] = set()
        self.blessed: set[str] = set()
        self.nonempty: set[str] = set()
        self.minlen: dict[str, int] = {}
        self.exact: dict[str, int] = {}
        self.minint: dict[str, int] = {}
        self.symlen: dict[str, str] = {}  # buf -> int var with len(buf) == var

    def copy(self) -> "_State":
        st = _State()
        for slot in self.__slots__:
            value = getattr(self, slot)
            setattr(st, slot, value.copy())
        return st

    def forget(self, name: str) -> None:
        """A name was rebound: drop every fact about it."""
        for slot in self.__slots__:
            container = getattr(self, slot)
            if isinstance(container, set):
                container.discard(name)
            else:
                container.pop(name, None)

    def effective_minlen(self, buf: str) -> int:
        """Best proven lower bound on ``len(buf)``."""
        best = max(self.minlen.get(buf, 0), self.exact.get(buf, 0))
        if buf in self.nonempty:
            best = max(best, 1)
        sym = self.symlen.get(buf)
        if sym is not None:
            best = max(best, self.minint.get(sym, 0))
        return best


class _FunctionScan:
    """Scan one function: VAL001/002 findings plus raw-exception escapes."""

    def __init__(self, fn_node, params, consts, call_targets) -> None:
        self.fn_node = fn_node
        self.params = params
        self.consts = consts
        self.call_targets = call_targets  # id(ast.Call) -> callee qualnames
        self.findings: list[tuple[str, ast.AST, str]] = []
        self.escapes: set[str] = set()
        self.caught: dict[str, frozenset[str]] = {}  # callee -> kinds caught
        self._catch_stack: list[frozenset[str]] = []
        #: slice assigned to a name, pending a later ``len(name)`` check
        #: (the ``value = data[o:o+n]; if len(value) != n: raise`` idiom)
        self.pending: dict[str, tuple[str, ast.AST, str]] = {}
        self._seen: set[tuple[str, int]] = set()

    # -- driver ---------------------------------------------------------------
    def run(self) -> None:
        st = _State()
        for name in self.params:
            if name in WIRE_PARAMS:
                st.bufs.add(name)
        self._block(self.fn_node.body, st)
        for finding in self.pending.values():
            self._add(*finding)

    def _add(self, rule: str, node: ast.AST, message: str) -> None:
        key = (rule, getattr(node, "lineno", 0) * 1000 + getattr(node, "col_offset", 0))
        if key not in self._seen:
            self._seen.add(key)
            self.findings.append((rule, node, message))

    def _escape(self, kind: str, node: ast.AST) -> None:
        for caught in self._catch_stack:
            if kind in caught:
                return
        self.escapes.add(kind)

    # -- statements -----------------------------------------------------------
    def _block(self, stmts: list[ast.stmt], st: _State) -> None:
        for stmt in stmts:
            self._stmt(stmt, st)

    def _stmt(self, stmt: ast.stmt, st: _State) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs are separate call-graph nodes
        if isinstance(stmt, ast.If):
            self._scan_test(stmt.test, st)
            body_st = st.copy()
            self._apply_facts(stmt.test, True, body_st)
            self._block(stmt.body, body_st)
            else_st = st.copy()
            self._apply_facts(stmt.test, False, else_st)
            self._block(stmt.orelse, else_st)
            if _terminates(stmt.body) and not stmt.orelse:
                self._apply_facts(stmt.test, False, st)
            elif stmt.orelse and _terminates(stmt.orelse) and not _terminates(stmt.body):
                self._apply_facts(stmt.test, True, st)
        elif isinstance(stmt, ast.While):
            self._scan_test(stmt.test, st)
            body_st = st.copy()
            self._apply_facts(stmt.test, True, body_st)
            self._block(stmt.body, body_st)
            self._block(stmt.orelse, st.copy())
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._for(stmt, st)
        elif isinstance(stmt, ast.Try):
            kinds: frozenset[str] = frozenset()
            for handler in stmt.handlers:
                kinds |= _handler_kinds(handler.type)
            self._catch_stack.append(kinds)
            body_st = st.copy()
            self._block(stmt.body, body_st)
            self._catch_stack.pop()
            for handler in stmt.handlers:
                self._block(handler.body, st.copy())
            self._block(stmt.orelse, body_st)
            self._block(stmt.finalbody, st.copy())
        elif isinstance(stmt, ast.Assign):
            deferred = None
            if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
                deferred = self._deferrable_slice(stmt.value, st)
            if deferred is not None:
                # ``value = data[o:o+n]`` defers to _assign's pending
                # mechanism; scan only the bounds so the immediate VAL002
                # check cannot pre-empt a later ``len(value)`` discharge.
                for part in (deferred.lower, deferred.upper, deferred.step):
                    if part is not None:
                        self._scan_expr(part, st)
            else:
                self._scan_value(stmt.value, st)
            if len(stmt.targets) == 1:
                self._assign(stmt.targets[0], stmt.value, st)
        elif isinstance(stmt, ast.AugAssign):
            self._scan_expr(stmt.value, st)
            if isinstance(stmt.target, ast.Name):
                synthetic = ast.BinOp(
                    left=ast.Name(id=stmt.target.id, ctx=ast.Load()),
                    op=stmt.op,
                    right=stmt.value,
                )
                self._assign(stmt.target, synthetic, st, scan=False)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._scan_value(stmt.value, st)
                self._assign(stmt.target, stmt.value, st)
        elif isinstance(stmt, ast.Assert):
            self._scan_test(stmt.test, st)
            self._apply_facts(stmt.test, True, st)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_expr(item.context_expr, st)
            self._block(stmt.body, st)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            self._scan_expr(stmt.value, st)
        elif isinstance(stmt, ast.Expr):
            self._scan_value(stmt.value, st)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._scan_expr(stmt.exc, st)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    st.forget(target.id)

    def _for(self, stmt, st: _State) -> None:
        it = stmt.iter
        if (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id == "range"
        ):
            self._check_range(it, st, loop_body=stmt.body)
            for arg in it.args:
                self._scan_expr(arg, st)
        else:
            self._scan_expr(it, st)
        body_st = st.copy()
        for name in _names_in(stmt.target) if isinstance(stmt.target, (ast.Name, ast.Tuple)) else ():
            body_st.forget(name)
            # A loop variable is bounded by its iterable, never attacker-sized.
            body_st.validated.add(name)
            if isinstance(it, ast.Name) and it.id in st.bufs:
                body_st.ints.add(name)
        self._block(stmt.body, body_st)
        self._block(stmt.orelse, st.copy())

    # -- assignment / propagation ---------------------------------------------
    def _assign(self, target: ast.expr, value: ast.expr, st: _State, scan: bool = True) -> None:
        if isinstance(target, ast.Tuple):
            self._assign_tuple(target, value, st)
            return
        if not isinstance(target, ast.Name):
            return
        name = target.id
        unwrapped = _unwrap_bytes(self._strip_yield(value))
        pending_entry = self._classify_slice_assign(name, unwrapped, st)
        # Source facts must be read before the target is forgotten:
        # ``off += 16`` keeps off validated when off already was (the
        # dominating guard covered the advanced offset too).
        src_names = _names_in(value)
        src_wire = {n for n in src_names if n in st.bufs or n in st.ints}
        src_valid = bool(src_names) and src_names <= st.validated | st.blessed
        st.forget(name)
        if pending_entry is not None:
            # Wire slice: target is a wire buffer; finding deferred until a
            # ``len(name)`` guard discharges it (or function end emits it).
            st.bufs.add(name)
            if pending_entry is not True:
                self.pending[name] = pending_entry
            return
        recv = self._recv_len(unwrapped)
        if recv is not None:
            st.bufs.add(name)
            kind, detail = recv
            if kind == "exact":
                st.exact[name] = detail
            elif kind == "sym":
                st.symlen[name] = detail
            return
        if self._is_wirebuf_expr(unwrapped, st):
            base = unwrapped if isinstance(unwrapped, ast.Name) else None
            st.bufs.add(name)
            if base is not None:  # straight copy keeps the length facts
                for facts in (st.minlen, st.exact):
                    if base.id in facts:
                        facts[name] = facts[base.id]
                if base.id in st.nonempty:
                    st.nonempty.add(name)
                if base.id in st.symlen:
                    st.symlen[name] = st.symlen[base.id]
            return
        if isinstance(unwrapped, ast.Call):
            return
        if src_wire:
            st.ints.add(name)
        if src_wire or isinstance(unwrapped, (ast.BinOp, ast.Name)):
            if src_valid:
                st.validated.add(name)

    def _assign_tuple(self, target: ast.Tuple, value: ast.expr, st: _State) -> None:
        names = [elt.id for elt in target.elts if isinstance(elt, ast.Name)]
        unwrapped = self._strip_yield(value)
        if isinstance(unwrapped, ast.Call):
            callee = _call_suffix(unwrapped.func)
            if callee in ("unpack", "unpack_from") and self._unpack_is_wire(unwrapped, st):
                for name in names:
                    st.forget(name)
                    st.ints.add(name)
                return
            if callee in _RECV_CALLS:
                for i, name in enumerate(names):
                    st.forget(name)
                    if callee == "recvfrom" and i > 0:
                        continue  # (data, addr): only the payload is wire
                    st.bufs.add(name)
                    st.ints.add(name)
                return
        for name in names:
            st.forget(name)

    @staticmethod
    def _strip_yield(node: ast.expr) -> ast.expr:
        while True:
            if isinstance(node, (ast.Await, ast.YieldFrom)):
                node = node.value
            elif isinstance(node, ast.Yield) and node.value is not None:
                node = node.value  # ``data, _ = yield sock.recvfrom()``
            else:
                return node

    def _deferrable_slice(self, value: ast.expr, st: _State) -> ast.Slice | None:
        """The slice node when ``value`` is a slice of a wire buffer."""
        node = _unwrap_bytes(self._strip_yield(value))
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.slice, ast.Slice)
            and isinstance(node.value, ast.Name)
            and node.value.id in st.bufs
        ):
            return node.slice
        return None

    def _classify_slice_assign(self, name, node, st):
        """If ``node`` is a slice of a wire buffer: True when proven safe,
        else the deferred (rule, node, message) finding."""
        if not (isinstance(node, ast.Subscript) and isinstance(node.slice, ast.Slice)):
            return None
        base = node.value
        if not (isinstance(base, ast.Name) and base.id in st.bufs):
            return None
        problem = self._slice_problem(node, base.id, st)
        if problem is None:
            return True
        return ("VAL002", node, problem)

    def _recv_len(self, node: ast.expr):
        """recv_bytes(N)-style call: ('exact', N) / ('sym', var) / None."""
        if not isinstance(node, ast.Call):
            return None
        callee = _call_suffix(node.func)
        if callee not in _RECV_CALLS or callee == "recvfrom":
            return None
        if node.args:
            n = _const_int(node.args[0], self.consts)
            if n is not None:
                return ("exact", n)
            if isinstance(node.args[0], ast.Name):
                return ("sym", node.args[0].id)
        return None

    # -- expression scanning --------------------------------------------------
    def _scan_value(self, node: ast.expr, st: _State) -> None:
        """Scan an assignment RHS / expression statement for risky ops."""
        self._scan_expr(node, st)

    def _scan_test(self, node: ast.expr, st: _State) -> None:
        """Scan a branch test honouring short-circuit evaluation order."""
        if isinstance(node, ast.BoolOp):
            local = st.copy()
            for value in node.values:
                self._scan_test(value, local)
                self._apply_facts(value, isinstance(node.op, ast.And), local)
            return
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            self._scan_test(node.operand, st)
            return
        self._scan_expr(node, st)

    def _scan_expr(self, node: ast.expr, st: _State) -> None:
        if isinstance(node, ast.BoolOp):
            self._scan_test(node, st)
            return
        if isinstance(node, ast.IfExp):
            self._scan_test(node.test, st)
            body_st = st.copy()
            self._apply_facts(node.test, True, body_st)
            self._scan_expr(node.body, body_st)
            else_st = st.copy()
            self._apply_facts(node.test, False, else_st)
            self._scan_expr(node.orelse, else_st)
            return
        if isinstance(node, ast.Call):
            self._scan_call(node, st)
            return
        if isinstance(node, ast.Subscript):
            self._check_subscript(node, st)
            self._scan_expr(node.value, st)
            for child in ast.iter_child_nodes(node.slice):
                if isinstance(child, ast.expr):
                    self._scan_expr(child, st)
            if isinstance(node.slice, ast.expr) and not isinstance(node.slice, ast.Slice):
                self._scan_expr(node.slice, st)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._scan_expr(child, st)

    def _scan_call(self, node: ast.Call, st: _State) -> None:
        callee = _call_suffix(node.func)
        self._record_caught(node)
        if callee in ("unpack", "unpack_from") and _is_struct_func(node.func):
            self._check_unpack(node, st, from_offset=callee == "unpack_from")
            # Bounds exprs may hide further risky ops.
            for arg in node.args[1:]:
                self._scan_expr(arg, st)
            return
        if callee == "range":
            self._check_range(node, st, loop_body=None)
        elif callee in ("bytes", "bytearray") and len(node.args) == 1:
            n = node.args[0]
            # bytes(buf) copies a buffer; only bytes(n) allocates n zeros.
            if not self._is_wirebuf_expr(n, st) and self._unvalidated_wire_int(n, st):
                self._add(
                    "VAL001", node,
                    "wire-derived size reaches a bytes/bytearray allocation "
                    "without a dominating bounds check",
                )
        self._scan_expr(node.func, st)
        for arg in node.args:
            self._scan_expr(arg, st)
        for kw in node.keywords:
            self._scan_expr(kw.value, st)

    def _record_caught(self, node: ast.Call) -> None:
        targets = self.call_targets.get(id(node), ())
        context: frozenset[str] = frozenset()
        for kinds in self._catch_stack:
            context |= kinds
        for target in targets:
            if target in self.caught:
                self.caught[target] &= context
            else:
                self.caught[target] = context

    # -- risky-operation checks ----------------------------------------------
    def _unvalidated_wire_int(self, node: ast.expr, st: _State) -> bool:
        """True when the expression carries an unvalidated wire int."""
        names = _names_in(node)
        return any(
            n in st.ints and n not in st.validated for n in names
        )

    def _check_range(self, node: ast.Call, st: _State, loop_body) -> None:
        if not any(self._unvalidated_wire_int(arg, st) for arg in node.args):
            return
        if loop_body is not None and self._body_revalidates(loop_body):
            return  # per-iteration length guard bounds the loop
        self._add(
            "VAL001", node,
            "wire-derived count bounds a range() without a dominating "
            "validation or per-iteration length guard",
        )

    @staticmethod
    def _body_revalidates(body: list[ast.stmt]) -> bool:
        """Loop body contains a len()-mentioning raise guard."""
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.If) and any(
                    isinstance(sub, ast.Raise) for sub in node.body
                ):
                    if any(
                        isinstance(c, ast.Call)
                        and isinstance(c.func, ast.Name)
                        and c.func.id == "len"
                        for c in ast.walk(node.test)
                    ):
                        return True
        return False

    def _check_subscript(self, node: ast.Subscript, st: _State) -> None:
        base = node.value
        if not (isinstance(base, ast.Name) and base.id in st.bufs):
            return
        if isinstance(node.slice, ast.Slice):
            problem = self._slice_problem(node, base.id, st)
            if problem is not None:
                self._add("VAL002", node, problem)
            return
        # Plain index.
        index = node.slice
        const = _const_int(index, self.consts)
        buf = base.id
        if const is not None:
            need = const + 1 if const >= 0 else -const
            if st.effective_minlen(buf) < need:
                self._escape(INDEX_ERROR, node)
                self._add(
                    "VAL001", node,
                    f"index {const} into wire buffer '{buf}' without a "
                    "dominating length check",
                )
            return
        names = _names_in(index)
        if names and names <= st.validated:
            return
        self._escape(INDEX_ERROR, node)
        if self._unvalidated_wire_int(index, st):
            self._add(
                "VAL001", node,
                f"wire-derived index into '{buf}' without a dominating "
                "bounds check",
            )

    def _slice_problem(self, node: ast.Subscript, buf: str, st: _State) -> str | None:
        """None when the slice provably stays inside the buffer."""
        sl = node.slice
        assert isinstance(sl, ast.Slice)
        upper = sl.upper
        if upper is None:
            return None  # data[a:] never silently truncates content
        if self._unvalidated_wire_int(upper, st) or (
            sl.lower is not None and self._unvalidated_wire_int(sl.lower, st)
        ):
            return (
                f"slice of wire buffer '{buf}' bounded by an unvalidated "
                "wire-derived value silently truncates on short input"
            )
        const = _const_int(upper, self.consts)
        if const is not None and st.effective_minlen(buf) < const:
            return (
                f"slice of wire buffer '{buf}' up to {const} without a "
                f"dominating len() >= {const} check silently truncates"
            )
        return None

    def _check_unpack(self, node: ast.Call, st: _State, from_offset: bool) -> None:
        if len(node.args) < 2:
            return
        fmt, buf_expr = node.args[0], _unwrap_bytes(node.args[1])
        if not self._is_wirebuf_expr(buf_expr, st):
            return
        size = None
        if isinstance(fmt, ast.Constant) and isinstance(fmt.value, str):
            try:
                size = _struct.calcsize(fmt.value)
            except _struct.error:
                size = None
        if from_offset:
            off = node.args[2] if len(node.args) > 2 else None
            if self._unpack_from_safe(buf_expr, off, size, st):
                return
        else:
            if self._unpack_safe(buf_expr, size, st):
                return
        self._escape(STRUCT_ERROR, node)

    def _unpack_safe(self, buf_expr: ast.expr, size: int | None, st: _State) -> bool:
        if isinstance(buf_expr, ast.Name):
            name = buf_expr.id
            if size is None:  # dynamic format: coarse blessing suffices
                return name in st.blessed
            # Plain unpack needs *exact* length; a lower bound is not enough.
            return st.exact.get(name) == size
        if isinstance(buf_expr, ast.Subscript) and isinstance(buf_expr.slice, ast.Slice):
            base = buf_expr.value
            if not (isinstance(base, ast.Name) and base.id in st.bufs):
                return True  # not a wire buffer after all
            sl = buf_expr.slice
            lo = _const_int(sl.lower, self.consts) if sl.lower is not None else 0
            hi = _const_int(sl.upper, self.consts)
            if lo is None or hi is None or size is None:
                return False
            return hi - lo == size and st.effective_minlen(base.id) >= hi
        return False

    def _unpack_from_safe(self, buf_expr, off, size, st: _State) -> bool:
        if not isinstance(buf_expr, ast.Name):
            return False
        buf = buf_expr.id
        off_const = _const_int(off, self.consts) if off is not None else 0
        if off_const is not None and size is not None:
            if st.effective_minlen(buf) >= off_const + size:
                return True
        if buf in st.blessed:
            if off is None or off_const is not None:
                return True
            names = _names_in(off)
            return bool(names) and names <= st.validated
        return False

    def _unpack_is_wire(self, node: ast.Call, st: _State) -> bool:
        return len(node.args) >= 2 and self._is_wirebuf_expr(
            _unwrap_bytes(node.args[1]), st
        )

    def _is_wirebuf_expr(self, node: ast.expr, st: _State) -> bool:
        node = _unwrap_bytes(node)
        if isinstance(node, ast.Name):
            return node.id in st.bufs
        if isinstance(node, ast.Subscript) and isinstance(node.slice, ast.Slice):
            return self._is_wirebuf_expr(node.value, st)
        return False

    # -- guard facts ----------------------------------------------------------
    def _apply_facts(self, test: ast.expr, positive: bool, st: _State) -> None:
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            self._apply_facts(test.operand, not positive, st)
            return
        if isinstance(test, ast.BoolOp):
            if isinstance(test.op, ast.And) and positive:
                for value in test.values:
                    self._apply_facts(value, True, st)
            elif isinstance(test.op, ast.Or) and not positive:
                for value in test.values:
                    self._apply_facts(value, False, st)
            return
        # Coarse facts: any length check mentioning a buffer blesses it; any
        # comparison constraining a name validates it (either polarity — the
        # guard branch raises on the bad side).
        if isinstance(test, ast.Compare) or _contains_len(test):
            for sub in ast.walk(test):
                arg = _len_arg(sub) if isinstance(sub, ast.expr) else None
                if arg is not None:
                    st.blessed.add(arg)
                    self.pending.pop(arg, None)
            if isinstance(test, ast.Compare):
                for name in _names_in(test):
                    st.validated.add(name)
        if isinstance(test, ast.Name):
            if positive and test.id in st.bufs:
                st.nonempty.add(test.id)
            return
        if not isinstance(test, ast.Compare) or len(test.ops) != 1:
            return
        left, op, right = test.left, test.ops[0], test.comparators[0]
        self._numeric_fact(left, op, right, positive, st)

    def _numeric_fact(self, left, op, right, positive: bool, st: _State) -> None:
        """Precise numeric bounds from ``len(b) <cmp> N`` / ``v <cmp> N``."""
        len_name, const, flipped = _len_arg(left), _const_int(right, self.consts), False
        if len_name is None and _len_arg(right) is not None:
            len_name, const, flipped = _len_arg(right), _const_int(left, self.consts), True
        subject_is_len = len_name is not None
        var = len_name
        if not subject_is_len:
            if isinstance(left, ast.Name) and _const_int(right, self.consts) is not None:
                var, const, flipped = left.id, _const_int(right, self.consts), False
            elif isinstance(right, ast.Name) and _const_int(left, self.consts) is not None:
                var, const, flipped = right.id, _const_int(left, self.consts), True
            else:
                return
        if const is None or var is None:
            return
        if flipped:  # normalize to ``subject <op'> const``
            op = _flip(op)
        bound = _lower_bound(op, const, positive)
        if bound is not None:
            target = st.minlen if subject_is_len else st.minint
            target[var] = max(target.get(var, 0), bound)
        if subject_is_len:
            exact = _exact_bound(op, const, positive)
            if exact is not None:
                st.exact[var] = exact


def _flip(op: ast.cmpop) -> ast.cmpop:
    mapping = {ast.Lt: ast.Gt, ast.Gt: ast.Lt, ast.LtE: ast.GtE, ast.GtE: ast.LtE}
    for src, dst in mapping.items():
        if isinstance(op, src):
            return dst()
    return op


def _lower_bound(op: ast.cmpop, const: int, positive: bool) -> int | None:
    """Lower bound on the subject implied by ``subject <op> const``."""
    if positive:
        if isinstance(op, ast.GtE):
            return const
        if isinstance(op, ast.Gt):
            return const + 1
        if isinstance(op, ast.Eq):
            return const
    else:
        if isinstance(op, ast.Lt):
            return const
        if isinstance(op, ast.LtE):
            return const + 1
        if isinstance(op, ast.NotEq):
            return None
    return None


def _exact_bound(op: ast.cmpop, const: int, positive: bool) -> int | None:
    if positive and isinstance(op, ast.Eq):
        return const
    if not positive and isinstance(op, ast.NotEq):
        return const
    return None


def _contains_len(node: ast.expr) -> bool:
    return any(
        isinstance(c, ast.Call)
        and isinstance(c.func, ast.Name)
        and c.func.id == "len"
        for c in ast.walk(node)
    )


def _call_suffix(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_struct_func(func: ast.expr) -> bool:
    """``struct.unpack`` / ``struct.unpack_from`` (module access only)."""
    return (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "struct"
    )


# -- program-level driver -----------------------------------------------------

def validation_findings(pctx: ProgramContext) -> list[tuple[str, str, ast.AST, str]]:
    """Run (and memoise) the wire-input validation scan over scoped modules."""
    if "validation" in pctx.cache:
        return pctx.cache["validation"]
    index, graph = pctx.program()
    findings: list[tuple[str, str, ast.AST, str]] = []
    local: dict[str, frozenset[str]] = {}
    caught: dict[tuple[str, str], frozenset[str]] = {}
    consts_by_module: dict[str, dict[str, int]] = {}
    scanned: list[str] = []
    for qualname in sorted(index.functions):
        fn = index.functions[qualname]
        if not scoped_path(fn.path):
            continue
        if fn.module not in consts_by_module:
            ctx = pctx.by_path.get(fn.path)
            consts_by_module[fn.module] = (
                module_consts(ctx.tree) if ctx is not None else {}
            )
        scan = _FunctionScan(
            fn.node, fn.params, consts_by_module[fn.module], graph.call_targets
        )
        scan.run()
        scanned.append(qualname)
        local[qualname] = frozenset(scan.escapes)
        for callee, kinds in scan.caught.items():
            caught[(qualname, callee)] = kinds
        for rule, node, message in scan.findings:
            findings.append((rule, fn.path, node, message))
    # Propagate escapes through the *scoped* subgraph only.  Full-graph
    # propagation drowns in the simulator's dispatch fabric: every daemon
    # transitively reaches some parser via CHA on opaque handler calls, and
    # VAL003's contract is about parse-call chains, not event plumbing.
    keep = set(scanned)
    sub = CallGraph(index)
    sub.edges = {
        q: tuple(c for c in graph.callees(q) if c in keep) for q in keep
    }
    escapes = propagate_raises(sub, local, caught)
    for qualname in scanned:
        raw = escapes.get(qualname, frozenset()) & _RAW_KINDS
        if raw:
            fn = index.functions[qualname]
            kinds = "/".join(sorted(raw))
            findings.append(
                (
                    "VAL003",
                    fn.path,
                    fn.node,
                    f"{fn.name}() lets raw {kinds} escape on malformed wire "
                    "input; raise a domain parse error instead",
                )
            )
    pctx.cache["validation"] = findings
    return findings


class _ValidationChecker(ProgramChecker):
    @classmethod
    def applies(cls, pctx: ProgramContext) -> bool:
        return any(scoped_path(ctx.path) for ctx in pctx.contexts)

    def run(self) -> None:
        for rule, path, node, message in validation_findings(self.pctx):
            if rule == self.rule:
                self.pctx.add(path, rule, node, message)


@register_program
class WireIntValidationChecker(_ValidationChecker):
    """wire-derived length/count/offset reaches an allocation, loop bound or index unvalidated"""

    rule = "VAL001"
    description = (
        "a struct-unpacked or byte-indexed wire value bounds an allocation, "
        "range() or index with no dominating length/bounds check"
    )


@register_program
class WireSliceTruncationChecker(_ValidationChecker):
    """slice of a wire buffer without a proven bound silently truncates short input"""

    rule = "VAL002"
    description = (
        "slicing attacker-controlled bytes past the proven length yields a "
        "short result instead of an error (silent truncation)"
    )


@register_program
class RawExceptionEscapeChecker(_ValidationChecker):
    """parse function lets struct.error / IndexError escape instead of a domain error"""

    rule = "VAL003"
    description = (
        "malformed wire input surfaces as struct.error or IndexError from a "
        "parse function (transitively), not as a domain parse error"
    )
