"""Static determinism & protocol-invariant linter for the repro stack.

Every experiment in EXPERIMENTS.md is only trustworthy because the simulator
is deterministic: all stochastic draws flow through named
:class:`~repro.sim.rng.RngStreams` and no component reads the wall clock.
This package *enforces* that discipline mechanically:

* :mod:`repro.analysis.rules` — repo-specific AST checkers (rule ids
  ``DET001``..., see ``--list-rules``);
* :mod:`repro.analysis.statemachine` — protocol state-machine extraction
  checked against declarative RFC 5201/5206 transition tables
  (``CONF001``-``CONF003``);
* :mod:`repro.analysis.taint` — intra-procedural secret-flow analysis for
  the HIP/TLS stacks (``SEC001``/``SEC002``);
* :mod:`repro.analysis.isolation` — shard-isolation rules: no shared
  mutable state across shard simulators (``ISO001``-``ISO004``);
* :mod:`repro.analysis.lifecycle` — leak lints: timers, registries and
  taps must have a release path (``LIF001``-``LIF003``);
* :mod:`repro.analysis.wire` — the runtime wire sanitizer: a link-layer
  tap asserting HIP TLV well-formedness and byte-exact parse/serialize
  round-trips on every sent control packet;
* :mod:`repro.analysis.causality` — the runtime causality sanitizer: a
  shard-machinery tap asserting happens-before, monotonic scheduling and
  object ownership while a sharded run executes;
* :mod:`repro.analysis.runner` — file discovery, suppression handling and
  the ``python -m repro.analysis`` CLI;
* :mod:`repro.analysis.report` — text and strict-JSON reporters (schema
  ``repro-analysis/1``, sibling of ``repro-metrics/1``);
* :mod:`repro.analysis.replay` — the *dynamic* complement: run a scenario
  twice under one seed and compare flight-recorder digests.

Findings are suppressed inline with a justified comment::

    something_flagged()  # repro: ignore[DET001] -- why this one is fine

An unjustified or unused suppression is itself a finding in ``--strict``
mode, so the suppression inventory stays honest.
"""

from repro.analysis.findings import Finding, Suppression
from repro.analysis.report import ANALYSIS_SCHEMA, analysis_json, render_text
from repro.analysis.runner import AnalysisResult, analyze_paths, analyze_source, main

__all__ = [
    "ANALYSIS_SCHEMA",
    "AnalysisResult",
    "Finding",
    "Suppression",
    "analysis_json",
    "analyze_paths",
    "analyze_source",
    "main",
    "render_text",
]
