"""Hot-path discipline rules (PERF001/002).

PRs 5 and 7 bought the fast-lane throughput (BENCH_sim.json,
BENCH_scale.json) by keeping the per-event dispatch paths free of
allocation and name lookup: bound callbacks created once, rearmed timer
handles, module-level pre-bound METRICS counters, RECORDER calls gated
behind ``RECORDER.enabled``.  Nothing guards those wins against a quiet
regression — one innocent f-string in a per-packet function and a
million-session run pays for it a billion times.  These rules are that
guard.

The hot set is the call-graph closure of the explicitly named dispatch
roots (:data:`ROOTS`) — the callback-lane link serializer, the fast IP
send path, the fluid TCP fast-forward, and the ESP dataplane workers.
The walk follows only calls in the *hot region* of each function: error
paths (blocks ending in ``raise``, ``except`` handlers, ``assert``) and
``RECORDER.enabled``-gated debug blocks are cold by construction and
neither followed nor checked.  Ambiguous CHA fan-out (an opaque
``obj.get(...)`` resolving to more than :data:`CHA_FANOUT_LIMIT`
methods) is not followed either — that is why the roots are named
explicitly instead of inferred.

PERF001 flags per-event allocation in hot code: dict displays /
``dict()``, lambdas and nested ``def`` (closure objects), f-strings and
``.format()``.  PERF002 flags per-event observability overhead: any
``logging`` / ``print`` call, and METRICS registry lookups
(``METRICS.counter("...")`` inside a hot function instead of a
module-level pre-bound handle).
"""

from __future__ import annotations

import ast

from repro.analysis.base import ProgramChecker, ProgramContext, register_program

#: Fast-lane dispatch roots, as ``Class.method`` qualname suffixes.  The
#: serializer callbacks are wired through bound-method references
#: (``self._tx_done_cb = self._tx_done``) the call graph cannot see, so
#: the roots name them directly.
ROOTS = (
    "LinkEndpoint.send",
    "LinkEndpoint._start_tx",
    "LinkEndpoint._tx_done",
    "LinkEndpoint._deliver_packet",
    "Node.send_ip_fast",
    "Node._route_out",
    "TcpConnection._fluid_advance",
    "TcpConnection._fluid_fired",
    "TcpConnection._fluid_charge",
    "HipDaemon._protect_and_send",
    "HipDaemon._rx_worker",
    "HipDaemon._fluid_taxer",
    # The shard coordinator's window loop (PR 10): these run once per sync
    # window / boundary packet, thousands of times per scale run, and the
    # scatter-gather speedup evaporates if barrier turnaround regresses.
    "ShardedSimulation._sync_window",
    "ShardedSimulation._route_window",
    "ShardedSimulation._drain_digest",
    "ShardPortal.send",
    "Shard.inject",
    "Shard.advance",
    "encode_envelopes",
    "decode_envelopes",
)

#: Do not follow opaque-receiver CHA edges wider than this.
CHA_FANOUT_LIMIT = 3

#: METRICS registry methods that do a name lookup / registration.
_REGISTRY_LOOKUPS = frozenset({"counter", "gauge", "histogram"})


def _tooling_path(path: str) -> bool:
    """The analysis package itself (and its causality sanitizer) is
    offline tooling — opaque CHA edges into it are spurious."""
    norm = path.replace("\\", "/")
    return "/analysis/" in norm or "/tests/" in norm


def _is_cold_if(node: ast.If) -> bool:
    """Error-path or debug-gated ``if`` blocks are cold by construction."""
    if node.body and isinstance(node.body[-1], ast.Raise):
        return True
    for sub in ast.walk(node.test):
        if isinstance(sub, ast.Attribute) and sub.attr == "enabled":
            return True
    return False


def hot_statements(body: list[ast.stmt]):
    """Statements in the hot region of a function body.

    Skips: nested defs (yielded once as allocation sites, not descended),
    ``raise``/``assert``, cold ``if`` blocks, and ``except`` handlers.
    """
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            yield stmt  # closure allocation; body is a separate graph node
            continue
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            continue
        if isinstance(stmt, ast.If):
            if not _is_cold_if(stmt):
                yield stmt.test
                yield from hot_statements(stmt.body)
            yield from hot_statements(stmt.orelse)
            continue
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            yield stmt.iter
            yield from hot_statements(stmt.body)
            yield from hot_statements(stmt.orelse)
            continue
        if isinstance(stmt, ast.While):
            yield stmt.test
            yield from hot_statements(stmt.body)
            yield from hot_statements(stmt.orelse)
            continue
        if isinstance(stmt, ast.Try):
            yield from hot_statements(stmt.body)
            yield from hot_statements(stmt.orelse)
            yield from hot_statements(stmt.finalbody)
            continue
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                yield item.context_expr
            yield from hot_statements(stmt.body)
            continue
        if isinstance(stmt, ast.ClassDef):
            continue
        yield stmt


def hot_nodes(fn_node):
    """Every AST node in the hot region (statements expanded to exprs)."""
    for item in hot_statements(fn_node.body):
        stack = [item]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                yield node  # allocation site; don't descend
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))


def hot_reachable(index, graph) -> dict[str, str]:
    """Hot closure of :data:`ROOTS` with root provenance.

    Unlike :meth:`CallGraph.reachable`, only calls in the hot region are
    followed, and ambiguous CHA target sets are pruned.
    """
    queue: list[tuple[str, str]] = []
    for suffix in ROOTS:
        for qualname in sorted(graph.edges):
            if qualname == suffix or qualname.endswith("." + suffix):
                queue.append((qualname, suffix))
    reached: dict[str, str] = {}
    while queue:
        qualname, root = queue.pop(0)
        if qualname in reached:
            continue
        fn = index.functions.get(qualname)
        if fn is not None and _tooling_path(fn.path):
            continue
        reached[qualname] = root
        if fn is None:
            continue
        for node in hot_nodes(fn.node):
            if not isinstance(node, ast.Call):
                continue
            targets = graph.call_targets.get(id(node), ())
            if 0 < len(targets) <= CHA_FANOUT_LIMIT:
                for target in targets:
                    if target not in reached:
                        queue.append((target, root))
    return reached


def _alloc_problem(node: ast.AST) -> str | None:
    if isinstance(node, ast.Dict) or (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "dict"
    ):
        return "allocates a dict per event"
    if isinstance(node, ast.DictComp):
        return "builds a dict comprehension per event"
    if isinstance(node, ast.Lambda):
        return "allocates a closure (lambda) per event"
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return "allocates a closure (nested def) per event"
    if isinstance(node, ast.JoinedStr):
        return "formats an f-string per event"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "format"
    ):
        return "calls str.format per event"
    return None


def _observability_problem(node: ast.AST, resolve_call) -> str | None:
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id == "METRICS" and func.attr in _REGISTRY_LOOKUPS:
            return (
                f"METRICS.{func.attr}(...) does a registry name-lookup per "
                "event; bind the handle at module scope"
            )
    dotted = resolve_call(func)
    if dotted is not None:
        if dotted == "print" or dotted.split(".")[0] == "logging":
            return f"calls {dotted} per event"
    return None


def perf_findings(pctx: ProgramContext) -> list[tuple[str, str, ast.AST, str]]:
    """Run (and memoise) the hot-path discipline scan."""
    if "perf" in pctx.cache:
        return pctx.cache["perf"]
    index, graph = pctx.program()
    findings: list[tuple[str, str, ast.AST, str]] = []
    for qualname, root in sorted(hot_reachable(index, graph).items()):
        fn = index.functions.get(qualname)
        ctx = pctx.by_path.get(fn.path) if fn is not None else None
        if fn is None or ctx is None:
            continue
        where = f"on the fast lane (reachable from {root})"
        for node in hot_nodes(fn.node):
            alloc = _alloc_problem(node)
            if alloc is not None:
                findings.append(("PERF001", fn.path, node, f"{alloc} {where}"))
            obs = _observability_problem(node, ctx.resolve_call)
            if obs is not None:
                findings.append(("PERF002", fn.path, node, f"{obs} {where}"))
    pctx.cache["perf"] = findings
    return findings


class _PerfChecker(ProgramChecker):
    def run(self) -> None:
        for rule, path, node, message in perf_findings(self.pctx):
            if rule == self.rule:
                self.pctx.add(path, rule, node, message)


@register_program
class HotPathAllocationChecker(_PerfChecker):
    """per-event allocation (dict, closure, f-string, .format) in fast-lane code"""

    rule = "PERF001"
    description = (
        "function reachable from a fast-lane dispatch root allocates a "
        "dict/closure/f-string per event"
    )


@register_program
class HotPathObservabilityChecker(_PerfChecker):
    """logging/print or METRICS registry lookup per event in fast-lane code"""

    rule = "PERF002"
    description = (
        "function reachable from a fast-lane dispatch root calls logging/"
        "print or does a METRICS name-lookup per event"
    )
