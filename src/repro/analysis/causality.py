"""Runtime causality sanitizer for the sharded simulator.

Static rules (ISO*) check the code; this tap checks the *run*.  Installed
into :data:`repro.sim.shard.CAUSALITY_TAPS` (opt-in, normally from the
pytest fixture that the shard suite and tier-1 smoke runs enable), it
threads a logical clock through every shard and asserts the conservative
lookahead contract while the simulation executes:

* **happens-before** — every cross-shard envelope routed at a window
  barrier satisfies ``arrival >= sent_now + lookahead`` (the sender cannot
  influence a remote shard sooner than the shortest boundary delay), and
  every envelope injected into a destination shard lands at
  ``arrival >= now``;
* **monotonic scheduling** — each shard simulator's ``call_later`` /
  ``call_at`` only targets the present or future (the sanitizer wraps the
  two entry points per shard, so a violation names the shard and its local
  clock instead of dying as a bare ``ValueError`` deep in a worker);
* **ownership** — objects are id-tagged to the shard that registered them
  (each shard's ``Simulator`` at registration, packets at portal egress,
  plus anything tagged explicitly with :meth:`CausalitySanitizer.track`);
  scheduling a callback whose receiver, argument or closure belongs to a
  *different* shard is flagged as smuggling.  The only sanctioned transfer
  is the portal itself: :meth:`on_inject` re-tags the packet to the
  destination shard, mirroring ``canonical_envelope`` serialization in the
  forked-worker mode.

Violations raise :class:`CausalityViolation` (an ``AssertionError``) at the
offending call site with the shard id and simulated time in the message;
they are also accumulated on the sanitizer for post-run inspection.  In
``parallel=True`` runs the taps are inherited across the worker fork, so a
shard-side violation raises in the child and surfaces as a ``ShardError``
whose message still carries the shard id and time.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.sim import shard as shard_mod
from repro.sim.engine import _NO_ARG

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.shard import Envelope, Shard, ShardPortal

#: Slack for float round-off when comparing arrival clocks; portal arrival
#: arithmetic is exact float addition, so this only forgives representation
#: error, never a real early delivery.
_EPS = 1e-12


class CausalityViolation(AssertionError):
    """A shard run broke the happens-before / ownership contract."""


@dataclass
class Violation:
    """One recorded contract breach (also raised unless ``strict=False``)."""

    kind: str  # "late-envelope" | "past-schedule" | "smuggled-object" | ...
    shard: str
    time: float
    detail: str

    def __str__(self) -> str:
        return f"[shard {self.shard!r} t={self.time:.9f}] {self.kind}: {self.detail}"


@dataclass
class CausalitySanitizer:
    """Shard-machinery tap; register via :func:`causality_sanitizer`.

    One instance watches every shard built while it is installed.  With
    ``strict=True`` (the default) the first violation raises; with
    ``strict=False`` violations only accumulate in :attr:`violations`,
    which deliberately-broken test scenarios use to assert on the reports.
    """

    strict: bool = True
    shards_seen: int = 0
    envelopes_checked: int = 0
    schedules_checked: int = 0
    windows_checked: int = 0
    digests_checked: int = 0
    violations: list[Violation] = field(default_factory=list)
    #: Last window barrier the coordinator announced via :meth:`on_window`.
    _last_window_end: float = 0.0
    #: Global-order key of the last envelope folded into the digest.
    _last_digest_key: tuple[float, int, int] | None = None
    #: id(obj) -> owning shard name.  Guarded by _live so a recycled id of
    #: a collected object cannot alias an old tag: _live keeps every tagged
    #: object alive for the sanitizer's (test-scoped) lifetime.
    _owner: dict[int, str] = field(default_factory=dict)
    _live: dict[int, Any] = field(default_factory=dict)
    #: shard name -> committed horizon (end of the last finished window).
    _commit: dict[str, float] = field(default_factory=dict)

    # -- ownership ------------------------------------------------------------
    def track(self, obj: Any, shard_name: str) -> Any:
        """Tag ``obj`` as owned by ``shard_name``; returns ``obj``."""
        self._owner[id(obj)] = shard_name
        self._live[id(obj)] = obj
        return obj

    def owner_of(self, obj: Any) -> str | None:
        return self._owner.get(id(obj))

    # -- recording ------------------------------------------------------------
    def _violate(self, kind: str, shard: str, time: float, detail: str) -> None:
        violation = Violation(kind=kind, shard=shard, time=time, detail=detail)
        self.violations.append(violation)
        if self.strict:
            raise CausalityViolation(str(violation))

    # -- shard hooks (called from repro.sim.shard) -----------------------------
    def on_shard(self, shard: "Shard") -> None:
        """A shard was built: tag its simulator and wrap its timer lane."""
        self.shards_seen += 1
        self.track(shard.sim, shard.name)
        self._commit.setdefault(shard.name, 0.0)
        sim = shard.sim
        orig_later, orig_at = sim.call_later, sim.call_at

        def call_later(delay, fn, arg=_NO_ARG, _shard=shard):
            if delay < 0:
                self._violate(
                    "past-schedule",
                    _shard.name,
                    sim.now,
                    f"call_later({delay!r}) targets t={sim.now + delay} "
                    "behind the shard clock",
                )
            self._check_schedule(_shard, fn, arg)
            return orig_later(delay, fn, arg)

        def call_at(when, fn, arg=_NO_ARG, _shard=shard):
            if when < sim.now:
                self._violate(
                    "past-schedule",
                    _shard.name,
                    sim.now,
                    f"call_at({when!r}) is behind the shard clock",
                )
            self._check_schedule(_shard, fn, arg)
            return orig_at(when, fn, arg)

        # Instance-attribute shadowing: only this shard's simulator is
        # wrapped, and removing the tap never has to unwrap (the Simulator
        # dies with its shard).
        sim.call_later = call_later
        sim.call_at = call_at

    def _check_schedule(self, shard: "Shard", fn: Any, arg: Any) -> None:
        """Flag callbacks that reach into another shard's objects."""
        self.schedules_checked += 1
        suspects = [arg] if arg is not _NO_ARG else []
        receiver = getattr(fn, "__self__", None)
        if receiver is not None:
            suspects.append(receiver)
        closure = getattr(fn, "__closure__", None)
        if closure:
            for cell in closure:
                try:
                    suspects.append(cell.cell_contents)
                except ValueError:  # empty cell (still being bound)
                    pass
        for obj in suspects:
            owner = self._owner.get(id(obj))
            if owner is not None and owner != shard.name:
                self._violate(
                    "smuggled-object",
                    shard.name,
                    shard.sim.now,
                    f"{type(obj).__name__} owned by shard {owner!r} scheduled "
                    f"into shard {shard.name!r} without crossing a portal",
                )

    def on_send(self, shard: "Shard", portal: "ShardPortal", env: "Envelope") -> None:
        """A packet entered a portal: check and tag its ownership."""
        packet = env.packet
        owner = self._owner.get(id(packet))
        if owner is not None and owner != shard.name:
            self._violate(
                "smuggled-object",
                shard.name,
                shard.sim.now,
                f"packet owned by shard {owner!r} sent through portal "
                f"{portal.port_id!r} of shard {shard.name!r}",
            )
        self.track(packet, shard.name)
        if env.arrival < env.sent_now + portal.delay_s - _EPS:
            self._violate(
                "late-envelope",
                shard.name,
                env.sent_now,
                f"portal {portal.port_id!r} computed arrival {env.arrival} "
                f"< send clock {env.sent_now} + link delay {portal.delay_s}",
            )

    def on_commit(self, shard: "Shard", window_end: float) -> None:
        """A shard finished a window: advance its committed horizon."""
        self._commit[shard.name] = window_end

    def on_route(self, env: "Envelope", window_end: float, lookahead: float) -> None:
        """The coordinator is routing an envelope at a window barrier."""
        self.envelopes_checked += 1
        if env.sent_now >= 0 and env.arrival < env.sent_now + lookahead - _EPS:
            self._violate(
                "late-envelope",
                env.src_shard,
                env.sent_now,
                f"envelope for {env.port_id!r} arrives at {env.arrival}, "
                f"before send clock {env.sent_now} + lookahead {lookahead}",
            )
        if env.arrival < window_end - _EPS:
            self._violate(
                "late-envelope",
                env.src_shard,
                env.sent_now,
                f"envelope for {env.port_id!r} arrives at {env.arrival}, "
                f"inside the committed window ending {window_end}",
            )

    def on_inject(self, shard: "Shard", env: "Envelope", now: float) -> None:
        """An envelope is landing in its destination shard."""
        if env.arrival < now - _EPS:
            self._violate(
                "late-envelope",
                shard.name,
                now,
                f"envelope from {env.src_shard!r} arrives at {env.arrival}, "
                f"behind shard {shard.name!r}'s clock",
            )
        # The portal crossing is the sanctioned ownership transfer: in the
        # forked mode the packet was reborn via pickling, in the inline mode
        # the very same object now belongs to the destination shard.
        self.track(env.packet, shard.name)

    def on_run_start(self, coordinator: Any) -> None:
        """A coordinator is starting a run: its digest stream and window
        schedule begin fresh (one sanitizer may watch several back-to-back
        runs, e.g. inline-vs-process digest comparisons).  Called in the
        parent process regardless of worker mode."""
        self._last_digest_key = None
        self._last_window_end = 0.0

    def on_window(
        self, start: float, end: float, next_hint: float, lookahead: float
    ) -> None:
        """The coordinator scheduled the next (possibly stretched) window.

        Asserts the adaptive-lookahead safety contract: windows advance
        monotonically, and a stretched window never extends past
        ``next_hint + lookahead`` — the earliest instant any shard's next
        live event (or pending envelope) could produce a cross-shard
        consequence.
        """
        self.windows_checked += 1
        if end < start - _EPS:
            self._violate(
                "window-schedule",
                "<coordinator>",
                start,
                f"window end {end} precedes window start {start}",
            )
        limit = max(start, next_hint) + lookahead
        if end > limit + _EPS:
            self._violate(
                "window-schedule",
                "<coordinator>",
                start,
                f"window stretched to {end}, beyond the safe horizon "
                f"max(start={start}, next_event={next_hint}) + "
                f"lookahead {lookahead} = {limit}",
            )
        self._last_window_end = end

    def on_digest(self, env: "Envelope", barrier: float) -> None:
        """An envelope is being folded into the boundary digest.

        Asserts digest schedule-invariance: envelopes enter the digest in
        strictly increasing global ``(arrival, src_index, seq)`` order, and
        only once the barrier clock has passed their arrival — so any
        window schedule (static, adaptive, inline, forked) digests the same
        canonical stream.
        """
        self.digests_checked += 1
        key = (env.arrival, env.src_index, env.seq)
        last = self._last_digest_key
        if last is not None and key <= last:
            self._violate(
                "digest-order",
                env.src_shard,
                env.arrival,
                f"digest key {key} does not follow {last} in global "
                "(arrival, src_index, seq) order",
            )
        if env.arrival > barrier + _EPS:
            self._violate(
                "digest-order",
                env.src_shard,
                env.arrival,
                f"envelope digested at barrier {barrier} before its arrival "
                f"{env.arrival} was committed",
            )
        self._last_digest_key = key

    def describe(self) -> str:
        return (
            f"causality sanitizer: {self.shards_seen} shard(s), "
            f"{self.envelopes_checked} envelope(s), "
            f"{self.schedules_checked} schedule(s), "
            f"{self.windows_checked} window(s), "
            f"{self.digests_checked} digest fold(s) checked, "
            f"{len(self.violations)} violation(s)"
        )


@contextmanager
def causality_sanitizer(strict: bool = True) -> Iterator[CausalitySanitizer]:
    """Install a :class:`CausalitySanitizer` tap for the duration of a block."""
    tap = CausalitySanitizer(strict=strict)
    shard_mod.CAUSALITY_TAPS.append(tap)
    try:
        yield tap
    finally:
        shard_mod.CAUSALITY_TAPS.remove(tap)
