"""File discovery, suppression application and the CLI.

``python -m repro.analysis src tests --strict`` is the canonical invocation
(CI runs exactly that).  Exit status: 0 when clean, 1 when any active
finding survives, 2 on usage errors.  Without ``--strict`` the suppression
hygiene meta-rules (ANA001/ANA002) are reported but do not gate.

Each file is parsed exactly once; the per-module rules share the
:class:`~repro.analysis.base.ModuleContext` and the whole-program rules
(SEC003/004, VAL, PERF) share one :class:`~repro.analysis.base.ProgramContext`
— call graph and dataflow summaries are built once per run, not per rule.
Per-rule wall time lands in the JSON report's ``timings`` map.

``--changed-only`` asks git for the files changed since the merge-base
with the default branch and analyzes just those plus every module that
(transitively) imports them — the import closure comes from the same
program index the call graph uses.  Still parses the whole tree (the
graph must be whole-program); only the checkers are skipped, which is
where the time goes.  Falls back to a full run when git is unavailable.
"""

from __future__ import annotations

import argparse
import ast
import json
import pathlib
import subprocess
import sys
import time
from dataclasses import dataclass, field

from repro.analysis.base import (
    PROGRAM_REGISTRY,
    REGISTRY,
    ModuleContext,
    ProgramContext,
    registered_rules,
    rule_doc,
)
from repro.analysis.findings import Finding, Suppression, parse_suppressions
from repro.analysis.report import META_RULES, analysis_json, render_text

# Ensure the rule registry is populated before any analysis runs.
import repro.analysis.isolation  # noqa: F401  (registration side effect)
import repro.analysis.lifecycle  # noqa: F401  (registration side effect)
import repro.analysis.rules  # noqa: F401  (registration side effect)
import repro.analysis.statemachine  # noqa: F401  (registration side effect)
import repro.analysis.taint  # noqa: F401  (registration side effect)
import repro.analysis.dataflow  # noqa: F401  (registration side effect)
import repro.analysis.validation  # noqa: F401  (registration side effect)
import repro.analysis.perf  # noqa: F401  (registration side effect)

_HYGIENE_RULES = ("ANA001", "ANA002", "ANA003")

BASELINE_SCHEMA = "repro-analysis-baseline/1"

_FAMILY_TITLES = {
    "ANA": "analysis hygiene",
    "CONF": "configuration consistency",
    "DET": "determinism",
    "ISO": "shard isolation",
    "LIF": "handle lifecycle",
    "PERF": "hot-path discipline",
    "SEC": "secret flow",
    "VAL": "wire-input validation",
}


@dataclass
class AnalysisResult:
    """Everything one run produced, pre-partitioned for the reporters."""

    files_checked: int = 0
    findings: list[Finding] = field(default_factory=list)
    #: rule id -> accumulated wall seconds across all files/program passes
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed and not f.baselined]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def baselined(self) -> list[Finding]:
        return [f for f in self.findings if f.baselined]

    def gating(self, strict: bool) -> list[Finding]:
        """Findings that should fail the build."""
        return [
            f
            for f in self.active
            if strict or f.rule not in _HYGIENE_RULES
        ]

    def extend(self, findings: list[Finding]) -> None:
        self.findings.extend(findings)

    def add_timing(self, rule: str, seconds: float) -> None:
        self.timings[rule] = self.timings.get(rule, 0.0) + seconds

    def apply_baseline(
        self,
        entries: list[dict],
        rules: set[str] | None = None,
        report_stale: bool = True,
    ) -> None:
        """Mark accepted pre-existing findings; report stale entries.

        Each entry matches at most one finding by ``(path, rule, message)``,
        where the entry path may be a repo-relative suffix of the finding
        path (so one baseline serves both ``src/...`` and absolute-path
        invocations).  Line numbers are deliberately ignored — baselines
        must survive unrelated edits above the finding.  Entries that match
        nothing become ANA003 findings: a stale baseline hides regressions,
        so it gates under ``--strict`` exactly like unused suppressions.
        ``report_stale=False`` (the ``--changed-only`` path) skips that:
        entries for files outside the changed closure are not stale, their
        rules simply did not run.
        """
        pool = [
            {
                "path": str(e["path"]).replace("\\", "/"),
                "rule": str(e["rule"]),
                "message": str(e["message"]),
                "count": int(e.get("count", 1)),
            }
            for e in entries
        ]
        rewritten: list[Finding] = []
        for finding in self.findings:
            if not finding.suppressed and finding.rule not in META_RULES:
                norm = finding.path.replace("\\", "/")
                entry = next(
                    (
                        e
                        for e in pool
                        if e["count"] > 0
                        and e["rule"] == finding.rule
                        and e["message"] == finding.message
                        and (norm == e["path"] or norm.endswith("/" + e["path"]))
                    ),
                    None,
                )
                if entry is not None:
                    entry["count"] -= 1
                    rewritten.append(finding.baseline())
                    continue
            rewritten.append(finding)
        self.findings = rewritten
        if not report_stale:
            return
        for entry in pool:
            if entry["count"] <= 0:
                continue
            if rules is not None and entry["rule"] not in rules:
                continue  # its rule did not run under this --rules subset
            self.findings.append(
                Finding(
                    path=entry["path"],
                    line=0,
                    col=0,
                    rule="ANA003",
                    message=(
                        f"baseline entry for {entry['rule']} "
                        f"({entry['message'][:60]}...) matched no finding; "
                        "refresh the baseline"
                    ),
                )
            )


def load_baseline(path: str) -> list[dict]:
    """Parse a ``repro-analysis-baseline/1`` file into match entries."""
    data = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    if data.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {BASELINE_SCHEMA!r}, "
            f"got {data.get('schema')!r}"
        )
    entries = data.get("findings")
    if not isinstance(entries, list):
        raise ValueError(f"{path}: 'findings' must be a list")
    return entries


def write_baseline(path: str, result: AnalysisResult) -> int:
    """Accept every current active (non-meta) finding into ``path``."""
    entries = [
        {"path": p, "rule": r, "message": m}
        for p, r, m in sorted(
            (f.path.replace("\\", "/"), f.rule, f.message)
            for f in result.active
            if f.rule not in META_RULES
        )
    ]
    payload = {"schema": BASELINE_SCHEMA, "findings": entries}
    pathlib.Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(entries)


def _apply_suppressions(
    findings: list[Finding],
    suppressions: list[Suppression],
    rules: set[str] | None = None,
) -> list[Finding]:
    """Match findings against suppression comments; emit hygiene findings.

    A suppression on the finding's own line, or standalone on the line just
    above, covers it.  Meta-findings (ANA*) are never suppressible — the
    inventory must stay inspectable.
    """
    by_line: dict[int, list[Suppression]] = {}
    for sup in suppressions:
        by_line.setdefault(sup.target_line, []).append(sup)

    out: list[Finding] = []
    for finding in findings:
        sup = None
        if finding.rule not in META_RULES:
            for candidate in by_line.get(finding.line, []):
                if candidate.covers(finding.rule):
                    sup = candidate
                    break
        if sup is None:
            out.append(finding)
        else:
            sup.used = True
            out.append(finding.suppress(sup.justification))

    for sup in suppressions:
        if not sup.justification:
            out.append(
                Finding(
                    path=sup.path,
                    line=sup.line,
                    col=0,
                    rule="ANA001",
                    message=(
                        "suppression without justification; write "
                        "`# repro: ignore[RULE] -- why this is fine`"
                    ),
                )
            )
        if not sup.used:
            # Under a --rules subset a suppression for an unselected rule
            # is trivially unused; only gate the ones whose rules ran.
            if (
                rules is not None
                and "*" not in sup.rules
                and not (sup.rules & rules)
            ):
                continue
            out.append(
                Finding(
                    path=sup.path,
                    line=sup.line,
                    col=0,
                    rule="ANA002",
                    message=(
                        f"suppression for {', '.join(sorted(sup.rules))} "
                        "matched no finding; remove it"
                    ),
                )
            )
    return out


# -- shared analysis core ------------------------------------------------------

def _clock() -> float:
    """Wall time for the per-rule timing report (tooling, not simulation)."""
    # repro: ignore[DET001] -- times the linter's own passes for the JSON report; analysis tooling never runs inside the simulation
    return time.perf_counter()


def _parse_module(source: str, path: str) -> ModuleContext | Finding:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return Finding(
            path=path,
            line=exc.lineno or 0,
            col=exc.offset or 0,
            rule="ANA000",
            message=f"syntax error: {exc.msg}",
        )
    return ModuleContext(path=path, source=source, tree=tree)


def _run_module_checkers(
    ctx: ModuleContext,
    rules: set[str] | None,
    result: AnalysisResult | None = None,
) -> None:
    for checker_cls in REGISTRY:
        if rules is not None and checker_cls.rule not in rules:
            continue
        if checker_cls.applies(ctx):
            start = _clock()
            checker_cls(ctx).run()
            if result is not None:
                result.add_timing(checker_cls.rule, _clock() - start)


def _run_program_checkers(
    contexts: list[ModuleContext],
    rules: set[str] | None,
    result: AnalysisResult | None = None,
) -> None:
    """Run whole-program rules; findings land in each owning context."""
    pctx = ProgramContext(contexts=contexts)
    for checker_cls in PROGRAM_REGISTRY:
        if rules is not None and checker_cls.rule not in rules:
            continue
        if checker_cls.applies(pctx):
            start = _clock()
            checker_cls(pctx).run()
            if result is not None:
                result.add_timing(checker_cls.rule, _clock() - start)


def analyze_source(
    source: str, path: str, rules: set[str] | None = None
) -> list[Finding]:
    """Analyze one module's text; ``path`` drives rule scoping.

    ``rules`` restricts which checkers run (None = all registered).  The
    program-level rules run over a single-module program — exactly what
    the fixture suites need.
    """
    parsed = _parse_module(source, path)
    if isinstance(parsed, Finding):
        return [parsed]
    _run_module_checkers(parsed, rules)
    _run_program_checkers([parsed], rules)
    return _apply_suppressions(
        parsed.findings, parse_suppressions(source, path), rules
    )


def _iter_python_files(paths: list[str]) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            files.extend(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
                and not any(part.startswith(".") for part in p.parts)
            )
        elif path.suffix == ".py":
            files.append(path)
    # Stable discovery order: the report must not depend on filesystem order.
    return sorted(set(files))


def changed_files() -> set[str] | None:
    """Repo-relative paths changed vs. the merge-base with the default
    branch, plus uncommitted changes.  None when git is unusable (the
    caller falls back to a full run)."""

    def _git(*args: str) -> str | None:
        try:
            proc = subprocess.run(
                ["git", *args], capture_output=True, text=True, timeout=30
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        return proc.stdout if proc.returncode == 0 else None

    base = None
    for ref in ("origin/main", "origin/master", "main", "master"):
        out = _git("merge-base", "HEAD", ref)
        if out and out.strip():
            base = out.strip()
            break
    listings = []
    if base is not None:
        listings.append(_git("diff", "--name-only", base, "HEAD"))
    listings.append(_git("diff", "--name-only", "HEAD"))
    listings.append(_git("ls-files", "--others", "--exclude-standard"))
    if all(chunk is None for chunk in listings):
        return None
    changed: set[str] = set()
    for chunk in listings:
        if chunk:
            changed.update(
                line.strip() for line in chunk.splitlines() if line.strip()
            )
    return changed


def _changed_closure_paths(
    contexts: list[ModuleContext], changed: set[str]
) -> set[str]:
    """Analyzed paths to keep: changed files plus the import closure of
    changed product modules (via the program index's import graph)."""
    from repro.analysis.callgraph import ProgramIndex

    norm_changed = {c.replace("\\", "/") for c in changed if c.endswith(".py")}

    def is_changed(path: str) -> bool:
        norm = path.replace("\\", "/")
        return any(
            norm == c or norm.endswith("/" + c) or c.endswith("/" + norm)
            for c in norm_changed
        )

    index = ProgramIndex.build(contexts)
    changed_modules = {
        module
        for path, module in index.module_of_path.items()
        if is_changed(path)
    }
    closure = index.changed_closure(changed_modules)
    keep: set[str] = set()
    for ctx in contexts:
        module = index.module_of_path.get(ctx.path)
        if (module is not None and module in closure) or is_changed(ctx.path):
            keep.add(ctx.path)
    return keep


def analyze_paths(
    paths: list[str],
    rules: set[str] | None = None,
    changed_only: set[str] | None = None,
) -> AnalysisResult:
    """Analyze every ``.py`` file under ``paths`` (files or directories).

    Each file is parsed once; per-module and program rules share the ASTs.
    ``changed_only`` (a set of repo-relative changed paths) restricts
    *checking* to those files plus their reverse-import closure.
    """
    result = AnalysisResult()
    contexts: list[ModuleContext] = []
    for file_path in _iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            result.extend(
                [
                    Finding(
                        path=str(file_path),
                        line=0,
                        col=0,
                        rule="ANA000",
                        message=f"unreadable: {exc}",
                    )
                ]
            )
            continue
        parsed = _parse_module(source, str(file_path))
        if isinstance(parsed, Finding):
            result.files_checked += 1
            result.extend([parsed])
            continue
        contexts.append(parsed)

    keep: set[str] | None = None
    if changed_only is not None:
        keep = _changed_closure_paths(contexts, changed_only)

    checked: list[ModuleContext] = []
    for ctx in contexts:
        if keep is not None and ctx.path not in keep:
            continue
        checked.append(ctx)
        result.files_checked += 1
        _run_module_checkers(ctx, rules, result)

    # Program rules see the whole parsed set (the graph must be complete)
    # but only checked files' findings are reported.
    checked_paths = {ctx.path for ctx in checked}
    _run_program_checkers(contexts, rules, result)
    for ctx in contexts:
        if ctx.path not in checked_paths:
            continue
        result.extend(
            _apply_suppressions(
                ctx.findings, parse_suppressions(ctx.source, ctx.path), rules
            )
        )
    return result


def _print_rules() -> None:
    """Grouped ``--list-rules``: family heading, then ``RULE  one-liner``."""
    all_rules = {**registered_rules(), **META_RULES}
    families: dict[str, list[str]] = {}
    for rule in sorted(all_rules):
        families.setdefault(rule.rstrip("0123456789"), []).append(rule)
    for family in sorted(families):
        title = _FAMILY_TITLES.get(family, "")
        print(f"{family} — {title}" if title else family)
        for rule in families[family]:
            doc = META_RULES.get(rule) or rule_doc(rule) or all_rules[rule]
            print(f"  {rule}  {doc}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based determinism & protocol-invariant linter",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to analyze (default: src tests)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="also fail on suppression-hygiene findings (ANA001/ANA002)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--json", action="store_true", help="shorthand for --format json"
    )
    parser.add_argument(
        "--rules", default=None,
        help=(
            "comma-separated rule ids or case-insensitive prefixes to run "
            "(e.g. --rules conf,sec selects CONF* and SEC*; default: all)"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print registered rules and exit"
    )
    parser.add_argument(
        "--changed-only", action="store_true",
        help=(
            "check only files changed vs. the merge-base with the default "
            "branch, plus modules that transitively import them; falls back "
            "to a full run when git is unavailable"
        ),
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=(
            "accept the pre-existing findings listed in FILE "
            f"(schema {BASELINE_SCHEMA}); they are reported but do not gate. "
            "Stale entries become ANA003 findings"
        ),
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help=(
            "write every current active finding to FILE as a baseline and "
            "exit 0 (maintenance mode; --baseline is not applied first)"
        ),
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rules()
        return 0

    selected = None
    if args.rules:
        known = set(registered_rules())
        selected = set()
        unknown = []
        for token in (t.strip() for t in args.rules.split(",")):
            if not token:
                continue
            matches = {r for r in known if r.upper().startswith(token.upper())}
            if matches:
                selected |= matches
            else:
                unknown.append(token)
        if unknown:
            print(f"unknown rule(s): {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2

    changed: set[str] | None = None
    if args.changed_only:
        changed = changed_files()
        if changed is None:
            print(
                "--changed-only: git unavailable; analyzing everything",
                file=sys.stderr,
            )

    result = analyze_paths(args.paths, rules=selected, changed_only=changed)
    if args.write_baseline:
        count = write_baseline(args.write_baseline, result)
        print(f"wrote {count} baseline entr{'y' if count == 1 else 'ies'} "
              f"to {args.write_baseline}")
        return 0
    if args.baseline:
        try:
            entries = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"--baseline: {exc}", file=sys.stderr)
            return 2
        result.apply_baseline(
            entries, rules=selected, report_stale=changed is None
        )
    if args.format == "json" or args.json:
        print(json.dumps(analysis_json(result), indent=2, sort_keys=True))
    else:
        for line in render_text(result):
            print(line)
    return 1 if result.gating(args.strict) else 0
