"""File discovery, suppression application and the CLI.

``python -m repro.analysis src tests --strict`` is the canonical invocation
(CI runs exactly that).  Exit status: 0 when clean, 1 when any active
finding survives, 2 on usage errors.  Without ``--strict`` the suppression
hygiene meta-rules (ANA001/ANA002) are reported but do not gate.
"""

from __future__ import annotations

import argparse
import ast
import json
import pathlib
import sys
from dataclasses import dataclass, field

from repro.analysis.base import REGISTRY, ModuleContext, registered_rules
from repro.analysis.findings import Finding, Suppression, parse_suppressions
from repro.analysis.report import META_RULES, analysis_json, render_text

# Ensure the rule registry is populated before any analysis runs.
import repro.analysis.isolation  # noqa: F401  (registration side effect)
import repro.analysis.lifecycle  # noqa: F401  (registration side effect)
import repro.analysis.rules  # noqa: F401  (registration side effect)
import repro.analysis.statemachine  # noqa: F401  (registration side effect)
import repro.analysis.taint  # noqa: F401  (registration side effect)

_HYGIENE_RULES = ("ANA001", "ANA002", "ANA003")

BASELINE_SCHEMA = "repro-analysis-baseline/1"


@dataclass
class AnalysisResult:
    """Everything one run produced, pre-partitioned for the reporters."""

    files_checked: int = 0
    findings: list[Finding] = field(default_factory=list)

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed and not f.baselined]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def baselined(self) -> list[Finding]:
        return [f for f in self.findings if f.baselined]

    def gating(self, strict: bool) -> list[Finding]:
        """Findings that should fail the build."""
        return [
            f
            for f in self.active
            if strict or f.rule not in _HYGIENE_RULES
        ]

    def extend(self, findings: list[Finding]) -> None:
        self.findings.extend(findings)

    def apply_baseline(
        self, entries: list[dict], rules: set[str] | None = None
    ) -> None:
        """Mark accepted pre-existing findings; report stale entries.

        Each entry matches at most one finding by ``(path, rule, message)``,
        where the entry path may be a repo-relative suffix of the finding
        path (so one baseline serves both ``src/...`` and absolute-path
        invocations).  Line numbers are deliberately ignored — baselines
        must survive unrelated edits above the finding.  Entries that match
        nothing become ANA003 findings: a stale baseline hides regressions,
        so it gates under ``--strict`` exactly like unused suppressions.
        """
        pool = [
            {
                "path": str(e["path"]).replace("\\", "/"),
                "rule": str(e["rule"]),
                "message": str(e["message"]),
                "count": int(e.get("count", 1)),
            }
            for e in entries
        ]
        rewritten: list[Finding] = []
        for finding in self.findings:
            if not finding.suppressed and finding.rule not in META_RULES:
                norm = finding.path.replace("\\", "/")
                entry = next(
                    (
                        e
                        for e in pool
                        if e["count"] > 0
                        and e["rule"] == finding.rule
                        and e["message"] == finding.message
                        and (norm == e["path"] or norm.endswith("/" + e["path"]))
                    ),
                    None,
                )
                if entry is not None:
                    entry["count"] -= 1
                    rewritten.append(finding.baseline())
                    continue
            rewritten.append(finding)
        self.findings = rewritten
        for entry in pool:
            if entry["count"] <= 0:
                continue
            if rules is not None and entry["rule"] not in rules:
                continue  # its rule did not run under this --rules subset
            self.findings.append(
                Finding(
                    path=entry["path"],
                    line=0,
                    col=0,
                    rule="ANA003",
                    message=(
                        f"baseline entry for {entry['rule']} "
                        f"({entry['message'][:60]}...) matched no finding; "
                        "refresh the baseline"
                    ),
                )
            )


def load_baseline(path: str) -> list[dict]:
    """Parse a ``repro-analysis-baseline/1`` file into match entries."""
    data = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    if data.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {BASELINE_SCHEMA!r}, "
            f"got {data.get('schema')!r}"
        )
    entries = data.get("findings")
    if not isinstance(entries, list):
        raise ValueError(f"{path}: 'findings' must be a list")
    return entries


def write_baseline(path: str, result: AnalysisResult) -> int:
    """Accept every current active (non-meta) finding into ``path``."""
    entries = [
        {"path": p, "rule": r, "message": m}
        for p, r, m in sorted(
            (f.path.replace("\\", "/"), f.rule, f.message)
            for f in result.active
            if f.rule not in META_RULES
        )
    ]
    payload = {"schema": BASELINE_SCHEMA, "findings": entries}
    pathlib.Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(entries)


def _apply_suppressions(
    findings: list[Finding],
    suppressions: list[Suppression],
    rules: set[str] | None = None,
) -> list[Finding]:
    """Match findings against suppression comments; emit hygiene findings.

    A suppression on the finding's own line, or standalone on the line just
    above, covers it.  Meta-findings (ANA*) are never suppressible — the
    inventory must stay inspectable.
    """
    by_line: dict[int, list[Suppression]] = {}
    for sup in suppressions:
        by_line.setdefault(sup.target_line, []).append(sup)

    out: list[Finding] = []
    for finding in findings:
        sup = None
        if finding.rule not in META_RULES:
            for candidate in by_line.get(finding.line, []):
                if candidate.covers(finding.rule):
                    sup = candidate
                    break
        if sup is None:
            out.append(finding)
        else:
            sup.used = True
            out.append(finding.suppress(sup.justification))

    for sup in suppressions:
        if not sup.justification:
            out.append(
                Finding(
                    path=sup.path,
                    line=sup.line,
                    col=0,
                    rule="ANA001",
                    message=(
                        "suppression without justification; write "
                        "`# repro: ignore[RULE] -- why this is fine`"
                    ),
                )
            )
        if not sup.used:
            # Under a --rules subset a suppression for an unselected rule
            # is trivially unused; only gate the ones whose rules ran.
            if (
                rules is not None
                and "*" not in sup.rules
                and not (sup.rules & rules)
            ):
                continue
            out.append(
                Finding(
                    path=sup.path,
                    line=sup.line,
                    col=0,
                    rule="ANA002",
                    message=(
                        f"suppression for {', '.join(sorted(sup.rules))} "
                        "matched no finding; remove it"
                    ),
                )
            )
    return out


def analyze_source(
    source: str, path: str, rules: set[str] | None = None
) -> list[Finding]:
    """Analyze one module's text; ``path`` drives rule scoping.

    ``rules`` restricts which checkers run (None = all registered).
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                rule="ANA000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = ModuleContext(path=path, source=source, tree=tree)
    for checker_cls in REGISTRY:
        if rules is not None and checker_cls.rule not in rules:
            continue
        if checker_cls.applies(ctx):
            checker_cls(ctx).run()
    return _apply_suppressions(
        ctx.findings, parse_suppressions(source, path), rules
    )


def _iter_python_files(paths: list[str]) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            files.extend(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
                and not any(part.startswith(".") for part in p.parts)
            )
        elif path.suffix == ".py":
            files.append(path)
    # Stable discovery order: the report must not depend on filesystem order.
    return sorted(set(files))


def analyze_paths(
    paths: list[str], rules: set[str] | None = None
) -> AnalysisResult:
    """Analyze every ``.py`` file under ``paths`` (files or directories)."""
    result = AnalysisResult()
    for file_path in _iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            result.extend(
                [
                    Finding(
                        path=str(file_path),
                        line=0,
                        col=0,
                        rule="ANA000",
                        message=f"unreadable: {exc}",
                    )
                ]
            )
            continue
        result.files_checked += 1
        result.extend(analyze_source(source, str(file_path), rules=rules))
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based determinism & protocol-invariant linter",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to analyze (default: src tests)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="also fail on suppression-hygiene findings (ANA001/ANA002)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--json", action="store_true", help="shorthand for --format json"
    )
    parser.add_argument(
        "--rules", default=None,
        help=(
            "comma-separated rule ids or case-insensitive prefixes to run "
            "(e.g. --rules conf,sec selects CONF* and SEC*; default: all)"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print registered rules and exit"
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=(
            "accept the pre-existing findings listed in FILE "
            f"(schema {BASELINE_SCHEMA}); they are reported but do not gate. "
            "Stale entries become ANA003 findings"
        ),
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help=(
            "write every current active finding to FILE as a baseline and "
            "exit 0 (maintenance mode; --baseline is not applied first)"
        ),
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, description in sorted(
            {**registered_rules(), **META_RULES}.items()
        ):
            print(f"{rule}  {description}")
        return 0

    selected = None
    if args.rules:
        known = set(registered_rules())
        selected = set()
        unknown = []
        for token in (t.strip() for t in args.rules.split(",")):
            if not token:
                continue
            matches = {r for r in known if r.upper().startswith(token.upper())}
            if matches:
                selected |= matches
            else:
                unknown.append(token)
        if unknown:
            print(f"unknown rule(s): {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2

    result = analyze_paths(args.paths, rules=selected)
    if args.write_baseline:
        count = write_baseline(args.write_baseline, result)
        print(f"wrote {count} baseline entr{'y' if count == 1 else 'ies'} "
              f"to {args.write_baseline}")
        return 0
    if args.baseline:
        try:
            entries = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"--baseline: {exc}", file=sys.stderr)
            return 2
        result.apply_baseline(entries, rules=selected)
    if args.format == "json" or args.json:
        print(json.dumps(analysis_json(result), indent=2, sort_keys=True))
    else:
        for line in render_text(result):
            print(line)
    return 1 if result.gating(args.strict) else 0
