"""``python -m repro.analysis`` entry point."""

import sys

from repro.analysis.runner import main

sys.exit(main())
