"""The repo-specific rules.

Scope: ``DET*``, ``MET*`` and ``EXC*`` bind inside the ``repro`` package
(product code), where the determinism contract and the recorder-guard idiom
hold; ``ARG*`` binds everywhere the analyzer looks.  Each rule documents the
failure mode it guards against — these are the exact mistakes that would
silently invalidate EXPERIMENTS.md.
"""

from __future__ import annotations

import ast

from repro.analysis.base import Checker, ModuleContext, ProductChecker, register

# ------------------------------------------------------------------ DET001 --

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
    }
)
_ENTROPY_PREFIXES = ("uuid.", "secrets.")


@register
class WallClockChecker(ProductChecker):
    """Simulated components must read :attr:`Simulator.now`, never the host
    clock, and must draw entropy from named streams, never the OS pool —
    otherwise two runs of one seed diverge and every figure is unreproducible.
    """

    rule = "DET001"
    description = (
        "no wall-clock or ambient-entropy reads (time.*, datetime.now, "
        "os.urandom, uuid.*, secrets.*) in simulator code"
    )

    def visit_Call(self, node: ast.Call) -> None:
        name = self.ctx.resolve_call(node.func)
        if name is not None and (
            name in _WALL_CLOCK or name.startswith(_ENTROPY_PREFIXES)
        ):
            self.report(
                node,
                f"wall-clock/entropy read `{name}()` in simulator code; use "
                "Simulator.now for time and a named RngStreams stream for "
                "entropy",
            )
        self.generic_visit(node)


# ------------------------------------------------------------------ DET002 --


@register
class AmbientRandomChecker(ProductChecker):
    """Randomness must arrive as an injected ``random.Random`` (usually a
    named ``RngStreams`` stream).  Calling into the ``random`` module —
    including constructing ``random.Random`` ad hoc — creates draws whose
    order and seeding are invisible to the experiment harness."""

    rule = "DET002"
    description = (
        "no random-module calls or ad-hoc random.Random() outside sim/rng.py; "
        "inject a named RngStreams stream instead"
    )

    @classmethod
    def applies(cls, ctx: ModuleContext) -> bool:
        return ctx.is_product and not ctx.is_rng_module

    def visit_Call(self, node: ast.Call) -> None:
        name = self.ctx.resolve_call(node.func)
        if name is not None and (name == "random" or name.startswith("random.")):
            self.report(
                node,
                f"ambient randomness `{name}()`; accept an injected "
                "random.Random (a named RngStreams stream) instead",
            )
        self.generic_visit(node)


# ------------------------------------------------------------------ DET003 --


def _is_unordered_iterable(node: ast.expr, ctx: ModuleContext) -> str | None:
    """A syntactically visible set being iterated: the one container whose
    order CPython ties to object hashes (PYTHONHASHSEED-sensitive for str)."""
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, ast.SetComp):
        return "set comprehension"
    if isinstance(node, ast.Call):
        name = ctx.resolve_call(node.func)
        if name in ("set", "frozenset"):
            return f"{name}(...)"
    return None


def _key_is_id(key: ast.expr) -> bool:
    if isinstance(key, ast.Name) and key.id == "id":
        return True
    if isinstance(key, ast.Lambda):
        body = key.body
        return (
            isinstance(body, ast.Call)
            and isinstance(body.func, ast.Name)
            and body.func.id == "id"
        )
    return False


@register
class UnstableOrderChecker(ProductChecker):
    """Set iteration order and ``id()``-based ordering vary across processes
    (hash randomization, allocator layout).  Anything they feed — event
    scheduling, peer selection, report rows — diverges between runs."""

    rule = "DET003"
    description = (
        "no iteration over sets and no id()-based sort keys; order via "
        "sorted(...) on stable keys"
    )

    def _check_iter(self, node: ast.expr) -> None:
        kind = _is_unordered_iterable(node, self.ctx)
        if kind is not None:
            self.report(
                node,
                f"iteration over unordered {kind}; wrap in sorted(...) on a "
                "stable key before iterating",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_Call(self, node: ast.Call) -> None:
        name = self.ctx.resolve_call(node.func)
        is_order_call = name in ("sorted", "min", "max") or (
            isinstance(node.func, ast.Attribute) and node.func.attr == "sort"
        )
        if is_order_call:
            for kw in node.keywords:
                if kw.arg == "key" and _key_is_id(kw.value):
                    self.report(
                        node,
                        "id()-based ordering is allocator-dependent; sort on "
                        "a stable field instead",
                    )
        self.generic_visit(node)


# ------------------------------------------------------------------ MET001 --


def _mentions_recorder_enabled(test: ast.expr) -> bool:
    return any(
        isinstance(node, ast.Attribute)
        and node.attr == "enabled"
        and isinstance(node.value, ast.Name)
        and node.value.id == "RECORDER"
        for node in ast.walk(test)
    )


@register
class RecorderGuardChecker(ProductChecker):
    """Trace sites must stay near-free while the recorder is off.  The
    established idiom is ``if RECORDER.enabled: RECORDER.record(...)`` — an
    unguarded call pays argument construction (dict build, f-strings) on
    every packet even when tracing is disabled."""

    rule = "MET001"
    description = (
        "RECORDER.record(...) must sit behind an `if RECORDER.enabled:` guard"
    )

    def __init__(self, ctx: ModuleContext) -> None:
        super().__init__(ctx)
        self._guard_depth = 0

    def visit_If(self, node: ast.If) -> None:
        guarded = _mentions_recorder_enabled(node.test)
        self.visit(node.test)
        if guarded:
            self._guard_depth += 1
        for child in node.body:
            self.visit(child)
        if guarded:
            self._guard_depth -= 1
        for child in node.orelse:
            self.visit(child)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "record"
            and isinstance(func.value, ast.Name)
            and func.value.id == "RECORDER"
            and self._guard_depth == 0
        ):
            self.report(
                node,
                "unguarded RECORDER.record(...); wrap in `if RECORDER.enabled:` "
                "so the disabled cost stays one attribute read",
            )
        self.generic_visit(node)


# ------------------------------------------------------------------ EXC001 --

_BROAD_EXC = ("Exception", "BaseException")


def _is_broad(handler_type: ast.expr | None) -> bool:
    if isinstance(handler_type, ast.Name):
        return handler_type.id in _BROAD_EXC
    if isinstance(handler_type, ast.Tuple):
        return any(_is_broad(elt) for elt in handler_type.elts)
    return False


def _swallows(body: list[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or `...`
        return False
    return True


@register
class BroadExceptChecker(ProductChecker):
    """Protocol code that swallows every exception turns a logic bug into a
    silently dropped packet or a wedged association — the hardest class of
    failure to localize in a discrete-event run."""

    rule = "EXC001"
    description = (
        "no bare `except:` and no silently-swallowed `except Exception: pass` "
        "in protocol code"
    )

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node,
                "bare `except:`; name the exception types this handler means "
                "to absorb",
            )
        elif _is_broad(node.type) and _swallows(node.body):
            self.report(
                node,
                "`except Exception: pass` swallows protocol failures; handle, "
                "log or re-raise",
            )
        self.generic_visit(node)


# ------------------------------------------------------------------ ARG001 --

_MUTABLE_CALLS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.defaultdict",
        "collections.deque",
        "collections.Counter",
        "collections.OrderedDict",
    }
)


def _is_mutable_default(node: ast.expr, ctx: ModuleContext) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return ctx.resolve_call(node.func) in _MUTABLE_CALLS
    return False


@register
class MutableDefaultChecker(Checker):
    """A mutable default is one shared object across every call — state that
    leaks between invocations and, in simulator code, between experiments."""

    rule = "ARG001"
    description = "no mutable default arguments ([], {}, set(), ...)"

    def _check_args(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default, self.ctx):
                self.report(
                    default,
                    "mutable default argument is shared across calls; default "
                    "to None and construct inside the body",
                )
        self.generic_visit(node)

    visit_FunctionDef = _check_args
    visit_AsyncFunctionDef = _check_args
    visit_Lambda = _check_args
