"""Text and strict-JSON reporters for analysis results.

The JSON schema (version ``repro-analysis/1``) is the linter sibling of the
``repro-metrics/1`` run report::

    {
      "schema": "repro-analysis/1",
      "rules":     {"<RULE>": "<description>", ...},   # every registered rule
      "files":     int,                                 # files analyzed
      "findings":  [{"path": str, "line": int, "col": int, "rule": str,
                     "message": str, "suppressed": false,
                     "justification": null}, ...],      # active, sorted
      "suppressed":[{... "suppressed": true,
                     "justification": str|null}, ...],  # inventory
      "counts":    {"<RULE>": int, ...},                # active findings only
      "timings":   {"<RULE>": float, ...},              # wall seconds per pass
      "clean":     bool                                 # no active findings
    }

Strict JSON throughout — no NaN, stable key order, findings sorted by
(path, line, col, rule).
"""

from __future__ import annotations

from repro.analysis.base import registered_rules
from repro.analysis.findings import Finding

ANALYSIS_SCHEMA = "repro-analysis/1"

# Findings about the analysis itself (not produced by registered checkers).
META_RULES = {
    "ANA000": "file failed to parse",
    "ANA001": "suppression comment lacks a `-- justification`",
    "ANA002": "suppression comment matched no finding",
    "ANA003": "baseline entry matched no finding (stale baseline)",
}


def analysis_json(result) -> dict:
    """JSON-ready report for one :class:`~repro.analysis.runner.AnalysisResult`."""
    active = sorted(result.active)
    suppressed = sorted(result.suppressed)
    baselined = sorted(getattr(result, "baselined", []))
    counts: dict[str, int] = {}
    for finding in active:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return {
        "schema": ANALYSIS_SCHEMA,
        "rules": {**registered_rules(), **META_RULES},
        "files": result.files_checked,
        "findings": [f.as_json() for f in active],
        "suppressed": [f.as_json() for f in suppressed],
        "baselined": [f.as_json() for f in baselined],
        "counts": dict(sorted(counts.items())),
        "timings": {
            rule: round(seconds, 6)
            for rule, seconds in sorted(getattr(result, "timings", {}).items())
        },
        "clean": not active,
    }


def render_text(result) -> list[str]:
    """Human-readable report, one ``path:line:col RULE message`` per finding."""
    lines = []
    for finding in sorted(result.active):
        lines.append(f"{finding.location()}: {finding.rule} {finding.message}")
    for finding in sorted(result.suppressed):
        why = finding.justification or "(no justification)"
        lines.append(
            f"{finding.location()}: {finding.rule} suppressed -- {why}"
        )
    baselined = sorted(getattr(result, "baselined", []))
    for finding in baselined:
        lines.append(f"{finding.location()}: {finding.rule} baselined")
    n_active = len(result.active)
    n_sup = len(result.suppressed)
    verdict = "clean" if not n_active else f"{n_active} finding(s)"
    summary = (
        f"repro.analysis: {result.files_checked} file(s), {verdict}, "
        f"{n_sup} suppressed"
    )
    if baselined:
        summary += f", {len(baselined)} baselined"
    lines.append(summary)
    return lines


def format_finding(finding: Finding) -> str:
    return f"{finding.location()}: {finding.rule} {finding.message}"
