"""Shard-isolation rules (``ISO*``): no shared mutable state across shards.

The sharded simulator (``repro.sim.shard``) runs each partition on its own
``Simulator`` — inline or in a forked worker.  Its correctness argument
assumes every piece of runtime-mutable state is *owned by one simulator*:
module-level containers and counters are process-globals that silently
diverge between the inline and fork-per-shard modes (a child's writes die
with the child), and objects reaching across shard boundaries outside the
envelope protocol break the conservative-lookahead ordering proof.  These
rules make that ownership contract checkable:

* **ISO001** — module-level mutable state written at runtime (same-module
  containers/counters mutated inside functions, and *any* attribute write
  or mutator call on a name from-imported out of another ``repro`` module);
* **ISO002** — writes to another object's ``Simulator``-private attributes
  (``sim._seq``, ``heappush(sim._heap, ...)``) outside ``repro/sim``;
* **ISO003** — class-level mutable attributes (one object shared by every
  instance, in every shard);
* **ISO004** — a ``Simulator`` escaping into module scope or a default
  argument, or a function capturing a module-global ``Simulator``.

Scope: product code except ``repro/analysis`` itself — the analysis layer
is deliberately process-global instrumentation (``WIRE_TAPS`` /
``CAUSALITY_TAPS`` installs, registry side effects) and never runs inside
a shard.  Intentional exceptions in the simulator (the ``METRICS``
get-or-create handles, the fast-path rearm inlining, the ``packet_id``
debug counter) carry ``# repro: ignore[ISO...]`` suppressions with their
justification at the site.
"""

from __future__ import annotations

import ast

from repro.analysis.base import Checker, ModuleContext, _parts, register

#: Methods that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "rotate",
        "setdefault",
        "sort",
        "update",
    }
)

_MUTABLE_CONSTRUCTORS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.defaultdict",
        "collections.deque",
        "collections.Counter",
        "collections.OrderedDict",
        "itertools.count",
    }
)

_SIMULATOR_CONSTRUCTORS = frozenset(
    {
        "Simulator",
        "repro.sim.Simulator",
        "repro.sim.engine.Simulator",
    }
)

#: ``METRICS`` handle factories: module-level counter/gauge/histogram
#: bindings are the sanctioned process-global observability channel (the
#: registry is get-or-create and shard deltas are republished by the
#: coordinator), so same-module writes through those handles are exempt.
_METRIC_FACTORY_PREFIX = "repro.metrics.METRICS."


def _iso_scope(ctx: ModuleContext) -> bool:
    """Product code minus the analysis layer (see module docstring)."""
    return ctx.is_product and "analysis" not in _parts(ctx.path)


def _module_bindings(ctx: ModuleContext) -> dict[str, str]:
    """Top-level name -> kind ("mutable" | "metric" | "simulator").

    Only direct module-body assignments count: state built once at import
    time inside loops/conditionals is still a module binding, but mutating
    it *at import time* is setup, not runtime sharing — the rules only
    flag mutation from inside function bodies.
    """
    cached = ctx.cache.get("iso.bindings")
    if cached is not None:
        return cached
    bindings: dict[str, str] = {}
    for stmt in ctx.tree.body:
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        kind: str | None = None
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)):
            kind = "mutable"
        elif isinstance(value, ast.Call):
            name = ctx.resolve_call(value.func)
            if name in _MUTABLE_CONSTRUCTORS:
                kind = "mutable"
            elif name in _SIMULATOR_CONSTRUCTORS:
                kind = "simulator"
            elif name is not None and name.startswith(_METRIC_FACTORY_PREFIX):
                kind = "metric"
        if kind is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                bindings[target.id] = kind
    ctx.cache["iso.bindings"] = bindings
    return bindings


def _root_name(node: ast.expr) -> str | None:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


# ------------------------------------------------------------------ ISO001 --


@register
class ModuleStateWriteChecker(Checker):
    """Module-level mutable bindings are process-globals: one object per
    *process*, not per shard.  A forked worker mutates its private copy (the
    write is lost at the sync barrier), an inline worker mutates state every
    other shard sees — either way, runs disagree depending on worker mode.
    State that must survive a window belongs on the shard's ``Simulator``
    (``sim.services``) or travels through the coordinator explicitly."""

    rule = "ISO001"
    description = (
        "no runtime writes to module-level mutable state (containers, "
        "counters, cross-module attribute writes); own it via sim.services"
    )

    @classmethod
    def applies(cls, ctx: ModuleContext) -> bool:
        return _iso_scope(ctx)

    def __init__(self, ctx: ModuleContext) -> None:
        super().__init__(ctx)
        self._bindings = _module_bindings(ctx)
        self._depth = 0

    # -- scope tracking -------------------------------------------------------
    def _enter_function(self, node) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    visit_FunctionDef = _enter_function
    visit_AsyncFunctionDef = _enter_function
    visit_Lambda = _enter_function

    # -- classification -------------------------------------------------------
    def _imported_repro_name(self, name: str) -> str | None:
        """Dotted origin of a ``from repro.x import y`` binding, else None."""
        dotted = self.ctx._aliases.get(name)
        if dotted is not None and dotted.startswith("repro.") and "." in dotted:
            return dotted
        return None

    def _flag_write(self, node: ast.AST, name: str, how: str) -> None:
        origin = self._imported_repro_name(name)
        if origin is not None:
            self.report(
                node,
                f"{how} `{name}` mutates `{origin}` — module state owned by "
                "another module; cross-module writes to process-globals "
                "silently diverge between inline and forked shard workers",
            )
            return
        kind = self._bindings.get(name)
        if kind == "mutable":
            self.report(
                node,
                f"{how} module-level mutable `{name}` at runtime; "
                "process-global state is invisible to forked shard workers — "
                "own it via sim.services or pass it explicitly",
            )

    # -- visitors -------------------------------------------------------------
    def visit_Global(self, node: ast.Global) -> None:
        for name in node.names:
            self.report(
                node,
                f"`global {name}` rebinds module state at runtime; a forked "
                "shard worker's rebinding is lost at the sync barrier",
            )

    def visit_Call(self, node: ast.Call) -> None:
        if self._depth:
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and isinstance(func.value, ast.Name)
            ):
                self._flag_write(node, func.value.id, f"`.{func.attr}()` on")
            elif (
                isinstance(func, ast.Name)
                and func.id == "next"
                and node.args
                and isinstance(node.args[0], ast.Name)
            ):
                self._flag_write(node, node.args[0].id, "`next()` on")
        self.generic_visit(node)

    def _check_target(self, target: ast.expr) -> None:
        # Attribute/subscript writes whose root is a module binding or a
        # from-imported repro name; plain Name rebinding without `global`
        # is a local, not a module write.
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            root = _root_name(target)
            if root is not None:
                # Same-module METRICS handles are the sanctioned exception.
                if self._bindings.get(root) == "metric":
                    return
                self._flag_write(target, root, "assignment through")

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._depth:
            for target in node.targets:
                self._check_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self._depth:
            self._check_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        if self._depth:
            for target in node.targets:
                self._check_target(target)
        self.generic_visit(node)


# ------------------------------------------------------------------ ISO002 --


@register
class SimulatorPrivateWriteChecker(Checker):
    """Only the engine owns the engine.  A module that pokes ``sim._seq`` or
    heap-pushes onto ``sim._heap`` bypasses the scheduling invariants the
    shard sync proof relies on (monotonic sequence numbers, one writer per
    heap).  The fast-path rearm inlining in ``net/link.py``/``net/tcp.py``
    is the deliberate, benchmarked exception — suppressed at the site."""

    rule = "ISO002"
    description = (
        "no writes to Simulator-private attributes (sim._seq, sim._heap, ...) "
        "outside repro/sim"
    )

    @classmethod
    def applies(cls, ctx: ModuleContext) -> bool:
        return _iso_scope(ctx) and "sim" not in _parts(ctx.path)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)

    def _check_function(self, node) -> None:
        # Names bound (or passed) as a simulator inside this function.
        sim_names = {
            arg.arg for arg in node.args.args + node.args.kwonlyargs
            if arg.arg == "sim"
        }
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Attribute):
                if stmt.value.attr == "sim":
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            sim_names.add(target.id)

        def is_sim_expr(expr: ast.expr) -> bool:
            if isinstance(expr, ast.Name):
                return expr.id in sim_names or expr.id == "sim"
            return isinstance(expr, ast.Attribute) and expr.attr == "sim"

        offenders: list[tuple[ast.AST, str]] = []
        for stmt in ast.walk(node):
            if isinstance(stmt, (ast.Assign, ast.AugAssign)):
                targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr.startswith("_")
                        and is_sim_expr(target.value)
                    ):
                        offenders.append((stmt, target.attr))
            elif isinstance(stmt, ast.Call):
                name = self.ctx.resolve_call(stmt.func)
                if (
                    name in ("heapq.heappush", "heapq.heappop")
                    and stmt.args
                    and isinstance(stmt.args[0], ast.Attribute)
                    and stmt.args[0].attr.startswith("_")
                    and is_sim_expr(stmt.args[0].value)
                ):
                    offenders.append((stmt, stmt.args[0].attr))
        if offenders:
            attrs = ", ".join(sorted({attr for _, attr in offenders}))
            self.report(
                offenders[0][0],
                f"`{node.name}` writes Simulator-private state ({attrs}) from "
                "outside repro/sim; use call_later/TimerHandle.rearm, or "
                "suppress with the fast-path justification",
            )


# ------------------------------------------------------------------ ISO003 --


def _is_mutable_value(node: ast.expr, ctx: ModuleContext) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return ctx.resolve_call(node.func) in _MUTABLE_CONSTRUCTORS
    return False


@register
class ClassMutableAttrChecker(Checker):
    """A class-level container is one object shared by every instance in
    every shard — the instance-attribute spelling (`self.x = []` in
    ``__init__``) is what per-shard ownership requires.  Dataclass fields
    with ``default_factory`` are fine (a fresh object per instance)."""

    rule = "ISO003"
    description = (
        "no class-level mutable attributes ([], {}, set(), deque(), ...); "
        "initialize per-instance in __init__"
    )

    @classmethod
    def applies(cls, ctx: ModuleContext) -> bool:
        return _iso_scope(ctx)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            if not _is_mutable_value(value, self.ctx):
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id != "__slots__":
                    self.report(
                        stmt,
                        f"class-level mutable `{node.name}.{target.id}` is "
                        "shared by every instance across shards; assign it "
                        "per-instance in __init__ (or use a dataclass "
                        "default_factory)",
                    )
        self.generic_visit(node)


# ------------------------------------------------------------------ ISO004 --


@register
class SimulatorEscapeChecker(Checker):
    """A ``Simulator`` bound at module scope (or hiding in a default
    argument) is shared by every importer — including shards that must each
    own exactly one.  Functions capturing such a global smuggle one shard's
    event loop into another's builder."""

    rule = "ISO004"
    description = (
        "no module-level Simulator instances, Simulator default arguments, "
        "or closures capturing a module-global Simulator"
    )

    @classmethod
    def applies(cls, ctx: ModuleContext) -> bool:
        return _iso_scope(ctx)

    def __init__(self, ctx: ModuleContext) -> None:
        super().__init__(ctx)
        self._sim_globals = {
            name for name, kind in _module_bindings(ctx).items()
            if kind == "simulator"
        }
        self._depth = 0

    def visit_Module(self, node: ast.Module) -> None:
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            if isinstance(value, ast.Call) and (
                self.ctx.resolve_call(value.func) in _SIMULATOR_CONSTRUCTORS
            ):
                for target in targets:
                    if isinstance(target, ast.Name):
                        self.report(
                            stmt,
                            f"module-level Simulator `{target.id}` is shared "
                            "by every importer; construct one per shard and "
                            "pass it explicitly",
                        )
        self.generic_visit(node)

    def _check_function(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in getattr(node.args, "kw_defaults", []) if d is not None
        ]
        for default in defaults:
            if isinstance(default, ast.Call) and (
                self.ctx.resolve_call(default.func) in _SIMULATOR_CONSTRUCTORS
            ):
                self.report(
                    default,
                    "Simulator constructed as a default argument is one "
                    "shared event loop across every call; default to None "
                    "and construct per call site",
                )
        if self._sim_globals:
            captured = sorted(
                {
                    n.id
                    for n in ast.walk(node)
                    if isinstance(n, ast.Name)
                    and isinstance(n.ctx, ast.Load)
                    and n.id in self._sim_globals
                }
            )
            if captured:
                self.report(
                    node,
                    f"`{node.name}` captures module-global Simulator "
                    f"{', '.join(captured)}; a shard builder must only touch "
                    "its own shard.sim",
                )
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    visit_FunctionDef = _check_function
    visit_AsyncFunctionDef = _check_function
