"""Secret-flow (taint) analysis for the HIP/TLS protocol modules.

The paper's confidentiality argument is only as good as the discipline that
keeps key material off the wire and out of the observability layer.  This
pass runs an intra-procedural dataflow over each function's AST and tracks
two taint classes:

* **SECRET** — raw key material: DH shared secrets (``.shared_secret()``),
  KEYMAT (``hip_keymat``/``hkdf_expand``/``hkdf_extract``), RSA-decrypted
  premasters (``.decrypt()``), non-Finished ``tls_prf`` output, and any
  name/attribute spelled like key material (``master_secret``, ``keymat``,
  ``premaster``, ...).
* **MAC** — values *derived* from secrets through a one-way function
  (``.digest()``, ``hmac_digest``, ``tls_prf`` with a ``finished`` label).
  MACs are designed to cross the wire, so they may reach packet builders —
  but comparing one with ``==`` still leaks a byte-position timing oracle.

Declassifiers stop propagation: ``.encrypt()`` (ciphertext is public),
``ct_equal`` and ``len`` (booleans/lengths are not key bytes).

Rules:

* **SEC001** — a SECRET value reaches an observable sink: the flight
  recorder (``RECORDER.record``), metrics names (``METRICS.*``), exception
  messages (``raise`` arguments), packet parameter builders
  (``pkt.add(code, data)``, ``build_*``) or the plaintext control channel
  (``_send_control``/``_send_message``).
* **SEC002** — a SECRET or MAC operand in an ``==``/``!=`` comparison;
  use :func:`repro.crypto.hmac_kdf.ct_equal` instead.

The analysis is deliberately intra-procedural and name-driven: precise
enough to catch the real leak classes above with zero findings on the
clean tree, simple enough to audit by reading this file.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.base import Checker, ModuleContext, register

CLEAN = 0
MAC = 1
SECRET = 2

_CLASS_NAMES = {MAC: "MAC-derived", SECRET: "secret"}

#: Identifiers that *are* key material wherever they appear.  Matching by
#: terminal name lets taint survive attribute round-trips the dataflow
#: cannot see (``assoc.keymat`` written in one handler, read in another).
SECRET_NAMES = frozenset(
    {
        "shared_secret",
        "dh_secret",
        "premaster",
        "master_secret",
        "keymat",
        "new_keymat",
        "session_key",
        "private_key",
        "enc_key",
        "icv_key",
    }
)

_SECRET_PRODUCER_CALLS = frozenset({"hip_keymat", "hkdf_expand", "hkdf_extract"})
_MAC_PRODUCER_CALLS = frozenset({"hmac_digest"})
_DECLASSIFY_CALLS = frozenset({"ct_equal", "len"})
_SECRET_PRODUCER_ATTRS = frozenset({"shared_secret", "decrypt"})
_MAC_PRODUCER_ATTRS = frozenset({"digest", "hexdigest"})
_DECLASSIFY_ATTRS = frozenset({"encrypt"})
_SINK_CALLS = frozenset({"_send_control", "_send_message"})


def label_candidates(
    node: ast.expr, consts: dict[str, bytes]
) -> list[bytes] | None:
    """Constant candidates for a ``tls_prf`` label, or None if opaque.

    Shared with the interprocedural engine (:mod:`repro.analysis.dataflow`)
    so both passes classify ``tls_prf`` labels identically.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, bytes):
        return [node.value]
    if isinstance(node, ast.Name) and node.id in consts:
        return [consts[node.id]]
    if isinstance(node, ast.IfExp):
        body = label_candidates(node.body, consts)
        orelse = label_candidates(node.orelse, consts)
        if body is not None and orelse is not None:
            return body + orelse
    return None


def tls_prf_taint(node: ast.Call, consts: dict[str, bytes]) -> int:
    """Taint class of a ``tls_prf(...)`` call result.

    Finished verify_data is PRF output *meant* for the wire; any other
    label (master secret, key expansion) derives key bytes.
    """
    if len(node.args) >= 2:
        labels = label_candidates(node.args[1], consts)
        if labels is not None and all(b"finished" in lb for lb in labels):
            return MAC
    return SECRET


def _terminal_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _call_name(func: ast.expr) -> str | None:
    """Bare callable name: ``tls_prf`` or the attr of ``self._send_control``."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@dataclass
class _TaintResult:
    findings: list[tuple[str, ast.AST, str]] = field(default_factory=list)


class _FunctionTaint:
    """One forward, flow-sensitive pass over a function body."""

    def __init__(self, result: _TaintResult) -> None:
        self.result = result
        self.env: dict[str, int] = {}
        self.consts: dict[str, bytes] = {}
        self._reported: set[tuple[str, int, int]] = set()

    # -- taint of expressions ------------------------------------------------
    def taint_of(self, node: ast.expr) -> int:
        if isinstance(node, ast.Name):
            if node.id in SECRET_NAMES:
                return SECRET
            return self.env.get(node.id, CLEAN)
        if isinstance(node, ast.Attribute):
            if node.attr in SECRET_NAMES:
                return SECRET
            return self.taint_of(node.value)
        if isinstance(node, ast.Subscript):
            return self.taint_of(node.value)
        if isinstance(node, ast.Starred):
            return self.taint_of(node.value)
        if isinstance(node, ast.BinOp):
            return max(self.taint_of(node.left), self.taint_of(node.right))
        if isinstance(node, ast.BoolOp):
            return max(self.taint_of(v) for v in node.values)
        if isinstance(node, ast.IfExp):
            return max(self.taint_of(node.body), self.taint_of(node.orelse))
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return max((self.taint_of(e) for e in node.elts), default=CLEAN)
        if isinstance(node, ast.JoinedStr):
            return max(
                (
                    self.taint_of(v.value)
                    for v in node.values
                    if isinstance(v, ast.FormattedValue)
                ),
                default=CLEAN,
            )
        if isinstance(node, ast.FormattedValue):
            return self.taint_of(node.value)
        if isinstance(node, ast.Call):
            return self._call_taint(node)
        if isinstance(node, ast.Compare):
            return CLEAN  # booleans carry no key bytes
        if isinstance(node, ast.UnaryOp):
            return self.taint_of(node.operand)
        if isinstance(node, ast.NamedExpr):
            return self.taint_of(node.value)
        return CLEAN

    def _arg_taint(self, node: ast.Call) -> int:
        values = list(node.args) + [kw.value for kw in node.keywords]
        return max((self.taint_of(v) for v in values), default=CLEAN)

    def _label_bytes(self, node: ast.expr) -> list[bytes] | None:
        return label_candidates(node, self.consts)

    def _call_taint(self, node: ast.Call) -> int:
        name = _call_name(node.func)
        if name == "tls_prf":
            return tls_prf_taint(node, self.consts)
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in _DECLASSIFY_ATTRS:
                return CLEAN
            if node.func.attr in _SECRET_PRODUCER_ATTRS:
                return SECRET
            if node.func.attr in _MAC_PRODUCER_ATTRS:
                return MAC
            return max(self.taint_of(node.func.value), self._arg_taint(node))
        if name in _DECLASSIFY_CALLS:
            return CLEAN
        if name in _SECRET_PRODUCER_CALLS:
            return SECRET
        if name in _MAC_PRODUCER_CALLS:
            return MAC
        return self._arg_taint(node)

    # -- reporting -----------------------------------------------------------
    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        key = (rule, getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
        if key not in self._reported:
            self._reported.add(key)
            self.result.findings.append((rule, node, message))

    def _check_sink_call(self, node: ast.Call) -> None:
        func = node.func
        name = _call_name(func)
        values: list[tuple[ast.expr, str]] = []
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "record"
            and isinstance(func.value, ast.Name)
            and func.value.id == "RECORDER"
        ):
            values = [(v, "the flight recorder") for v in node.args] + [
                (kw.value, "the flight recorder") for kw in node.keywords
            ]
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "METRICS"
        ):
            values = [(v, "a metrics name") for v in node.args]
        elif isinstance(func, ast.Attribute) and func.attr == "add" and len(node.args) >= 2:
            values = [(node.args[1], "a packet parameter")]
        elif name is not None and name.startswith("build_"):
            values = [(v, "a packet parameter builder") for v in node.args]
        elif name in _SINK_CALLS:
            values = [(v, "the plaintext control channel") for v in node.args] + [
                (kw.value, "the plaintext control channel") for kw in node.keywords
            ]
        for value, what in values:
            if self.taint_of(value) == SECRET:
                self._report(
                    "SEC001",
                    value,
                    f"secret-derived value flows into {what}; secrets must "
                    "never reach an observable sink — derive a MAC/PRF "
                    "output or encrypt first",
                )

    def _check_compare(self, node: ast.Compare) -> None:
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        for operand in [node.left, *node.comparators]:
            taint = self.taint_of(operand)
            if taint != CLEAN:
                self._report(
                    "SEC002",
                    node,
                    f"{_CLASS_NAMES[taint]} value compared with ==/!=, which "
                    "short-circuits on the first differing byte; use "
                    "repro.crypto.hmac_kdf.ct_equal",
                )
                return

    def _check_raise(self, node: ast.Raise) -> None:
        for target in (node.exc, node.cause):
            if target is None:
                continue
            for sub in ast.walk(target):
                if isinstance(sub, ast.expr) and self.taint_of(sub) == SECRET:
                    self._report(
                        "SEC001",
                        sub,
                        "secret-derived value interpolated into an exception; "
                        "tracebacks land in logs and CI output",
                    )
                    break

    # -- statement walk ------------------------------------------------------
    def _assign_name(self, target: ast.expr, taint: int) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taint
            if taint == CLEAN:
                self.env.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_name(elt, taint)
        elif isinstance(target, ast.Starred):
            self._assign_name(target.value, taint)

    def _check_exprs(self, stmt: ast.stmt) -> None:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                self._check_sink_call(node)
            elif isinstance(node, ast.Compare):
                self._check_compare(node)
        if isinstance(stmt, ast.Raise):
            self._check_raise(stmt)

    def run(self, body: list[ast.stmt]) -> None:
        self._sweep(body)

    def _sweep(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested scopes are analyzed separately
            if isinstance(stmt, ast.If):
                self._check_test(stmt.test)
                before = dict(self.env)
                self._sweep(stmt.body)
                after_body = self.env
                self.env = dict(before)
                self._sweep(stmt.orelse)
                for var, taint in after_body.items():
                    self.env[var] = max(self.env.get(var, CLEAN), taint)
                continue
            if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                if isinstance(stmt, ast.While):
                    self._check_test(stmt.test)
                else:
                    self._assign_name(stmt.target, self.taint_of(stmt.iter))
                # Sweep the body twice so taint assigned late in the body
                # reaches sinks earlier in it on the second iteration.
                self._sweep(stmt.body)
                self._sweep(stmt.body)
                self._sweep(stmt.orelse)
                continue
            if isinstance(stmt, ast.Try):
                self._sweep(stmt.body)
                for handler in stmt.handlers:
                    self._sweep(handler.body)
                self._sweep(stmt.orelse)
                self._sweep(stmt.finalbody)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._check_exprs(stmt)
                self._sweep(stmt.body)
                continue
            self._check_exprs(stmt)
            if isinstance(stmt, ast.Assign):
                taint = self.taint_of(stmt.value)
                for target in stmt.targets:
                    self._assign_name(target, taint)
                self._record_const(stmt.targets, stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self._assign_name(stmt.target, self.taint_of(stmt.value))
                self._record_const([stmt.target], stmt.value)
            elif isinstance(stmt, ast.AugAssign):
                taint = max(self.taint_of(stmt.target), self.taint_of(stmt.value))
                self._assign_name(stmt.target, taint)

    def _check_test(self, test: ast.expr) -> None:
        for node in ast.walk(test):
            if isinstance(node, ast.Call):
                self._check_sink_call(node)
            elif isinstance(node, ast.Compare):
                self._check_compare(node)

    def _record_const(self, targets: list[ast.expr], value: ast.expr) -> None:
        if len(targets) != 1 or not isinstance(targets[0], ast.Name):
            return
        labels = self._label_bytes(value)
        if labels is not None and len(labels) >= 1:
            # Track names bound to constant bytes (including IfExp of
            # constants) so tls_prf label classification can resolve them.
            # Multiple candidates: keep one only if classification agrees.
            finished = [b"finished" in lb for lb in labels]
            if all(finished):
                self.consts[targets[0].id] = b"finished"
            elif not any(finished):
                self.consts[targets[0].id] = labels[0]


def taint_findings(ctx: ModuleContext) -> list[tuple[str, ast.AST, str]]:
    """Run (and memoise) the taint pass for this module."""
    if "taint" not in ctx.cache:
        result = _TaintResult()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _FunctionTaint(result).run(node.body)
        # Module-level code too (metrics registrations and the like).
        _FunctionTaint(result).run(ctx.tree.body)
        ctx.cache["taint"] = result.findings
    return ctx.cache["taint"]


class _TaintChecker(Checker):
    """Scope: the protocol stacks (``repro/hip``, ``repro/tls``), where key
    material lives.  The crypto package itself is excluded — it *is* the
    implementation of the primitives and has no observable sinks."""

    @classmethod
    def applies(cls, ctx: ModuleContext) -> bool:
        parts = tuple(
            part for part in ctx.path.replace("\\", "/").split("/") if part
        )
        return (
            "repro" in parts
            and ("hip" in parts or "tls" in parts)
            and "tests" not in parts
        )

    def run(self) -> None:
        for rule, node, message in taint_findings(self.ctx):
            if rule == self.rule:
                self.ctx.add(rule, node, message)


@register
class SecretSinkChecker(_TaintChecker):
    """A secret that reaches the recorder, a metric, an exception message or
    an unencrypted packet parameter is permanently disclosed — replay files
    and CI artifacts outlive any key rotation."""

    rule = "SEC001"
    description = (
        "key material (DH secret, KEYMAT, premaster, session key) must not "
        "reach an observable sink (recorder, metrics, exceptions, plaintext "
        "packet parameters)"
    )


@register
class NonConstantTimeCompareChecker(_TaintChecker):
    """``==`` on secret-derived bytes short-circuits at the first differing
    byte; an attacker measuring response times can forge a MAC one byte at
    a time.  All such comparisons go through ``ct_equal``."""

    rule = "SEC002"
    description = (
        "secret- or MAC-derived bytes compared with ==/!= instead of the "
        "constant-time helper ct_equal"
    )
