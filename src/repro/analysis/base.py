"""Checker framework: module context, visitor base class, rule registry."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.findings import Finding


def _parts(path: str) -> tuple[str, ...]:
    return tuple(part for part in path.replace("\\", "/").split("/") if part)


@dataclass
class ModuleContext:
    """Everything a checker may need about the module under analysis."""

    path: str  # as reported in findings (repo-relative when possible)
    source: str
    tree: ast.Module
    findings: list[Finding] = field(default_factory=list)
    _aliases: dict[str, str] = field(default_factory=dict)
    # Scratch space shared by the checkers that run on this module: rules
    # which need the same expensive pass (state-machine extraction, taint
    # propagation) compute it once and memoise it here, keyed by pass name.
    cache: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._collect_aliases()

    # -- scope ---------------------------------------------------------------
    @property
    def is_product(self) -> bool:
        """True for modules inside the ``repro`` package (the simulator
        proper), where the determinism contract is binding.  Test and
        benchmark code may use the wall clock and ad-hoc randomness freely."""
        parts = _parts(self.path)
        return "repro" in parts and "tests" not in parts

    @property
    def is_rng_module(self) -> bool:
        """``sim/rng.py`` — the one place allowed to construct ``Random``."""
        return _parts(self.path)[-2:] == ("sim", "rng.py")

    # -- reporting -----------------------------------------------------------
    def add(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
            )
        )

    # -- import resolution -----------------------------------------------------
    def _collect_aliases(self) -> None:
        """Map local names to the dotted stdlib name they were imported as.

        ``import random as _r``      -> ``_r: random``
        ``from time import time``    -> ``time: time.time``
        ``from datetime import datetime as dt`` -> ``dt: datetime.datetime``
        """
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self._aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve_call(self, func: ast.expr) -> str | None:
        """Dotted name of a call target with import aliases expanded.

        ``time.time()`` -> ``time.time``; after ``import random as _r``,
        ``_r.Random()`` -> ``random.Random``.  Calls on non-name bases
        (``self.rng.random()``) resolve to ``None`` — only *module-level*
        access is traceable statically, which is exactly what the
        determinism rules police.
        """
        chain: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self._aliases.get(node.id, node.id)
        chain.append(base)
        return ".".join(reversed(chain))


class Checker(ast.NodeVisitor):
    """Base class for one rule.  Subclasses set ``rule``/``description`` and
    visit nodes, calling :meth:`report` on violations."""

    rule: str = ""
    description: str = ""

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx

    @classmethod
    def applies(cls, ctx: ModuleContext) -> bool:
        """Override to scope the rule (default: every analyzed file)."""
        return True

    def report(self, node: ast.AST, message: str) -> None:
        self.ctx.add(self.rule, node, message)

    def run(self) -> None:
        self.visit(self.ctx.tree)


class ProductChecker(Checker):
    """A rule binding only inside the ``repro`` package."""

    @classmethod
    def applies(cls, ctx: ModuleContext) -> bool:
        return ctx.is_product


REGISTRY: list[type[Checker]] = []


def register(cls: type[Checker]) -> type[Checker]:
    if not cls.rule:
        raise ValueError(f"{cls.__name__} has no rule id")
    if any(existing.rule == cls.rule for existing in REGISTRY):
        raise ValueError(f"duplicate rule id {cls.rule}")
    REGISTRY.append(cls)
    return cls


def registered_rules() -> dict[str, str]:
    """rule id -> description, for ``--list-rules`` and the JSON report."""
    return {cls.rule: cls.description for cls in REGISTRY}
