"""Checker framework: module context, visitor base class, rule registry."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.findings import Finding


def _parts(path: str) -> tuple[str, ...]:
    return tuple(part for part in path.replace("\\", "/").split("/") if part)


@dataclass
class ModuleContext:
    """Everything a checker may need about the module under analysis."""

    path: str  # as reported in findings (repo-relative when possible)
    source: str
    tree: ast.Module
    findings: list[Finding] = field(default_factory=list)
    _aliases: dict[str, str] = field(default_factory=dict)
    # Scratch space shared by the checkers that run on this module: rules
    # which need the same expensive pass (state-machine extraction, taint
    # propagation) compute it once and memoise it here, keyed by pass name.
    cache: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._collect_aliases()

    # -- scope ---------------------------------------------------------------
    @property
    def is_product(self) -> bool:
        """True for modules inside the ``repro`` package (the simulator
        proper), where the determinism contract is binding.  Test and
        benchmark code may use the wall clock and ad-hoc randomness freely."""
        parts = _parts(self.path)
        return "repro" in parts and "tests" not in parts

    @property
    def is_rng_module(self) -> bool:
        """``sim/rng.py`` — the one place allowed to construct ``Random``."""
        return _parts(self.path)[-2:] == ("sim", "rng.py")

    # -- reporting -----------------------------------------------------------
    def add(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
            )
        )

    # -- import resolution -----------------------------------------------------
    def _collect_aliases(self) -> None:
        """Map local names to the dotted stdlib name they were imported as.

        ``import random as _r``      -> ``_r: random``
        ``from time import time``    -> ``time: time.time``
        ``from datetime import datetime as dt`` -> ``dt: datetime.datetime``
        """
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self._aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve_call(self, func: ast.expr) -> str | None:
        """Dotted name of a call target with import aliases expanded.

        ``time.time()`` -> ``time.time``; after ``import random as _r``,
        ``_r.Random()`` -> ``random.Random``.  Calls on non-name bases
        (``self.rng.random()``) resolve to ``None`` — only *module-level*
        access is traceable statically, which is exactly what the
        determinism rules police.
        """
        chain: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self._aliases.get(node.id, node.id)
        chain.append(base)
        return ".".join(reversed(chain))


class Checker(ast.NodeVisitor):
    """Base class for one rule.  Subclasses set ``rule``/``description`` and
    visit nodes, calling :meth:`report` on violations."""

    rule: str = ""
    description: str = ""

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx

    @classmethod
    def applies(cls, ctx: ModuleContext) -> bool:
        """Override to scope the rule (default: every analyzed file)."""
        return True

    def report(self, node: ast.AST, message: str) -> None:
        self.ctx.add(self.rule, node, message)

    def run(self) -> None:
        self.visit(self.ctx.tree)


class ProductChecker(Checker):
    """A rule binding only inside the ``repro`` package."""

    @classmethod
    def applies(cls, ctx: ModuleContext) -> bool:
        return ctx.is_product


@dataclass
class ProgramContext:
    """The whole analyzed set at once, for interprocedural checkers.

    Per-module checkers see one :class:`ModuleContext`; program checkers
    see all of them plus a shared ``cache`` where the expensive artifacts
    (call graph, dataflow summaries) are computed once and reused by every
    rule that needs them.
    """

    contexts: list[ModuleContext]
    cache: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.by_path: dict[str, ModuleContext] = {
            ctx.path: ctx for ctx in self.contexts
        }

    def program(self):
        """Memoised ``(ProgramIndex, CallGraph)`` over the product modules."""
        if "callgraph" not in self.cache:
            from repro.analysis.callgraph import build_program

            self.cache["callgraph"] = build_program(self.contexts)
        return self.cache["callgraph"]

    def add(self, path: str, rule: str, node: ast.AST, message: str) -> None:
        """Report a finding into the owning module's context (so the normal
        per-file suppression machinery applies to program-level rules)."""
        ctx = self.by_path.get(path)
        if ctx is not None:
            ctx.add(rule, node, message)


class ProgramChecker:
    """Base class for one whole-program rule."""

    rule: str = ""
    description: str = ""

    def __init__(self, pctx: ProgramContext) -> None:
        self.pctx = pctx

    @classmethod
    def applies(cls, pctx: ProgramContext) -> bool:
        """Override to scope the rule (default: any analyzed set)."""
        return True

    def run(self) -> None:
        raise NotImplementedError


REGISTRY: list[type[Checker]] = []
PROGRAM_REGISTRY: list[type[ProgramChecker]] = []


def _check_unique(rule: str, name: str) -> None:
    if not rule:
        raise ValueError(f"{name} has no rule id")
    taken = {cls.rule for cls in REGISTRY} | {cls.rule for cls in PROGRAM_REGISTRY}
    if rule in taken:
        raise ValueError(f"duplicate rule id {rule}")


def register(cls: type[Checker]) -> type[Checker]:
    _check_unique(cls.rule, cls.__name__)
    REGISTRY.append(cls)
    return cls


def register_program(cls: type[ProgramChecker]) -> type[ProgramChecker]:
    _check_unique(cls.rule, cls.__name__)
    PROGRAM_REGISTRY.append(cls)
    return cls


def registered_rules() -> dict[str, str]:
    """rule id -> description, for ``--list-rules`` and the JSON report."""
    rules = {cls.rule: cls.description for cls in REGISTRY}
    rules.update({cls.rule: cls.description for cls in PROGRAM_REGISTRY})
    return rules


def rule_doc(rule: str) -> str:
    """One-line doc for ``--list-rules``: first docstring line, else the
    registered description."""
    for cls in (*REGISTRY, *PROGRAM_REGISTRY):
        if cls.rule == rule:
            doc = (cls.__doc__ or "").strip().splitlines()
            return doc[0].strip() if doc else cls.description
    return ""
