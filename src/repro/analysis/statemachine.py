"""Protocol state-machine extraction and RFC-conformance checking.

The HIP association machine (RFC 5201 §4.4, simplified — R2-SENT collapses
into ESTABLISHED, FAILED is our addition for exhausted retransmissions) and
the SSL-VPN tunnel machine each live in exactly one module and encode their
states as a StrEnum.  This pass AST-extracts every transition the code can
perform and checks the resulting graph against the declarative tables below:

* a transition's *target* is the second argument of a ``_transition(...)``
  call (or the RHS of a direct ``x.state = Enum.MEMBER`` assignment);
* its *sources* come from the ``expect_from=`` keyword when present (the
  runtime-checked contract for call sites whose guard lives in a caller),
  otherwise from flow-sensitive guard inference inside the enclosing
  function (``if x.state != S: return`` ⇒ afterwards ``state == S``;
  ``while x.state == S:`` ⇒ ``S`` inside the body; ``if not
  x.is_established: return`` ⇒ ``ESTABLISHED`` afterwards).

Rules:

* **CONF001** — the code performs a transition the spec table does not
  allow (or one whose source state cannot be determined statically; add
  ``expect_from=`` to make it checkable).
* **CONF002** — a spec transition has no handler: the extracted graph is
  missing an edge the RFC table requires, i.e. dead spec.
* **CONF003** — a state appears as a bare string literal (or an unknown
  enum member) instead of a canonical StrEnum member; literals outside the
  canonical value set are typos the type checker cannot catch.

The spec tables deliberately duplicate the enum values; a unit test
cross-checks them against the live enums so they cannot drift.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.base import Checker, ModuleContext, register

# ------------------------------------------------------------------ specs --


@dataclass(frozen=True)
class MachineSpec:
    """Declarative transition table for one protocol state machine."""

    name: str  # human-readable machine name
    module_suffix: tuple[str, ...]  # path suffix of the defining module
    enum_name: str  # the StrEnum class holding the states
    initial: str  # member name of the initial state
    members: tuple[tuple[str, str], ...]  # (member name, wire value)
    edges: frozenset[tuple[str, str]]  # (from member, to member)
    aliases: tuple[tuple[str, str], ...] = ()  # property name -> member

    @property
    def member_names(self) -> frozenset[str]:
        return frozenset(name for name, _ in self.members)

    @property
    def value_to_member(self) -> dict[str, str]:
        return {value: name for name, value in self.members}

    @property
    def alias_map(self) -> dict[str, str]:
        return dict(self.aliases)


#: RFC 5201 §4.4.2 base-exchange machine plus CLOSE/CLOSE_ACK teardown
#: (§5.3.6-§5.3.8).  UNASSOCIATED→ESTABLISHED is the responder completing
#: on a valid I2 (R2-SENT collapsed); FAILED models exhausted
#: retransmissions, the simulator's stand-in for E-FAILED.
HIP_SPEC = MachineSpec(
    name="HIP association",
    module_suffix=("hip", "daemon.py"),
    enum_name="HipState",
    initial="UNASSOCIATED",
    members=(
        ("UNASSOCIATED", "UNASSOCIATED"),
        ("I1_SENT", "I1-SENT"),
        ("I2_SENT", "I2-SENT"),
        ("ESTABLISHED", "ESTABLISHED"),
        ("CLOSING", "CLOSING"),
        ("CLOSED", "CLOSED"),
        ("FAILED", "FAILED"),
    ),
    edges=frozenset(
        {
            ("UNASSOCIATED", "I1_SENT"),  # start BEX as initiator
            ("UNASSOCIATED", "ESTABLISHED"),  # responder accepts I2
            ("UNASSOCIATED", "FAILED"),  # no locator / policy denial
            ("I1_SENT", "I2_SENT"),  # R1 received, I2 sent
            ("I1_SENT", "FAILED"),  # I1 retransmissions exhausted
            ("I2_SENT", "ESTABLISHED"),  # R2 received
            ("I2_SENT", "FAILED"),  # I2 retransmissions exhausted
            ("ESTABLISHED", "CLOSING"),  # we sent CLOSE
            ("ESTABLISHED", "CLOSED"),  # peer's CLOSE acknowledged
            ("CLOSING", "CLOSED"),  # CLOSE_ACK received (or crossed CLOSE)
        }
    ),
    aliases=(("is_established", "ESTABLISHED"),),
)

#: The OpenVPN-style tunnel handshake.  ESTABLISHED→ESTABLISHED is the
#: server idempotently re-deriving keys on a retransmitted key message.
VPN_SPEC = MachineSpec(
    name="SSL-VPN tunnel",
    module_suffix=("tls", "vpn.py"),
    enum_name="TunnelState",
    initial="NEW",
    members=(
        ("NEW", "NEW"),
        ("HELLO_SENT", "HELLO-SENT"),
        ("ESTABLISHED", "ESTABLISHED"),
        ("FAILED", "FAILED"),
    ),
    edges=frozenset(
        {
            ("NEW", "HELLO_SENT"),  # client sends hello
            ("NEW", "ESTABLISHED"),  # server accepts key message
            ("NEW", "FAILED"),  # unknown peer / no locator
            ("HELLO_SENT", "ESTABLISHED"),  # finished verified (client)
            ("HELLO_SENT", "FAILED"),  # retransmissions exhausted
            ("ESTABLISHED", "ESTABLISHED"),  # retransmitted key message
            ("ESTABLISHED", "FAILED"),  # locator lost mid-session
        }
    ),
    aliases=(("is_established", "ESTABLISHED"),),
)

SPECS: tuple[MachineSpec, ...] = (HIP_SPEC, VPN_SPEC)


def spec_for(path: str) -> MachineSpec | None:
    parts = tuple(
        part for part in path.replace("\\", "/").split("/") if part
    )
    for spec in SPECS:
        if parts[-len(spec.module_suffix):] == spec.module_suffix:
            return spec
    return None


# ------------------------------------------------------------- extraction --


@dataclass
class ExtractedMachine:
    """Everything one module's AST says about its state machine."""

    spec: MachineSpec
    edges: dict[tuple[str, str], ast.AST] = field(default_factory=dict)
    unknown_sources: list[tuple[ast.AST, str]] = field(default_factory=list)
    bad_literals: list[tuple[ast.AST, str]] = field(default_factory=list)
    bad_members: list[tuple[ast.AST, str]] = field(default_factory=list)
    bad_initials: list[tuple[ast.AST, str]] = field(default_factory=list)
    enum_def: ast.AST | None = None

    def add_edge(self, frm: str, to: str, node: ast.AST) -> None:
        self.edges.setdefault((frm, to), node)


def _state_var(node: ast.expr) -> str | None:
    """``assoc.state`` → ``"assoc"`` (only Name bases are trackable)."""
    if (
        isinstance(node, ast.Attribute)
        and node.attr == "state"
        and isinstance(node.value, ast.Name)
    ):
        return node.value.id
    return None


def _alias_var(node: ast.expr, spec: MachineSpec) -> tuple[str, str] | None:
    """``tunnel.is_established`` → ``("tunnel", "ESTABLISHED")``."""
    if (
        isinstance(node, ast.Attribute)
        and node.attr in spec.alias_map
        and isinstance(node.value, ast.Name)
    ):
        return node.value.id, spec.alias_map[node.attr]
    return None


class _Extractor:
    """One pass over a machine module: transitions, guards, literals."""

    def __init__(self, spec: MachineSpec, tree: ast.Module) -> None:
        self.spec = spec
        self.out = ExtractedMachine(spec=spec)
        self._extract(tree)

    # -- state expressions ---------------------------------------------------
    def _member_of(self, node: ast.expr) -> str | None:
        """Resolve a state expression to a canonical member name.

        Enum attributes resolve directly; bare string literals resolve via
        the value table but are *always* recorded for CONF003.  Unknown
        members/values resolve to None.
        """
        spec = self.spec
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == spec.enum_name
        ):
            if node.attr in spec.member_names:
                return node.attr
            self.out.bad_members.append((node, node.attr))
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            self.out.bad_literals.append((node, node.value))
            return spec.value_to_member.get(node.value)
        return None

    def _members_of(self, node: ast.expr) -> frozenset[str]:
        elts = node.elts if isinstance(node, (ast.Tuple, ast.List, ast.Set)) else [node]
        members = frozenset(
            m for m in (self._member_of(elt) for elt in elts) if m is not None
        )
        return members

    # -- guard narrowing -----------------------------------------------------
    def _when_true(self, test: ast.expr) -> dict[str, frozenset[str]]:
        """var → states implied when ``test`` evaluates truthy."""
        facts: dict[str, frozenset[str]] = {}
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            for value in test.values:
                facts.update(self._when_true(value))
            return facts
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self._when_false(test.operand)
        alias = _alias_var(test, self.spec)
        if alias is not None:
            return {alias[0]: frozenset({alias[1]})}
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            var = _state_var(test.left)
            if var is not None:
                op = test.ops[0]
                if isinstance(op, ast.Eq):
                    members = self._members_of(test.comparators[0])
                    if members:
                        return {var: members}
                elif isinstance(op, ast.In):
                    members = self._members_of(test.comparators[0])
                    if members:
                        return {var: members}
                elif isinstance(op, (ast.NotEq, ast.NotIn)):
                    # Still resolve the RHS so CONF003 sees its literals.
                    self._members_of(test.comparators[0])
        return facts

    def _when_false(self, test: ast.expr) -> dict[str, frozenset[str]]:
        """var → states implied when ``test`` evaluates falsy."""
        facts: dict[str, frozenset[str]] = {}
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
            # The whole Or is false only when every disjunct is false.
            for value in test.values:
                facts.update(self._when_false(value))
            return facts
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self._when_true(test.operand)
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            var = _state_var(test.left)
            if var is not None:
                op = test.ops[0]
                if isinstance(op, (ast.NotEq, ast.NotIn)):
                    members = self._members_of(test.comparators[0])
                    if members:
                        return {var: members}
                elif isinstance(op, (ast.Eq, ast.In)):
                    self._members_of(test.comparators[0])
        return facts

    # -- structural walk -----------------------------------------------------
    def _extract(self, tree: ast.Module) -> None:
        for node in tree.body:
            self._extract_stmt(node, {})
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.ClassDef)
                and node.name == self.spec.enum_name
            ):
                self.out.enum_def = node

    def _extract_stmt(self, stmt: ast.stmt, env: dict[str, frozenset[str]]) -> None:
        self._scan_body([stmt], env)

    @staticmethod
    def _terminates(body: list[ast.stmt]) -> bool:
        return bool(body) and isinstance(
            body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
        )

    @staticmethod
    def _merge(
        env: dict[str, frozenset[str]], facts: dict[str, frozenset[str]]
    ) -> dict[str, frozenset[str]]:
        out = dict(env)
        for var, states in facts.items():
            out[var] = (out[var] & states) or states if var in out else states
        return out

    def _scan_body(
        self, body: list[ast.stmt], env: dict[str, frozenset[str]]
    ) -> None:
        env = dict(env)
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_body(stmt.body, {})
            elif isinstance(stmt, ast.ClassDef):
                for item in stmt.body:
                    self._scan_class_stmt(stmt, item)
                self._scan_body(
                    [
                        s
                        for s in stmt.body
                        if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
                    ],
                    {},
                )
            elif isinstance(stmt, ast.If):
                self._resolve_test(stmt.test)
                when_true = self._when_true(stmt.test)
                when_false = self._when_false(stmt.test)
                self._scan_body(stmt.body, self._merge(env, when_true))
                self._scan_body(stmt.orelse, self._merge(env, when_false))
                # `if <guard>: return` narrows everything after the if.
                if self._terminates(stmt.body):
                    env = self._merge(env, when_false)
                if stmt.orelse and self._terminates(stmt.orelse):
                    env = self._merge(env, when_true)
            elif isinstance(stmt, ast.While):
                self._resolve_test(stmt.test)
                self._scan_body(
                    stmt.body, self._merge(env, self._when_true(stmt.test))
                )
                self._scan_body(stmt.orelse, env)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_body(stmt.body, env)
                self._scan_body(stmt.orelse, env)
            elif isinstance(stmt, ast.Try):
                self._scan_body(stmt.body, env)
                for handler in stmt.handlers:
                    self._scan_body(handler.body, env)
                self._scan_body(stmt.orelse, env)
                self._scan_body(stmt.finalbody, env)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._scan_body(stmt.body, env)
            else:
                self._scan_simple(stmt, env)
                # Rebinding a tracked variable invalidates its narrowing.
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            env.pop(target.id, None)
                elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                    if isinstance(stmt.target, ast.Name):
                        env.pop(stmt.target.id, None)

    def _scan_class_stmt(self, cls: ast.ClassDef, stmt: ast.stmt) -> None:
        """Dataclass field defaults: the machine's declared initial state."""
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == "state"
            and stmt.value is not None
            and cls.name != self.spec.enum_name
        ):
            member = self._member_of(stmt.value)
            if member is not None and member != self.spec.initial:
                self.out.bad_initials.append((stmt, member))

    def _scan_simple(self, stmt: ast.stmt, env: dict[str, frozenset[str]]) -> None:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                self._maybe_transition(node, env)
            elif isinstance(node, ast.Compare):
                self._resolve_compare(node)
            elif isinstance(node, ast.Assign):
                self._maybe_state_assign(node, env)

    def _resolve_test(self, test: ast.expr) -> None:
        for node in ast.walk(test):
            if isinstance(node, ast.Compare):
                self._resolve_compare(node)

    def _resolve_compare(self, node: ast.Compare) -> None:
        """Record CONF003 literals in any ``.state`` comparison, even the
        shapes the guard inference does not consume."""
        operands = [node.left, *node.comparators]
        if any(_state_var(op) is not None for op in operands):
            for op in operands:
                if _state_var(op) is None:
                    self._members_of(op)

    def _maybe_state_assign(
        self, node: ast.Assign, env: dict[str, frozenset[str]]
    ) -> None:
        for target in node.targets:
            var = _state_var(target)
            if var is None:
                continue
            if not isinstance(node.value, (ast.Attribute, ast.Constant)):
                continue  # e.g. `assoc.state = state` inside _transition
            to = self._member_of(node.value)
            if to is None:
                continue
            if var in env:
                for frm in sorted(env[var]):
                    self.out.add_edge(frm, to, node)
            else:
                self.out.unknown_sources.append((node, to))

    def _maybe_transition(
        self, node: ast.Call, env: dict[str, frozenset[str]]
    ) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "_transition"):
            return
        if len(node.args) < 2:
            return
        to = self._member_of(node.args[1])
        if to is None:
            return
        expect_kw = next(
            (kw for kw in node.keywords if kw.arg == "expect_from"), None
        )
        if expect_kw is not None:
            sources = self._members_of(expect_kw.value)
            if not sources:
                self.out.unknown_sources.append((node, to))
                return
        else:
            var = node.args[0].id if isinstance(node.args[0], ast.Name) else None
            if var is None or var not in env:
                self.out.unknown_sources.append((node, to))
                return
            sources = env[var]
        for frm in sorted(sources):
            self.out.add_edge(frm, to, node)


def extract(ctx: ModuleContext) -> ExtractedMachine | None:
    """Extract (and memoise) the state machine of a machine module."""
    if "statemachine" not in ctx.cache:
        spec = spec_for(ctx.path)
        ctx.cache["statemachine"] = (
            None if spec is None else _Extractor(spec, ctx.tree).out
        )
    return ctx.cache["statemachine"]


# ------------------------------------------------------------------ rules --


class _ConformanceChecker(Checker):
    """Shared scope: only the modules that define a protocol machine."""

    @classmethod
    def applies(cls, ctx: ModuleContext) -> bool:
        return spec_for(ctx.path) is not None

    def run(self) -> None:
        extracted = extract(self.ctx)
        if extracted is not None:
            self.check(extracted)

    def check(self, extracted: ExtractedMachine) -> None:
        raise NotImplementedError


@register
class IllegalTransitionChecker(_ConformanceChecker):
    """The paper's security argument assumes the HIP machine moves only
    along RFC 5201/5206 edges; a handler that jumps ESTABLISHED→I1-SENT
    (say) silently re-keys without a base exchange.  Every code transition
    must appear in the declarative spec table, and every transition must be
    statically attributable to source states."""

    rule = "CONF001"
    description = (
        "state transition performed by code but absent from the RFC spec "
        "table (or with statically undeterminable source; add expect_from=)"
    )

    def check(self, extracted: ExtractedMachine) -> None:
        spec = extracted.spec
        for (frm, to), node in sorted(
            extracted.edges.items(), key=lambda item: item[0]
        ):
            if (frm, to) not in spec.edges:
                self.report(
                    node,
                    f"{spec.name} transition {frm} -> {to} is not in the "
                    f"spec table; either the handler is wrong or the table "
                    f"in repro.analysis.statemachine needs a reviewed edge",
                )
        for node, to in extracted.unknown_sources:
            self.report(
                node,
                f"cannot infer the source state of the transition to {to}; "
                "declare it with expect_from=(...) so it is runtime-checked "
                "and statically extractable",
            )
        for node, member in extracted.bad_initials:
            self.report(
                node,
                f"initial state {member} differs from the spec initial "
                f"{spec.initial}",
            )


@register
class MissingTransitionChecker(_ConformanceChecker):
    """The inverse direction: every edge the spec table requires must have
    a handler, otherwise part of the protocol (teardown, failure paths) is
    dead code and the conformance claim is vacuous."""

    rule = "CONF002"
    description = "spec-table transition with no handler in the code"

    def check(self, extracted: ExtractedMachine) -> None:
        spec = extracted.spec
        anchor = extracted.enum_def or self.ctx.tree
        for frm, to in sorted(spec.edges - set(extracted.edges)):
            self.report(
                anchor,
                f"{spec.name} spec transition {frm} -> {to} has no handler "
                "in this module",
            )


@register
class StateLiteralChecker(_ConformanceChecker):
    """States must be spelled as StrEnum members.  A bare literal outside
    the canonical value set is a typo that compares unequal forever; one
    inside the set still bypasses the single point of definition."""

    rule = "CONF003"
    description = (
        "state written as a bare string literal (or unknown enum member) "
        "instead of a canonical StrEnum member"
    )

    @staticmethod
    def _dedup(items: list[tuple[ast.AST, str]]) -> list[tuple[ast.AST, str]]:
        """The extractor may resolve one comparison from both guard
        polarities; report each offending node once."""
        seen: set[tuple[int, int, str]] = set()
        out: list[tuple[ast.AST, str]] = []
        for node, text in items:
            key = (
                getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0),
                text,
            )
            if key not in seen:
                seen.add(key)
                out.append((node, text))
        return out

    def check(self, extracted: ExtractedMachine) -> None:
        spec = extracted.spec
        known = set(spec.value_to_member)
        for node, literal in self._dedup(extracted.bad_literals):
            if literal in known:
                member = spec.value_to_member[literal]
                self.report(
                    node,
                    f"bare state literal {literal!r}; spell it "
                    f"{spec.enum_name}.{member}",
                )
            else:
                self.report(
                    node,
                    f"state literal {literal!r} is outside the canonical "
                    f"{spec.enum_name} value set",
                )
        for node, member in self._dedup(extracted.bad_members):
            self.report(
                node,
                f"{spec.enum_name}.{member} is not a canonical member",
            )
