"""Runtime wire sanitizer: HIP TLV well-formedness on every sent packet.

Static rules check the code; this tap checks the *bytes*.  Installed into
:data:`repro.net.link.WIRE_TAPS` (opt-in, normally from the pytest fixture
``wire_sanitizer`` that tier-1 smoke runs enable), it observes every packet
entering a link queue and, for HIP control packets (identified by the
``hip_raw`` metadata the daemon attaches), asserts:

* the fixed 40-byte header is present, carries the supported version, and
  its length field matches the actual byte count;
* the TLV parameter block is well-formed — ascending type codes, in-bounds
  declared lengths, 8-byte alignment with zero padding;
* ``parse(raw).serialize() == raw`` — the wire image round-trips through
  the parser byte-for-byte, so parser and serializer cannot drift apart.

Violations raise :class:`WireViolation` (an ``AssertionError``) at the send
site, which is the earliest point the malformed bytes exist — the failing
test's traceback names the handler that built the packet.
"""

from __future__ import annotations

import struct
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.hip import packets as hp
from repro.net.link import WIRE_TAPS


class WireViolation(AssertionError):
    """A packet on the simulated wire broke the HIP wire-format contract."""


@dataclass
class WireSanitizer:
    """Link-layer tap; callable so it can sit directly in ``WIRE_TAPS``."""

    packets_seen: int = 0
    hip_packets_checked: int = 0
    violations: list[str] = field(default_factory=list)

    def __call__(self, packet) -> None:
        self.packets_seen += 1
        meta = getattr(packet, "meta", None)
        raw = meta.get("hip_raw") if meta else None
        if raw is None:
            return
        self.hip_packets_checked += 1
        try:
            self.check_hip(raw)
        except WireViolation as exc:
            self.violations.append(str(exc))
            raise

    # -- checks --------------------------------------------------------------
    def check_hip(self, raw: bytes) -> None:
        self._check_header(raw)
        self._check_tlvs(raw)
        self._check_roundtrip(raw)

    @staticmethod
    def _fail(message: str) -> None:
        raise WireViolation(f"HIP wire sanitizer: {message}")

    def _check_header(self, raw: bytes) -> None:
        if len(raw) < 40:
            self._fail(f"packet is {len(raw)} bytes, below the 40-byte header")
        _nxt, length_field, ptype, ver, _csum, _controls = struct.unpack_from(
            ">BBBBHH", raw, 0
        )
        if (ver >> 4) != hp.HIP_VERSION:
            self._fail(f"version {ver >> 4}, expected {hp.HIP_VERSION}")
        declared = length_field * 8 + 8
        if declared != len(raw):
            self._fail(
                f"header length field declares {declared} bytes, packet has "
                f"{len(raw)}"
            )
        if ptype not in hp.PACKET_NAMES:
            self._fail(f"unknown packet type {ptype}")

    def _check_tlvs(self, raw: bytes) -> None:
        off = 40
        prev_code = -1
        while off < len(raw):
            if off + 4 > len(raw):
                self._fail(f"parameter header truncated at offset {off}")
            code, plen = struct.unpack_from(">HH", raw, off)
            if code < prev_code:
                self._fail(
                    f"parameter {code} follows {prev_code}; type codes must "
                    "ascend"
                )
            prev_code = code
            end = off + 4 + plen
            if end > len(raw):
                self._fail(
                    f"parameter {code} declares {plen} value bytes but only "
                    f"{len(raw) - off - 4} remain"
                )
            padded_end = end + ((-(4 + plen)) % 8)
            if padded_end > len(raw):
                self._fail(f"parameter {code} padding truncated")
            if any(raw[end:padded_end]):
                self._fail(f"parameter {code} has non-zero padding bytes")
            off = padded_end
        if off != len(raw):
            self._fail("parameter block is not 8-byte aligned")

    def _check_roundtrip(self, raw: bytes) -> None:
        try:
            parsed = hp.HipPacket.parse(raw)
        except hp.HipParseError as exc:
            self._fail(f"parser rejected sent bytes: {exc}")
            return  # unreachable; keeps type checkers happy
        again = parsed.serialize()
        if again != raw:
            diff = next(
                (i for i, (a, b) in enumerate(zip(raw, again)) if a != b),
                min(len(raw), len(again)),
            )
            self._fail(
                f"parse/serialize round-trip diverges at byte {diff} "
                f"({len(raw)} sent vs {len(again)} rebuilt)"
            )

    def describe(self) -> str:
        return (
            f"wire sanitizer: {self.hip_packets_checked}/{self.packets_seen} "
            f"HIP packets checked, {len(self.violations)} violation(s)"
        )


@contextmanager
def wire_sanitizer() -> Iterator[WireSanitizer]:
    """Install a :class:`WireSanitizer` tap for the duration of a block."""
    tap = WireSanitizer()
    WIRE_TAPS.append(tap)
    try:
        yield tap
    finally:
        WIRE_TAPS.remove(tap)
