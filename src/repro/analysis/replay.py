"""Runtime replay sanitizer: the dynamic complement to the static rules.

The static checkers catch *syntactically visible* nondeterminism (wall-clock
reads, ambient randomness).  What they cannot see — iteration over a set of
objects buried behind an attribute, an unseeded draw threaded through a
callback — still leaves a fingerprint: the flight-recorder event stream of
two runs under the same seed will diverge.  So the sanitizer runs a scenario
twice, streams every recorded event through a SHA-256 digest (via the
recorder's ``sink`` tap, so ring eviction hides nothing), and compares.

Usage::

    from repro.analysis.replay import check_replay

    def scenario():
        dep = build_rubis_cloud(seed=7, security="basic")
        ...
        dep.sim.run(until=done)

    report = check_replay(scenario)
    assert report.deterministic, report.describe()

The scenario callable must construct *everything* fresh on each invocation
(simulator, topology, RNG streams) — module-global state it mutates is on it.
``METRICS`` and ``RECORDER`` are reset around each run and restored after.
"""

from __future__ import annotations

import gc
import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable


def canonical_event(ev) -> str:
    """Stable one-line encoding of a TraceEvent (strict JSON, sorted keys)."""
    return json.dumps(
        [ev.t, ev.layer, ev.event, ev.fields],
        sort_keys=True,
        default=repr,
        allow_nan=False,
    )


@dataclass
class ReplayRun:
    """One instrumented execution of the scenario."""

    digest: str  # sha256 over the canonical event stream
    n_events: int
    tally: dict[str, int]
    counters_digest: str  # sha256 over the final METRICS counter snapshot
    events: list[str] = field(default_factory=list, repr=False)


@dataclass
class ReplayReport:
    """Outcome of the double-run comparison."""

    runs: list[ReplayRun]

    @property
    def deterministic(self) -> bool:
        first = self.runs[0]
        return all(
            run.digest == first.digest
            and run.counters_digest == first.counters_digest
            for run in self.runs[1:]
        )

    @property
    def first_divergence(self) -> tuple[int, str, str] | None:
        """(event index, run-0 line, run-1 line) of the first differing
        event, or None if the streams match (or diverge only in length)."""
        a, b = self.runs[0].events, self.runs[1].events
        for i, (ev_a, ev_b) in enumerate(zip(a, b)):
            if ev_a != ev_b:
                return i, ev_a, ev_b
        return None

    def describe(self) -> str:
        if self.deterministic:
            run = self.runs[0]
            return (
                f"deterministic: {run.n_events} events, "
                f"digest {run.digest[:16]}"
            )
        lines = [
            "replay divergence under identical seed:",
            *(
                f"  run {i}: {run.n_events} events, digest {run.digest[:16]}, "
                f"counters {run.counters_digest[:16]}"
                for i, run in enumerate(self.runs)
            ),
        ]
        div = self.first_divergence
        if div is not None:
            index, ev_a, ev_b = div
            lines += [
                f"  first differing event (#{index}):",
                f"    run 0: {ev_a}",
                f"    run 1: {ev_b}",
            ]
        elif self.runs[0].n_events != self.runs[1].n_events:
            lines.append(
                "  streams are a prefix of one another "
                f"({self.runs[0].n_events} vs {self.runs[1].n_events} events)"
            )
        return "\n".join(lines)


def record_run(
    scenario: Callable[[], object],
    *,
    keep_events: bool = True,
    max_kept_events: int = 250_000,
) -> ReplayRun:
    """Execute ``scenario`` once with the recorder tapped; return its digest.

    Resets ``METRICS``/``RECORDER`` before the run and restores the
    recorder's prior enabled/sink state afterwards, so the sanitizer can run
    inside a larger instrumented session without clobbering it.
    """
    from repro.metrics import METRICS, RECORDER

    hasher = hashlib.sha256()
    kept: list[str] = []
    n_events = 0

    def sink(ev) -> None:
        nonlocal n_events
        line = canonical_event(ev)
        hasher.update(line.encode("utf-8"))
        hasher.update(b"\n")
        n_events += 1
        if keep_events and len(kept) < max_kept_events:
            kept.append(line)

    prev_enabled, prev_sink = RECORDER.enabled, RECORDER.sink
    # GC fence.  A suspended process generator abandoned by an *earlier* run
    # (or an earlier test) is finalized whenever the collector gets around to
    # it — and its ``finally`` blocks can emit trace events or bump counters
    # mid-window, at GC-timing-dependent moments.  Collect that backlog now,
    # with the recorder off, so the measurement window starts clean.
    RECORDER.enabled = False
    RECORDER.sink = None
    gc.collect()
    METRICS.reset()
    RECORDER.clear()
    RECORDER.sink = sink
    RECORDER.enabled = True
    try:
        scenario()
        tally = RECORDER.tally()
    finally:
        RECORDER.sink = None
        RECORDER.enabled = False
        # Closing fence: finalize *this* run's orphans before the counter
        # snapshot, so their bumps land at a deterministic point (the trace
        # digest is safe either way — the recorder is already off).
        gc.collect()
        RECORDER.sink = prev_sink
        RECORDER.enabled = prev_enabled

    counters = METRICS.snapshot()["counters"]
    counters_digest = hashlib.sha256(
        json.dumps(dict(sorted(counters.items())), sort_keys=True).encode()
    ).hexdigest()
    return ReplayRun(
        digest=hasher.hexdigest(),
        n_events=n_events,
        tally=tally,
        counters_digest=counters_digest,
        events=kept,
    )


def check_replay(
    scenario: Callable[[], object],
    *,
    runs: int = 2,
    keep_events: bool = True,
) -> ReplayReport:
    """Run ``scenario`` ``runs`` times and compare event-stream digests."""
    if runs < 2:
        raise ValueError("replay comparison needs at least two runs")
    return ReplayReport(
        runs=[record_run(scenario, keep_events=keep_events) for _ in range(runs)]
    )


def assert_replay_deterministic(
    scenario: Callable[[], object], *, runs: int = 2
) -> ReplayReport:
    """``check_replay`` that raises ``AssertionError`` with the divergence
    diagnosis on mismatch; returns the report when clean."""
    report = check_replay(scenario, runs=runs)
    if not report.deterministic:
        raise AssertionError(report.describe())
    return report
