"""Lifecycle leak lints (``LIF*``): everything opened must have a close path.

A discrete-event run that leaks timers, security associations or taps does
not crash — it slowly diverges: a forgotten ``TimerHandle`` fires into a
torn-down object, an SA table grows across a million-session run, a test
tap installed without removal bleeds assertions into the next test.  These
rules demand the release half of every acquire:

* **LIF001** — a ``TimerHandle`` stored on ``self`` (from ``call_later`` /
  ``call_at``) that no method of the class ever ``.cancel()``s;
* **LIF002** — a container attribute born empty in ``__init__`` that grows
  at runtime but is never popped, cleared, or rebound — the static shape of
  an unbounded SA/connection registry with no close path;
* **LIF003** — a sanitizer tap (``*_TAPS.append``) installed without a
  paired ``.remove()`` in the same function (use the context managers).

LIF001/LIF002 bind to product code; LIF003 binds everywhere (tests are
exactly where taps get installed).  Deliberately permanent registries
(e.g. a daemon's host table that lives as long as the simulation) carry
``# repro: ignore[LIF002]`` suppressions or a baseline entry.
"""

from __future__ import annotations

import ast

from repro.analysis.base import Checker, ModuleContext, ProductChecker, register

_TIMER_FACTORIES = frozenset({"call_later", "call_at"})

#: Empty-container constructors for LIF002's "born empty" test.
_EMPTY_CONTAINERS = frozenset(
    {
        "list",
        "dict",
        "set",
        "collections.deque",
        "collections.OrderedDict",
        "collections.Counter",
    }
)

_GROWERS = frozenset({"append", "appendleft", "add", "insert", "setdefault"})
_SHRINKERS = frozenset({"pop", "popitem", "popleft", "remove", "discard", "clear"})


def _self_attr(node: ast.expr) -> str | None:
    """``self.X`` -> ``"X"`` (else None)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


# ------------------------------------------------------------------ LIF001 --


@register
class TimerLeakChecker(ProductChecker):
    """A stored timer handle is a promise to fire; teardown must revoke it.
    An uncancelled handle keeps its callback (and the whole object graph
    behind it) live on the heap and fires after close(), resurrecting state
    the simulation considers gone.  Every ``self.x = sim.call_later(...)``
    needs a ``self.x.cancel()`` somewhere in the class — the delayed-ACK
    handle this rule caught in ``net/tcp.py`` fired after teardown."""

    rule = "LIF001"
    description = (
        "every TimerHandle stored on self must be cancelled somewhere in "
        "its class (close()/teardown path)"
    )

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        created: dict[str, ast.AST] = {}
        cancelled: set[str] = set()
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
                func = stmt.value.func
                if isinstance(func, ast.Attribute) and func.attr in _TIMER_FACTORIES:
                    for target in stmt.targets:
                        attr = _self_attr(target)
                        if attr is not None and attr not in created:
                            created[attr] = stmt
            elif isinstance(stmt, ast.Call):
                func = stmt.func
                if isinstance(func, ast.Attribute) and func.attr == "cancel":
                    attr = _self_attr(func.value)
                    if attr is not None:
                        cancelled.add(attr)
        for attr, site in sorted(created.items()):
            if attr not in cancelled:
                self.report(
                    site,
                    f"TimerHandle `self.{attr}` in `{node.name}` is never "
                    "cancelled; cancel it on the close()/teardown path (or "
                    "suppress with the reason firing-after-close is safe)",
                )
        self.generic_visit(node)


# ------------------------------------------------------------------ LIF002 --


def _is_empty_container(node: ast.expr, ctx: ModuleContext) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return not getattr(node, "elts", None) and not getattr(node, "keys", None)
    if isinstance(node, ast.Call):
        name = ctx.resolve_call(node.func)
        if name == "collections.defaultdict":
            return True  # defaultdict(factory) is born empty
        return name in _EMPTY_CONTAINERS and not node.args and not node.keywords
    return False


@register
class ResourceLeakChecker(ProductChecker):
    """An attribute that starts empty and only ever gains entries is the
    static signature of a leak: an SA registry without teardown, a
    connection table without a close path.  At million-session scale these
    tables *are* the memory ceiling.  The rule wants at least one shrink
    site (pop/remove/del/clear or a rebinding reset) per growing table."""

    rule = "LIF002"
    description = (
        "container attributes born empty in __init__ and grown at runtime "
        "need a release path (pop/del/clear/rebind)"
    )

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        empties: set[str] = set()
        grows: dict[str, ast.AST] = {}
        shrinks: set[str] = set()
        for func in node.body:
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            in_init = func.name == "__init__"
            for stmt in ast.walk(func):
                if isinstance(stmt, ast.Assign):
                    targets: list[ast.expr] = []
                    for target in stmt.targets:
                        if isinstance(target, (ast.Tuple, ast.List)):
                            targets.extend(target.elts)
                        else:
                            targets.append(target)
                    for target in targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            if in_init and _is_empty_container(stmt.value, self.ctx):
                                empties.add(attr)
                            elif not in_init:
                                shrinks.add(attr)  # rebinding is a reset
                        # self.X[k] = v grows the table
                        elif isinstance(target, ast.Subscript) and not in_init:
                            attr = _self_attr(target.value)
                            if attr is not None:
                                grows.setdefault(attr, stmt)
                elif isinstance(stmt, ast.Call):
                    f = stmt.func
                    if isinstance(f, ast.Attribute):
                        attr = _self_attr(f.value)
                        if attr is not None:
                            if f.attr in _GROWERS and not in_init:
                                grows.setdefault(attr, stmt)
                            elif f.attr in _SHRINKERS:
                                shrinks.add(attr)
                elif isinstance(stmt, ast.Delete):
                    for target in stmt.targets:
                        if isinstance(target, ast.Subscript):
                            attr = _self_attr(target.value)
                            if attr is not None:
                                shrinks.add(attr)
        for attr in sorted(set(empties) & set(grows) - shrinks):
            self.report(
                grows[attr],
                f"`self.{attr}` in `{node.name}` acquires entries at runtime "
                "but the class never releases any; add a close/expiry path "
                "or suppress with the bounded-lifetime justification",
            )
        self.generic_visit(node)


# ------------------------------------------------------------------ LIF003 --


@register
class TapLeakChecker(Checker):
    """Sanitizer taps are process-global by design, which is exactly why a
    leaked one is poisonous: it outlives its test and asserts against every
    later run in the process.  Installation must be paired with removal in
    the same function — in practice, use ``wire_sanitizer()`` /
    ``causality_sanitizer()`` instead of touching the tap lists."""

    rule = "LIF003"
    description = (
        "*_TAPS.append(...) needs a paired .remove() in the same function; "
        "prefer the sanitizer context managers"
    )

    @staticmethod
    def _walk_scope(body):
        """Walk ``body`` without descending into nested functions — those
        are separate scopes, visited (and paired) on their own."""
        stack = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _check_scope(self, node, body) -> None:
        appended: dict[str, ast.AST] = {}
        removed: set[str] = set()
        for call in self._walk_scope(body):
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            name = None
            if isinstance(base, ast.Name) and base.id.endswith("_TAPS"):
                name = base.id
            elif isinstance(base, ast.Attribute) and base.attr.endswith("_TAPS"):
                name = base.attr
            if name is None:
                continue
            if func.attr in ("append", "insert", "extend"):
                appended.setdefault(name, call)
            elif func.attr in ("remove", "clear", "pop"):
                removed.add(name)
        for name, site in sorted(appended.items()):
            if name not in removed:
                self.report(
                    site,
                    f"tap installed into `{name}` without a paired removal in "
                    "this function; wrap in try/finally or use the sanitizer "
                    "context manager",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_scope(node, node.body)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_scope(node, node.body)
        self.generic_visit(node)

    def visit_Module(self, node: ast.Module) -> None:
        self._check_scope(node, node.body)
        self.generic_visit(node)
