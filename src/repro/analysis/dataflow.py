"""Summary-based interprocedural dataflow over the whole-program call graph.

PR 4's taint pass (:mod:`repro.analysis.taint`) is deliberately
intra-procedural: a secret returned from ``tls_prf`` and logged two calls
later is invisible to it.  This module closes that gap with the classic
summary construction:

* every function gets a :class:`Summary` — the taint of its return value
  (:class:`TaintVal`: a concrete SECRET/MAC/CLEAN level *plus* the set of
  parameters it passes through), which parameters reach an observable sink
  inside it (``param_sinks``), and which attributes it writes secret
  material into (``attr_writes``);
* summaries are computed bottom-up over the call graph's SCCs
  (callee-first, iterating within a cycle until stable), so a chain
  ``A → B → C → sink`` composes: C's ``param_sinks`` lifts into B's, then
  into A's;
* a final reporting sweep re-walks every function with the fixed
  summaries and flags **SEC003** (secret crossing a call boundary into a
  sink — returned from a producer through helpers, or passed as an
  argument into a function that sinks it) and **SEC004** (secret material
  parked in an attribute *not* spelled like key material, read back
  elsewhere and sunk — the attribute round-trip the intra pass can only
  see for ``SECRET_NAMES`` spellings).

Attribute discovery iterates: attributes found to hold secrets extend the
source set and summaries are recomputed, until the set is stable (three
rounds bound it in practice — attribute-of-attribute chains are rare).

The module also hosts :func:`propagate_raises`, the generic escape-set
fixpoint the validation pass (VAL003) uses to push "may raise
``struct.error``" facts from parse helpers up to their callers.

Soundness limits are the package's usual name-driven bargain, documented
in DESIGN.md: containers launder taint between unrelated keys, calls
through stored callables are invisible, and constructor results are CLEAN
(the fields written by ``__init__`` are tracked instead — an *object*
holding secrets is not itself secret bytes).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace

from repro.analysis.base import ProgramChecker, ProgramContext, register_program
from repro.analysis.callgraph import CallGraph, FunctionInfo, ProgramIndex
from repro.analysis.taint import (
    CLEAN,
    MAC,
    SECRET,
    SECRET_NAMES,
    _DECLASSIFY_ATTRS,
    _DECLASSIFY_CALLS,
    _MAC_PRODUCER_ATTRS,
    _MAC_PRODUCER_CALLS,
    _SECRET_PRODUCER_ATTRS,
    _SECRET_PRODUCER_CALLS,
    _SINK_CALLS,
    label_candidates,
    tls_prf_taint,
)


@dataclass(frozen=True)
class TaintVal:
    """Abstract taint of one value.

    ``level`` is the concrete part (CLEAN < MAC < SECRET); ``params`` the
    symbolic part — indices of the enclosing function's parameters whose
    call-time taint flows into this value; ``via_call`` marks taint that
    crossed at least one program-function boundary (what distinguishes a
    SEC003 from the intra pass's SEC001); ``attrs`` the discovered
    secret-bearing attributes that contributed (what makes it a SEC004).
    """

    level: int = CLEAN
    params: frozenset[int] = frozenset()
    via_call: bool = False
    attrs: frozenset[str] = frozenset()

    def join(self, other: "TaintVal") -> "TaintVal":
        if other is ZERO:
            return self
        if self is ZERO:
            return other
        return TaintVal(
            level=max(self.level, other.level),
            params=self.params | other.params,
            via_call=self.via_call or other.via_call,
            attrs=self.attrs | other.attrs,
        )

    @property
    def is_bottom(self) -> bool:
        return self.level == CLEAN and not self.params and not self.attrs


ZERO = TaintVal()


@dataclass
class Summary:
    """Transfer summary of one function, the unit of the fixpoint."""

    ret: TaintVal = ZERO
    #: param index -> description of the sink it reaches inside this function
    param_sinks: dict[int, str] = field(default_factory=dict)
    #: attribute name -> highest taint level written into it
    attr_writes: dict[str, int] = field(default_factory=dict)
    #: attribute name -> "qualname:line" of the tainting write (for messages)
    attr_sites: dict[str, str] = field(default_factory=dict)


def _call_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _short(qualname: str) -> str:
    return ".".join(qualname.split(".")[-2:])


def observable_sinks(
    node: ast.Call, aliases: dict[str, str]
) -> list[tuple[ast.expr, str]]:
    """(value, sink description) pairs for one call, superset of the intra
    pass's sink table plus ``print`` and ``logging``."""
    func = node.func
    name = _call_name(func)
    all_values = list(node.args) + [kw.value for kw in node.keywords]
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "record"
        and isinstance(func.value, ast.Name)
        and func.value.id == "RECORDER"
    ):
        return [(v, "the flight recorder") for v in all_values]
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "METRICS"
    ):
        return [(v, "a metrics name") for v in node.args]
    if isinstance(func, ast.Attribute) and func.attr == "add" and len(node.args) >= 2:
        return [(node.args[1], "a packet parameter")]
    if name is not None and name.startswith("build_"):
        return [(v, "a packet parameter builder") for v in node.args]
    if name in _SINK_CALLS:
        return [(v, "the plaintext control channel") for v in all_values]
    if isinstance(func, ast.Name) and func.id == "print":
        return [(v, "standard output") for v in node.args]
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        dotted = aliases.get(func.value.id, func.value.id)
        if dotted == "logging" or dotted.startswith("logging."):
            return [(v, "a log call") for v in all_values]
    return []


class _InterFunction:
    """One flow-sensitive sweep over a function with summaries applied.

    Used twice: ``summarize()`` during the fixpoint (reporting disabled)
    and ``check()`` during the final sweep (summaries fixed, findings
    collected through the ``report`` callback).
    """

    def __init__(
        self,
        fn: FunctionInfo,
        index: ProgramIndex,
        graph: CallGraph,
        summaries: dict[str, Summary],
        secret_attrs: frozenset[str],
        attr_origin: dict[str, str] | None = None,
        report=None,
    ) -> None:
        self.fn = fn
        self.index = index
        self.graph = graph
        self.summaries = summaries
        self.secret_attrs = secret_attrs
        self.attr_origin = attr_origin or {}
        self.report = report
        self.aliases = index.aliases.get(fn.module, {})
        self.summary = Summary()
        self.env: dict[str, TaintVal] = {}
        self.consts: dict[str, bytes] = {}
        self._reported: set[tuple[str, int, int]] = set()
        for i, param in enumerate(fn.params):
            level = SECRET if param in SECRET_NAMES else CLEAN
            self.env[param] = TaintVal(level=level, params=frozenset({i}))

    # -- entry points --------------------------------------------------------
    def summarize(self) -> Summary:
        self._sweep(self.fn.node.body)
        return self.summary

    def check(self) -> None:
        self._sweep(self.fn.node.body)

    # -- taint of expressions ------------------------------------------------
    def taint_of(self, node: ast.expr) -> TaintVal:
        if isinstance(node, ast.Name):
            val = self.env.get(node.id, ZERO)
            if node.id in SECRET_NAMES:
                val = val.join(TaintVal(level=SECRET, params=val.params))
            return val
        if isinstance(node, ast.Attribute):
            if node.attr in SECRET_NAMES:
                return TaintVal(level=SECRET)
            if node.attr in self.secret_attrs:
                return TaintVal(level=SECRET, attrs=frozenset({node.attr}))
            base = self.taint_of(node.value)
            if base.level == CLEAN:
                # Reading an attribute off a merely param-dependent object
                # (typically ``self``) yields no key bytes; only name- or
                # level-tainted bases propagate through attribute access.
                return ZERO
            return base
        if isinstance(node, (ast.Subscript, ast.Starred)):
            return self.taint_of(node.value)
        if isinstance(node, ast.BinOp):
            return self.taint_of(node.left).join(self.taint_of(node.right))
        if isinstance(node, ast.BoolOp):
            out = ZERO
            for value in node.values:
                out = out.join(self.taint_of(value))
            return out
        if isinstance(node, ast.IfExp):
            return self.taint_of(node.body).join(self.taint_of(node.orelse))
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = ZERO
            for elt in node.elts:
                out = out.join(self.taint_of(elt))
            return out
        if isinstance(node, ast.JoinedStr):
            out = ZERO
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out = out.join(self.taint_of(value.value))
            return out
        if isinstance(node, ast.FormattedValue):
            return self.taint_of(node.value)
        if isinstance(node, ast.Call):
            return self._call_taint(node)
        if isinstance(node, ast.UnaryOp):
            return self.taint_of(node.operand)
        if isinstance(node, ast.NamedExpr):
            return self.taint_of(node.value)
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self.summary.ret = self.summary.ret.join(self.taint_of(node.value))
            return ZERO
        if isinstance(node, (ast.YieldFrom, ast.Await)):
            return self.taint_of(node.value)
        return ZERO

    def _arg_taint(self, node: ast.Call) -> TaintVal:
        out = ZERO
        for value in list(node.args) + [kw.value for kw in node.keywords]:
            out = out.join(self.taint_of(value))
        return out

    def _call_taint(self, node: ast.Call) -> TaintVal:
        name = _call_name(node.func)
        if name == "tls_prf":
            return TaintVal(level=tls_prf_taint(node, self.consts))
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in _DECLASSIFY_ATTRS:
                return ZERO
            if node.func.attr in _SECRET_PRODUCER_ATTRS:
                return TaintVal(level=SECRET)
            if node.func.attr in _MAC_PRODUCER_ATTRS:
                return TaintVal(level=MAC)
        if name in _DECLASSIFY_CALLS:
            return ZERO
        if name in _SECRET_PRODUCER_CALLS:
            return TaintVal(level=SECRET)
        if name in _MAC_PRODUCER_CALLS:
            return TaintVal(level=MAC)
        targets = self.graph.call_targets.get(id(node), ())
        known = [t for t in targets if t in self.summaries]
        result = ZERO
        for target in known:
            result = result.join(self._apply_summary(node, target))
        if not known:
            # Unknown callable (builtin, stdlib, unresolved): conservative
            # argument propagation, exactly like the intra pass.
            if isinstance(node.func, ast.Attribute):
                return self.taint_of(node.func.value).join(self._arg_taint(node))
            return self._arg_taint(node)
        return result

    def _effective_args(
        self, node: ast.Call, callee: FunctionInfo
    ) -> list[tuple[int, ast.expr]]:
        """Call arguments paired with the callee's parameter indices."""
        pairs: list[tuple[int, ast.expr]] = []
        offset = 0
        if callee.is_method and isinstance(node.func, ast.Attribute):
            receiver = node.func.value
            unbound = (  # ClassName.method(instance, ...): args carry self
                isinstance(receiver, ast.Name)
                and receiver.id in self.index.class_by_name
            )
            if not unbound:
                offset = 1
                if not isinstance(receiver, ast.Call):
                    pairs.append((0, receiver))
        for i, arg in enumerate(node.args):
            if not isinstance(arg, ast.Starred):
                pairs.append((i + offset, arg))
        for kw in node.keywords:
            if kw.arg is not None and kw.arg in callee.params:
                pairs.append((callee.params.index(kw.arg), kw.value))
        return pairs

    def _apply_summary(self, node: ast.Call, target: str) -> TaintVal:
        summary = self.summaries[target]
        callee = self.index.functions[target]
        ret = summary.ret
        result = ZERO
        if ret.level > CLEAN or ret.attrs:
            result = TaintVal(
                level=ret.level, via_call=True, attrs=ret.attrs
            )
        for idx, arg in self._effective_args(node, callee):
            arg_val = self.taint_of(arg)
            if idx in ret.params and not arg_val.is_bottom:
                result = result.join(replace(arg_val, via_call=True))
            sink = summary.param_sinks.get(idx)
            if sink is not None:
                if arg_val.level == SECRET:
                    self._flag(
                        arg,
                        arg_val,
                        f"{sink} inside {_short(target)}()",
                        across_call=True,
                    )
                for param in arg_val.params:
                    self.summary.param_sinks.setdefault(param, sink)
        return result

    # -- reporting -----------------------------------------------------------
    def _flag(
        self, node: ast.expr, val: TaintVal, what: str, across_call: bool = False
    ) -> None:
        """Report a secret reaching ``what``, choosing SEC003 vs SEC004."""
        if self.report is None or val.level != SECRET:
            return
        key_base = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
        if val.attrs:
            attr = sorted(val.attrs)[0]
            origin = self.attr_origin.get(attr, "elsewhere")
            rule, message = "SEC004", (
                f"value read from secret-bearing attribute '{attr}' "
                f"(assigned key material at {origin}) flows into {what}; "
                "secrets must never reach an observable sink"
            )
        elif val.via_call or across_call:
            rule, message = "SEC003", (
                f"secret-derived value crosses a call boundary into {what}; "
                "secrets must never reach an observable sink — derive a "
                "MAC/PRF output or encrypt first"
            )
        else:
            return  # purely local flow: the intra pass's (SEC001) territory
        key = (rule, *key_base)
        if key not in self._reported:
            self._reported.add(key)
            self.report(rule, self.fn.path, node, message)

    def _check_sink_call(self, node: ast.Call) -> None:
        for value, what in observable_sinks(node, self.aliases):
            val = self.taint_of(value)
            self._flag(value, val, what)
            for param in val.params:
                self.summary.param_sinks.setdefault(param, what)

    def _check_raise(self, node: ast.Raise) -> None:
        for target in (node.exc, node.cause):
            if target is None:
                continue
            for sub in ast.walk(target):
                if isinstance(sub, ast.expr):
                    val = self.taint_of(sub)
                    self._flag(sub, val, "an exception message")
                    for param in val.params:
                        self.summary.param_sinks.setdefault(
                            param, "an exception message"
                        )

    # -- statement walk ------------------------------------------------------
    def _assign_name(self, target: ast.expr, val: TaintVal) -> None:
        if isinstance(target, ast.Name):
            if val.is_bottom:
                self.env.pop(target.id, None)
            else:
                self.env[target.id] = val
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_name(elt, val)
        elif isinstance(target, ast.Starred):
            self._assign_name(target.value, val)
        elif isinstance(target, ast.Attribute):
            if val.level > CLEAN:
                prev = self.summary.attr_writes.get(target.attr, CLEAN)
                self.summary.attr_writes[target.attr] = max(prev, val.level)
                self.summary.attr_sites.setdefault(
                    target.attr,
                    f"{self.fn.path}:{getattr(target, 'lineno', 0)}",
                )

    def _check_exprs(self, stmt: ast.stmt) -> None:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                self._check_sink_call(node)
                self._call_taint(node)  # summary application side effects
            elif isinstance(node, ast.Yield) and node.value is not None:
                self.summary.ret = self.summary.ret.join(self.taint_of(node.value))
        if isinstance(stmt, ast.Raise):
            self._check_raise(stmt)
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            self.summary.ret = self.summary.ret.join(self.taint_of(stmt.value))

    def _sweep(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested scopes are separate graph nodes
            if isinstance(stmt, ast.If):
                before = dict(self.env)
                self._sweep(stmt.body)
                after_body = self.env
                self.env = dict(before)
                self._sweep(stmt.orelse)
                for var, val in after_body.items():
                    self.env[var] = self.env.get(var, ZERO).join(val)
                continue
            if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                if not isinstance(stmt, ast.While):
                    self._assign_name(stmt.target, self.taint_of(stmt.iter))
                # Sweep twice so taint assigned late in the body reaches
                # sinks earlier in it on the second iteration.
                self._sweep(stmt.body)
                self._sweep(stmt.body)
                self._sweep(stmt.orelse)
                continue
            if isinstance(stmt, ast.Try):
                self._sweep(stmt.body)
                for handler in stmt.handlers:
                    self._sweep(handler.body)
                self._sweep(stmt.orelse)
                self._sweep(stmt.finalbody)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._check_exprs(stmt)
                self._sweep(stmt.body)
                continue
            self._check_exprs(stmt)
            if isinstance(stmt, ast.Assign):
                val = self.taint_of(stmt.value)
                for target in stmt.targets:
                    self._assign_name(target, val)
                self._record_const(stmt.targets, stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self._assign_name(stmt.target, self.taint_of(stmt.value))
                self._record_const([stmt.target], stmt.value)
            elif isinstance(stmt, ast.AugAssign):
                val = self.taint_of(stmt.target).join(self.taint_of(stmt.value))
                self._assign_name(stmt.target, val)

    def _record_const(self, targets: list[ast.expr], value: ast.expr) -> None:
        if len(targets) != 1 or not isinstance(targets[0], ast.Name):
            return
        labels = label_candidates(value, self.consts)
        if labels:
            finished = [b"finished" in lb for lb in labels]
            if all(finished):
                self.consts[targets[0].id] = b"finished"
            elif not any(finished):
                self.consts[targets[0].id] = labels[0]


class SecretFlowAnalysis:
    """Fixpoint driver: summaries, attribute discovery, reporting sweep."""

    #: bound on attribute-discovery rounds (attr-of-attr chains are rare)
    MAX_ATTR_ROUNDS = 3
    #: bound on iterations within one SCC (the lattice is tiny)
    MAX_SCC_ITERATIONS = 10

    def __init__(self, index: ProgramIndex, graph: CallGraph) -> None:
        self.index = index
        self.graph = graph

    def analyze(self) -> list[tuple[str, str, ast.AST, str]]:
        """(rule, path, node, message) tuples for SEC003/SEC004."""
        secret_attrs: frozenset[str] = frozenset()
        attr_origin: dict[str, str] = {}
        summaries: dict[str, Summary] = {}
        for _ in range(self.MAX_ATTR_ROUNDS):
            summaries = self.compute_summaries(secret_attrs)
            discovered = set(secret_attrs)
            for qualname in sorted(summaries):
                summary = summaries[qualname]
                for attr, level in sorted(summary.attr_writes.items()):
                    if level == SECRET and attr not in SECRET_NAMES:
                        discovered.add(attr)
                        attr_origin.setdefault(attr, summary.attr_sites[attr])
            if frozenset(discovered) == secret_attrs:
                break
            secret_attrs = frozenset(discovered)

        findings: list[tuple[str, str, ast.AST, str]] = []

        def collect(rule: str, path: str, node: ast.AST, message: str) -> None:
            findings.append((rule, path, node, message))

        for qualname in sorted(self.index.functions):
            fn = self.index.functions[qualname]
            _InterFunction(
                fn,
                self.index,
                self.graph,
                summaries,
                secret_attrs,
                attr_origin,
                report=collect,
            ).check()
        return findings

    def compute_summaries(
        self, secret_attrs: frozenset[str]
    ) -> dict[str, Summary]:
        summaries: dict[str, Summary] = {}
        for scc in self.graph.sccs():
            members = [q for q in scc if q in self.index.functions]
            for _ in range(self.MAX_SCC_ITERATIONS):
                changed = False
                for qualname in members:
                    fn = self.index.functions[qualname]
                    new = _InterFunction(
                        fn, self.index, self.graph, summaries, secret_attrs
                    ).summarize()
                    if new != summaries.get(qualname):
                        summaries[qualname] = new
                        changed = True
                if not changed:
                    break
        return summaries


def propagate_raises(
    graph: CallGraph,
    local: dict[str, frozenset[str]],
    caught: dict[tuple[str, str], frozenset[str]],
) -> dict[str, frozenset[str]]:
    """Escape-set fixpoint: which exception kinds can escape each function.

    ``local`` holds each function's own unguarded risky raises; ``caught``
    maps (caller, callee) to the exception kinds caught around *every*
    call site of that callee inside that caller (intersection — one
    unguarded site means the exception escapes).  Used by VAL003.
    """
    escapes = {q: frozenset(local.get(q, ())) for q in graph.edges}
    for scc in graph.sccs():
        for _ in range(SecretFlowAnalysis.MAX_SCC_ITERATIONS):
            changed = False
            for qualname in scc:
                current = escapes[qualname]
                for callee in graph.callees(qualname):
                    if callee not in escapes:
                        continue
                    inherited = escapes[callee] - caught.get(
                        (qualname, callee), frozenset()
                    )
                    current = current | inherited
                if current != escapes[qualname]:
                    escapes[qualname] = current
                    changed = True
            if not changed:
                break
    return escapes


def secretflow_findings(pctx: ProgramContext) -> list[tuple[str, str, ast.AST, str]]:
    """Run (and memoise) the interprocedural secret-flow analysis."""
    if "secretflow" not in pctx.cache:
        index, graph = pctx.program()
        pctx.cache["secretflow"] = SecretFlowAnalysis(index, graph).analyze()
    return pctx.cache["secretflow"]


def _in_secret_scope(path: str) -> bool:
    """Product modules minus the crypto primitives (they *are* the
    implementation, with no observable sinks) and this analysis package."""
    parts = tuple(p for p in path.replace("\\", "/").split("/") if p)
    return (
        "repro" in parts
        and "tests" not in parts
        and "crypto" not in parts
        and "analysis" not in parts
    )


class _SecretFlowChecker(ProgramChecker):
    def run(self) -> None:
        for rule, path, node, message in secretflow_findings(self.pctx):
            if rule == self.rule and _in_secret_scope(path):
                self.pctx.add(path, rule, node, message)


@register_program
class InterproceduralSecretEscapeChecker(_SecretFlowChecker):
    """key material crossing a call boundary into a log, metric, exception or packet field"""

    rule = "SEC003"
    description = (
        "secret crossing a call boundary (returned from a producer through "
        "helpers, or passed into a function that sinks it) reaches an "
        "observable sink the intra-procedural pass cannot see"
    )


@register_program
class SecretAttributeEscapeChecker(_SecretFlowChecker):
    """secret parked in an innocuously-named attribute, read back and leaked elsewhere"""

    rule = "SEC004"
    description = (
        "attribute assigned secret material (under a name the intra pass "
        "does not recognize) is read in another function and flows into an "
        "observable sink"
    )
