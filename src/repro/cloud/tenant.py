"""Tenants and placement policies.

Multi-tenancy is the paper's threat model: "the virtual machines of two
competing companies could be served by the same underlying host machine."
The public provider's default placement policy is tenant-oblivious packing,
so co-location arises naturally; tests assert it and the security examples
demonstrate HIP-protected flows despite a co-located adversary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.cloud.hypervisor import PhysicalHost
    from repro.cloud.vm import VirtualMachine


@dataclass
class Tenant:
    """One cloud subscriber."""

    name: str
    vms: list = field(default_factory=list)

    def __hash__(self) -> int:
        return hash(self.name)


class PlacementPolicy:
    """Chooses a host for a new VM."""

    def place(self, vm: "VirtualMachine", hosts: list["PhysicalHost"]) -> "PhysicalHost":
        raise NotImplementedError


class PackPlacement(PlacementPolicy):
    """Fill hosts in order — maximizes co-location (public-cloud default)."""

    def place(self, vm, hosts):
        for host in hosts:
            if host.fits(vm):
                return host
        from repro.cloud.hypervisor import CapacityError

        raise CapacityError(f"no host can fit {vm.name}")


class SpreadPlacement(PlacementPolicy):
    """Least-loaded host first — what a tenant-isolating operator would do."""

    def place(self, vm, hosts):
        candidates = [h for h in hosts if h.fits(vm)]
        if not candidates:
            from repro.cloud.hypervisor import CapacityError

            raise CapacityError(f"no host can fit {vm.name}")
        return min(candidates, key=lambda h: (h.memory_used_mb, h.name))


class TenantAffinityPlacement(PlacementPolicy):
    """Prefer hosts already running the tenant's VMs, else least-loaded."""

    def place(self, vm, hosts):
        own = [h for h in hosts if h.fits(vm) and vm.tenant.name in h.tenants()]
        if own:
            return min(own, key=lambda h: (h.memory_used_mb, h.name))
        return SpreadPlacement().place(vm, hosts)
