"""IaaS cloud substrate: VMs, hypervisors, datacenters, providers, migration.

Models the two environments of the paper's evaluation — an EC2-like public
cloud (micro web instances, one large database instance, no native IPv6,
multi-tenant placement) and an OpenNebula-like private cloud — plus VM
migration over HIP-secured channels with mobility-based connection survival.
"""

from repro.cloud.datacenter import Datacenter, Internet
from repro.cloud.hypervisor import PhysicalHost
from repro.cloud.iaas import PrivateCloud, PublicCloud
from repro.cloud.migration import migrate_vm
from repro.cloud.tenant import Tenant
from repro.cloud.vm import INSTANCE_TYPES, InstanceType, VirtualMachine

__all__ = [
    "Datacenter",
    "INSTANCE_TYPES",
    "InstanceType",
    "Internet",
    "PhysicalHost",
    "PrivateCloud",
    "PublicCloud",
    "Tenant",
    "VirtualMachine",
    "migrate_vm",
]
