"""Physical hosts with hypervisors and virtual switches.

A :class:`PhysicalHost` is a forwarding node (its vswitch) that owns a /24
guest subnet.  Attaching a VM creates a virtio-grade link between the guest
and the vswitch, assigns the guest an address from the host subnet and
installs routes both ways.  The host tracks which tenants it serves — the
multi-tenancy surface the paper worries about — and can carry a HIP-aware
middlebox firewall (deployment scenario II of §IV-A).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.addresses import IPAddress, Prefix, ipv4, prefix
from repro.net.node import Node
from repro.net.topology import wire

if TYPE_CHECKING:  # pragma: no cover
    from repro.cloud.vm import VirtualMachine
    from repro.sim.engine import Simulator

VIRTIO_DELAY_S = 30e-6  # guest <-> vswitch one-way latency


class CapacityError(Exception):
    """Host cannot fit the requested VM."""


class PhysicalHost(Node):
    """One server: hypervisor + vswitch + guest subnet."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        guest_subnet: Prefix,
        cpu_cores: int = 8,
        memory_mb: int = 32768,
    ) -> None:
        super().__init__(sim, name, cpu_cores=cpu_cores, forwarding=True)
        if guest_subnet.network.family != 4 or guest_subnet.length > 30:
            raise ValueError("guest subnet must be an IPv4 prefix with room for guests")
        self.guest_subnet = guest_subnet
        self.memory_mb = memory_mb
        self.memory_used_mb = 0
        self.vms: list["VirtualMachine"] = []
        self._attachments: dict[str, tuple] = {}  # vm name -> (addr, host_if, vm_if)
        self._next_guest = 10  # .10 upward inside the subnet

    # -- placement ------------------------------------------------------------
    @property
    def memory_free_mb(self) -> int:
        return self.memory_mb - self.memory_used_mb

    def fits(self, vm: "VirtualMachine") -> bool:
        return vm.instance_type.memory_mb <= self.memory_free_mb

    def tenants(self) -> set[str]:
        return {vm.tenant.name for vm in self.vms}

    # -- attachment -----------------------------------------------------------
    def alloc_guest_address(self) -> IPAddress:
        addr = IPAddress(4, self.guest_subnet.network.value + self._next_guest)
        self._next_guest += 1
        if not self.guest_subnet.contains(addr):
            raise CapacityError(f"guest subnet {self.guest_subnet} exhausted on {self.name}")
        return addr

    def attach_vm(self, vm: "VirtualMachine", address: IPAddress | None = None) -> IPAddress:
        """Wire the VM to the vswitch; returns the guest address."""
        if not self.fits(vm):
            raise CapacityError(
                f"{self.name} lacks memory for {vm.name} "
                f"({vm.instance_type.memory_mb} > {self.memory_free_mb} MB)"
            )
        if address is None:
            address = self.alloc_guest_address()
        vm_iface, host_iface, _link = wire(
            self.sim, vm, self,
            addr_a=address,
            bandwidth_bps=vm.instance_type.nic_bps,
            delay_s=VIRTIO_DELAY_S,
            name=f"virtio-{vm.name}",
        )
        gateway = IPAddress(4, self.guest_subnet.network.value + 1)
        if not self.has_address(gateway):
            host_iface.add_address(gateway)
        # Guest default route -> vswitch; host /32 route -> guest.
        vm.routes.add(prefix("0.0.0.0/0"), vm_iface)
        vm.routes.add(prefix("::/0"), vm_iface)
        self.routes.add(Prefix(address, 32), host_iface)
        self.memory_used_mb += vm.instance_type.memory_mb
        self.vms.append(vm)
        self._attachments[vm.name] = (address, host_iface, vm_iface)
        vm.host = self
        vm.state = "running"
        return address

    def detach_vm(self, vm: "VirtualMachine") -> None:
        """Release the VM: routes and addresses are withdrawn so a re-attach
        elsewhere (migration) leaves no stale forwarding state."""
        if vm not in self.vms:
            return
        self.vms.remove(vm)
        self.memory_used_mb -= vm.instance_type.memory_mb
        vm.host = None
        attachment = self._attachments.pop(vm.name, None)
        if attachment is None:
            return
        address, host_iface, vm_iface = attachment
        self.routes.remove(Prefix(address, 32), host_iface)
        vm.routes.remove(prefix("0.0.0.0/0"), vm_iface)
        vm.routes.remove(prefix("::/0"), vm_iface)
        if address in vm_iface.addresses:
            vm_iface.remove_address(address)
