"""IaaS providers: the EC2-like public cloud and the OpenNebula-like private one.

A provider owns a :class:`~repro.cloud.datacenter.Datacenter`, launches VMs
with a placement policy, and hands out guest addresses.  The public provider
matches the paper's environment: micro/large instance types, *no native
IPv6* (the paper had to use Teredo for v6 connectivity inside EC2), and
tenant-oblivious packing so different subscribers share hosts.  The private
provider models the OpenNebula 3.0 cross-check deployment: one organization,
spread placement, slightly different network parameters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cloud.datacenter import Datacenter, DatacenterParams
from repro.cloud.tenant import PackPlacement, PlacementPolicy, SpreadPlacement, Tenant
from repro.cloud.vm import INSTANCE_TYPES, InstanceType, VirtualMachine

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.addresses import IPAddress
    from repro.sim.engine import Simulator


class IaasProvider:
    """Base provider: datacenter + placement + instance lifecycle."""

    native_ipv6 = False

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        params: DatacenterParams | None = None,
        placement: PlacementPolicy | None = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.datacenter = Datacenter(sim, name, params=params)
        self.placement = placement or PackPlacement()
        self.instances: list[VirtualMachine] = []
        self._vm_counter = 0

    def launch(
        self,
        tenant: Tenant,
        instance_type: str | InstanceType = "t1.micro",
        name: str | None = None,
        host=None,
        address: "IPAddress | None" = None,
    ) -> VirtualMachine:
        """Provision and start a VM; returns it in ``running`` state.

        ``host``/``address`` pin the VM to an explicit physical host and
        guest address, bypassing the placement policy — used by externally
        computed plans (e.g. the shard-aware fleet placement pass, which
        must pre-assign concrete addresses before any VM exists so the plan
        stays picklable across forked shard workers).
        """
        if isinstance(instance_type, str):
            try:
                itype = INSTANCE_TYPES[instance_type]
            except KeyError:
                raise ValueError(f"unknown instance type {instance_type!r}") from None
        else:
            itype = instance_type
        self._vm_counter += 1
        vm_name = name or f"{self.name}-vm{self._vm_counter}"
        vm = VirtualMachine(self.sim, vm_name, itype, tenant)
        if host is None:
            host = self.placement.place(vm, self.datacenter.hosts)
        host.attach_vm(vm, address=address)
        tenant.vms.append(vm)
        self.instances.append(vm)
        return vm

    def terminate(self, vm: VirtualMachine) -> None:
        if vm.host is not None:
            vm.host.detach_vm(vm)
        vm.state = "terminated"
        if vm in self.instances:
            self.instances.remove(vm)

    def colocated_tenants(self) -> list[set[str]]:
        """Tenant sets per host — evidence of multi-tenant co-location."""
        return [host.tenants() for host in self.datacenter.hosts if host.vms]


class PublicCloud(IaasProvider):
    """EC2-like: multi-tenant, packing placement, IPv4-only (paper's EU zone)."""

    native_ipv6 = False

    def __init__(self, sim: "Simulator", name: str = "ec2-eu-west-1a",
                 params: DatacenterParams | None = None) -> None:
        super().__init__(sim, name, params=params, placement=PackPlacement())


class PrivateCloud(IaasProvider):
    """OpenNebula-like: one organization, spread placement, smaller plant."""

    native_ipv6 = False  # matching the paper's IPv4 measurements

    def __init__(self, sim: "Simulator", name: str = "opennebula",
                 params: DatacenterParams | None = None) -> None:
        if params is None:
            # Flatter, smaller plant on a distinct address base so hybrid
            # scenarios can route between the two clouds unambiguously.
            params = DatacenterParams(n_racks=1, hosts_per_rack=4, base_octet=172)
        super().__init__(sim, name, params=params, placement=SpreadPlacement())
