"""Datacenter network topology and the public Internet stub.

The datacenter is a classic two-tier tree (the 2012-era architecture the
paper's VL2 citations critique): a core router, top-of-rack switches, and
physical hosts.  Each host owns a /24 guest subnet (``10.<rack>.<host>.0``),
racks aggregate at ``10.<rack>.0.0/16``.  The core can uplink to an
:class:`Internet` node, through which consumers, the load balancer and the
private cloud reach the public cloud.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cloud.hypervisor import PhysicalHost
from repro.net.addresses import IPAddress, Prefix, ipv4, prefix
from repro.net.node import Node
from repro.net.topology import wire

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


@dataclass
class DatacenterParams:
    """Topology knobs (defaults are EC2-availability-zone-ish)."""

    n_racks: int = 2
    hosts_per_rack: int = 4
    host_uplink_bps: float = 1e9
    tor_uplink_bps: float = 10e9
    host_link_delay_s: float = 80e-6
    tor_link_delay_s: float = 120e-6
    base_octet: int = 10  # 10.0.0.0/8 base for guest addressing


class Datacenter:
    """One availability zone of physical infrastructure."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        params: DatacenterParams | None = None,
        availability_zone: str = "zone-a",
    ) -> None:
        self.sim = sim
        self.name = name
        self.availability_zone = availability_zone
        self.params = params or DatacenterParams()
        p = self.params
        self.core = Node(sim, f"{name}-core", forwarding=True)
        self.tors: list[Node] = []
        self.hosts: list[PhysicalHost] = []
        base = p.base_octet
        for rack in range(p.n_racks):
            tor = Node(sim, f"{name}-tor{rack}", forwarding=True)
            self.tors.append(tor)
            core_if, tor_up, _ = wire(
                sim, self.core, tor,
                bandwidth_bps=p.tor_uplink_bps, delay_s=p.tor_link_delay_s,
            )
            rack_prefix = prefix(f"{base}.{rack}.0.0/16")
            self.core.routes.add(rack_prefix, core_if)
            tor.routes.add(prefix("0.0.0.0/0"), tor_up)
            tor.routes.add(prefix("::/0"), tor_up)
            for h in range(p.hosts_per_rack):
                subnet = prefix(f"{base}.{rack}.{h + 1}.0/24")
                host = PhysicalHost(sim, f"{name}-r{rack}h{h}", guest_subnet=subnet)
                self.hosts.append(host)
                tor_if, host_up, _ = wire(
                    sim, tor, host,
                    bandwidth_bps=p.host_uplink_bps, delay_s=p.host_link_delay_s,
                )
                # The host's management address is the guest-subnet gateway
                # (.1): hypervisor-to-hypervisor traffic (migration, HIP
                # between hypervisors) is routable immediately.
                host_up.add_address(IPAddress(4, subnet.network.value + 1))
                tor.routes.add(subnet, tor_if)
                host.routes.add(prefix("0.0.0.0/0"), host_up)
                host.routes.add(prefix("::/0"), host_up)

    def attach_gateway(self, gateway: Node, gateway_addr: IPAddress,
                       core_addr: IPAddress, bandwidth_bps: float = 10e9,
                       delay_s: float = 1e-3) -> None:
        """Uplink the core router to an external gateway (Internet)."""
        core_if, gw_if, _ = wire(
            self.sim, self.core, gateway,
            addr_a=core_addr, addr_b=gateway_addr,
            bandwidth_bps=bandwidth_bps, delay_s=delay_s,
        )
        self.core.routes.add(prefix("0.0.0.0/0"), core_if)
        self.core.routes.add(prefix("::/0"), core_if)
        base = self.params.base_octet
        gateway.routes.add(prefix(f"{base}.0.0.0/8"), gw_if)


class Internet:
    """The public Internet stub: one router with per-attachment delays."""

    def __init__(self, sim: "Simulator", name: str = "internet") -> None:
        self.sim = sim
        self.router = Node(sim, name, forwarding=True)
        self._next_peering = 1

    def attach(
        self,
        node: Node,
        address: IPAddress,
        delay_s: float = 10e-3,
        bandwidth_bps: float = 1e9,
        route_prefix: Prefix | None = None,
    ):
        """Connect a node (or a datacenter gateway) with a WAN-grade link."""
        inet_if, node_if, _ = wire(
            self.sim, self.router, node,
            addr_b=address, bandwidth_bps=bandwidth_bps, delay_s=delay_s,
        )
        self.router.routes.add(route_prefix or Prefix(address, 32), inet_if)
        node.routes.add(prefix("0.0.0.0/0"), node_if)
        node.routes.add(prefix("::/0"), node_if)
        return node_if
