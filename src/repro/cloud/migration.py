"""VM migration with HIP-protected state transfer and mobility survival.

§IV-C: "moving a VM image over the network incurs a security risk which can
be mitigated with HIP", and HIP's locator agility lets the migrated VM keep
its associations alive by sending UPDATE packets (RFC 5206) — no layer-2
adjacency required between source and destination host.

``migrate_vm`` performs: pre-copy of the memory image between the two
*hypervisors* over TCP (optionally through a HIP association between the
hypervisor HITs — deployment scenario II), a brief stop-and-copy pause,
re-attachment of the VM on the destination host with a new address, and a
``move_to`` on the VM's own HIP daemon so every peer learns the new locator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.net.packet import VirtualPayload
from repro.net.tcp import TcpStack

if TYPE_CHECKING:  # pragma: no cover
    from repro.cloud.hypervisor import PhysicalHost
    from repro.cloud.vm import VirtualMachine
    from repro.hip.daemon import HipDaemon

MIGRATION_PORT = 49152
DIRTY_FRACTION = 0.12  # stop-and-copy residue after one pre-copy round
# Hypervisor-to-hypervisor transfers ride jumbo frames / GSO on the
# datacenter fabric: large segments keep the event count sane for
# multi-hundred-MB images without changing aggregate byte accounting.
MIGRATION_MSS = 61440
MIGRATION_WINDOW = 4 * MIGRATION_MSS


@dataclass
class MigrationReport:
    vm_name: str
    bytes_transferred: int
    precopy_seconds: float
    downtime_seconds: float
    new_address: object
    secured: bool


def migrate_vm(
    vm: "VirtualMachine",
    dst_host: "PhysicalHost",
    src_tcp: TcpStack,
    dst_tcp: TcpStack,
    vm_daemon: "HipDaemon | None" = None,
    dst_addr_override=None,
    secured: bool = True,
) -> Generator:
    """Process-generator: migrate ``vm`` to ``dst_host``; returns a report.

    ``src_tcp`` / ``dst_tcp`` are the hypervisors' TCP stacks.  When
    ``secured`` and both hypervisors run HIP daemons, the state transfer is
    addressed to the destination hypervisor's HIT, so it flows through ESP.
    ``vm_daemon`` is the guest's HIP daemon (if it runs HIP); after the
    switch-over it announces the new locator to its peers.
    """
    sim = vm.sim
    src_host = vm.host
    if src_host is None:
        raise RuntimeError(f"{vm.name} is not attached to a host")
    if src_host is dst_host:
        raise ValueError("source and destination host are the same")
    image_bytes = vm.instance_type.memory_mb * 1024 * 1024

    # Destination address for the transfer: the dst hypervisor's HIT when
    # secured (HIP scenario II), else its routable address.
    if secured:
        from repro.hip.daemon import HipDaemon  # local import to avoid cycles

        dst_daemon = _find_daemon(dst_tcp.node)
        if dst_daemon is None:
            raise RuntimeError("secured migration needs HIP daemons on both hypervisors")
        transfer_dst = dst_daemon.hit
    else:
        transfer_dst = dst_tcp.node.addresses(4)[0]

    vm.state = "migrating"
    listener = dst_tcp.listen(
        MIGRATION_PORT, recv_window=MIGRATION_WINDOW, mss=MIGRATION_MSS,
    )

    received = {}

    def receiver() -> Generator:
        conn = yield listener.accept()
        total = 0
        while True:
            chunk = yield conn.recv()
            if isinstance(chunk, (bytes, bytearray)) and len(chunk) == 0:
                break
            total += len(chunk)
        received["bytes"] = total

    recv_proc = sim.process(receiver(), name=f"migrate-recv-{vm.name}")

    t0 = sim.now
    conn = yield sim.process(src_tcp.open_connection(
        transfer_dst, MIGRATION_PORT,
        recv_window=MIGRATION_WINDOW, mss=MIGRATION_MSS,
    ))
    # Pre-copy round: full image while the guest keeps running.
    conn.write(VirtualPayload(image_bytes, tag=f"migrate-{vm.name}"))
    precopy_done = sim.event()

    def watch_precopy() -> Generator:
        while conn.snd_una < conn.snd_buf_end:
            yield sim.timeout(0.02)
        precopy_done.succeed()

    sim.process(watch_precopy(), name="migrate-precopy-watch")
    yield precopy_done
    precopy_seconds = sim.now - t0

    # Stop-and-copy: guest paused while dirty pages drain.
    pause_start = sim.now
    dirty = int(image_bytes * DIRTY_FRACTION)
    conn.write(VirtualPayload(dirty, tag=f"migrate-dirty-{vm.name}"))
    conn.close()
    yield recv_proc
    listener.close()

    # Re-attach on the destination host with a new address.
    src_host.detach_vm(vm)
    new_addr = dst_host.attach_vm(vm, address=dst_addr_override)
    downtime = sim.now - pause_start
    vm.state = "running"

    # HIP mobility: tell every peer about the new locator.
    if vm_daemon is not None:
        vm_daemon.move_to(new_addr)

    return MigrationReport(
        vm_name=vm.name,
        bytes_transferred=received.get("bytes", 0),
        precopy_seconds=precopy_seconds,
        downtime_seconds=downtime,
        new_address=new_addr,
        secured=secured,
    )


def _find_daemon(node) -> "HipDaemon | None":
    """Locate a HipDaemon bound to the node (via its output shims)."""
    for shim in getattr(node, "_output_shims", ()):
        owner = getattr(shim, "__self__", None)
        if owner is not None and type(owner).__name__ == "HipDaemon":
            return owner
    return None
