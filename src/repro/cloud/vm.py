"""Virtual machines and instance types.

Instance types mirror the paper's EC2 choices:

* **t1.micro** — "613 MB of memory and up to 2 EC2 compute units" of
  *burstable* CPU.  Sustained load on a micro gets a fraction of a core, so
  its ``cpu_scale`` (how much longer work takes than on the reference core)
  is well above 1.
* **m1.large** — "7.5 GB of memory and 4 EC2 compute units" over two cores.

A :class:`VirtualMachine` is a network :class:`~repro.net.node.Node` whose
CPU model comes from its instance type; the hypervisor wires its virtio NIC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.net.node import Node

if TYPE_CHECKING:  # pragma: no cover
    from repro.cloud.hypervisor import PhysicalHost
    from repro.cloud.tenant import Tenant
    from repro.sim.engine import Simulator


@dataclass(frozen=True)
class InstanceType:
    """Resource envelope of a VM flavour."""

    name: str
    cpu_cores: int
    cpu_scale: float  # work duration multiplier vs the reference core
    memory_mb: int
    nic_bps: float  # virtio NIC rate


INSTANCE_TYPES: dict[str, InstanceType] = {
    "t1.micro": InstanceType("t1.micro", cpu_cores=1, cpu_scale=2.5,
                             memory_mb=613, nic_bps=150e6),
    "m1.small": InstanceType("m1.small", cpu_cores=1, cpu_scale=1.6,
                             memory_mb=1740, nic_bps=400e6),
    "m1.large": InstanceType("m1.large", cpu_cores=2, cpu_scale=0.9,
                             memory_mb=7680, nic_bps=700e6),
    "c1.xlarge": InstanceType("c1.xlarge", cpu_cores=8, cpu_scale=0.8,
                              memory_mb=7168, nic_bps=1000e6),
}


class VirtualMachine(Node):
    """A guest: a node with the instance type's CPU model."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        instance_type: InstanceType,
        tenant: "Tenant",
    ) -> None:
        super().__init__(
            sim, name, cpu_cores=instance_type.cpu_cores,
            cpu_scale=instance_type.cpu_scale,
        )
        self.instance_type = instance_type
        self.tenant = tenant
        self.host: "PhysicalHost | None" = None
        self.state = "pending"  # pending -> running -> terminated / migrating

    @property
    def primary_address(self):
        for iface in self.interfaces:
            if iface.name.startswith("eth") and iface.addresses:
                return iface.addresses[0]
        raise RuntimeError(f"VM {self.name} has no primary address yet")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<VM {self.name} ({self.instance_type.name}) {self.state}>"
