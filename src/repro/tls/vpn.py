"""OpenVPN-style SSL tunnels — the paper's "SSL" comparison point.

§V-A: "One of the popular alternatives, OpenVPN uses OpenSSL and hence SSL
was used as an alternative to compare the performance of HIP."  OpenVPN is
a *tunnel*: a TLS handshake keys the tunnel once per peer pair, then every
IP packet is protected by the TLS record transform and carried over UDP.
Structurally this parallels HIP exactly — asymmetric crypto at setup,
symmetric per-packet cost afterwards — which is precisely the comparison
the paper draws.

:class:`SslVpnDaemon` mirrors :class:`~repro.hip.daemon.HipDaemon`: each
node gets a tunnel address from the VPN subnet (``10.8.0.0/24``, OpenVPN's
default); an output shim intercepts packets to tunnel addresses, runs the
handshake on first use, then charges the TLS record cost per packet and
ships ``IP | VPN-record | inner`` to the peer's locator.  The handshake
really performs the RSA operations (encrypt/decrypt of a premaster against
the peer's key) so its cost structure is honest; the data plane is
cost-accounted like HIP's virtual path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import StrEnum
from typing import TYPE_CHECKING, Generator

from repro.crypto.costmodel import CryptoMeter
from repro.crypto.hmac_kdf import ct_equal, tls_prf
from repro.crypto.rsa import RsaError, RsaKeyPair
from repro.net.addresses import IPAddress, Prefix, prefix
from repro.net.packet import Header, IPHeader, Packet
from repro.sim.resources import Queue

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node

VPN_SUBNET = prefix("10.8.0.0/24")
HANDSHAKE_RETRIES = 4
RETRY_BASE_S = 0.5


class TunnelState(StrEnum):
    """Canonical SSL-VPN tunnel states.

    Single source of truth for the tunnel state machine; the CONF003
    analysis rule rejects bare string literals at comparison sites, and
    CONF001/CONF002 check the extracted transition graph against the
    declarative spec table in ``repro.analysis.statemachine``.
    """

    NEW = "NEW"
    HELLO_SENT = "HELLO-SENT"
    ESTABLISHED = "ESTABLISHED"
    FAILED = "FAILED"


@dataclass(frozen=True)
class VpnRecordHeader(Header):
    """Per-packet tunnel overhead: record header + IV + MAC + pad + UDP encap."""

    seq: int
    pad_len: int = 8

    @property
    def header_len(self) -> int:
        # 5 (record) + 16 (IV) + 20 (MAC) + pad + 8 (UDP) — OpenVPN rides UDP.
        return 5 + 16 + 20 + self.pad_len + 8


@dataclass
class Tunnel:
    peer_vpn: IPAddress
    locator: IPAddress
    state: TunnelState = TunnelState.NEW
    role: str = "client"
    master_secret: bytes = b""
    verify_data: bytes = b""
    seq_out: int = 0
    queued: list[Packet] = field(default_factory=list)
    established_evt: object = None

    @property
    def is_established(self) -> bool:
        return self.state == TunnelState.ESTABLISHED


class VpnError(Exception):
    """Tunnel establishment failure."""


class SslVpnDaemon:
    """Per-host OpenVPN-like engine."""

    def __init__(
        self,
        node: "Node",
        vpn_addr: IPAddress,
        keypair: RsaKeyPair,
        rng: random.Random,
        charge_costs: bool = True,
        queue_limit: int = 64,
    ) -> None:
        if not VPN_SUBNET.contains(vpn_addr):
            raise ValueError(f"{vpn_addr} is outside the VPN subnet {VPN_SUBNET}")
        self.node = node
        self.sim = node.sim
        self.vpn_addr = vpn_addr
        self.keypair = keypair
        self.rng = rng
        self.charge_costs = charge_costs
        self.queue_limit = queue_limit
        self.meter = CryptoMeter()

        iface = node.add_interface("tun0")
        iface.add_address(vpn_addr)
        node.routes.add(VPN_SUBNET, iface)
        node.add_output_shim(self._output_shim)
        node.register_protocol("sslvpn", self._on_packet)
        node.fluid_taxers.append(self._fluid_taxer)

        # peer vpn address -> (locator, peer public key)
        self.peers: dict[IPAddress, tuple[IPAddress, object]] = {}
        self.tunnels: dict[IPAddress, Tunnel] = {}
        self._tx = Queue(self.sim)
        self._rx = Queue(self.sim)
        self.sim.process(self._tx_worker(), name=f"vpn-tx-{node.name}")
        self.sim.process(self._rx_worker(), name=f"vpn-rx-{node.name}")
        self.packets_sent = 0
        self.packets_received = 0
        self.drops = 0

    # -- configuration -------------------------------------------------------
    def add_peer(self, peer_vpn: IPAddress, locator: IPAddress, public_key) -> None:
        self.peers[peer_vpn] = (locator, public_key)

    def connect(self, peer_vpn: IPAddress, timeout: float = 30.0) -> Generator:
        """Process-generator: ensure the tunnel to ``peer_vpn`` is up."""
        tunnel = self._ensure_tunnel(peer_vpn)
        if tunnel.is_established:
            return tunnel
        if tunnel.state == TunnelState.FAILED:
            tunnel = self._restart_tunnel(peer_vpn)
        if tunnel.state == TunnelState.NEW:
            self._start_handshake(tunnel)
        from repro.sim.events import AnyOf

        deadline = self.sim.timeout(timeout)
        winner, value = yield AnyOf(self.sim, [tunnel.established_evt, deadline])
        if winner is deadline:
            raise VpnError(f"tunnel to {peer_vpn} timed out")
        return value

    # -- data path --------------------------------------------------------------
    def _output_shim(self, node: "Node", packet: Packet) -> Packet | None:
        ip = packet.outer
        if not isinstance(ip, IPHeader):
            return packet
        if VPN_SUBNET.contains(ip.dst) and ip.dst != self.vpn_addr:
            self._tx.try_put(packet)
            return None
        return packet

    def _tx_worker(self) -> Generator:
        while True:
            packet = yield self._tx.get()
            ip = packet.outer
            assert isinstance(ip, IPHeader)
            tunnel = self._ensure_tunnel(ip.dst)
            if tunnel.state == TunnelState.FAILED:
                tunnel = self._restart_tunnel(ip.dst)
            if not tunnel.is_established:
                if len(tunnel.queued) < self.queue_limit:
                    tunnel.queued.append(packet)
                if tunnel.state == TunnelState.NEW:
                    self._start_handshake(tunnel)
                continue
            yield from self._protect_and_send(tunnel, packet)

    def _protect_and_send(self, tunnel: Tunnel, packet: Packet) -> Generator:
        cm = self.node.cost_model
        cost = cm.tls_record_cost(packet.size_bytes)
        self.meter.charge("vpn.record.out", cost)
        if self.charge_costs:
            yield from self.node.cpu_work(cost)
        tunnel.seq_out += 1
        pad = (-(packet.size_bytes + 21)) % 16 + 1
        wire = Packet(
            headers=(VpnRecordHeader(seq=tunnel.seq_out, pad_len=pad),),
            payload=packet,
        ).with_meta(vpn_src=self.vpn_addr)
        self.packets_sent += 1
        self.node.send_ip(tunnel.locator, "sslvpn", wire)

    def _on_packet(self, node: "Node", packet: Packet, iface) -> None:
        self._rx.try_put(packet)

    def _rx_worker(self) -> Generator:
        while True:
            packet = yield self._rx.get()
            kind = packet.meta.get("vpn_ctl")
            if kind is not None:
                yield from self._handle_control(packet)
                continue
            ip, rest = packet.popped()
            record, body = rest.popped()
            if not isinstance(record, VpnRecordHeader) or not isinstance(body.payload, Packet):
                self.drops += 1
                continue
            peer_vpn = packet.meta.get("vpn_src")
            tunnel = self.tunnels.get(peer_vpn)
            if tunnel is None or not tunnel.is_established:
                self.drops += 1
                continue
            inner = body.payload
            cm = self.node.cost_model
            cost = cm.tls_record_cost(inner.size_bytes)
            self.meter.charge("vpn.record.in", cost)
            if self.charge_costs:
                yield from self.node.cpu_work(cost)
            self.packets_received += 1
            delivered = self._rebuild_inner(inner, peer_vpn)
            if packet.meta.get("ce"):
                # RFC 6040 decapsulation: copy a CE mark from the outer VPN
                # record to the inner packet so the tunneled flow reacts.
                delivered = delivered.with_meta(ce=True)
            self.node._on_receive(delivered, None)

    def _fluid_taxer(
        self, peer_addr: IPAddress, n_bytes: int, n_segments: int, direction: str
    ) -> None:
        """Charge TLS record costs for TCP fluid fast-forwarded bytes.

        Mirrors the per-packet ``vpn.record.*`` accounting for segments a
        fluid flow never emits; busy-seconds are tallied without occupying
        the CPU slot since the fluid rate subsumes the elapsed time.
        """
        if n_segments <= 0:
            return
        if not VPN_SUBNET.contains(peer_addr) or peer_addr == self.vpn_addr:
            return  # not a tunneled flow
        cm = self.node.cost_model
        cost = cm.tls_record_cost(n_bytes // n_segments) * n_segments
        if direction == "out":
            self.meter.charge("vpn.record.out", cost)
            self.packets_sent += n_segments
        else:
            self.meter.charge("vpn.record.in", cost)
            self.packets_received += n_segments
        if self.charge_costs:
            self.node.cpu_busy_seconds += cost

    def _rebuild_inner(self, inner: Packet, peer_vpn: IPAddress) -> Packet:
        if inner.headers and isinstance(inner.outer, IPHeader):
            old_ip, transport = inner.popped()
            proto = old_ip.proto
        else:
            transport = inner
            proto = "raw"
        return transport.pushed(
            IPHeader(src=peer_vpn, dst=self.vpn_addr, proto=proto)
        )

    # -- handshake -----------------------------------------------------------------
    def _ensure_tunnel(self, peer_vpn: IPAddress) -> Tunnel:
        tunnel = self.tunnels.get(peer_vpn)
        if tunnel is None:
            info = self.peers.get(peer_vpn)
            locator = info[0] if info else None
            tunnel = Tunnel(
                peer_vpn=peer_vpn, locator=locator,  # type: ignore[arg-type]
                established_evt=self.sim.event(),
            )
            self.tunnels[peer_vpn] = tunnel
        return tunnel

    def _restart_tunnel(self, peer_vpn: IPAddress) -> Tunnel:
        self.tunnels.pop(peer_vpn, None)
        return self._ensure_tunnel(peer_vpn)

    def _transition(
        self,
        tunnel: Tunnel,
        state: TunnelState,
        expect_from: tuple[TunnelState, ...] | None = None,
    ) -> None:
        """Move ``tunnel`` to ``state``.

        ``expect_from`` declares the legal source states for call sites whose
        guard lives in a caller; it is checked at runtime and read statically
        by the CONF001/CONF002 conformance rules.
        """
        if expect_from is not None and tunnel.state not in expect_from:
            raise VpnError(
                f"illegal tunnel transition {tunnel.state} -> {state} "
                f"(expected from {', '.join(expect_from)})"
            )
        tunnel.state = state
        if state in (TunnelState.ESTABLISHED, TunnelState.FAILED):
            # Keying change on this node's dataplane: any TCP flow in fluid
            # fast-forward must drop back to packets and re-qualify.
            self.node.dataplane_epoch += 1

    def _fail(self, tunnel: Tunnel, error: Exception) -> None:
        self._transition(
            tunnel,
            TunnelState.FAILED,
            expect_from=(
                TunnelState.NEW,
                TunnelState.HELLO_SENT,
                TunnelState.ESTABLISHED,
            ),
        )
        tunnel.queued.clear()
        evt = tunnel.established_evt
        if evt is not None and not evt.triggered:  # type: ignore[attr-defined]
            evt.fail(error)  # type: ignore[attr-defined]

    def _send_control(self, tunnel: Tunnel, kind: str, body: bytes) -> None:
        if tunnel.locator is None:
            self._fail(tunnel, VpnError(f"no locator for {tunnel.peer_vpn}"))
            return
        ctl = Packet(headers=(), payload=body).with_meta(
            vpn_ctl=kind, vpn_src=self.vpn_addr,
        )
        self.node.send_ip(tunnel.locator, "sslvpn", ctl)

    def _start_handshake(self, tunnel: Tunnel) -> None:
        info = self.peers.get(tunnel.peer_vpn)
        if info is None:
            self._fail(tunnel, VpnError(f"unknown VPN peer {tunnel.peer_vpn}"))
            return
        tunnel.locator = info[0]
        self._transition(tunnel, TunnelState.HELLO_SENT, expect_from=(TunnelState.NEW,))
        tunnel.role = "client"
        self.sim.process(self._client_handshake(tunnel), name=f"vpn-hs-{self.node.name}")

    def _client_handshake(self, tunnel: Tunnel) -> Generator:
        info = self.peers[tunnel.peer_vpn]
        peer_key = info[1]
        cm = self.node.cost_model
        # ClientHello -> (retransmitted until ServerHello arrives).
        client_random = self.rng.getrandbits(256).to_bytes(32, "big")
        self._send_control(tunnel, "hello", client_random)
        # Premaster, really RSA-encrypted against the peer's public key.
        premaster = self.rng.getrandbits(384).to_bytes(48, "big")
        yield from self._charge("vpn.asym.encrypt", cm.rsa_verify(peer_key.bits))
        encrypted = peer_key.encrypt(premaster, self.rng)
        yield from self._charge("vpn.asym.verify_cert", cm.rsa_verify(peer_key.bits))
        self._send_control(tunnel, "key", client_random + encrypted)
        tunnel.master_secret = tls_prf(premaster, b"vpn master", client_random, 48)
        # RFC 5246-style verify_data: a PRF output over the master secret, so
        # the Finished message proves key possession without revealing any
        # master-secret bytes on the wire.
        tunnel.verify_data = tls_prf(
            tunnel.master_secret, b"vpn finished", client_random, 12
        )
        # Wait for the server's finished (retry the key message on timeout).
        for attempt in range(HANDSHAKE_RETRIES):
            yield self.sim.timeout(RETRY_BASE_S * (2**attempt))
            if tunnel.is_established or tunnel.state == TunnelState.FAILED:
                return
            self._send_control(tunnel, "key", client_random + encrypted)
        if not tunnel.is_established:
            self._fail(tunnel, VpnError("handshake retransmissions exhausted"))

    def _handle_control(self, packet: Packet) -> Generator:
        kind = packet.meta["vpn_ctl"]
        peer_vpn = packet.meta["vpn_src"]
        cm = self.node.cost_model
        if kind == "key":
            body = packet.payload
            if not isinstance(body, (bytes, bytearray)):
                return
            client_random = bytes(body[:32])
            encrypted = bytes(body[32:])
            yield from self._charge("vpn.asym.decrypt", cm.rsa_sign(self.keypair.public.bits))
            try:
                premaster = self.keypair.decrypt(encrypted)
            except RsaError:
                return
            tunnel = self._ensure_tunnel(peer_vpn)
            if tunnel.locator is None and peer_vpn in self.peers:
                tunnel.locator = self.peers[peer_vpn][0]
            tunnel.role = "server"
            tunnel.master_secret = tls_prf(premaster, b"vpn master", client_random, 48)
            tunnel.verify_data = tls_prf(
                tunnel.master_secret, b"vpn finished", client_random, 12
            )
            # A retransmitted key message re-derives the same secrets, so
            # ESTABLISHED -> ESTABLISHED is a legal (idempotent) self-loop.
            self._transition(
                tunnel,
                TunnelState.ESTABLISHED,
                expect_from=(
                    TunnelState.NEW,
                    TunnelState.HELLO_SENT,
                    TunnelState.ESTABLISHED,
                ),
            )
            if not tunnel.established_evt.triggered:  # type: ignore[attr-defined]
                tunnel.established_evt.succeed(tunnel)  # type: ignore[attr-defined]
            self._send_control(tunnel, "finished", tunnel.verify_data)
            return
        if kind == "finished":
            tunnel = self.tunnels.get(peer_vpn)
            if tunnel is None or tunnel.state != TunnelState.HELLO_SENT:
                return
            body = packet.payload
            if not isinstance(body, (bytes, bytearray)) or not ct_equal(
                bytes(body), tunnel.verify_data
            ):
                return  # verify_data mismatch: ignore (attacker or corruption)
            self._transition(tunnel, TunnelState.ESTABLISHED)
            if not tunnel.established_evt.triggered:  # type: ignore[attr-defined]
                tunnel.established_evt.succeed(tunnel)  # type: ignore[attr-defined]
            queued, tunnel.queued = tunnel.queued, []
            for pkt in queued:
                yield from self._protect_and_send(tunnel, pkt)
            return
        # "hello" needs no state on the server (the key message carries all).

    def _charge(self, kind: str, cost: float) -> Generator:
        self.meter.charge(kind, cost)
        if self.charge_costs:
            yield from self.node.cpu_work(cost)
