"""TLS 1.2-style baseline ("SSL" in the paper's terminology).

The paper compares HIP against OpenSSL-based SSL connections (OpenVPN's
substrate).  This package implements the comparable subset: an RSA
key-transport handshake with session resumption, and an AES-CBC +
HMAC-SHA1 record layer — deliberately the *same* symmetric algorithms as
our ESP transform, because the paper's central performance claim is that
HIP and SSL cost the same once the key exchange is done.
"""

from repro.tls.connection import (
    TlsConnection,
    TlsError,
    TlsServerContext,
    tls_client_handshake,
    tls_server_handshake,
)

__all__ = [
    "TlsConnection",
    "TlsError",
    "TlsServerContext",
    "tls_client_handshake",
    "tls_server_handshake",
]
