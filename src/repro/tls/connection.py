"""TLS 1.2-style handshake and record layer over a TcpConnection.

Full handshake (RSA key transport)::

    C -> S  ClientHello(client_random [, session_id])
    S -> C  ServerHello(server_random, session_id), Certificate(RSA key),
            ServerHelloDone
    C -> S  ClientKeyExchange(RSA-encrypted premaster), Finished(verify_data)
    S -> C  Finished(verify_data)

The premaster really is RSA-encrypted/decrypted with :mod:`repro.crypto.rsa`;
master secret and record keys derive via the TLS 1.2 PRF; Finished carries
PRF(master, transcript-hash) and is checked on both sides.  Abbreviated
handshakes resume a cached master secret by session id, skipping all
asymmetric work (the §IV-B cost split ablation measures the difference).

Records are ``5-byte header + IV + payload + MAC + pad``; real-byte payloads
are genuinely AES-CBC encrypted and HMAC'd, virtual payloads charge the same
CPU cost with identical size accounting.  The API mirrors
:class:`~repro.net.tcp.TcpConnection` (``write`` / ``recv`` / ``recv_bytes``
/ ``close``) so HTTP and the database protocol run unmodified over either.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.crypto.aes import AES
from repro.crypto.costmodel import CryptoMeter
from repro.crypto.hmac_kdf import HmacKey, ct_equal, tls_prf
from repro.crypto.modes import cbc_decrypt, cbc_encrypt
from repro.crypto.rsa import RsaError, RsaKeyPair, RsaPublicKey
from repro.crypto.sha import sha256
from repro.net.packet import VirtualPayload
from repro.net.tcp import TcpConnection, TcpError

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node

RECORD_HEADER_LEN = 5
MAC_LEN = 20  # HMAC-SHA1
IV_LEN = 16
MAX_RECORD = 16384
CERT_OVERHEAD = 800  # DER wrapping + chain bytes beyond the raw key


class TlsError(Exception):
    """Handshake or record-layer failure."""


@dataclass
class TlsServerContext:
    """Server-side long-lived state: key pair + session cache."""

    keypair: RsaKeyPair
    session_cache: dict[bytes, bytes] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.session_cache is None:
            self.session_cache = {}


def _send_message(conn: TcpConnection, mtype: int, body: bytes) -> None:
    conn.write(struct.pack(">BHH", 22, mtype, len(body)) + body)


def _recv_message(conn: TcpConnection) -> Generator:
    header = yield from conn.recv_bytes(RECORD_HEADER_LEN)
    if isinstance(header, VirtualPayload):
        raise TlsError("handshake messages must be real bytes")
    rtype, mtype, length = struct.unpack(">BHH", header)
    if rtype != 22:
        raise TlsError(f"expected handshake record, got type {rtype}")
    body = yield from conn.recv_bytes(length)
    if isinstance(body, VirtualPayload):
        raise TlsError("handshake messages must be real bytes")
    return mtype, body


# Handshake message type codes (mirroring TLS where it has them).
CLIENT_HELLO = 1
SERVER_HELLO = 2
CERTIFICATE = 11
SERVER_HELLO_DONE = 14
CLIENT_KEY_EXCHANGE = 16
FINISHED = 20


class TlsConnection:
    """Protected byte stream over an established TcpConnection."""

    def __init__(
        self,
        conn: TcpConnection,
        node: "Node",
        master_secret: bytes,
        is_client: bool,
        transcript: bytes,
        meter: CryptoMeter | None = None,
        session_id: bytes = b"",
        resumed: bool = False,
    ) -> None:
        self.conn = conn
        self.node = node
        self.meter = meter or CryptoMeter()
        self.master_secret = master_secret
        self.session_id = session_id
        self.resumed = resumed
        key_block = tls_prf(master_secret, b"key expansion", transcript, 2 * (20 + 16))
        c_mac, s_mac = key_block[0:20], key_block[20:40]
        c_key, s_key = key_block[40:56], key_block[56:72]
        if is_client:
            self._mac_out, self._mac_in = c_mac, s_mac
            self._aes_out, self._aes_in = AES(c_key), AES(s_key)
        else:
            self._mac_out, self._mac_in = s_mac, c_mac
            self._aes_out, self._aes_in = AES(s_key), AES(c_key)
        # Midstate-cached record MAC keys, one per direction for the
        # connection's lifetime (steady-state records skip all pad work).
        self._hmac_out = HmacKey(self._mac_out, "sha1")
        self._hmac_in = HmacKey(self._mac_in, "sha1")
        self._seq_out = 0
        self._seq_in = 0
        self._leftover = None  # partial plaintext from recv_bytes
        self.records_sent = 0
        self.records_received = 0

    # -- sending ----------------------------------------------------------------
    def write_record(self, payload) -> Generator:
        """Process-generator: protect and send one application-data record."""
        if len(payload) > MAX_RECORD:
            raise TlsError("record too large; use write() for arbitrary sizes")
        cost = self.node.cost_model.tls_record_cost(len(payload))
        self.meter.charge("tls.record.out", cost)
        yield from self.node.cpu_work(cost)
        self._seq_out += 1
        self.records_sent += 1
        if isinstance(payload, (bytes, bytearray)):
            iv = self._hmac_out.digest(struct.pack(">Q", self._seq_out))[:IV_LEN]
            mac = self._hmac_out.digest(
                struct.pack(">Q", self._seq_out) + bytes(payload)
            )
            ciphertext = cbc_encrypt(self._aes_out, iv, bytes(payload) + mac)
            self.conn.write(struct.pack(">BHH", 23, 0, len(ciphertext) + IV_LEN))
            self.conn.write(iv + ciphertext)
        else:
            # Virtual payload: identical wire accounting, no real ciphertext.
            # The pad length rides in the (otherwise unused) second header
            # field so the receiver can recover the exact plaintext length.
            pad = (-(len(payload) + MAC_LEN + 1)) % 16 + 1
            wire_len = IV_LEN + len(payload) + MAC_LEN + pad
            self.conn.write(struct.pack(">BHH", 23, pad, wire_len))
            self.conn.write(VirtualPayload(wire_len, tag="tls-record"))

    def write(self, payload) -> Generator:
        """Process-generator: send arbitrary-size data as a record sequence."""
        offset = 0
        total = len(payload)
        while offset < total or total == 0:
            take = min(MAX_RECORD, total - offset)
            if isinstance(payload, (bytes, bytearray)):
                chunk = bytes(payload[offset : offset + take])
            else:
                chunk = VirtualPayload(take, tag="tls")
            yield from self.write_record(chunk)
            offset += take
            if total == 0:
                break

    # -- receiving ---------------------------------------------------------------
    def recv_record(self) -> Generator:
        """Process-generator: receive and verify one record; returns payload."""
        header = yield from self.conn.recv_bytes(RECORD_HEADER_LEN)
        if isinstance(header, VirtualPayload):
            raise TlsError("record header must be real bytes")
        rtype, pad, length = struct.unpack(">BHH", header)
        if rtype != 23:
            raise TlsError(f"expected application-data record, got type {rtype}")
        body = yield from self.conn.recv_bytes(length)
        self._seq_in += 1
        self.records_received += 1
        if pad > 0 or isinstance(body, VirtualPayload):
            plain_len = max(0, length - IV_LEN - MAC_LEN - max(pad, 1))
            cost = self.node.cost_model.tls_record_cost(plain_len)
            self.meter.charge("tls.record.in", cost)
            yield from self.node.cpu_work(cost)
            return VirtualPayload(plain_len, tag="tls")
        if len(body) < IV_LEN + MAC_LEN:
            raise TlsError("record too short for IV and MAC")
        iv, ciphertext = bytes(body[:IV_LEN]), bytes(body[IV_LEN:])
        cost = self.node.cost_model.tls_record_cost(len(ciphertext))
        self.meter.charge("tls.record.in", cost)
        yield from self.node.cpu_work(cost)
        try:
            plain_mac = cbc_decrypt(self._aes_in, iv, ciphertext)
        except ValueError as exc:
            raise TlsError(f"record decryption failed: {exc}") from exc
        if len(plain_mac) < MAC_LEN:
            raise TlsError("record too short for MAC")
        plain, mac = plain_mac[:-MAC_LEN], plain_mac[-MAC_LEN:]
        expect = self._hmac_in.digest(struct.pack(">Q", self._seq_in) + plain)
        if not ct_equal(expect, mac):
            raise TlsError("record MAC verification failed")
        return plain

    def recv_bytes(self, n: int) -> Generator:
        """Process-generator: accumulate exactly ``n`` plaintext bytes.

        Partial records are buffered for the next read, mirroring
        :meth:`TcpConnection.recv_bytes`.
        """
        got = 0
        parts: list = []
        all_real = True
        while got < n:
            if self._leftover is not None:
                chunk, self._leftover = self._leftover, None
            else:
                chunk = yield from self.recv_record()
            take = min(len(chunk), n - got)
            if take < len(chunk):
                if isinstance(chunk, VirtualPayload):
                    self._leftover = VirtualPayload(len(chunk) - take, tag=chunk.tag)
                    chunk = VirtualPayload(take, tag=chunk.tag)
                else:
                    self._leftover = bytes(chunk[take:])
                    chunk = bytes(chunk[:take])
            got += take
            if isinstance(chunk, VirtualPayload):
                all_real = False
            else:
                parts.append(bytes(chunk))
        if all_real:
            return b"".join(parts)
        return VirtualPayload(n)

    def close(self) -> None:
        self.conn.close()


def tls_client_handshake(
    conn: TcpConnection,
    node: "Node",
    rng: random.Random,
    meter: CryptoMeter | None = None,
    session: tuple[bytes, bytes] | None = None,
) -> Generator:
    """Process-generator: run the client side; returns a TlsConnection.

    ``session`` is an optional ``(session_id, master_secret)`` pair from a
    previous connection; if the server still caches it, the handshake is
    abbreviated (no RSA operations).
    """
    meter = meter or CryptoMeter()
    cm = node.cost_model
    client_random = rng.getrandbits(256).to_bytes(32, "big")
    offered_id = session[0] if session else b""
    hello = struct.pack(">H", len(offered_id)) + offered_id + client_random
    _send_message(conn, CLIENT_HELLO, hello)

    mtype, body = yield from _recv_message(conn)
    if mtype != SERVER_HELLO:
        raise TlsError(f"expected ServerHello, got {mtype}")
    if len(body) < 2:
        raise TlsError("ServerHello too short")
    (sid_len,) = struct.unpack_from(">H", body, 0)
    if len(body) != 35 + sid_len:  # 2 + session id + 32 random + 1 resumed
        raise TlsError("ServerHello length mismatch")
    session_id = body[2 : 2 + sid_len]
    server_random = body[2 + sid_len : 34 + sid_len]
    resumed = body[34 + sid_len : 35 + sid_len] == b"\x01"

    if resumed:
        if session is None or session_id != session[0]:
            raise TlsError("server resumed an unknown session")
        master = session[1]
        transcript = client_random + server_random
        cost = cm.hmac_cost(64) * 4  # PRF invocations only
        meter.charge("tls.resume", cost)
        yield from node.cpu_work(cost)
        tls = TlsConnection(conn, node, master, True, transcript, meter,
                            session_id=session_id, resumed=True)
        yield from _exchange_finished(tls, conn, node, master, transcript, client_first=True)
        return tls

    mtype, cert = yield from _recv_message(conn)
    if mtype != CERTIFICATE:
        raise TlsError(f"expected Certificate, got {mtype}")
    if len(cert) < 2:
        raise TlsError("Certificate message too short")
    key_len = struct.unpack_from(">H", cert, 0)[0]
    if len(cert) < 2 + key_len:
        raise TlsError("Certificate key runs past end of message")
    server_key = RsaPublicKey.from_bytes(cert[2 : 2 + key_len])
    mtype, _ = yield from _recv_message(conn)
    if mtype != SERVER_HELLO_DONE:
        raise TlsError(f"expected ServerHelloDone, got {mtype}")

    # Certificate signature check (chain of 1).
    meter.charge("asym.verify.cert", cm.rsa_verify(server_key.bits))
    yield from node.cpu_work(cm.rsa_verify(server_key.bits))

    premaster = rng.getrandbits(48 * 8).to_bytes(48, "big")
    meter.charge("asym.encrypt.premaster", cm.rsa_verify(server_key.bits))
    yield from node.cpu_work(cm.rsa_verify(server_key.bits))  # public-key op
    encrypted = server_key.encrypt(premaster, rng)
    _send_message(conn, CLIENT_KEY_EXCHANGE, encrypted)

    master = tls_prf(premaster, b"master secret", client_random + server_random, 48)
    transcript = client_random + server_random
    tls = TlsConnection(conn, node, master, True, transcript, meter, session_id=session_id)
    yield from _exchange_finished(tls, conn, node, master, transcript, client_first=True)
    return tls


def tls_server_handshake(
    conn: TcpConnection,
    node: "Node",
    ctx: TlsServerContext,
    rng: random.Random,
    meter: CryptoMeter | None = None,
) -> Generator:
    """Process-generator: run the server side; returns a TlsConnection."""
    meter = meter or CryptoMeter()
    cm = node.cost_model
    mtype, body = yield from _recv_message(conn)
    if mtype != CLIENT_HELLO:
        raise TlsError(f"expected ClientHello, got {mtype}")
    if len(body) < 2:
        raise TlsError("ClientHello too short")
    (sid_len,) = struct.unpack_from(">H", body, 0)
    if len(body) != 34 + sid_len:  # 2 + session id + 32 random
        raise TlsError("ClientHello length mismatch")
    offered_id = body[2 : 2 + sid_len]
    client_random = body[2 + sid_len : 34 + sid_len]
    server_random = rng.getrandbits(256).to_bytes(32, "big")

    cached = ctx.session_cache.get(offered_id) if offered_id else None
    if cached is not None:
        hello = struct.pack(">H", len(offered_id)) + offered_id + server_random + b"\x01"
        _send_message(conn, SERVER_HELLO, hello)
        transcript = client_random + server_random
        cost = cm.hmac_cost(64) * 4
        meter.charge("tls.resume", cost)
        yield from node.cpu_work(cost)
        tls = TlsConnection(conn, node, cached, False, transcript, meter,
                            session_id=offered_id, resumed=True)
        yield from _exchange_finished(tls, conn, node, cached, transcript, client_first=False)
        return tls

    session_id = rng.getrandbits(128).to_bytes(16, "big")
    hello = struct.pack(">H", len(session_id)) + session_id + server_random + b"\x00"
    _send_message(conn, SERVER_HELLO, hello)
    key_bytes = ctx.keypair.public.to_bytes()
    cert = struct.pack(">H", len(key_bytes)) + key_bytes + b"\x00" * CERT_OVERHEAD
    _send_message(conn, CERTIFICATE, cert)
    _send_message(conn, SERVER_HELLO_DONE, b"")

    mtype, encrypted = yield from _recv_message(conn)
    if mtype != CLIENT_KEY_EXCHANGE:
        raise TlsError(f"expected ClientKeyExchange, got {mtype}")
    meter.charge("asym.decrypt.premaster", cm.rsa_sign(ctx.keypair.public.bits))
    yield from node.cpu_work(cm.rsa_sign(ctx.keypair.public.bits))  # private-key op
    try:
        premaster = ctx.keypair.decrypt(bytes(encrypted))
    except RsaError as exc:
        raise TlsError(f"bad ClientKeyExchange: {exc}") from exc

    master = tls_prf(premaster, b"master secret", client_random + server_random, 48)
    ctx.session_cache[session_id] = master
    transcript = client_random + server_random
    tls = TlsConnection(conn, node, master, False, transcript, meter, session_id=session_id)
    yield from _exchange_finished(tls, conn, node, master, transcript, client_first=False)
    return tls


def _exchange_finished(
    tls: TlsConnection,
    conn: TcpConnection,
    node: "Node",
    master: bytes,
    transcript: bytes,
    client_first: bool,
) -> Generator:
    """Exchange and check Finished messages (verify_data both directions)."""
    my_label = b"client finished" if client_first else b"server finished"
    peer_label = b"server finished" if client_first else b"client finished"
    digest = sha256(transcript)
    my_verify = tls_prf(master, my_label, digest, 12)
    peer_verify = tls_prf(master, peer_label, digest, 12)
    cost = node.cost_model.hmac_cost(64) * 2
    tls.meter.charge("tls.finished", cost)
    yield from node.cpu_work(cost)
    _send_message(conn, FINISHED, my_verify)
    mtype, got = yield from _recv_message(conn)
    if mtype != FINISHED:
        raise TlsError(f"expected Finished, got {mtype}")
    if not ct_equal(bytes(got), peer_verify):
        raise TlsError("Finished verify_data mismatch")
