"""Event primitives for the discrete-event engine.

An :class:`Event` is a one-shot synchronization point.  Processes obtain
events (directly, or via :class:`Timeout` / :class:`Process` handles) and
``yield`` them; the simulator resumes the process when the event succeeds or
fails.  Events carry an arbitrary ``value`` on success and an exception on
failure, mirroring the familiar future/promise contract.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

PENDING = "pending"
TRIGGERED = "triggered"  # scheduled for processing, outcome decided
PROCESSED = "processed"  # callbacks have run


class Event:
    """One-shot event that processes can wait on.

    State machine: ``pending`` -> ``triggered`` (via :meth:`succeed` or
    :meth:`fail`) -> ``processed`` (after the simulator runs callbacks).
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_state")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._ok: bool | None = None
        self._state = PENDING

    # -- inspection ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state != PENDING

    @property
    def processed(self) -> bool:
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise RuntimeError("event outcome not decided yet")
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == PENDING:
            raise RuntimeError("event value not available yet")
        return self._value

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Mark the event successful and schedule its callbacks now."""
        if self._state != PENDING:
            raise RuntimeError(f"event already {self._state}")
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        self.sim._schedule(self, delay=0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Mark the event failed; waiters will see ``exception`` raised."""
        if self._state != PENDING:
            raise RuntimeError(f"event already {self._state}")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = TRIGGERED
        self.sim._schedule(self, delay=0.0)
        return self

    def _mark_processed(self) -> None:
        self._state = PROCESSED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} state={self._state}>"


class Timeout(Event):
    """Event that fires automatically after ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        sim._schedule(self, delay=delay)


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Process(Event):
    """A running simulation process wrapping a generator.

    The process itself is an event that fires when the generator returns
    (success, with the return value) or raises (failure).  This lets
    processes wait for each other simply by yielding the process handle.
    """

    __slots__ = ("generator", "_waiting_on", "name", "_pid")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Any, Any, Any],
        name: str | None = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process target must be a generator, got {generator!r}")
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Event | None = None
        self._pid = sim._register_process(self)
        # Bootstrap: resume once at the current time.  The fast path books
        # the wake-up on the raw-callback lane (one heap tuple, no Event);
        # the reference path keeps the classic boot Event.  Both draw their
        # sequence number here, so same-time ordering is identical.
        if sim._fast:
            sim.call_later(0.0, Process._boot, self)
        else:
            boot = Event(sim)
            boot.callbacks.append(self._resume)
            boot.succeed()

    @property
    def is_alive(self) -> bool:
        return self._state == PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process is an error; interrupting a process
        twice before it runs again queues both interrupts.
        """
        if not self.is_alive:
            raise RuntimeError(f"cannot interrupt dead process {self.name!r}")
        evt = Event(self.sim)
        evt.callbacks.append(self._deliver_interrupt)
        evt.fail(Interrupt(cause))

    def close(self) -> None:
        """Finalize the generator *now* (throws ``GeneratorExit`` into it).

        Detaches from whatever event the process was waiting on, so its
        ``finally`` blocks run at a deterministic, caller-chosen point rather
        than whenever the garbage collector happens to reach the suspended
        frame.  Cleanup code may still send packets or record trace events;
        anything it schedules simply stays on the heap.  No-op on a finished
        process.
        """
        if not self.is_alive:
            return
        target = self._waiting_on
        if target is not None:
            in_list_remove(target.callbacks, self._resume)
            self._waiting_on = None
        try:
            self.generator.close()
        finally:
            self.sim._forget_process(self)
            if self._state == PENDING:
                # Shutdown semantics: the process is over, nobody gets
                # resumed.  Waiters' callbacks are intentionally dropped.
                self._ok = False
                self._value = GeneratorExit("process closed")
                self._state = PROCESSED

    def _deliver_interrupt(self, evt: Event) -> None:
        if not self.is_alive:
            return  # process finished in the meantime; drop the interrupt
        target = self._waiting_on
        if target is not None:
            in_list_remove(target.callbacks, self._resume)
            self._waiting_on = None
        self._step(throw=evt._value)

    def _boot(self) -> None:
        """First resume, via the callback lane (fast path only)."""
        if self._state == PENDING:  # a process can be close()d before booting
            self._step(send=None)

    def _resume(self, evt: Event) -> None:
        self._waiting_on = None
        if evt._ok:
            self._step(send=evt._value)
        else:
            self._step(throw=evt._value)

    def _step(self, send: Any = None, throw: BaseException | None = None) -> None:
        sim = self.sim
        generator = self.generator
        while True:
            sim._active_process = self
            try:
                if throw is not None:
                    target = generator.throw(throw)
                else:
                    target = generator.send(send)
            except StopIteration as exc:
                sim._active_process = None
                sim._forget_process(self)
                self.succeed(exc.value)
                return
            except BaseException as exc:
                sim._active_process = None
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                sim._forget_process(self)
                self.fail(exc)
                if not self.callbacks:
                    # Nobody is waiting on this process: surface the crash.
                    sim._crashed.append((self, exc))
                return
            sim._active_process = None

            if not isinstance(target, Event):
                send = None
                throw = TypeError(
                    f"process {self.name!r} yielded {target!r}; processes must "
                    "yield Event instances (Timeout, Event, Process, ...)"
                )
                continue
            if target._state != PROCESSED:
                self._waiting_on = target
                target.callbacks.append(self._resume)
                return
            # Target already fired.  Fast path: feed its outcome straight
            # back into the generator — no follow Event, no reschedule, no
            # extra dispatch.  A failure is thrown in, so an uncaught one
            # lands in the except branch above and gets full fail()/crash
            # accounting.
            if sim._fast:
                if target._ok:
                    send, throw = target._value, None
                else:
                    send, throw = None, target._value
                continue
            # Reference path: resume via a zero-delay follow event.  The
            # failure side goes through fail() proper (not hand-set state),
            # so the resulting throw carries the same semantics as any
            # failed event and crash accounting cannot be skipped.
            follow = Event(sim)
            follow.callbacks.append(self._resume)
            if target._ok:
                follow.succeed(target._value)
            else:
                follow.fail(target._value)
            return


def in_list_remove(lst: list, item: Any) -> bool:
    """Remove ``item`` from ``lst`` if present; return whether it was there."""
    try:
        lst.remove(item)
        return True
    except ValueError:
        return False


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        self._n_fired = 0
        if not self.events:
            self.succeed([])
            return
        for evt in self.events:
            if evt.processed:
                self._on_fire(evt)
            else:
                evt.callbacks.append(self._on_fire)

    def _on_fire(self, evt: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every child event has fired; value is the list of values.

    Fails fast with the first child failure.
    """

    __slots__ = ()

    def _on_fire(self, evt: Event) -> None:
        if self._state != PENDING:
            return
        if not evt._ok:
            self.fail(evt._value)
            return
        self._n_fired += 1
        if self._n_fired == len(self.events):
            self.succeed([e._value for e in self.events])


class AnyOf(_Condition):
    """Fires when the first child event fires; value is ``(event, value)``."""

    __slots__ = ()

    def _on_fire(self, evt: Event) -> None:
        if self._state != PENDING:
            return
        if not evt._ok:
            self.fail(evt._value)
            return
        self.succeed((evt, evt._value))
