"""Sharded simulation with conservative-lookahead synchronization.

Partitions a topology into :class:`Shard` workers — one event heap (and
optionally one OS process) per availability zone / tenant group — and runs
them in synchronized windows of simulated time.  The classic conservative
(Chandy–Misra style) argument applies: an inter-shard link's propagation
delay bounds how soon one shard can affect another, so as long as every
cross-shard link's delay is at least the window size, each shard can run a
full window without ever receiving a message "from the past".

Cross-shard links are modeled by :class:`ShardPortal` — the egress half of a
point-to-point link whose far interface lives in another shard.  The portal
replicates :class:`~repro.net.link.LinkEndpoint` fast-path float arithmetic
exactly (serialize at the head-of-line, then propagate), so a topology split
across shards produces bit-identical timestamps to the same topology wired
with in-process links.  Transmitted packets become :class:`Envelope` records;
at each window barrier the coordinator routes them to their destination
shards, which inject them as ``call_at(arrival, iface.receive, packet)``
timers in a canonical global order ``(arrival, src_shard, seq)``.

The coordinator is built for real hardware parallelism:

* **Scatter-gather windows** — with ``parallel=True`` the ``window`` command
  is broadcast to every forked worker *first*, then replies are collected as
  they arrive (``multiprocessing.connection.wait`` over the pipes), so
  shards genuinely overlap on multiple cores instead of advancing one at a
  time behind a blocking send+recv.
* **Adaptive lookahead** — each reply carries the shard's next live event
  time (:meth:`~repro.sim.engine.Simulator.peek_live`).  When every shard is
  idle until ``next_t`` (and no pending envelope arrives sooner), the next
  window can safely stretch to ``next_t + lookahead``: nothing anywhere can
  fire before ``next_t``, and the earliest cross-shard consequence of an
  event at ``next_t`` lands no sooner than ``next_t + lookahead``.  Barrier
  count collapses whenever shards coast (fluid-mode bulk flows, think-time
  troughs, drained tails) while busy phases degrade gracefully to the
  static ``lookahead``-sized windows.
* **Batched envelope frames** — cross-process traffic is one length-prefixed
  frame per window: struct-packed envelope metadata, an interned string
  table, and a *single* pickle of the packet list (shared memo, payload
  bytes interned once) instead of per-object pipe pickling.  Sync-overhead
  metrics (windows, stretched windows, envelopes, frame bytes, per-shard
  busy seconds) land in the metrics registry and
  :meth:`ShardedSimulation.sync_stats`.

**Digest invariance under window scheduling.**  Because adaptive windows
change *when* envelopes reach the coordinator, the boundary digest referee
is decoupled from the window schedule: routed envelopes are held in a
min-heap keyed ``(arrival, src_index, seq)`` and folded into the SHA-256
only once the barrier clock passes their arrival time.  Every envelope
produced after a barrier at ``T`` arrives strictly later than ``T``, so the
drained sequence is the globally sorted envelope stream — identical for the
static schedule, any adaptive schedule, inline workers, forked workers and
the reference engine.

Determinism rules for shard authors:

* every shard derives its randomness from its own namespace —
  ``RngStreams(seed).spawn(f"shard:{name}")`` — so shard-local draw order
  cannot perturb other shards;
* builders must not touch process-global mutable state that influences
  packet contents (the ``Packet.packet_id`` debug counter is explicitly
  excluded from boundary digests for this reason);
* cross-shard traffic must be picklable (plain headers + bytes/virtual
  payloads), which the RUBiS scenario's zone heartbeats satisfy.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import pickle
import struct
import time
from dataclasses import dataclass
from heapq import heappop, heappush
from multiprocessing.connection import wait as _conn_wait
from operator import attrgetter
from typing import TYPE_CHECKING, Any, Callable

from repro.metrics import METRICS
from repro.net.link import WIRE_TAPS, LinkLedger, publish_link_delta
from repro.net.packet import Packet, VirtualPayload
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Interface

#: Opt-in causality sanitizer taps (mirrors ``net.link.WIRE_TAPS``).  Each
#: tap observes shard registration, portal sends, coordinator routing and
#: envelope injection, asserting the happens-before contract at runtime.
#: Empty in production runs — :mod:`repro.analysis.causality` registers a
#: sanitizer here from a pytest fixture or an explicit context manager.
#: Taps installed before ``ShardedSimulation(parallel=True)`` forks are
#: inherited by the worker children, so shard-side violations raise in the
#: child and surface as ``ShardError`` in the parent.
CAUSALITY_TAPS: list[Any] = []

#: Sync-overhead observability (coordinator side, parent process only).
_SYNC_WINDOWS = METRICS.counter("shard.sync.windows")
_SYNC_STRETCHED = METRICS.counter("shard.sync.windows_stretched")
_SYNC_ENVELOPES = METRICS.counter("shard.sync.envelopes")
_SYNC_FRAME_TX = METRICS.counter("shard.sync.frame_bytes_tx")
_SYNC_FRAME_RX = METRICS.counter("shard.sync.frame_bytes_rx")
_SYNC_STOP_ERRORS = METRICS.counter("shard.sync.stop_errors")

_INF = float("inf")

#: Canonical envelope orderings.  Local: per-shard output (seq is the
#: per-shard send counter).  Global: the total order the digest referee and
#: injection scheduling use — ``(src_index, seq)`` is unique per envelope,
#: so the sort result is independent of gather order.
_LOCAL_ORDER = attrgetter("arrival", "seq")
_GLOBAL_ORDER = attrgetter("arrival", "src_index", "seq")


class ShardError(Exception):
    """Configuration or synchronization-contract violation."""


class LookaheadError(ShardError):
    """A cross-shard link's delay is shorter than the lookahead window."""


@dataclass
class Envelope:
    """One packet crossing a shard boundary.

    ``arrival`` is the absolute simulated time the far interface receives
    the packet — computed entirely on the sending side so the destination
    shard replays the exact link timing.  ``seq`` is the per-shard send
    counter; together with ``src_index`` it totally orders same-timestamp
    arrivals across shards.
    """

    arrival: float
    src_shard: str
    src_index: int
    seq: int
    dst_shard: str
    port_id: str
    packet: Packet
    #: Sender's local clock when the packet entered the portal.  Causality
    #: metadata only — deliberately excluded from :func:`canonical_envelope`
    #: so boundary digests stay comparable across sanitized/plain runs.
    sent_now: float = -1.0


def _canon_payload(payload: Any) -> Any:
    """Canonical, ``packet_id``-free structural form of a packet payload.

    ``repr(packet)`` is unusable for digests: tunneled payloads (ESP
    ciphertext, VPN records) embed inner :class:`Packet` objects whose
    ``packet_id`` is a process-global debug counter that differs between an
    inline run and a forked worker.  Recurse structurally instead.
    """
    if isinstance(payload, Packet):
        return (
            "pkt",
            tuple(repr(h) for h in payload.headers),
            _canon_payload(payload.payload),
            tuple(sorted((k, repr(v)) for k, v in payload.meta.items())),
        )
    if isinstance(payload, VirtualPayload):
        return ("vp", payload.size, payload.tag)
    if isinstance(payload, (bytes, bytearray)):
        return ("b", hashlib.sha256(bytes(payload)).hexdigest())
    inner = getattr(payload, "inner", None)
    if isinstance(inner, Packet):  # EspCiphertext and friends
        return (type(payload).__name__, _canon_payload(inner), len(payload))
    return (type(payload).__name__, len(payload) if hasattr(payload, "__len__") else 0)


def canonical_envelope(env: Envelope) -> bytes:
    """Stable byte form of an envelope for boundary digests."""
    packet = env.packet
    form = (
        round(env.arrival, 12),
        env.src_shard,
        env.seq,
        env.dst_shard,
        env.port_id,
        tuple(repr(h) for h in packet.headers),
        _canon_payload(packet.payload),
        tuple(sorted((k, repr(v)) for k, v in packet.meta.items())),
    )
    return repr(form).encode()


# ----------------------------------------------------------- frame codec --
#
# One frame per window direction:
#
#   head     <I n_envelopes> <H n_strings>
#   strings  n_strings x (<H len> utf-8)          -- interned shard/port ids
#   metas    n_envelopes x <d d I I H H H>        -- arrival, sent_now,
#                                                    src_index, seq, then
#                                                    string-table indexes for
#                                                    src_shard/dst_shard/port
#   blob     <Q len> pickle([packet, ...])        -- ONE pickle for all
#                                                    packets: shared memo, so
#                                                    repeated payload bytes /
#                                                    header objects are
#                                                    interned once per frame
#
# Doubles round-trip bit-exactly through struct, so arrival timestamps (the
# determinism-critical field) are preserved to the last ulp.

_FRAME_HEAD = struct.Struct("<IH")
_STR_LEN = struct.Struct("<H")
_ENV_META = struct.Struct("<ddIIHHH")
_BLOB_LEN = struct.Struct("<Q")
_F64 = struct.Struct("<d")
#: Window-reply tail: peek, 5-field ledger delta, busy wall-seconds.
_REPLY_TAIL = struct.Struct("<d5qd")
_PICKLE_PROTO = pickle.HIGHEST_PROTOCOL


def encode_envelopes(envelopes: list[Envelope]) -> bytes:
    """Serialize a window's envelope list as one batched frame."""
    strings: list[str] = []
    for env in envelopes:
        s = env.src_shard
        if s not in strings:
            strings.append(s)
        s = env.dst_shard
        if s not in strings:
            strings.append(s)
        s = env.port_id
        if s not in strings:
            strings.append(s)
    parts = [_FRAME_HEAD.pack(len(envelopes), len(strings))]
    for s in strings:
        raw = s.encode()
        parts.append(_STR_LEN.pack(len(raw)))
        parts.append(raw)
    index = strings.index
    packets = []
    pack_meta = _ENV_META.pack
    for env in envelopes:
        parts.append(
            pack_meta(
                env.arrival, env.sent_now, env.src_index, env.seq,
                index(env.src_shard), index(env.dst_shard), index(env.port_id),
            )
        )
        packets.append(env.packet)
    blob = pickle.dumps(packets, _PICKLE_PROTO)
    parts.append(_BLOB_LEN.pack(len(blob)))
    parts.append(blob)
    return b"".join(parts)


def decode_envelopes(buf: bytes, offset: int = 0) -> tuple[list[Envelope], int]:
    """Decode one envelope frame; returns ``(envelopes, end_offset)``."""
    n_env, n_strings = _FRAME_HEAD.unpack_from(buf, offset)
    offset += _FRAME_HEAD.size
    strings: list[str] = []
    for _ in range(n_strings):
        (length,) = _STR_LEN.unpack_from(buf, offset)
        offset += _STR_LEN.size
        strings.append(bytes(buf[offset:offset + length]).decode())
        offset += length
    metas = []
    unpack_meta = _ENV_META.unpack_from
    meta_size = _ENV_META.size
    for _ in range(n_env):
        metas.append(unpack_meta(buf, offset))
        offset += meta_size
    (blob_len,) = _BLOB_LEN.unpack_from(buf, offset)
    offset += _BLOB_LEN.size
    packets = pickle.loads(buf[offset:offset + blob_len])
    offset += blob_len
    envelopes = []
    for i in range(n_env):
        arrival, sent_now, src_index, seq, s_i, d_i, p_i = metas[i]
        envelopes.append(
            Envelope(
                arrival=arrival, src_shard=strings[s_i], src_index=src_index,
                seq=seq, dst_shard=strings[d_i], port_id=strings[p_i],
                packet=packets[i], sent_now=sent_now,
            )
        )
    return envelopes, offset


class ShardPortal:
    """Egress half of a cross-shard link (the far interface is remote).

    Mirrors the :class:`~repro.net.link.LinkEndpoint` fast path's float
    arithmetic: a packet arriving to an idle serializer starts transmitting
    at ``now``, a queued packet starts exactly when the previous
    transmission completes, and delivery is transmission-complete plus the
    propagation delay.  Each addition is performed separately (start + ser,
    then + delay) so the computed arrival is the same float an in-process
    link would produce.
    """

    def __init__(
        self,
        shard: "Shard",
        port_id: str,
        dst_shard: str,
        bandwidth_bps: float,
        delay_s: float,
        queue_packets: int = 256,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if delay_s <= 0:
            raise LookaheadError(
                f"cross-shard link {port_id!r} needs positive delay "
                "(the delay is the lookahead window)"
            )
        self.shard = shard
        self.sim = shard.sim
        self.port_id = port_id
        self.dst_shard = dst_shard
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self.queue_packets = queue_packets
        #: Serializer state: when the current back-to-back burst finishes.
        self._busy_until = 0.0
        #: Start times of accepted-but-not-yet-serializing packets; pruned
        #: lazily to compute queue occupancy for drop-tail decisions.
        self._pending_starts: list[float] = []
        self.tx_packets = 0
        self.tx_bytes = 0
        self.dropped = 0
        self.out: list[Envelope] = []

    def send(self, packet: Packet) -> bool:
        """Enqueue for transmission toward the remote shard."""
        if WIRE_TAPS:
            for tap in WIRE_TAPS:
                tap(packet)
        now = self.sim.now
        if self._busy_until > now:
            starts = self._pending_starts
            if starts and starts[0] <= now:
                self._pending_starts = starts = [s for s in starts if s > now]
            if len(starts) >= self.queue_packets:
                self.dropped += 1
                return False
            start = self._busy_until
            starts.append(start)
        else:
            start = now
        size = len(packet.payload)
        for header in packet.headers:
            size += header.header_len
        done = start + size * 8.0 / self.bandwidth_bps
        arrival = done + self.delay_s
        self._busy_until = done
        self.tx_packets += 1
        self.tx_bytes += size
        self.shard.ledger.add_tx(1, size)
        self.shard._env_seq += 1
        env = Envelope(
            arrival=arrival,
            src_shard=self.shard.name,
            src_index=self.shard.index,
            seq=self.shard._env_seq,
            dst_shard=self.dst_shard,
            port_id=self.port_id,
            packet=packet,
            sent_now=now,
        )
        if CAUSALITY_TAPS:
            for tap in CAUSALITY_TAPS:
                tap.on_send(self.shard, self, env)
        self.out.append(env)
        return True

    def account_fluid(self, n_bytes: int, n_segments: int) -> None:
        """Match :meth:`LinkEndpoint.account_fluid` for fluid-mode charging."""
        self.tx_packets += n_segments
        self.tx_bytes += n_bytes
        self.shard.ledger.add_tx(n_segments, n_bytes)

    def flush_stats(self) -> None:  # counters are unbatched here
        return None


class Shard:
    """One partition: its own simulator, RNG namespace, and boundary ports."""

    def __init__(
        self, name: str, index: int, seed: int, fast_path: bool | None = None
    ) -> None:
        self.name = name
        self.index = index
        self.sim = Simulator(fast_path=fast_path)
        #: Shard-owned link accounting: a *non-publishing* ledger installed
        #: before the builder runs, so every LinkEndpoint (and portal) this
        #: shard creates books into simulator-owned state instead of the
        #: process-global METRICS counters — which forked workers cannot
        #: update.  The coordinator collects ``take_delta()`` at every sync
        #: window and publishes it in the parent process.
        self.ledger = LinkLedger(publish=False)
        self.sim.services["link.ledger"] = self.ledger
        #: Per-shard RNG namespace: draw order inside one shard can never
        #: perturb another shard's streams.
        self.rngs = RngStreams(seed).spawn(f"shard:{name}")
        self.portals: dict[str, ShardPortal] = {}
        self.ingress: dict[str, "Interface"] = {}
        self._env_seq = 0
        self.result_fn: Callable[[], Any] | None = None
        if CAUSALITY_TAPS:
            for tap in CAUSALITY_TAPS:
                tap.on_shard(self)

    def open_egress(
        self,
        port_id: str,
        dst_shard: str,
        bandwidth_bps: float,
        delay_s: float,
        queue_packets: int = 256,
    ) -> ShardPortal:
        """Create the local egress half of a cross-shard link."""
        if port_id in self.portals:
            raise ShardError(f"duplicate egress port {port_id!r} in shard {self.name!r}")
        portal = ShardPortal(
            self, port_id, dst_shard, bandwidth_bps, delay_s, queue_packets
        )
        self.portals[port_id] = portal
        return portal

    def open_ingress(self, port_id: str, iface: "Interface") -> None:
        """Register ``iface`` as the landing point for a remote egress port."""
        if port_id in self.ingress:
            raise ShardError(f"duplicate ingress port {port_id!r} in shard {self.name!r}")
        self.ingress[port_id] = iface

    def ports(self) -> dict[str, Any]:
        """Boundary description the coordinator pairs and validates."""
        return {
            "egress": {
                pid: (p.dst_shard, p.delay_s) for pid, p in self.portals.items()
            },
            "ingress": sorted(self.ingress),
        }

    def inject(self, envelopes: list[Envelope]) -> None:
        """Schedule arrivals from other shards (already globally ordered)."""
        now = self.sim.now
        taps = CAUSALITY_TAPS
        for env in envelopes:
            if taps:
                for tap in taps:
                    tap.on_inject(self, env, now)
            if env.arrival < now:
                raise ShardError(
                    f"lookahead violated: envelope for {env.port_id!r} arrives at "
                    f"{env.arrival} but shard {self.name!r} is at {now}"
                )
            iface = self.ingress.get(env.port_id)
            if iface is None:
                raise ShardError(
                    f"shard {self.name!r} has no ingress port {env.port_id!r}"
                )
            self.sim.call_at(env.arrival, iface.receive, env.packet)

    def advance(
        self, window_end: float
    ) -> tuple[list[Envelope], float, tuple[int, ...]]:
        """Run this shard's clock to ``window_end``; return boundary traffic.

        Returns ``(envelopes, peek, ledger_delta)``: ``peek`` is the next
        *live* local event time (``inf`` when idle; stale cancelled timers
        are pruned, see :meth:`Simulator.peek_live`) — the coordinator's
        adaptive-lookahead hint; correctness never depends on it being
        tight, only on it never reporting *later* than the true next event.
        ``ledger_delta`` is this window's link accounting, published by the
        coordinator in the parent process.
        """
        self.sim.run(until=window_end)
        if CAUSALITY_TAPS:
            for tap in CAUSALITY_TAPS:
                tap.on_commit(self, window_end)
        out: list[Envelope] = []
        for pid in sorted(self.portals):
            portal = self.portals[pid]
            if portal.out:
                out.extend(portal.out)
                portal.out = []
        out.sort(key=_LOCAL_ORDER)
        return out, self.sim.peek_live(), self.ledger.take_delta()

    def finish(self) -> tuple[Any, tuple[int, ...]]:
        result = self.result_fn() if self.result_fn is not None else None
        delta = self.ledger.take_delta()
        self.sim.close()
        return result, delta


# ----------------------------------------------------------------- workers --

Builder = Callable[..., None]

#: How often a blocking receive re-checks worker liveness (wall seconds).
_POLL_INTERVAL_S = 0.05


class _InlineWorker:
    """Runs a shard on the coordinator's own event loop (no parallelism)."""

    def __init__(
        self,
        name: str,
        index: int,
        seed: int,
        fast_path: bool | None,
        builder: Builder,
        kwargs: dict[str, Any],
    ) -> None:
        self.name = name
        self.bytes_tx = 0
        self.bytes_rx = 0
        self._window: tuple[float, list[Envelope]] | None = None
        self.shard = Shard(name, index, seed, fast_path=fast_path)
        builder(self.shard, **kwargs)

    def ports(self) -> dict[str, Any]:
        return self.shard.ports()

    def start_window(self, window_end: float, envelopes: list[Envelope]) -> None:
        self._window = (window_end, envelopes)

    def collect_window(
        self,
    ) -> tuple[list[Envelope], float, tuple[int, ...], float]:
        window_end, envelopes = self._window  # type: ignore[misc]
        self._window = None
        self.shard.inject(envelopes)
        out, peek, delta = self.shard.advance(window_end)
        return out, peek, delta, 0.0

    def window(
        self, window_end: float, envelopes: list[Envelope]
    ) -> tuple[list[Envelope], float, tuple[int, ...]]:
        """Blocking one-shot window (kept for tests and direct drivers)."""
        self.start_window(window_end, envelopes)
        out, peek, delta, _busy = self.collect_window()
        return out, peek, delta

    def finish(self) -> tuple[Any, tuple[int, ...]]:
        return self.shard.finish()

    def stop(self) -> None:
        return None


def _worker_main(
    conn,
    name: str,
    index: int,
    seed: int,
    fast_path: bool | None,
    builder: Builder,
    kwargs: dict[str, Any],
) -> None:
    """Child-process loop: build the shard locally, then serve commands.

    Wire protocol (all messages via ``send_bytes``/``recv_bytes``):

    ======  =========================================================
    parent  ``W`` + window_end f64 + envelope frame; ``F``; ``S``
    child   ``P`` + pickled ports (once, after build);
            ``W`` + envelope frame + reply tail (peek, ledger delta,
            busy wall-seconds); ``F`` + pickled (result, delta);
            ``E`` + utf-8 error text (then the child exits)
    ======  =========================================================
    """
    try:
        shard = Shard(name, index, seed, fast_path=fast_path)
        builder(shard, **kwargs)
        conn.send_bytes(b"P" + pickle.dumps(shard.ports(), _PICKLE_PROTO))
    except BaseException as exc:  # noqa: BLE001 - report, then die
        conn.send_bytes(b"E" + f"{type(exc).__name__}: {exc}".encode())
        return
    while True:
        try:
            msg = conn.recv_bytes()
        except EOFError:
            return
        op = msg[:1]
        try:
            if op == b"W":
                (window_end,) = _F64.unpack_from(msg, 1)
                envelopes, _ = decode_envelopes(msg, 1 + _F64.size)
                start = time.perf_counter()  # repro: ignore[DET001] -- sync-overhead observability only; never feeds simulation state
                shard.inject(envelopes)
                out, peek, delta = shard.advance(window_end)
                busy = time.perf_counter() - start  # repro: ignore[DET001] -- sync-overhead observability only; never feeds simulation state
                conn.send_bytes(
                    b"".join(
                        (
                            b"W",
                            encode_envelopes(out),
                            _REPLY_TAIL.pack(peek, *delta, busy),
                        )
                    )
                )
            elif op == b"F":
                conn.send_bytes(b"F" + pickle.dumps(shard.finish(), _PICKLE_PROTO))
            elif op == b"S":
                return
            else:  # pragma: no cover - protocol bug
                conn.send_bytes(b"E" + b"unknown command " + bytes(op))
                return
        except BaseException as exc:  # noqa: BLE001
            conn.send_bytes(b"E" + f"{type(exc).__name__}: {exc}".encode())
            return


class _ProcessWorker:
    """Runs a shard in a forked child, speaking a framed pipe protocol."""

    def __init__(
        self,
        name: str,
        index: int,
        seed: int,
        fast_path: bool | None,
        builder: Builder,
        kwargs: dict[str, Any],
    ) -> None:
        self.name = name
        self.bytes_tx = 0
        self.bytes_rx = 0
        self._stopped = False
        ctx = multiprocessing.get_context("fork")
        self._conn, child_conn = ctx.Pipe()
        self._proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, name, index, seed, fast_path, builder, kwargs),
            daemon=True,
        )
        self._proc.start()
        child_conn.close()
        self._ports = pickle.loads(self._expect(b"P")[1:])

    # -- plumbing -------------------------------------------------------------
    @property
    def connection(self):
        """The parent end of the pipe (for ``connection.wait`` gathering)."""
        return self._conn

    def _recv_msg(self) -> bytes:
        """Blocking receive with a liveness check: a dead child raises a
        :class:`ShardError` naming the shard instead of deadlocking."""
        conn = self._conn
        proc = self._proc
        while not conn.poll(_POLL_INTERVAL_S):
            if not proc.is_alive():
                raise ShardError(
                    f"shard {self.name!r} worker died without replying "
                    f"(exitcode {proc.exitcode})"
                )
        try:
            msg = conn.recv_bytes()
        except EOFError:
            raise ShardError(
                f"shard {self.name!r} worker closed its pipe mid-reply "
                f"(exitcode {proc.exitcode})"
            ) from None
        if msg[:1] == b"E":
            raise ShardError(
                f"shard {self.name!r} worker failed: "
                f"{msg[1:].decode(errors='replace')}"
            )
        self.bytes_rx += len(msg)
        return msg

    def _expect(self, op: bytes) -> bytes:
        msg = self._recv_msg()
        if msg[:1] != op:
            raise ShardError(
                f"shard {self.name!r} worker protocol error: expected "
                f"{op!r}, got {msg[:1]!r}"
            )
        return msg

    def _send(self, msg: bytes) -> None:
        try:
            self._conn.send_bytes(msg)
        except (BrokenPipeError, OSError) as exc:
            raise ShardError(
                f"shard {self.name!r} worker is gone "
                f"({type(exc).__name__}; exitcode {self._proc.exitcode})"
            ) from exc
        self.bytes_tx += len(msg)

    # -- commands -------------------------------------------------------------
    def ports(self) -> dict[str, Any]:
        return self._ports

    def start_window(self, window_end: float, envelopes: list[Envelope]) -> None:
        self._send(
            b"".join((b"W", _F64.pack(window_end), encode_envelopes(envelopes)))
        )

    def collect_window(
        self,
    ) -> tuple[list[Envelope], float, tuple[int, ...], float]:
        msg = self._expect(b"W")
        envelopes, offset = decode_envelopes(msg, 1)
        peek, d0, d1, d2, d3, d4, busy = _REPLY_TAIL.unpack_from(msg, offset)
        return envelopes, peek, (d0, d1, d2, d3, d4), busy

    def window(
        self, window_end: float, envelopes: list[Envelope]
    ) -> tuple[list[Envelope], float, tuple[int, ...]]:
        """Blocking one-shot window (kept for tests and direct drivers)."""
        self.start_window(window_end, envelopes)
        out, peek, delta, _busy = self.collect_window()
        return out, peek, delta

    def finish(self) -> tuple[Any, tuple[int, ...]]:
        self._send(b"F")
        return pickle.loads(self._expect(b"F")[1:])

    def stop(self) -> None:
        """Stop the child; always leaves no live process behind.

        Safe to call on an already-dead or already-stopped worker: the
        polite ``S`` command is best-effort (the pipe may already be
        broken), and any child still alive after the grace join is
        terminated outright.
        """
        if self._stopped:
            return
        self._stopped = True
        proc = self._proc
        try:
            if proc.is_alive():
                try:
                    self._conn.send_bytes(b"S")
                except (BrokenPipeError, OSError):
                    pass  # child already went away; terminate below
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        finally:
            self._conn.close()


# ------------------------------------------------------------- coordinator --


class ShardedSimulation:
    """Coordinator: windowed conservative-lookahead barrier over shards.

    ``builders`` maps shard name -> ``(builder, kwargs)``.  Each builder is a
    module-level callable ``builder(shard, **kwargs)`` (it must be picklable
    for ``parallel=True``) that wires its partition inside ``shard.sim``,
    opens boundary ports, and sets ``shard.result_fn``.

    ``parallel=True`` forks one worker process per shard and scatter-gathers
    every window; ``adaptive=True`` (default) stretches windows past the
    static lookahead whenever every shard's next live event allows it.  The
    boundary digest is schedule-invariant (see module docstring), so
    adaptive and static runs of the same scenario produce identical digests.
    """

    def __init__(
        self,
        builders: dict[str, tuple[Builder, dict[str, Any]]],
        seed: int,
        lookahead: float | None = None,
        parallel: bool = False,
        fast_path: bool | None = None,
        adaptive: bool = True,
    ) -> None:
        if not builders:
            raise ShardError("no shards")
        self.seed = seed
        self.parallel = parallel
        self.adaptive = adaptive
        self.windows = 0
        self.stretched_windows = 0
        self.envelopes_routed = 0
        self.window_wall_s = 0.0
        self._digest = hashlib.sha256()
        #: Routed-but-not-yet-digested envelopes, keyed (arrival, src_index,
        #: seq): drained into the SHA-256 once the barrier clock passes their
        #: arrival, which makes the digest window-schedule invariant.
        self._undigested: list[tuple[float, int, int, Envelope]] = []
        worker_cls = _ProcessWorker if parallel else _InlineWorker
        self.workers: dict[str, Any] = {}
        try:
            for index, (name, (builder, kwargs)) in enumerate(
                sorted(builders.items())
            ):
                self.workers[name] = worker_cls(
                    name, index, seed, fast_path, builder, kwargs
                )
            self._validate_ports(lookahead)
        except BaseException:
            # A failed builder (or port validation) must not leak the
            # already-forked sibling workers.
            self._stop_workers()
            raise
        self._names: list[str] = list(self.workers)
        self._worker_list: list[Any] = list(self.workers.values())
        n = len(self._worker_list)
        self._dst_index = {name: i for i, name in enumerate(self._names)}
        self._pending: list[list[Envelope]] = [[] for _ in range(n)]
        self._peeks: list[float] = [0.0] * n
        self._busy: list[float] = [0.0] * n
        if parallel:
            self._conns = [w.connection for w in self._worker_list]
            self._conn_index = {conn: i for i, conn in enumerate(self._conns)}
        self.results: dict[str, Any] = {}

    def _validate_ports(self, lookahead: float | None) -> None:
        ports = {name: w.ports() for name, w in self.workers.items()}
        delays: list[float] = []
        for name, desc in ports.items():
            for pid, (dst, delay) in desc["egress"].items():
                if dst not in ports:
                    raise ShardError(
                        f"egress {pid!r} in shard {name!r} targets unknown shard {dst!r}"
                    )
                if pid not in ports[dst]["ingress"]:
                    raise ShardError(
                        f"egress {pid!r} in shard {name!r} has no ingress in {dst!r}"
                    )
                delays.append(delay)
        min_delay = min(delays) if delays else float("inf")
        if lookahead is None:
            lookahead = min_delay if delays else 1.0
        if lookahead <= 0:
            raise LookaheadError(f"lookahead must be positive, got {lookahead}")
        if lookahead > min_delay:
            raise LookaheadError(
                f"lookahead {lookahead} exceeds the shortest cross-shard "
                f"link delay {min_delay}"
            )
        self.lookahead = lookahead

    @property
    def boundary_digest(self) -> str:
        """SHA-256 over every envelope routed so far, in global order."""
        return self._digest.hexdigest()

    def sync_stats(self) -> dict[str, Any]:
        """Per-run synchronization overhead (windows/s, bytes, idle time)."""
        wall = self.window_wall_s
        per_shard: dict[str, Any] = {}
        for i, name in enumerate(self._names):
            worker = self._worker_list[i]
            busy = self._busy[i]
            idle = None
            if self.parallel and wall > 0.0:
                idle = min(1.0, max(0.0, 1.0 - busy / wall))
            per_shard[name] = {
                "busy_s": busy,
                "idle_fraction": idle,
                "frame_bytes_tx": worker.bytes_tx,
                "frame_bytes_rx": worker.bytes_rx,
            }
        return {
            "parallel": self.parallel,
            "adaptive": self.adaptive,
            "windows": self.windows,
            "stretched_windows": self.stretched_windows,
            "envelopes_routed": self.envelopes_routed,
            "envelopes_per_window": (
                self.envelopes_routed / self.windows if self.windows else 0.0
            ),
            "window_wall_s": wall,
            "windows_per_wall_s": (self.windows / wall if wall > 0.0 else 0.0),
            "frame_bytes_tx": sum(w.bytes_tx for w in self._worker_list),
            "frame_bytes_rx": sum(w.bytes_rx for w in self._worker_list),
            "per_shard": per_shard,
        }

    # -- the window loop (hot: see analysis/perf.py ROOTS) ---------------------
    def _sync_window(self, window_end: float) -> list[Envelope]:
        """Scatter one window to every worker, then gather all replies.

        In parallel mode the ``window`` command is broadcast first and
        replies are collected as they arrive (``connection.wait``), so
        shard work genuinely overlaps across cores; merged output order is
        irrelevant because routing re-sorts canonically.
        """
        workers = self._worker_list
        pending = self._pending
        peeks = self._peeks
        busy_acc = self._busy
        n = len(workers)
        start = time.perf_counter()  # repro: ignore[DET001] -- sync-overhead observability only; never feeds simulation state
        for i in range(n):
            workers[i].start_window(window_end, pending[i])
            pending[i] = []
        outs: list[Envelope] = []
        if self.parallel:
            conn_index = self._conn_index
            remaining = list(self._conns)
            while remaining:
                ready = _conn_wait(remaining, _POLL_INTERVAL_S)
                if not ready:
                    for conn in remaining:
                        i = conn_index[conn]
                        if not workers[i]._proc.is_alive():
                            raise ShardError(
                                f"shard {self._names[i]!r} worker died "
                                "mid-window (exitcode "
                                f"{workers[i]._proc.exitcode})"
                            )
                    continue
                for conn in ready:
                    i = conn_index[conn]
                    sent, peek, delta, busy = workers[i].collect_window()
                    remaining.remove(conn)
                    peeks[i] = peek
                    busy_acc[i] += busy
                    publish_link_delta(delta)
                    if sent:
                        outs.extend(sent)
        else:
            for i in range(n):
                sent, peek, delta, _busy = workers[i].collect_window()
                peeks[i] = peek
                publish_link_delta(delta)
                if sent:
                    outs.extend(sent)
        self.window_wall_s += time.perf_counter() - start  # repro: ignore[DET001] -- sync-overhead observability only; never feeds simulation state
        return outs

    def _route_window(self, outs: list[Envelope], window_end: float) -> None:
        """Validate, order and buffer one barrier's cross-shard envelopes."""
        outs.sort(key=_GLOBAL_ORDER)
        taps = CAUSALITY_TAPS
        lookahead = self.lookahead
        undigested = self._undigested
        dst_index = self._dst_index
        pending = self._pending
        for env in outs:
            if taps:
                for tap in taps:
                    tap.on_route(env, window_end, lookahead)
            if env.arrival < window_end:
                raise LookaheadError(
                    f"envelope from {env.src_shard!r} arrives at "
                    f"{env.arrival}, inside the window ending {window_end}"
                )
            heappush(undigested, (env.arrival, env.src_index, env.seq, env))
            pending[dst_index[env.dst_shard]].append(env)
        self.envelopes_routed += len(outs)

    def _drain_digest(self, barrier: float) -> None:
        """Fold every envelope with ``arrival <= barrier`` into the digest.

        All future envelopes arrive strictly after the current barrier, so
        the drained sequence is the globally ``(arrival, src_index, seq)``
        sorted envelope stream — independent of the window schedule.
        """
        undigested = self._undigested
        digest = self._digest
        taps = CAUSALITY_TAPS
        while undigested and undigested[0][0] <= barrier:
            _arrival, _src, _seq, env = heappop(undigested)
            if taps:
                for tap in taps:
                    on_digest = getattr(tap, "on_digest", None)
                    if on_digest is not None:
                        on_digest(env, barrier)
            digest.update(canonical_envelope(env))

    # -- run ------------------------------------------------------------------
    def run(self, until: float) -> dict[str, Any]:
        """Advance all shards to ``until`` in synchronized windows.

        On any coordinator or worker error every sibling worker is stopped
        (terminated if necessary) before the error propagates — a failing
        shard never leaks live children.
        """
        try:
            return self._run(until)
        except BaseException:
            self._stop_workers()
            raise

    def _run(self, until: float) -> dict[str, Any]:
        if CAUSALITY_TAPS:
            for tap in CAUSALITY_TAPS:
                on_run_start = getattr(tap, "on_run_start", None)
                if on_run_start is not None:
                    on_run_start(self)
        lookahead = self.lookahead
        adaptive = self.adaptive
        pending = self._pending
        peeks = self._peeks
        t = 0.0
        window_end = min(lookahead, until)
        while t < until:
            outs = self._sync_window(window_end)
            self.windows += 1
            if outs:
                self._route_window(outs, window_end)
            self._drain_digest(window_end)
            t = window_end
            # The adaptive hint: the earliest instant anything, anywhere,
            # can happen — a shard's next live event or a routed envelope
            # waiting to be injected.  Nothing can fire before it, so the
            # earliest cross-shard consequence arrives >= next_t + lookahead.
            next_t = min(peeks)
            for bucket in pending:
                for env in bucket:
                    if env.arrival < next_t:
                        next_t = env.arrival
            if next_t == _INF:
                break  # every shard idle and nothing in flight: done
            window_end = t + lookahead
            if adaptive and next_t + lookahead > window_end:
                window_end = next_t + lookahead
                self.stretched_windows += 1
            if window_end > until:
                window_end = until
            if CAUSALITY_TAPS:
                for tap in CAUSALITY_TAPS:
                    on_window = getattr(tap, "on_window", None)
                    if on_window is not None:
                        on_window(t, window_end, next_t, lookahead)
        self._drain_digest(_INF)
        results: dict[str, Any] = {}
        for i, name in enumerate(self._names):
            result, delta = self._worker_list[i].finish()
            publish_link_delta(delta)
            results[name] = result
        self.results = results
        self._stop_workers()
        _SYNC_WINDOWS.value += self.windows
        _SYNC_STRETCHED.value += self.stretched_windows
        _SYNC_ENVELOPES.value += self.envelopes_routed
        _SYNC_FRAME_TX.value += sum(w.bytes_tx for w in self._worker_list)
        _SYNC_FRAME_RX.value += sum(w.bytes_rx for w in self._worker_list)
        return results

    def _stop_workers(self) -> None:
        """Stop every worker; never raises (cleanup must not mask errors)."""
        for worker in self.workers.values():
            try:
                worker.stop()
            except Exception:  # pragma: no cover - secondary cleanup failure
                _SYNC_STOP_ERRORS.value += 1
