"""Sharded simulation with conservative-lookahead synchronization.

Partitions a topology into :class:`Shard` workers — one event heap (and
optionally one OS process) per availability zone / tenant group — and runs
them in lock-step windows of ``lookahead`` simulated seconds.  The classic
conservative (Chandy–Misra style) argument applies: an inter-shard link's
propagation delay bounds how soon one shard can affect another, so as long
as every cross-shard link's delay is at least the window size, each shard
can run a full window without ever receiving a message "from the past".

Cross-shard links are modeled by :class:`ShardPortal` — the egress half of a
point-to-point link whose far interface lives in another shard.  The portal
replicates :class:`~repro.net.link.LinkEndpoint` fast-path float arithmetic
exactly (serialize at the head-of-line, then propagate), so a topology split
across shards produces bit-identical timestamps to the same topology wired
with in-process links.  Transmitted packets become :class:`Envelope` records;
at each window barrier the coordinator routes them to their destination
shards, which inject them as ``call_at(arrival, iface.receive, packet)``
timers in a canonical global order ``(arrival, src_shard, seq)`` — the
determinism contract that makes the multiprocessing run bit-identical to the
inline run, refereed by :attr:`ShardedSimulation.boundary_digest`.

Determinism rules for shard authors:

* every shard derives its randomness from its own namespace —
  ``RngStreams(seed).spawn(f"shard:{name}")`` — so shard-local draw order
  cannot perturb other shards;
* builders must not touch process-global mutable state that influences
  packet contents (the ``Packet.packet_id`` debug counter is explicitly
  excluded from boundary digests for this reason);
* cross-shard traffic must be picklable (plain headers + bytes/virtual
  payloads), which the RUBiS scenario's zone heartbeats satisfy.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import pickle
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.net.link import WIRE_TAPS, LinkLedger, publish_link_delta
from repro.net.packet import Packet, VirtualPayload
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Interface

#: Opt-in causality sanitizer taps (mirrors ``net.link.WIRE_TAPS``).  Each
#: tap observes shard registration, portal sends, coordinator routing and
#: envelope injection, asserting the happens-before contract at runtime.
#: Empty in production runs — :mod:`repro.analysis.causality` registers a
#: sanitizer here from a pytest fixture or an explicit context manager.
#: Taps installed before ``ShardedSimulation(parallel=True)`` forks are
#: inherited by the worker children, so shard-side violations raise in the
#: child and surface as ``ShardError`` in the parent.
CAUSALITY_TAPS: list[Any] = []


class ShardError(Exception):
    """Configuration or synchronization-contract violation."""


class LookaheadError(ShardError):
    """A cross-shard link's delay is shorter than the lookahead window."""


@dataclass
class Envelope:
    """One packet crossing a shard boundary.

    ``arrival`` is the absolute simulated time the far interface receives
    the packet — computed entirely on the sending side so the destination
    shard replays the exact link timing.  ``seq`` is the per-shard send
    counter; together with ``src_index`` it totally orders same-timestamp
    arrivals across shards.
    """

    arrival: float
    src_shard: str
    src_index: int
    seq: int
    dst_shard: str
    port_id: str
    packet: Packet
    #: Sender's local clock when the packet entered the portal.  Causality
    #: metadata only — deliberately excluded from :func:`canonical_envelope`
    #: so boundary digests stay comparable across sanitized/plain runs.
    sent_now: float = -1.0


def _canon_payload(payload: Any) -> Any:
    """Canonical, ``packet_id``-free structural form of a packet payload.

    ``repr(packet)`` is unusable for digests: tunneled payloads (ESP
    ciphertext, VPN records) embed inner :class:`Packet` objects whose
    ``packet_id`` is a process-global debug counter that differs between an
    inline run and a forked worker.  Recurse structurally instead.
    """
    if isinstance(payload, Packet):
        return (
            "pkt",
            tuple(repr(h) for h in payload.headers),
            _canon_payload(payload.payload),
            tuple(sorted((k, repr(v)) for k, v in payload.meta.items())),
        )
    if isinstance(payload, VirtualPayload):
        return ("vp", payload.size, payload.tag)
    if isinstance(payload, (bytes, bytearray)):
        return ("b", hashlib.sha256(bytes(payload)).hexdigest())
    inner = getattr(payload, "inner", None)
    if isinstance(inner, Packet):  # EspCiphertext and friends
        return (type(payload).__name__, _canon_payload(inner), len(payload))
    return (type(payload).__name__, len(payload) if hasattr(payload, "__len__") else 0)


def canonical_envelope(env: Envelope) -> bytes:
    """Stable byte form of an envelope for boundary digests."""
    packet = env.packet
    form = (
        round(env.arrival, 12),
        env.src_shard,
        env.seq,
        env.dst_shard,
        env.port_id,
        tuple(repr(h) for h in packet.headers),
        _canon_payload(packet.payload),
        tuple(sorted((k, repr(v)) for k, v in packet.meta.items())),
    )
    return repr(form).encode()


class ShardPortal:
    """Egress half of a cross-shard link (the far interface is remote).

    Mirrors the :class:`~repro.net.link.LinkEndpoint` fast path's float
    arithmetic: a packet arriving to an idle serializer starts transmitting
    at ``now``, a queued packet starts exactly when the previous
    transmission completes, and delivery is transmission-complete plus the
    propagation delay.  Each addition is performed separately (start + ser,
    then + delay) so the computed arrival is the same float an in-process
    link would produce.
    """

    def __init__(
        self,
        shard: "Shard",
        port_id: str,
        dst_shard: str,
        bandwidth_bps: float,
        delay_s: float,
        queue_packets: int = 256,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if delay_s <= 0:
            raise LookaheadError(
                f"cross-shard link {port_id!r} needs positive delay "
                "(the delay is the lookahead window)"
            )
        self.shard = shard
        self.sim = shard.sim
        self.port_id = port_id
        self.dst_shard = dst_shard
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self.queue_packets = queue_packets
        #: Serializer state: when the current back-to-back burst finishes.
        self._busy_until = 0.0
        #: Start times of accepted-but-not-yet-serializing packets; pruned
        #: lazily to compute queue occupancy for drop-tail decisions.
        self._pending_starts: list[float] = []
        self.tx_packets = 0
        self.tx_bytes = 0
        self.dropped = 0
        self.out: list[Envelope] = []

    def send(self, packet: Packet) -> bool:
        """Enqueue for transmission toward the remote shard."""
        if WIRE_TAPS:
            for tap in WIRE_TAPS:
                tap(packet)
        now = self.sim.now
        if self._busy_until > now:
            starts = self._pending_starts
            if starts and starts[0] <= now:
                self._pending_starts = starts = [s for s in starts if s > now]
            if len(starts) >= self.queue_packets:
                self.dropped += 1
                return False
            start = self._busy_until
            starts.append(start)
        else:
            start = now
        size = len(packet.payload)
        for header in packet.headers:
            size += header.header_len
        done = start + size * 8.0 / self.bandwidth_bps
        arrival = done + self.delay_s
        self._busy_until = done
        self.tx_packets += 1
        self.tx_bytes += size
        self.shard.ledger.add_tx(1, size)
        self.shard._env_seq += 1
        env = Envelope(
            arrival=arrival,
            src_shard=self.shard.name,
            src_index=self.shard.index,
            seq=self.shard._env_seq,
            dst_shard=self.dst_shard,
            port_id=self.port_id,
            packet=packet,
            sent_now=now,
        )
        if CAUSALITY_TAPS:
            for tap in CAUSALITY_TAPS:
                tap.on_send(self.shard, self, env)
        self.out.append(env)
        return True

    def account_fluid(self, n_bytes: int, n_segments: int) -> None:
        """Match :meth:`LinkEndpoint.account_fluid` for fluid-mode charging."""
        self.tx_packets += n_segments
        self.tx_bytes += n_bytes
        self.shard.ledger.add_tx(n_segments, n_bytes)

    def flush_stats(self) -> None:  # counters are unbatched here
        return None


class Shard:
    """One partition: its own simulator, RNG namespace, and boundary ports."""

    def __init__(
        self, name: str, index: int, seed: int, fast_path: bool | None = None
    ) -> None:
        self.name = name
        self.index = index
        self.sim = Simulator(fast_path=fast_path)
        #: Shard-owned link accounting: a *non-publishing* ledger installed
        #: before the builder runs, so every LinkEndpoint (and portal) this
        #: shard creates books into simulator-owned state instead of the
        #: process-global METRICS counters — which forked workers cannot
        #: update.  The coordinator collects ``take_delta()`` at every sync
        #: window and publishes it in the parent process.
        self.ledger = LinkLedger(publish=False)
        self.sim.services["link.ledger"] = self.ledger
        #: Per-shard RNG namespace: draw order inside one shard can never
        #: perturb another shard's streams.
        self.rngs = RngStreams(seed).spawn(f"shard:{name}")
        self.portals: dict[str, ShardPortal] = {}
        self.ingress: dict[str, "Interface"] = {}
        self._env_seq = 0
        self.result_fn: Callable[[], Any] | None = None
        if CAUSALITY_TAPS:
            for tap in CAUSALITY_TAPS:
                tap.on_shard(self)

    def open_egress(
        self,
        port_id: str,
        dst_shard: str,
        bandwidth_bps: float,
        delay_s: float,
        queue_packets: int = 256,
    ) -> ShardPortal:
        """Create the local egress half of a cross-shard link."""
        if port_id in self.portals:
            raise ShardError(f"duplicate egress port {port_id!r} in shard {self.name!r}")
        portal = ShardPortal(
            self, port_id, dst_shard, bandwidth_bps, delay_s, queue_packets
        )
        self.portals[port_id] = portal
        return portal

    def open_ingress(self, port_id: str, iface: "Interface") -> None:
        """Register ``iface`` as the landing point for a remote egress port."""
        if port_id in self.ingress:
            raise ShardError(f"duplicate ingress port {port_id!r} in shard {self.name!r}")
        self.ingress[port_id] = iface

    def ports(self) -> dict[str, Any]:
        """Boundary description the coordinator pairs and validates."""
        return {
            "egress": {
                pid: (p.dst_shard, p.delay_s) for pid, p in self.portals.items()
            },
            "ingress": sorted(self.ingress),
        }

    def inject(self, envelopes: list[Envelope]) -> None:
        """Schedule arrivals from other shards (already globally ordered)."""
        now = self.sim.now
        taps = CAUSALITY_TAPS
        for env in envelopes:
            if taps:
                for tap in taps:
                    tap.on_inject(self, env, now)
            if env.arrival < now:
                raise ShardError(
                    f"lookahead violated: envelope for {env.port_id!r} arrives at "
                    f"{env.arrival} but shard {self.name!r} is at {now}"
                )
            iface = self.ingress.get(env.port_id)
            if iface is None:
                raise ShardError(
                    f"shard {self.name!r} has no ingress port {env.port_id!r}"
                )
            self.sim.call_at(env.arrival, iface.receive, env.packet)

    def advance(
        self, window_end: float
    ) -> tuple[list[Envelope], float, tuple[int, ...]]:
        """Run this shard's clock to ``window_end``; return boundary traffic.

        Returns ``(envelopes, peek, ledger_delta)``: ``peek`` is the next
        local event time (``inf`` when idle) — the coordinator's early-stop
        hint; stale cancelled timers may inflate it, so correctness never
        depends on it.  ``ledger_delta`` is this window's link accounting,
        published by the coordinator in the parent process.
        """
        self.sim.run(until=window_end)
        if CAUSALITY_TAPS:
            for tap in CAUSALITY_TAPS:
                tap.on_commit(self, window_end)
        out: list[Envelope] = []
        for pid in sorted(self.portals):
            portal = self.portals[pid]
            if portal.out:
                out.extend(portal.out)
                portal.out = []
        out.sort(key=lambda e: (e.arrival, e.seq))
        return out, self.sim.peek(), self.ledger.take_delta()

    def finish(self) -> tuple[Any, tuple[int, ...]]:
        result = self.result_fn() if self.result_fn is not None else None
        delta = self.ledger.take_delta()
        self.sim.close()
        return result, delta


# ----------------------------------------------------------------- workers --

Builder = Callable[..., None]


class _InlineWorker:
    """Runs a shard on the coordinator's own event loop (no parallelism)."""

    def __init__(
        self,
        name: str,
        index: int,
        seed: int,
        fast_path: bool | None,
        builder: Builder,
        kwargs: dict[str, Any],
    ) -> None:
        self.shard = Shard(name, index, seed, fast_path=fast_path)
        builder(self.shard, **kwargs)

    def ports(self) -> dict[str, Any]:
        return self.shard.ports()

    def window(
        self, window_end: float, envelopes: list[Envelope]
    ) -> tuple[list[Envelope], float, tuple[int, ...]]:
        self.shard.inject(envelopes)
        return self.shard.advance(window_end)

    def finish(self) -> tuple[Any, tuple[int, ...]]:
        return self.shard.finish()

    def stop(self) -> None:
        return None


def _worker_main(
    conn,
    name: str,
    index: int,
    seed: int,
    fast_path: bool | None,
    builder: Builder,
    kwargs: dict[str, Any],
) -> None:
    """Child-process loop: build the shard locally, then serve commands."""
    try:
        shard = Shard(name, index, seed, fast_path=fast_path)
        builder(shard, **kwargs)
        conn.send(("ok", shard.ports()))
    except BaseException as exc:  # noqa: BLE001 - report, then die
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
        return
    while True:
        try:
            cmd, payload = conn.recv()
        except EOFError:
            return
        try:
            if cmd == "window":
                window_end, envelopes = payload
                shard.inject(envelopes)
                conn.send(("ok", shard.advance(window_end)))
            elif cmd == "finish":
                conn.send(("ok", shard.finish()))
            elif cmd == "stop":
                return
            else:  # pragma: no cover - protocol bug
                conn.send(("error", f"unknown command {cmd!r}"))
        except BaseException as exc:  # noqa: BLE001
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
            return


class _ProcessWorker:
    """Runs a shard in a forked child, speaking a tiny pipe protocol."""

    def __init__(
        self,
        name: str,
        index: int,
        seed: int,
        fast_path: bool | None,
        builder: Builder,
        kwargs: dict[str, Any],
    ) -> None:
        self.name = name
        ctx = multiprocessing.get_context("fork")
        self._conn, child_conn = ctx.Pipe()
        self._proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, name, index, seed, fast_path, builder, kwargs),
            daemon=True,
        )
        self._proc.start()
        child_conn.close()
        self._ports = self._recv()

    def _recv(self) -> Any:
        status, payload = self._conn.recv()
        if status != "ok":
            raise ShardError(f"shard {self.name!r} worker failed: {payload}")
        return payload

    def ports(self) -> dict[str, Any]:
        return self._ports

    def window(
        self, window_end: float, envelopes: list[Envelope]
    ) -> tuple[list[Envelope], float, tuple[int, ...]]:
        self._conn.send(("window", (window_end, envelopes)))
        return self._recv()

    def finish(self) -> tuple[Any, tuple[int, ...]]:
        self._conn.send(("finish", None))
        return self._recv()

    def stop(self) -> None:
        try:
            self._conn.send(("stop", None))
        except (BrokenPipeError, OSError):
            pass
        self._proc.join(timeout=10)
        if self._proc.is_alive():  # pragma: no cover - hung child
            self._proc.terminate()
        self._conn.close()


# ------------------------------------------------------------- coordinator --


class ShardedSimulation:
    """Coordinator: windowed conservative-lookahead barrier over shards.

    ``builders`` maps shard name -> ``(builder, kwargs)``.  Each builder is a
    module-level callable ``builder(shard, **kwargs)`` (it must be picklable
    for ``parallel=True``) that wires its partition inside ``shard.sim``,
    opens boundary ports, and sets ``shard.result_fn``.
    """

    def __init__(
        self,
        builders: dict[str, tuple[Builder, dict[str, Any]]],
        seed: int,
        lookahead: float | None = None,
        parallel: bool = False,
        fast_path: bool | None = None,
    ) -> None:
        if not builders:
            raise ShardError("no shards")
        self.seed = seed
        self.parallel = parallel
        self.windows = 0
        self.envelopes_routed = 0
        self._digest = hashlib.sha256()
        worker_cls = _ProcessWorker if parallel else _InlineWorker
        self.workers: dict[str, Any] = {}
        for index, (name, (builder, kwargs)) in enumerate(sorted(builders.items())):
            self.workers[name] = worker_cls(
                name, index, seed, fast_path, builder, kwargs
            )
        self._validate_ports(lookahead)
        self.results: dict[str, Any] = {}

    def _validate_ports(self, lookahead: float | None) -> None:
        ports = {name: w.ports() for name, w in self.workers.items()}
        delays: list[float] = []
        for name, desc in ports.items():
            for pid, (dst, delay) in desc["egress"].items():
                if dst not in ports:
                    raise ShardError(
                        f"egress {pid!r} in shard {name!r} targets unknown shard {dst!r}"
                    )
                if pid not in ports[dst]["ingress"]:
                    raise ShardError(
                        f"egress {pid!r} in shard {name!r} has no ingress in {dst!r}"
                    )
                delays.append(delay)
        min_delay = min(delays) if delays else float("inf")
        if lookahead is None:
            lookahead = min_delay if delays else 1.0
        if lookahead <= 0:
            raise LookaheadError(f"lookahead must be positive, got {lookahead}")
        if lookahead > min_delay:
            raise LookaheadError(
                f"lookahead {lookahead} exceeds the shortest cross-shard "
                f"link delay {min_delay}"
            )
        self.lookahead = lookahead

    @property
    def boundary_digest(self) -> str:
        """SHA-256 over every envelope routed so far, in global order."""
        return self._digest.hexdigest()

    def run(self, until: float) -> dict[str, Any]:
        """Advance all shards to ``until`` in lookahead-sized windows."""
        workers = self.workers
        pending: dict[str, list[Envelope]] = {name: [] for name in workers}
        t = 0.0
        while t < until:
            window_end = min(t + self.lookahead, until)
            outs: list[Envelope] = []
            peeks: list[float] = []
            for name in workers:
                sent, peek, delta = workers[name].window(window_end, pending[name])
                pending[name] = []
                outs.extend(sent)
                peeks.append(peek)
                publish_link_delta(delta)
            self.windows += 1
            if outs:
                # Canonical global order: arrival time, then source shard,
                # then per-source send order.  Destination shards schedule
                # injections in this order, so timer sequence numbers — and
                # therefore same-timestamp tie-breaks — are reproducible.
                outs.sort(key=lambda e: (e.arrival, e.src_index, e.seq))
                digest = self._digest
                taps = CAUSALITY_TAPS
                for env in outs:
                    if taps:
                        for tap in taps:
                            tap.on_route(env, window_end, self.lookahead)
                    if env.arrival < window_end:
                        raise LookaheadError(
                            f"envelope from {env.src_shard!r} arrives at "
                            f"{env.arrival}, inside the window ending {window_end}"
                        )
                    digest.update(canonical_envelope(env))
                    pending[env.dst_shard].append(env)
                self.envelopes_routed += len(outs)
            t = window_end
            if not outs and all(p == float("inf") for p in peeks):
                break  # every shard idle and nothing in flight: done early
        self.results = {}
        for name in workers:
            result, delta = workers[name].finish()
            publish_link_delta(delta)
            self.results[name] = result
        for worker in workers.values():
            worker.stop()
        return self.results
