"""Deterministic discrete-event simulation engine.

This subpackage is the substrate every other component runs on.  It is a
small, self-contained simpy-style engine: an :class:`~repro.sim.engine.Simulator`
owns a simulated clock and an event heap; *processes* are Python generators
that ``yield`` events (timeouts, one-shot events, other processes) and are
resumed when those events fire.

Determinism is a hard requirement for the reproduction (every experiment takes
a seed and must be bit-reproducible), so event ordering breaks ties by a
monotonic sequence number and all randomness flows through
:class:`~repro.sim.rng.RngStreams`.
"""

from repro.sim.engine import Simulator, SimTimeoutError, StopProcess, TimerHandle
from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Process, Timeout
from repro.sim.resources import Queue, Resource
from repro.sim.rng import RngStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "Queue",
    "Resource",
    "RngStreams",
    "SimTimeoutError",
    "Simulator",
    "StopProcess",
    "TimerHandle",
    "Timeout",
]
