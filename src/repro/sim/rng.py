"""Seeded, named random-number streams.

Every stochastic component draws from its own named stream derived from the
experiment seed, so adding a new component (or reordering draws inside one)
cannot perturb the randomness seen by the others.  This is the standard
variance-reduction / reproducibility discipline for simulation studies.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator


class RngStreams:
    """Factory of independent :class:`random.Random` streams keyed by name."""

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            material = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")
            ).digest()
            rng = random.Random(int.from_bytes(material[:8], "big"))
            self._streams[name] = rng
        return rng

    def spawn(self, name: str) -> "RngStreams":
        """Derive a child factory (for nested scenarios)."""
        material = hashlib.sha256(f"{self.seed}:spawn:{name}".encode()).digest()
        return RngStreams(int.from_bytes(material[:8], "big"))

    def names(self) -> Iterator[str]:
        return iter(self._streams)
