"""Shared resources for simulation processes: FIFO queues and counted resources.

These are the primitives the application substrates build on — a web server's
worker pool is a :class:`Resource`, a NIC transmit buffer or a server's accept
backlog is a :class:`Queue`.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class QueueFullError(Exception):
    """Raised (or used to fail put events) when a bounded queue overflows."""


class Queue:
    """FIFO queue between processes.

    ``put`` is immediate (and fails the returned event if the queue is
    bounded and full — modeling drop-tail behaviour); ``get`` returns an
    event that fires when an item is available.
    """

    def __init__(self, sim: "Simulator", capacity: int | None = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self.sim = sim
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self.dropped = 0  # count of rejected puts, for loss statistics

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False (and counts a drop) if full."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            return True
        if self.is_full:
            self.dropped += 1
            return False
        self._items.append(item)
        return True

    def put(self, item: Any) -> Event:
        """Put returning an event: succeeds now, or fails with QueueFullError."""
        evt = self.sim.event()
        if self.try_put(item):
            evt.succeed(item)
        else:
            evt.fail(QueueFullError(f"queue full (capacity={self.capacity})"))
        return evt

    def get(self) -> Event:
        """Event that fires with the next item (FIFO across waiters)."""
        evt = self.sim.event()
        if self._items:
            evt.succeed(self._items.popleft())
        else:
            self._getters.append(evt)
        return evt

    def try_get(self) -> tuple[bool, Any]:
        if self._items:
            return True, self._items.popleft()
        return False, None


class Resource:
    """Counted resource with FIFO waiting (e.g. a pool of server workers).

    Usage inside a process::

        req = pool.request()
        yield req
        try:
            ... hold the resource ...
        finally:
            pool.release(req)
    """

    def __init__(self, sim: "Simulator", capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        evt = self.sim.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            evt.succeed(evt)
        else:
            self._waiters.append(evt)
        return evt

    def release(self, request: Event) -> None:
        if self._in_use <= 0:
            raise RuntimeError("release without matching request")
        if self._waiters:
            nxt = self._waiters.popleft()
            nxt.succeed(nxt)  # hand the slot directly to the next waiter
        else:
            self._in_use -= 1

    def cancel(self, request: Event) -> bool:
        """Withdraw a queued (not yet granted) request; returns True if removed."""
        try:
            self._waiters.remove(request)
            return True
        except ValueError:
            return False
