"""The discrete-event simulator core: clock, event heap, run loop."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator

from repro.metrics import METRICS, RECORDER
from repro.sim.events import Event, Process, Timeout

_STEPS = METRICS.counter("sim.steps")
_CRASHES = METRICS.counter("sim.process_crashes")


class StopProcess(Exception):
    """Raised by ``Simulator.run(until=...)`` helpers to abort a run."""


class SimTimeoutError(Exception):
    """Raised when a wait exceeds its deadline (see :meth:`Simulator.with_deadline`)."""


class Simulator:
    """Deterministic discrete-event simulator.

    Events scheduled for the same simulated time fire in the order they were
    scheduled (FIFO via a monotonically increasing sequence number), which
    makes whole-experiment runs bit-reproducible for a fixed seed.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._active_process: Process | None = None
        self._crashed: list[tuple[Process, BaseException]] = []
        # Live processes in creation order (pid -> Process), pruned on
        # completion.  close() finalizes the stragglers deterministically.
        self._processes: dict[int, Process] = {}
        self._next_pid = 0

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        return self._active_process

    # -- event creation ------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Any, Any, Any], name: str | None = None
    ) -> Process:
        """Register ``generator`` as a new process starting at the current time."""
        return Process(self, generator, name=name)

    def call_at(self, when: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` at absolute simulated time ``when``."""
        if when < self._now:
            raise ValueError(f"call_at into the past: {when} < {self._now}")
        evt = Timeout(self, when - self._now)
        evt.callbacks.append(lambda _e: fn())
        return evt

    # -- scheduling (internal) ------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))

    # -- process registry (internal) -------------------------------------------
    def _register_process(self, proc: Process) -> int:
        self._next_pid += 1
        self._processes[self._next_pid] = proc
        return self._next_pid

    def _forget_process(self, proc: Process) -> None:
        self._processes.pop(proc._pid, None)

    # -- shutdown ---------------------------------------------------------------
    def close(self) -> int:
        """Deterministically finalize every still-suspended process.

        A process abandoned mid-wait (a server handler parked on a read when
        the run ends, a client whose peer aborted) holds a suspended
        generator frame.  Left alone, CPython's *garbage collector* finalizes
        it at some arbitrary later point — and its ``finally`` blocks then
        send packets and bump process-global metrics from a dead simulation,
        which is exactly the kind of nondeterminism the replay sanitizer
        exists to catch.  ``close()`` runs those finalizers *now*, in process
        creation order, then drops the event heap.  Returns the number of
        processes closed.  The simulator must not be run afterwards.
        """
        closed = 0
        errors: list[tuple[str, BaseException]] = []
        # Cleanup code may spawn new processes; sweep in rounds, but bound
        # them so a pathological spawn loop cannot hang shutdown.
        for _round in range(8):
            if not self._processes:
                break
            batch = list(self._processes.values())
            self._processes.clear()
            for proc in batch:
                if not proc.is_alive:
                    continue
                closed += 1
                try:
                    proc.close()
                except Exception as exc:
                    errors.append((proc.name, exc))
        self._processes.clear()
        self._heap.clear()
        if errors:
            detail = ", ".join(f"{name!r}: {exc!r}" for name, exc in errors)
            raise RuntimeError(f"process finalizers raised during close: {detail}")
        return closed

    def __enter__(self) -> "Simulator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- run loop --------------------------------------------------------------
    def step(self) -> None:
        """Process one event from the heap."""
        when, _seq, event = heapq.heappop(self._heap)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = []  # type: ignore[assignment]
        event._mark_processed()
        for cb in callbacks:
            cb(event)
        if self._crashed:
            # One event cascade can crash several processes; drain them all
            # so no crash is retained and misattributed to a later step.
            crashed, self._crashed = self._crashed, []
            _CRASHES.inc(len(crashed))
            if RECORDER.enabled:
                for proc, exc in crashed:
                    RECORDER.record(
                        self._now, "sim", "process_crash",
                        process=proc.name, error=repr(exc),
                    )
            names = ", ".join(repr(proc.name) for proc, _exc in crashed)
            noun = "process" if len(crashed) == 1 else "processes"
            raise RuntimeError(f"unhandled crash in {noun} {names}") from crashed[0][1]

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        ``until`` may be:
          * ``None`` — run until the event heap drains;
          * a number — run until that absolute simulated time;
          * an :class:`Event` — run until it fires, returning its value
            (re-raising its exception if it failed).
        """
        # The step counter is batched per run() call: one flush instead of a
        # counter-attribute store per event keeps the hot loop overhead nil.
        steps = 0
        try:
            if until is None:
                while self._heap:
                    self.step()
                    steps += 1
                return None

            if isinstance(until, Event):
                stop = until
                while not stop.processed:
                    if not self._heap:
                        raise RuntimeError(
                            "simulation starved: event heap drained before the "
                            "awaited event fired (deadlock?)"
                        )
                    self.step()
                    steps += 1
                if stop._ok:
                    return stop._value
                raise stop._value

            deadline = float(until)
            if deadline < self._now:
                raise ValueError(f"run(until={deadline}) is in the past (now={self._now})")
            while self._heap and self._heap[0][0] <= deadline:
                self.step()
                steps += 1
            self._now = deadline
            return None
        finally:
            _STEPS.value += steps

    # -- conveniences -----------------------------------------------------------
    def with_deadline(
        self, generator: Generator[Any, Any, Any], deadline: float
    ) -> Generator[Any, Any, Any]:
        """Wrap a process body so it fails with SimTimeoutError after ``deadline`` s.

        Usage inside a process::

            result = yield sim.process(sim.with_deadline(body(), 5.0))
        """

        def watchdog(target: Process) -> Generator[Any, Any, None]:
            yield self.timeout(deadline)
            if target.is_alive:
                target.interrupt(SimTimeoutError(deadline))

        def wrapper() -> Generator[Any, Any, Any]:
            from repro.sim.events import Interrupt

            target = self.process(generator)
            self.process(watchdog(target))
            try:
                result = yield target
            except Interrupt as exc:
                if isinstance(exc.cause, SimTimeoutError):
                    raise exc.cause from None
                raise
            return result

        return wrapper()
