"""The discrete-event simulator core: clock, event heap, run loop.

The scheduler has two lanes sharing one heap, ordered by ``(when, seq)``:

* the **Event lane** — full :class:`~repro.sim.events.Event` objects with
  callback lists, what generator processes yield and wait on; and
* the **callback lane** — raw ``fn(arg)`` timers behind a small
  :class:`TimerHandle`, scheduled with :meth:`Simulator.call_later` /
  :meth:`Simulator.call_at`.  No ``Event`` is allocated, cancellation is
  lazy (a stale heap entry pops as a no-op), and a handle can be rearmed
  in place, so per-packet machinery (link delivery, TCP retransmission
  timers) costs one heap tuple instead of a generator process.

Both lanes draw sequence numbers from the same counter, so same-timestamp
entries fire strictly in scheduling order regardless of lane — the
determinism contract the replay sanitizer enforces.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator

from repro.metrics import METRICS, RECORDER
from repro.sim.events import PROCESSED, Event, Process, Timeout

_STEPS = METRICS.counter("sim.steps")
_CRASHES = METRICS.counter("sim.process_crashes")

#: Heap-entry kinds.  Entries are ``(when, seq, kind, payload)``; ``seq`` is
#: unique, so ``kind``/``payload`` never participate in heap comparisons.
_KIND_EVENT = 0
_KIND_CALL = 1

#: Sentinel: "call fn with no argument" (None must stay passable as an arg).
_NO_ARG = object()

#: Default scheduling mode for new :class:`Simulator` instances.  ``True``
#: enables the zero-allocation fast path (callback-lane link delivery and
#: TCP timers, direct process resume on already-processed events); ``False``
#: selects the pre-fast-path reference behaviour, kept as the baseline for
#: ``benchmarks/bench_sim.py`` and the cross-mode replay-equality tests.
DEFAULT_FAST_PATH = True


class StopProcess(Exception):
    """Raised by ``Simulator.run(until=...)`` helpers to abort a run."""


class SimTimeoutError(Exception):
    """Raised when a wait exceeds its deadline (see :meth:`Simulator.with_deadline`)."""


class TimerHandle:
    """Cancellable handle for a callback-lane timer.

    Cancellation is *lazy*: :meth:`cancel` invalidates the handle and the
    already-pushed heap entry is skipped when it surfaces, so cancelling is
    O(1) with no heap surgery.  :meth:`rearm` reschedules the same handle
    (same ``fn``/``arg``) at a new delay, invalidating any pending entry —
    the idiom for self-rearming protocol timers (TCP RTO).
    """

    __slots__ = ("_sim", "_fn", "_arg", "_when", "_entry_seq")

    def __init__(self, sim: "Simulator", fn: Callable, arg: Any) -> None:
        self._sim = sim
        self._fn = fn
        self._arg = arg
        self._when = -1.0
        self._entry_seq = -1

    @property
    def when(self) -> float:
        """Absolute simulated time this timer is due (last armed time)."""
        return self._when

    @property
    def active(self) -> bool:
        """True while the timer is armed and has neither fired nor been cancelled."""
        return self._entry_seq >= 0

    def cancel(self) -> bool:
        """Deactivate the timer; returns whether it was still pending."""
        if self._entry_seq < 0:
            return False
        self._entry_seq = -1
        return True

    def rearm(self, delay: float) -> "TimerHandle":
        """(Re)schedule this timer ``delay`` seconds from now; returns self.

        Any previously pending firing is cancelled — the handle tracks only
        its newest heap entry.
        """
        if delay < 0:
            raise ValueError(f"negative timer delay: {delay!r}")
        sim = self._sim
        sim._seq += 1
        self._when = sim._now + delay
        self._entry_seq = sim._seq
        heappush(sim._heap, (self._when, sim._seq, _KIND_CALL, self))
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "active" if self.active else "inactive"
        return f"<TimerHandle {state} when={self._when}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Events scheduled for the same simulated time fire in the order they were
    scheduled (FIFO via a monotonically increasing sequence number shared by
    the Event and callback lanes), which makes whole-experiment runs
    bit-reproducible for a fixed seed.
    """

    def __init__(self, fast_path: bool | None = None) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, int, Any]] = []
        self._seq = 0
        self._fast = DEFAULT_FAST_PATH if fast_path is None else bool(fast_path)
        #: Sim-scoped service registry.  Subsystems that would otherwise need
        #: process-global state (the TCP fluid-mode peer directory, its id
        #: counter) hang it off the owning simulator here, so two simulators
        #: in one process — or one shard per worker process — never share or
        #: interleave counters.
        self.services: dict[str, Any] = {}
        self._active_process: Process | None = None
        self._crashed: list[tuple[Process, BaseException]] = []
        # Live processes in creation order (pid -> Process), pruned on
        # completion.  close() finalizes the stragglers deterministically.
        self._processes: dict[int, Process] = {}
        self._next_pid = 0

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def fast_path(self) -> bool:
        """Whether the zero-allocation scheduling fast path is enabled."""
        return self._fast

    @property
    def active_process(self) -> Process | None:
        return self._active_process

    # -- event creation ------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Any, Any, Any], name: str | None = None
    ) -> Process:
        """Register ``generator`` as a new process starting at the current time."""
        return Process(self, generator, name=name)

    # -- callback lane --------------------------------------------------------
    def call_later(self, delay: float, fn: Callable, arg: Any = _NO_ARG) -> TimerHandle:
        """Run ``fn()`` (or ``fn(arg)``) after ``delay`` simulated seconds.

        Returns a cancellable :class:`TimerHandle`.  This is the raw-callback
        scheduling lane: no :class:`Event` is allocated and the callback runs
        directly from the dispatch loop, interleaved FIFO with the Event lane
        at equal timestamps.
        """
        if not callable(fn):
            raise TypeError(f"call_later fn must be callable, got {fn!r}")
        if delay < 0:
            raise ValueError(f"negative timer delay: {delay!r}")
        # Inlined first arm (equivalent to TimerHandle(...).rearm(delay));
        # this is the hottest scheduling entry point.
        handle = TimerHandle(self, fn, arg)
        self._seq += 1
        handle._when = self._now + delay
        handle._entry_seq = self._seq
        heappush(self._heap, (handle._when, self._seq, _KIND_CALL, handle))
        return handle

    def call_at(self, when: float, fn: Callable, arg: Any = _NO_ARG) -> TimerHandle:
        """Run ``fn()`` (or ``fn(arg)``) at absolute simulated time ``when``."""
        if when < self._now:
            raise ValueError(f"call_at into the past: {when} < {self._now}")
        if not callable(fn):
            raise TypeError(f"call_at fn must be callable, got {fn!r}")
        return TimerHandle(self, fn, arg).rearm(when - self._now)

    # -- scheduling (internal) ------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> None:
        self._seq += 1
        heappush(self._heap, (self._now + delay, self._seq, _KIND_EVENT, event))

    # -- process registry (internal) -------------------------------------------
    def _register_process(self, proc: Process) -> int:
        self._next_pid += 1
        self._processes[self._next_pid] = proc
        return self._next_pid

    def _forget_process(self, proc: Process) -> None:
        self._processes.pop(proc._pid, None)

    # -- shutdown ---------------------------------------------------------------
    def close(self) -> int:
        """Deterministically finalize every still-suspended process.

        A process abandoned mid-wait (a server handler parked on a read when
        the run ends, a client whose peer aborted) holds a suspended
        generator frame.  Left alone, CPython's *garbage collector* finalizes
        it at some arbitrary later point — and its ``finally`` blocks then
        send packets and bump process-global metrics from a dead simulation,
        which is exactly the kind of nondeterminism the replay sanitizer
        exists to catch.  ``close()`` runs those finalizers *now*, in process
        creation order, then drops the event heap (pending callback-lane
        timers are discarded with it — they never fire).  Returns the number
        of processes closed.  The simulator must not be run afterwards.
        """
        closed = 0
        errors: list[tuple[str, BaseException]] = []
        # Cleanup code may spawn new processes; sweep in rounds, but bound
        # them so a pathological spawn loop cannot hang shutdown.
        for _round in range(8):
            if not self._processes:
                break
            batch = list(self._processes.values())
            self._processes.clear()
            for proc in batch:
                if not proc.is_alive:
                    continue
                closed += 1
                try:
                    proc.close()
                except Exception as exc:
                    errors.append((proc.name, exc))
        self._processes.clear()
        self._heap.clear()
        if errors:
            detail = ", ".join(f"{name!r}: {exc!r}" for name, exc in errors)
            raise RuntimeError(f"process finalizers raised during close: {detail}")
        return closed

    def __enter__(self) -> "Simulator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- run loop --------------------------------------------------------------
    def step(self) -> None:
        """Pop and dispatch one heap entry (either lane)."""
        when, seq, kind, payload = heappop(self._heap)
        self._now = when
        if kind:
            # Callback lane.  A stale entry (cancelled or rearmed handle)
            # no longer matches the handle's live sequence number: skip.
            if payload._entry_seq == seq:
                payload._entry_seq = -1
                arg = payload._arg
                if arg is _NO_ARG:
                    payload._fn()
                else:
                    payload._fn(arg)
        else:
            callbacks = payload.callbacks
            payload.callbacks = []
            payload._state = PROCESSED
            for cb in callbacks:
                cb(payload)
        if self._crashed:
            self._raise_crashed()

    def _raise_crashed(self) -> None:
        # One event cascade can crash several processes; drain them all
        # so no crash is retained and misattributed to a later step.
        crashed, self._crashed = self._crashed, []
        _CRASHES.inc(len(crashed))
        if RECORDER.enabled:
            for proc, exc in crashed:
                RECORDER.record(
                    self._now, "sim", "process_crash",
                    process=proc.name, error=repr(exc),
                )
        names = ", ".join(repr(proc.name) for proc, _exc in crashed)
        noun = "process" if len(crashed) == 1 else "processes"
        raise RuntimeError(f"unhandled crash in {noun} {names}") from crashed[0][1]

    def peek(self) -> float:
        """Time of the next scheduled entry, or ``inf`` if none.

        May report a cancelled timer's deadline: stale callback-lane entries
        stay heaped until they surface (lazy deletion).
        """
        return self._heap[0][0] if self._heap else float("inf")

    def peek_live(self) -> float:
        """Time of the next *live* entry, or ``inf`` if none.

        Unlike :meth:`peek`, leading stale callback-lane entries (cancelled
        or rearmed handles awaiting lazy deletion) are popped off the heap
        first — they would dispatch as no-ops anyway, so removing them is
        observably identical and deterministic.  The sharded coordinator
        uses this as its adaptive-lookahead hint: a dead RTO timer must not
        cap how far an idle shard's window can stretch.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[2] == _KIND_CALL and entry[3]._entry_seq != entry[1]:
                heappop(heap)
                continue
            return entry[0]
        return float("inf")

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        ``until`` may be:
          * ``None`` — run until the event heap drains;
          * a number — run until that absolute simulated time;
          * an :class:`Event` — run until it fires, returning its value
            (re-raising its exception if it failed).
        """
        # The step counter is batched per run() call: one flush instead of a
        # counter-attribute store per event keeps the hot loop overhead nil.
        # Each loop below inlines the body of :meth:`step` — at millions of
        # events per run, the per-event method call is measurable.
        steps = 0
        heap = self._heap
        pop = heappop
        no_arg = _NO_ARG
        try:
            if until is None:
                while heap:
                    steps += 1
                    when, seq, kind, payload = pop(heap)
                    self._now = when
                    if kind:
                        if payload._entry_seq == seq:
                            payload._entry_seq = -1
                            arg = payload._arg
                            if arg is no_arg:
                                payload._fn()
                            else:
                                payload._fn(arg)
                    else:
                        callbacks = payload.callbacks
                        payload.callbacks = []
                        payload._state = PROCESSED
                        for cb in callbacks:
                            cb(payload)
                    if self._crashed:
                        self._raise_crashed()
                return None

            if isinstance(until, Event):
                stop = until
                while not stop.processed:
                    if not heap:
                        raise RuntimeError(
                            "simulation starved: event heap drained before the "
                            "awaited event fired (deadlock?)"
                        )
                    steps += 1
                    when, seq, kind, payload = pop(heap)
                    self._now = when
                    if kind:
                        if payload._entry_seq == seq:
                            payload._entry_seq = -1
                            arg = payload._arg
                            if arg is no_arg:
                                payload._fn()
                            else:
                                payload._fn(arg)
                    else:
                        callbacks = payload.callbacks
                        payload.callbacks = []
                        payload._state = PROCESSED
                        for cb in callbacks:
                            cb(payload)
                    if self._crashed:
                        self._raise_crashed()
                if stop._ok:
                    return stop._value
                raise stop._value

            deadline = float(until)
            if deadline < self._now:
                raise ValueError(f"run(until={deadline}) is in the past (now={self._now})")
            while heap and heap[0][0] <= deadline:
                steps += 1
                when, seq, kind, payload = pop(heap)
                self._now = when
                if kind:
                    if payload._entry_seq == seq:
                        payload._entry_seq = -1
                        arg = payload._arg
                        if arg is no_arg:
                            payload._fn()
                        else:
                            payload._fn(arg)
                else:
                    callbacks = payload.callbacks
                    payload.callbacks = []
                    payload._state = PROCESSED
                    for cb in callbacks:
                        cb(payload)
                if self._crashed:
                    self._raise_crashed()
            self._now = deadline
            return None
        finally:
            _STEPS.value += steps

    # -- conveniences -----------------------------------------------------------
    def with_deadline(
        self, generator: Generator[Any, Any, Any], deadline: float
    ) -> Generator[Any, Any, Any]:
        """Wrap a process body so it fails with SimTimeoutError after ``deadline`` s.

        Usage inside a process::

            result = yield sim.process(sim.with_deadline(body(), 5.0))
        """

        def watchdog(target: Process) -> Generator[Any, Any, None]:
            yield self.timeout(deadline)
            if target.is_alive:
                target.interrupt(SimTimeoutError(deadline))

        def wrapper() -> Generator[Any, Any, Any]:
            from repro.sim.events import Interrupt

            target = self.process(generator)
            self.process(watchdog(target))
            try:
                result = yield target
            except Interrupt as exc:
                if isinstance(exc.cause, SimTimeoutError):
                    raise exc.cause from None
                raise
            return result

        return wrapper()
