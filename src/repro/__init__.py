"""Reproduction of "Secure Networking for Virtual Machines in the Cloud"
(Komu et al., IEEE CLUSTER 2012).

Subpackages
-----------
``repro.sim``
    Deterministic discrete-event engine everything runs on.
``repro.crypto``
    From-scratch cryptographic primitives + the calibrated CPU cost model.
``repro.net``
    Packet network: addressing, links, routing, NAT, UDP/TCP/ICMP, DNS
    (+DNSSEC), Teredo.
``repro.hip``
    The paper's contribution: the Host Identity Protocol stack.
``repro.tls``
    The SSL comparison point: TLS 1.2 and OpenVPN-style tunnels.
``repro.apps``
    HTTP, reverse proxy/load balancer, database, RUBiS, load generators,
    iperf.
``repro.cloud``
    IaaS substrate: VMs, hypervisors, datacenters, providers, migration.
``repro.scenarios``
    Builders and runners for every experiment in the paper's evaluation.

See DESIGN.md for the system inventory and EXPERIMENTS.md for results.
"""

__version__ = "1.0.0"
