"""Minimal HTTP/1.1 with persistent connections.

Requests and responses serialize to real header bytes (request line, Host,
Content-Length, ...), so wire sizes are honest; bodies may be real bytes or
:class:`~repro.net.packet.VirtualPayload` for big pages.  Keep-alive is the
default, as in the paper's jmeter/HAProxy setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from repro.apps.streams import BufferedReader
from repro.net.packet import VirtualPayload

CRLF = b"\r\n"


@dataclass
class HttpRequest:
    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes | VirtualPayload = b""

    def head_bytes(self) -> bytes:
        lines = [f"{self.method} {self.path} HTTP/1.1"]
        headers = dict(self.headers)
        headers.setdefault("Content-Length", str(len(self.body)))
        for key, value in headers.items():
            lines.append(f"{key}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


@dataclass
class HttpResponse:
    status: int
    reason: str = "OK"
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes | VirtualPayload = b""

    def head_bytes(self) -> bytes:
        lines = [f"HTTP/1.1 {self.status} {self.reason}"]
        headers = dict(self.headers)
        headers.setdefault("Content-Length", str(len(self.body)))
        for key, value in headers.items():
            lines.append(f"{key}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


class HttpError(Exception):
    """Malformed HTTP message."""


def write_request(stream, request: HttpRequest) -> Generator:
    yield from stream.send(request.head_bytes())
    if len(request.body):
        yield from stream.send(request.body)


def write_response(stream, response: HttpResponse) -> Generator:
    yield from stream.send(response.head_bytes())
    if len(response.body):
        yield from stream.send(response.body)


def _parse_head(raw: bytes) -> tuple[list[str], dict[str, str]]:
    try:
        text = raw.decode("ascii")
    except UnicodeDecodeError as exc:
        raise HttpError("non-ASCII bytes in HTTP head") from exc
    lines = text.split("\r\n")
    start = lines[0].split(" ")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        key, sep, value = line.partition(":")
        if not sep:
            raise HttpError(f"malformed header line {line!r}")
        headers[key.strip()] = value.strip()
    return start, headers


def read_request(reader: BufferedReader) -> Generator:
    """Process-generator: parse one request; returns HttpRequest."""
    raw = yield from reader.read_until(CRLF + CRLF)
    start, headers = _parse_head(raw[:-4])
    if len(start) != 3:
        raise HttpError(f"malformed request line {start!r}")
    method, path, _version = start
    length = int(headers.get("Content-Length", "0"))
    body: bytes | VirtualPayload = b""
    if length:
        body = yield from reader.read_exactly(length)
    return HttpRequest(method=method, path=path, headers=headers, body=body)


def read_response(reader: BufferedReader) -> Generator:
    """Process-generator: parse one response; returns HttpResponse."""
    raw = yield from reader.read_until(CRLF + CRLF)
    start, headers = _parse_head(raw[:-4])
    if len(start) < 2:
        raise HttpError(f"malformed status line {start!r}")
    status = int(start[1])
    reason = " ".join(start[2:]) if len(start) > 2 else ""
    length = int(headers.get("Content-Length", "0"))
    body: bytes | VirtualPayload = b""
    if length:
        body = yield from reader.read_exactly(length)
    return HttpResponse(status=status, reason=reason, headers=headers, body=body)
