"""A MySQL-stand-in database server with an optional query cache.

The paper's RUBiS deployment backs three web VMs with one MySQL 5.1 "large"
instance; its §V-B experiments toggle the MySQL *query cache* (off for the
Figure-2 throughput runs, on for the 120 req/s httperf run).  This module
reproduces the relevant behaviour:

* a typed query model (primary-key lookup / index scan / full scan / write)
  whose service costs scale with the table spec;
* stochastic service times (exponential around the class mean) so queueing
  tails emerge near saturation — the mechanism behind the throughput
  decline of the secured scenarios at 50 clients;
* a query cache keyed on the literal query string, invalidated by writes to
  the same table, serving hits at ~1/20 the cost;
* a wire protocol over any stream (plain TCP, TLS, or TCP-over-HIP), so the
  same server runs in all three security scenarios.

Wire format: requests are length-prefixed query strings; responses carry a
status byte, row count, and a result payload sized ``rows * row_bytes``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator

from repro.apps.streams import BufferedReader, PlainStream, StreamClosed, TlsStream, wrap_stream
from repro.net.packet import VirtualPayload
from repro.net.tcp import TcpError, TcpStack
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.addresses import IPAddress
    from repro.net.node import Node
    from repro.tls.connection import TlsServerContext

CACHE_HIT_FACTOR = 0.05  # cache hits cost this fraction of the class mean


@dataclass(frozen=True)
class TableSpec:
    """Size/cost description of one table."""

    name: str
    rows: int
    row_bytes: int = 256
    pk_lookup_cost: float = 1.2e-3  # CPU seconds on the reference core
    index_scan_cost: float = 3.0e-3  # for a typical bounded scan
    full_scan_cost_per_krow: float = 2.0e-3
    write_cost: float = 2.0e-3


class QueryError(Exception):
    """Malformed query or unknown table."""


@dataclass(frozen=True)
class Query:
    """Parsed query: ``<kind> <table> <key> [rows]``."""

    kind: str  # "pk" | "scan" | "full" | "write"
    table: str
    key: str
    rows: int = 1

    def to_wire(self) -> bytes:
        text = f"{self.kind} {self.table} {self.key} {self.rows}"
        return text.encode("ascii")

    @classmethod
    def from_wire(cls, data: bytes) -> "Query":
        parts = data.decode("ascii", errors="replace").split(" ")
        if len(parts) != 4:
            raise QueryError(f"malformed query {data!r}")
        kind, table, key, rows = parts
        if kind not in ("pk", "scan", "full", "write"):
            raise QueryError(f"unknown query kind {kind!r}")
        try:
            return cls(kind=kind, table=table, key=key, rows=int(rows))
        except ValueError as exc:
            raise QueryError(f"bad row count in {data!r}") from exc


@dataclass
class DbStats:
    queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    writes: int = 0
    errors: int = 0
    busy_seconds: float = 0.0


class DbServer:
    """The database node process: accept loop + per-connection workers."""

    def __init__(
        self,
        node: "Node",
        tcp: TcpStack,
        port: int,
        tables: list[TableSpec],
        cache_enabled: bool = False,
        tls_ctx: "TlsServerContext | None" = None,
        rng=None,
        stochastic: bool = True,
    ) -> None:
        self.node = node
        self.sim = node.sim
        self.tcp = tcp
        self.port = port
        self.tables = {t.name: t for t in tables}
        self.cache_enabled = cache_enabled
        self.tls_ctx = tls_ctx
        self.rng = rng
        self.stochastic = stochastic
        if stochastic and rng is None:
            raise ValueError("stochastic service times require an rng stream")
        self._cache: dict[str, int] = {}  # query text -> result rows
        self._cache_tables: dict[str, set[str]] = {}  # table -> cached keys
        self.stats = DbStats()
        self.listener = tcp.listen(port)
        self.sim.process(self._accept_loop(), name=f"db-accept-{node.name}")

    def _accept_loop(self) -> Generator:
        while True:
            conn = yield self.listener.accept()
            self.sim.process(self._serve_conn(conn), name=f"db-conn-{self.node.name}")

    def _serve_conn(self, conn) -> Generator:
        if self.tls_ctx is not None:
            from repro.tls.connection import TlsError, tls_server_handshake

            try:
                tls = yield from tls_server_handshake(conn, self.node, self.tls_ctx, self.rng)
            except (TlsError, TcpError):
                conn.abort()
                return
            stream = TlsStream(tls)
        else:
            stream = PlainStream(conn)
        reader = BufferedReader(stream)
        try:
            while True:
                head = yield from reader.read_exactly(4)
                if isinstance(head, VirtualPayload):
                    break
                (qlen,) = struct.unpack(">I", head)
                raw = yield from reader.read_exactly(qlen)
                if isinstance(raw, VirtualPayload):
                    break
                yield from self._execute(stream, bytes(raw))
        except (StreamClosed, TcpError):
            return

    def _execute(self, stream, raw: bytes) -> Generator:
        try:
            query = Query.from_wire(raw)
            table = self.tables.get(query.table)
            if table is None:
                raise QueryError(f"no such table {query.table!r}")
        except QueryError:
            self.stats.errors += 1
            yield from stream.send(struct.pack(">BII", 1, 0, 0))
            return
        self.stats.queries += 1
        text = raw.decode("ascii", errors="replace")

        if query.kind == "write":
            self.stats.writes += 1
            self._invalidate(query.table)
            cost = self._service_time(table.write_cost)
            yield from self.node.cpu_work(cost)
            self.stats.busy_seconds += cost
            yield from stream.send(struct.pack(">BII", 0, 1, 0))
            return

        cached_rows = self._cache.get(text) if self.cache_enabled else None
        if cached_rows is not None:
            self.stats.cache_hits += 1
            base = self._class_cost(query, table)
            cost = self._service_time(base * CACHE_HIT_FACTOR)
            rows = cached_rows
        else:
            self.stats.cache_misses += 1
            cost = self._service_time(self._class_cost(query, table))
            rows = min(query.rows, table.rows)
            if self.cache_enabled:
                self._cache[text] = rows
                self._cache_tables.setdefault(query.table, set()).add(text)
        yield from self.node.cpu_work(cost)
        self.stats.busy_seconds += cost
        result_bytes = rows * table.row_bytes
        yield from stream.send(struct.pack(">BII", 0, rows, result_bytes))
        if result_bytes:
            yield from stream.send(VirtualPayload(result_bytes, tag="db-rows"))

    def _class_cost(self, query: Query, table: TableSpec) -> float:
        if query.kind == "pk":
            return table.pk_lookup_cost
        if query.kind == "scan":
            return table.index_scan_cost
        return table.full_scan_cost_per_krow * max(1.0, table.rows / 1000.0)

    def _service_time(self, mean: float) -> float:
        if not self.stochastic:
            return mean
        # Exponential service times: the M/M/1-ish tail behaviour near
        # saturation is what bends the Figure-2 curves down.
        return self.rng.expovariate(1.0 / mean)

    def _invalidate(self, table: str) -> None:
        for text in self._cache_tables.pop(table, ()):
            self._cache.pop(text, None)


class DbClient:
    """Client-side connection (used by web servers), one per upstream slot."""

    def __init__(self, node: "Node", tcp: TcpStack, addr: "IPAddress", port: int,
                 rng=None, use_tls: bool = False) -> None:
        self.node = node
        self.sim = node.sim
        self.tcp = tcp
        self.addr = addr
        self.port = port
        self.rng = rng
        self.use_tls = use_tls
        self._stream = None
        self._reader: BufferedReader | None = None
        self._session = None  # TLS resumption state

    def connect(self) -> Generator:
        conn = yield self.sim.process(self.tcp.open_connection(self.addr, self.port))
        if self.use_tls:
            from repro.tls.connection import tls_client_handshake

            tls = yield from tls_client_handshake(
                # repro: ignore[SEC004] -- tuple-insensitive over-approximation: only session[0] (the public session id) reaches the wire; the master secret element feeds the key schedule, never a sink
                conn, self.node, self.rng, session=self._session
            )
            self._session = (tls.session_id, tls.master_secret)
            self._stream = TlsStream(tls)
        else:
            self._stream = PlainStream(conn)
        self._reader = BufferedReader(self._stream)

    def query(self, query: Query) -> Generator:
        """Process-generator: one round trip; returns (rows, result_bytes)."""
        if self._stream is None:
            yield from self.connect()
        raw = query.to_wire()
        yield from self._stream.send(struct.pack(">I", len(raw)) + raw)
        head = yield from self._reader.read_exactly(9)
        status, rows, result_bytes = struct.unpack(">BII", bytes(head))
        if status != 0:
            raise QueryError(f"server rejected query {query}")
        if result_bytes:
            yield from self._reader.read_exactly(result_bytes)
        return rows, result_bytes

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None
            self._reader = None


def rubis_tables() -> list[TableSpec]:
    """Table sizes loosely after the RUBiS dataset."""
    return [
        TableSpec(name="users", rows=100_000, row_bytes=180),
        TableSpec(name="items", rows=33_000, row_bytes=420),
        TableSpec(name="bids", rows=600_000, row_bytes=120),
        TableSpec(name="comments", rows=60_000, row_bytes=300),
        TableSpec(name="categories", rows=20, row_bytes=64,
                  pk_lookup_cost=4e-4, index_scan_cost=8e-4),
    ]
