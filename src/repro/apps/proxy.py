"""Reverse HTTP proxy / load balancer (HAProxy's role in Figure 1).

Consumers speak plain HTTP to the proxy; the proxy forwards each request to
a backend web server over the scenario's secure transport:

* **basic** — plain TCP;
* **ssl** — TLS with session resumption on persistent upstream connections;
* **hip** — plain TCP addressed to the backend's LSI/HIT, which the HIP
  daemon on the proxy node transparently protects (this is exactly the
  paper's "reverse proxy terminates HIP" deployment — end users never see
  HIP).

Balancing is round-robin across backends (the paper's HAProxy config), with
least-connections available for the ablation.  Upstream connections are
pooled and persistent, so handshakes amortize as they did in the testbed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator

from repro.apps.http import (
    HttpResponse,
    read_request,
    read_response,
    write_request,
    write_response,
)
from repro.apps.streams import BufferedReader, PlainStream, StreamClosed, TlsStream
from repro.metrics import METRICS, RECORDER
from repro.net.tcp import TcpError, TcpStack
from repro.sim.resources import Queue

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.addresses import IPAddress
    from repro.net.node import Node

PROXY_CPU_PER_REQUEST = 2.0e-4  # header parse + rewrite + scheduling
PROXY_CPU_PER_BYTE = 4.0e-9  # copy cost

_REQUESTS = METRICS.counter("proxy.requests")
_RESPONSES = METRICS.counter("proxy.responses")
_UPSTREAM_ERRORS = METRICS.counter("proxy.upstream_errors")
_CLIENT_ERRORS = METRICS.counter("proxy.client_errors")
_UPSTREAM_DIALS = METRICS.counter("proxy.upstream_dials")
_POOL_REUSES = METRICS.counter("proxy.pool_reuses")
_POOL_WAITS = METRICS.counter("proxy.pool_waits")
_REQUEST_T = METRICS.histogram("proxy.request_s")


@dataclass
class Backend:
    """One upstream web server."""

    addr: "IPAddress"
    port: int
    use_tls: bool = False
    active: int = 0  # in-flight requests (for least-connections)
    served: int = 0


@dataclass
class _Upstream:
    stream: object
    reader: BufferedReader
    backend: Backend


@dataclass
class ProxyStats:
    requests: int = 0
    responses: int = 0
    upstream_errors: int = 0
    client_errors: int = 0


class ReverseProxy:
    """HTTP reverse proxy with round-robin / least-connections balancing."""

    def __init__(
        self,
        node: "Node",
        tcp: TcpStack,
        port: int,
        backends: list[Backend],
        rng,
        algorithm: str = "round-robin",
        max_pool_per_backend: int = 16,
        backend_keepalive: bool = False,
    ) -> None:
        if not backends:
            raise ValueError("proxy needs at least one backend")
        if algorithm not in ("round-robin", "least-connections"):
            raise ValueError(f"unknown balancing algorithm {algorithm!r}")
        self.node = node
        self.sim = node.sim
        self.tcp = tcp
        self.rng = rng
        self.backends = backends
        self.algorithm = algorithm
        # HAProxy 1.3 (the paper's version) cannot keep backend connections
        # alive across requests: every forwarded request opens a fresh
        # upstream TCP connection.  TLS *sessions* still resume across
        # connections (abbreviated handshakes), as OpenSSL's cache would.
        self.backend_keepalive = backend_keepalive
        self.stats = ProxyStats()
        self._rr = itertools.cycle(range(len(backends)))
        self._pools: dict[int, Queue] = {id(b): Queue(self.sim) for b in backends}
        self._pool_sizes: dict[int, int] = {id(b): 0 for b in backends}
        self._max_pool = max_pool_per_backend
        self._tls_sessions: dict[int, tuple[bytes, bytes]] = {}
        self.listener = tcp.listen(port)
        self.sim.process(self._accept_loop(), name=f"proxy-accept-{node.name}")

    # -- balancing -----------------------------------------------------------------
    def _pick_backend(self) -> Backend:
        if self.algorithm == "least-connections":
            return min(self.backends, key=lambda b: (b.active, b.served))
        return self.backends[next(self._rr)]

    # -- upstream pool ---------------------------------------------------------------
    def _acquire_upstream(self, backend: Backend) -> Generator:
        pool = self._pools[id(backend)]
        ok, upstream = pool.try_get()
        if ok:
            _POOL_REUSES.inc()
            if RECORDER.enabled:
                RECORDER.record(
                    self.sim.now, "proxy", "pool_acquire",
                    node=self.node.name, port=upstream.backend.port, source="pool",
                )
            return upstream
        if self._pool_sizes[id(backend)] < self._max_pool:
            # Claim the slot before the (yielding) dial so concurrent acquirers
            # cannot over-open; the slot must be returned if the dial fails or
            # the backend's capacity leaks away one failed connect at a time.
            self._pool_sizes[id(backend)] += 1
            try:
                upstream = yield from self._open_upstream(backend)
            except BaseException:
                self._pool_sizes[id(backend)] -= 1
                raise
            if RECORDER.enabled:
                RECORDER.record(
                    self.sim.now, "proxy", "pool_acquire",
                    node=self.node.name, port=backend.port, source="dial",
                )
            return upstream
        _POOL_WAITS.inc()
        upstream = yield pool.get()
        if RECORDER.enabled:
            RECORDER.record(
                self.sim.now, "proxy", "pool_acquire",
                node=self.node.name, port=upstream.backend.port, source="wait",
            )
        return upstream

    def _open_upstream(self, backend: Backend) -> Generator:
        _UPSTREAM_DIALS.inc()
        conn = yield self.sim.process(
            self.tcp.open_connection(backend.addr, backend.port)
        )
        if backend.use_tls:
            from repro.tls.connection import tls_client_handshake

            tls = yield from tls_client_handshake(
                conn, self.node, self.rng, session=self._tls_sessions.get(id(backend))
            )
            self._tls_sessions[id(backend)] = (tls.session_id, tls.master_secret)
            stream = TlsStream(tls)
        else:
            stream = PlainStream(conn)
        return _Upstream(stream=stream, reader=BufferedReader(stream), backend=backend)

    def _release_upstream(self, upstream: _Upstream, broken: bool) -> None:
        if RECORDER.enabled:
            RECORDER.record(
                self.sim.now, "proxy", "pool_release",
                node=self.node.name, port=upstream.backend.port, broken=broken,
            )
        if broken:
            upstream.stream.close()
            self._pool_sizes[id(upstream.backend)] -= 1
            return
        self._pools[id(upstream.backend)].try_put(upstream)

    # -- client side -------------------------------------------------------------------
    def _accept_loop(self) -> Generator:
        while True:
            conn = yield self.listener.accept()
            self.sim.process(self._serve_client(conn), name=f"proxy-conn-{self.node.name}")

    def _serve_client(self, conn) -> Generator:
        stream = PlainStream(conn)
        reader = BufferedReader(stream)
        try:
            while True:
                try:
                    request = yield from read_request(reader)
                except (StreamClosed, TcpError):
                    # A close between requests is the normal end of a
                    # keep-alive session, not a client error.  Bytes already
                    # buffered mean the peer died mid-request-head.  (A close
                    # mid-body with an empty buffer still looks graceful;
                    # acceptable for the GET-only workloads simulated here.)
                    if reader.pending:
                        self.stats.client_errors += 1
                        _CLIENT_ERRORS.inc()
                    return
                self.stats.requests += 1
                _REQUESTS.inc()
                started = self.sim.now
                if RECORDER.enabled:
                    RECORDER.record(
                        self.sim.now, "proxy", "request",
                        node=self.node.name, path=request.path,
                    )
                try:
                    yield from self.node.cpu_work(PROXY_CPU_PER_REQUEST)
                    response = yield from self._forward(request)
                    if response is None:
                        self.stats.upstream_errors += 1
                        _UPSTREAM_ERRORS.inc()
                        yield from write_response(
                            stream, HttpResponse(status=502, reason="Bad Gateway")
                        )
                        continue
                    yield from self.node.cpu_work(PROXY_CPU_PER_BYTE * len(response.body))
                    yield from write_response(stream, response)
                except (StreamClosed, TcpError):
                    self.stats.client_errors += 1
                    _CLIENT_ERRORS.inc()
                    return
                self.stats.responses += 1
                _RESPONSES.inc()
                _REQUEST_T.observe(self.sim.now - started)
        finally:
            stream.close()

    def _forward(self, request) -> Generator:
        backend = self._pick_backend()
        backend.active += 1
        try:
            if not self.backend_keepalive:
                upstream = None
                try:
                    upstream = yield from self._open_upstream(backend)
                    yield from write_request(upstream.stream, request)
                    response = yield from read_response(upstream.reader)
                except (StreamClosed, TcpError):
                    return None
                finally:
                    # Close on every exit, not just success: an upstream that
                    # dies mid-exchange must not leak its TCP connection.
                    if upstream is not None:
                        upstream.stream.close()
                backend.served += 1
                return response
            for attempt in range(2):  # one retry on a stale pooled connection
                try:
                    upstream = yield from self._acquire_upstream(backend)
                except (StreamClosed, TcpError):
                    return None
                try:
                    yield from write_request(upstream.stream, request)
                    response = yield from read_response(upstream.reader)
                except (StreamClosed, TcpError):
                    self._release_upstream(upstream, broken=True)
                    continue
                self._release_upstream(upstream, broken=False)
                backend.served += 1
                return response
            return None
        finally:
            backend.active -= 1
