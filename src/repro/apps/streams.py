"""Uniform byte-stream interface over TCP and TLS connections.

The application protocols (HTTP, the database wire protocol) are written
against this small interface so the exact same code runs in all three
security scenarios of the paper:

* **basic** — :class:`PlainStream` over TCP (which may itself ride an LSI /
  HIT destination, making it HIP-protected transparently);
* **ssl** — :class:`TlsStream` over a TLS connection.

``send`` and ``recv_chunk`` are process-generators in both cases (plain TCP
writes complete immediately; TLS writes charge record-protection CPU).
"""

from __future__ import annotations

from typing import Generator

from repro.net.packet import VirtualPayload
from repro.net.tcp import TcpConnection, TcpError
from repro.tls.connection import TlsConnection


class StreamClosed(Exception):
    """EOF or reset while reading."""


class PlainStream:
    """Adapter: TcpConnection -> stream interface."""

    def __init__(self, conn: TcpConnection) -> None:
        self.conn = conn

    def send(self, payload) -> Generator:
        self.conn.write(payload)
        return
        yield  # pragma: no cover - makes this a generator

    def recv_chunk(self) -> Generator:
        chunk = yield self.conn.recv()
        if isinstance(chunk, (bytes, bytearray)) and len(chunk) == 0:
            raise StreamClosed("connection closed")
        return chunk

    def close(self) -> None:
        self.conn.close()

    @property
    def transport(self) -> TcpConnection:
        return self.conn


class TlsStream:
    """Adapter: TlsConnection -> stream interface."""

    def __init__(self, tls: TlsConnection) -> None:
        self.tls = tls

    def send(self, payload) -> Generator:
        yield from self.tls.write(payload)

    def recv_chunk(self) -> Generator:
        try:
            chunk = yield from self.tls.recv_record()
        except TcpError as exc:
            raise StreamClosed(str(exc)) from exc
        return chunk

    def close(self) -> None:
        self.tls.close()

    @property
    def transport(self) -> TcpConnection:
        return self.tls.conn


def wrap_stream(conn) -> PlainStream | TlsStream:
    if isinstance(conn, TlsConnection):
        return TlsStream(conn)
    if isinstance(conn, TcpConnection):
        return PlainStream(conn)
    raise TypeError(f"cannot wrap {type(conn).__name__} as a stream")


class BufferedReader:
    """Byte-accurate reading over a chunked stream.

    ``read_until`` requires the delimited region to be real bytes (protocol
    heads always are); ``read_exactly`` spans real and virtual chunks and
    returns a VirtualPayload if any part was virtual.
    """

    def __init__(self, stream) -> None:
        self.stream = stream
        self._chunks: list = []  # buffered, in arrival order

    @property
    def pending(self) -> bool:
        """True if bytes were received but not yet consumed by a read."""
        return bool(self._chunks)

    def _buffered_real_prefix(self) -> bytes:
        parts = []
        for chunk in self._chunks:
            if isinstance(chunk, VirtualPayload):
                break
            parts.append(bytes(chunk))
        return b"".join(parts)

    def read_until(self, delim: bytes, max_bytes: int = 65536) -> Generator:
        """Process-generator: read through ``delim``; returns bytes incl. it."""
        while True:
            prefix = self._buffered_real_prefix()
            idx = prefix.find(delim)
            if idx >= 0:
                need = idx + len(delim)
                data = yield from self.read_exactly(need)
                assert isinstance(data, (bytes, bytearray))
                return bytes(data)
            if len(prefix) > max_bytes:
                raise ValueError(f"delimiter not found within {max_bytes} bytes")
            if self._chunks and isinstance(self._chunks[-1], VirtualPayload):
                raise ValueError("virtual payload encountered while scanning for delimiter")
            chunk = yield from self.stream.recv_chunk()
            self._chunks.append(chunk)

    def read_exactly(self, n: int) -> Generator:
        """Process-generator: consume exactly ``n`` stream bytes."""
        got = 0
        parts: list = []
        all_real = True
        while got < n:
            if not self._chunks:
                chunk = yield from self.stream.recv_chunk()
                self._chunks.append(chunk)
            chunk = self._chunks.pop(0)
            take = min(len(chunk), n - got)
            if take < len(chunk):
                if isinstance(chunk, VirtualPayload):
                    self._chunks.insert(0, VirtualPayload(len(chunk) - take, tag=chunk.tag))
                    chunk = VirtualPayload(take, tag=chunk.tag)
                else:
                    self._chunks.insert(0, bytes(chunk[take:]))
                    chunk = bytes(chunk[:take])
            got += take
            if isinstance(chunk, VirtualPayload):
                all_real = False
            else:
                parts.append(bytes(chunk))
        if all_real:
            return b"".join(parts)
        return VirtualPayload(n)
