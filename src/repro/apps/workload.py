"""Load generators: closed-loop concurrent clients and open-loop fixed rate.

* :class:`ClosedLoopClients` plays jmeter's role in the Figure-2 runs: N
  concurrent clients, each looping "send random GET → wait for response",
  counting *successful* requests per second.  Requests that exceed the
  client timeout are failures (and the connection is torn down and
  reopened), which is how overload turns into the measured throughput
  decline.
* :class:`OpenLoopGenerator` plays httperf's role in the §V-B response-time
  run: requests arrive at a fixed rate on fresh connections regardless of
  completions, and the response-time distribution is recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator

from repro.apps.http import HttpRequest, read_response, write_request
from repro.apps.rubis import pick_request, request_path
from repro.apps.streams import BufferedReader, PlainStream, StreamClosed
from repro.net.tcp import TcpError, TcpStack
from repro.sim.events import AnyOf, Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.addresses import IPAddress
    from repro.net.node import Node


@dataclass
class Sample:
    """One request's outcome."""

    start: float
    latency: float
    ok: bool
    kind: str


@dataclass
class WorkloadResult:
    samples: list[Sample] = field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def duration(self) -> float:
        return max(self.finished_at - self.started_at, 1e-12)

    @property
    def successes(self) -> int:
        return sum(1 for s in self.samples if s.ok)

    @property
    def failures(self) -> int:
        return sum(1 for s in self.samples if not s.ok)

    @property
    def throughput(self) -> float:
        """Successful requests per second (the paper's Figure-2 metric)."""
        return self.successes / self.duration

    def latencies(self, only_ok: bool = True) -> list[float]:
        return [s.latency for s in self.samples if s.ok or not only_ok]

    def mean_latency(self) -> float:
        xs = self.latencies()
        return sum(xs) / len(xs) if xs else float("nan")


class ClosedLoopClients:
    """N concurrent keep-alive HTTP clients against one frontend."""

    def __init__(
        self,
        node: "Node",
        tcp: TcpStack,
        frontend: "IPAddress",
        port: int,
        n_clients: int,
        rng,
        timeout: float = 5.0,
        think_time: float = 0.0,
        warmup: float = 0.0,
    ) -> None:
        self.node = node
        self.sim = node.sim
        self.tcp = tcp
        self.frontend = frontend
        self.port = port
        self.n_clients = n_clients
        self.rng = rng
        self.timeout = timeout
        self.think_time = think_time
        self.warmup = warmup
        self.result = WorkloadResult()

    def run(self, duration: float) -> Generator:
        """Process-generator: run all clients for ``duration`` seconds."""
        self.result.started_at = self.sim.now + self.warmup
        stop_at = self.sim.now + self.warmup + duration
        clients = [
            self.sim.process(self._client(i, stop_at), name=f"client-{i}")
            for i in range(self.n_clients)
        ]
        for proc in clients:
            yield proc
        self.result.finished_at = stop_at
        return self.result

    def _client(self, index: int, stop_at: float) -> Generator:
        stream: PlainStream | None = None
        reader: BufferedReader | None = None
        while self.sim.now < stop_at:
            if stream is None:
                connect_started = self.sim.now
                try:
                    conn = yield self.sim.process(
                        self.tcp.open_connection(self.frontend, self.port)
                    )
                except TcpError:
                    # jmeter counts refused connections as failed samples.
                    if connect_started >= self.result.started_at:
                        self.result.samples.append(Sample(
                            start=connect_started,
                            latency=self.sim.now - connect_started,
                            ok=False, kind="connect",
                        ))
                    yield self.sim.timeout(0.1)
                    continue
                stream = PlainStream(conn)
                reader = BufferedReader(stream)
            rt = pick_request(self.rng)
            request = HttpRequest(
                method="GET", path=request_path(rt, self.rng),
                headers={"Host": "rubis.example"},
            )
            start = self.sim.now
            exchange = self.sim.process(
                self._one_exchange(stream, reader, request), name=f"xchg-{index}"
            )
            deadline = self.sim.timeout(self.timeout)
            winner, value = yield AnyOf(self.sim, [exchange, deadline])
            latency = self.sim.now - start
            ok = winner is exchange and value is True
            if start >= self.result.started_at and start < stop_at:
                self.result.samples.append(
                    Sample(start=start, latency=latency, ok=ok, kind=rt.name)
                )
            if not ok:
                # jmeter-style: timeout abandons the connection.
                if exchange.is_alive:
                    exchange.interrupt("timeout")
                stream.transport.abort()
                stream = None
                reader = None
            if self.think_time:
                yield self.sim.timeout(self.rng.expovariate(1.0 / self.think_time))
        if stream is not None:
            stream.close()

    def _one_exchange(self, stream, reader, request) -> Generator:
        try:
            yield from write_request(stream, request)
            response = yield from read_response(reader)
            return response.status == 200
        except (StreamClosed, TcpError, ValueError):
            return False
        except Interrupt:
            return False


class OpenLoopGenerator:
    """httperf-style fixed-rate generator: one fresh connection per request."""

    def __init__(
        self,
        node: "Node",
        tcp: TcpStack,
        frontend: "IPAddress",
        port: int,
        rate: float,
        rng,
        timeout: float = 10.0,
        fixed_path: str | None = None,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.node = node
        self.sim = node.sim
        self.tcp = tcp
        self.frontend = frontend
        self.port = port
        self.rate = rate
        self.rng = rng
        self.timeout = timeout
        # httperf hits one URI; None samples the full RUBiS mix instead.
        self.fixed_path = fixed_path
        self.result = WorkloadResult()
        self._outstanding = 0

    def run(self, duration: float) -> Generator:
        """Process-generator: generate for ``duration``; returns the result."""
        self.result.started_at = self.sim.now
        interval = 1.0 / self.rate
        n = int(duration * self.rate)
        for _ in range(n):
            self.sim.process(self._one_call(), name="httperf-call")
            yield self.sim.timeout(interval)
        # Drain stragglers up to the timeout horizon.
        yield self.sim.timeout(self.timeout)
        self.result.finished_at = self.result.started_at + duration
        return self.result

    def _pick(self):
        if self.fixed_path is not None:
            from repro.apps.rubis import _BY_PATH

            rt = _BY_PATH.get(self.fixed_path.partition("?")[0])
            if rt is None:
                raise ValueError(f"unknown RUBiS path {self.fixed_path!r}")
            return rt
        return pick_request(self.rng)

    def _one_call(self) -> Generator:
        rt = self._pick()
        start = self.sim.now
        self._outstanding += 1
        try:
            body = self.sim.process(self._exchange(rt), name="httperf-xchg")
            deadline = self.sim.timeout(self.timeout)
            winner, value = yield AnyOf(self.sim, [body, deadline])
            ok = winner is body and value is True
            if not ok and body.is_alive:
                body.interrupt("timeout")
        finally:
            self._outstanding -= 1
        self.result.samples.append(
            Sample(start=start, latency=self.sim.now - start, ok=ok, kind=rt.name)
        )

    def _exchange(self, rt) -> Generator:
        try:
            conn = yield self.sim.process(
                self.tcp.open_connection(self.frontend, self.port)
            )
        except (TcpError, Interrupt):
            return False
        stream = PlainStream(conn)
        reader = BufferedReader(stream)
        request = HttpRequest(
            method="GET", path=request_path(rt, self.rng),
            headers={"Host": "rubis.example", "Connection": "close"},
        )
        try:
            yield from write_request(stream, request)
            response = yield from read_response(reader)
            stream.close()
            return response.status == 200
        except (StreamClosed, TcpError, ValueError):
            return False
        except Interrupt:
            stream.transport.abort()
            return False
