"""Application substrates for the paper's experiments.

Everything the evaluation runs: HTTP (:mod:`~repro.apps.http`) over plain
TCP, TLS or HIP; the reverse HTTP proxy / load balancer
(:mod:`~repro.apps.proxy`, HAProxy's role); a SQL-ish database server with
query cache (:mod:`~repro.apps.database`, MySQL's role); the RUBiS-like
auction workload (:mod:`~repro.apps.rubis`); closed- and open-loop load
generators (:mod:`~repro.apps.workload`, jmeter/httperf's roles); and bulk
TCP measurement (:mod:`~repro.apps.iperf`).
"""

from repro.apps.streams import BufferedReader, PlainStream, TlsStream, wrap_stream

__all__ = ["BufferedReader", "PlainStream", "TlsStream", "wrap_stream"]
