"""iperf-style bulk TCP throughput measurement (Figure 3, left axis).

One sender streams a virtual payload to a receiver for a fixed byte count;
throughput is goodput measured at the receiver, exactly as ``iperf -c``
reports.  TCP windows are configurable to match the paper's 85.3 KB server
/ 16 KB client setting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.net.packet import VirtualPayload
from repro.net.tcp import TcpError, TcpStack

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.addresses import IPAddress

IPERF_PORT = 5001
SERVER_WINDOW = 87373  # 85.3 KB, the paper's iperf server window
CLIENT_WINDOW = 16384  # 16 KB


@dataclass
class IperfResult:
    bytes_received: int
    duration: float
    first_byte_at: float

    @property
    def throughput_mbps(self) -> float:
        return self.bytes_received * 8.0 / self.duration / 1e6


class IperfServer:
    """Accepts one connection per measurement and counts received bytes."""

    def __init__(self, tcp: TcpStack, port: int = IPERF_PORT,
                 window: int = SERVER_WINDOW) -> None:
        self.tcp = tcp
        self.sim = tcp.node.sim
        self.listener = tcp.listen(port, recv_window=window)

    def measure_once(self) -> Generator:
        """Process-generator: serve one sender; returns IperfResult."""
        conn = yield self.listener.accept()
        first_at = None
        total = 0
        while True:
            chunk = yield conn.recv()
            if isinstance(chunk, (bytes, bytearray)) and len(chunk) == 0:
                break
            if first_at is None:
                first_at = self.sim.now
            total += len(chunk)
        end = self.sim.now
        start = first_at if first_at is not None else end
        return IperfResult(
            bytes_received=total, duration=max(end - start, 1e-9), first_byte_at=start,
        )


def iperf_client(
    tcp: TcpStack,
    server_addr: "IPAddress",
    n_bytes: int,
    port: int = IPERF_PORT,
    window: int = CLIENT_WINDOW,
) -> Generator:
    """Process-generator: connect and stream ``n_bytes``; returns on close."""
    conn = yield tcp.node.sim.process(
        tcp.open_connection(server_addr, port, recv_window=window)
    )
    conn.write(VirtualPayload(n_bytes, tag="iperf"))
    conn.close()
    yield conn.closed
    return conn


def run_iperf(
    server_tcp: TcpStack,
    client_tcp: TcpStack,
    server_addr: "IPAddress",
    n_bytes: int = 20_000_000,
    port: int = IPERF_PORT,
) -> Generator:
    """Process-generator: one complete measurement; returns IperfResult."""
    sim = server_tcp.node.sim
    server = IperfServer(server_tcp, port=port)
    measurement = sim.process(server.measure_once(), name="iperf-server")
    sim.process(
        iperf_client(client_tcp, server_addr, n_bytes, port=port), name="iperf-client"
    )
    result = yield measurement
    server.listener.close()
    return result
