"""RUBiS-like auction web application (the paper's test service).

RUBiS (Rice University Bidding System) models eBay: browse categories,
search items, view items/bids/users.  We reproduce its *performance shape* —
a CPU-light web tier issuing 1-3 database queries per page — with a weighted
request mix, page sizes and render costs in the ballpark of the PHP
version's published profiles.

A :class:`RubisWebServer` accepts HTTP (plain or TLS — or transparently over
HIP when the proxy connects to its LSI/HIT), resolves the request type from
the path, executes its queries through a pooled database connection, charges
render CPU, and responds with a page-sized body.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.apps.database import DbClient, Query, QueryError
from repro.apps.http import HttpResponse, read_request, write_response
from repro.apps.streams import BufferedReader, PlainStream, StreamClosed, TlsStream
from repro.net.packet import VirtualPayload
from repro.net.tcp import TcpError, TcpStack
from repro.sim.resources import Queue, Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.addresses import IPAddress
    from repro.net.node import Node
    from repro.tls.connection import TlsServerContext


@dataclass(frozen=True)
class RequestType:
    """One page type: its queries, render cost and page size."""

    name: str
    path: str
    weight: float
    queries: tuple[tuple[str, str, int], ...]  # (kind, table, rows)
    render_cost: float  # CPU seconds on the reference core
    page_bytes: int
    parse_cost: float = 3.0e-4


REQUEST_MIX: tuple[RequestType, ...] = (
    RequestType(
        name="BrowseCategories", path="/browse", weight=0.14,
        queries=(("scan", "categories", 20),),
        render_cost=1.7e-3, page_bytes=20480, parse_cost=5.0e-4,
    ),
    RequestType(
        name="SearchItemsByCategory", path="/search", weight=0.27,
        queries=(("scan", "items", 25),),
        render_cost=3.2e-3, page_bytes=40960, parse_cost=5.0e-4,
    ),
    RequestType(
        name="ViewItem", path="/item", weight=0.26,
        queries=(("pk", "items", 1), ("scan", "bids", 10)),
        render_cost=2.6e-3, page_bytes=30720, parse_cost=5.0e-4,
    ),
    RequestType(
        name="ViewBidHistory", path="/bids", weight=0.12,
        queries=(("pk", "items", 1), ("scan", "bids", 20)),
        render_cost=2.3e-3, page_bytes=35840, parse_cost=5.0e-4,
    ),
    RequestType(
        name="ViewUserInfo", path="/user", weight=0.21,
        queries=(("pk", "users", 1), ("scan", "comments", 10)),
        render_cost=2.0e-3, page_bytes=25600, parse_cost=5.0e-4,
    ),
)

#: Lightweight JSON-API flavour of the mix for the scale scenario: the same
#: tables and access patterns, but single-query, sub-MSS payloads (the shape
#: of RUBiS behind a 2012 AJAX frontend).  Small pages keep the per-session
#: packet budget low enough that a million sessions fit in a benchmark run;
#: the full-page mix above stays the fidelity reference.
SCALE_API_MIX: tuple[RequestType, ...] = (
    RequestType(
        name="ApiBrowse", path="/api/browse", weight=0.45,
        queries=(("scan", "categories", 8),),
        render_cost=4.0e-4, page_bytes=1360, parse_cost=1.0e-4,
    ),
    RequestType(
        name="ApiItem", path="/api/item", weight=0.35,
        queries=(("pk", "items", 1),),
        render_cost=3.0e-4, page_bytes=1024, parse_cost=1.0e-4,
    ),
    RequestType(
        name="ApiBids", path="/api/bids", weight=0.20,
        queries=(("pk", "items", 1),),
        render_cost=3.0e-4, page_bytes=640, parse_cost=1.0e-4,
    ),
)

_BY_PATH = {rt.path: rt for rt in REQUEST_MIX}
_BY_PATH.update({rt.path: rt for rt in SCALE_API_MIX})


def _weighted(mix: tuple[RequestType, ...], rng) -> RequestType:
    total = sum(rt.weight for rt in mix)
    x = rng.random() * total
    for rt in mix:
        x -= rt.weight
        if x <= 0:
            return rt
    return mix[-1]


def pick_request(rng) -> RequestType:
    """Draw a request type from the weighted mix."""
    return _weighted(REQUEST_MIX, rng)


def pick_scale_request(rng) -> RequestType:
    """Draw a request type from the lightweight API mix."""
    return _weighted(SCALE_API_MIX, rng)


def request_path(rt: RequestType, rng) -> str:
    """A concrete URL with a randomized entity key (cache-relevant)."""
    return f"{rt.path}?id={rng.randrange(10_000)}"


@dataclass
class WebStats:
    requests: int = 0
    responses: int = 0
    errors: int = 0
    db_time: float = 0.0


class RubisWebServer:
    """One lightweight web VM of the paper's web tier."""

    def __init__(
        self,
        node: "Node",
        tcp: TcpStack,
        port: int,
        db_addr: "IPAddress",
        db_port: int,
        rng,
        tls_ctx: "TlsServerContext | None" = None,  # inbound TLS (ssl scenario)
        db_use_tls: bool = False,  # outbound TLS to the database
        db_pool_size: int = 4,
        max_workers: int = 32,
        pressure_threshold: int = 0,
        pressure_alpha: float = 0.02,
    ) -> None:
        self.node = node
        self.sim = node.sim
        self.tcp = tcp
        self.rng = rng
        self.tls_ctx = tls_ctx
        self.stats = WebStats()
        # Contention model for the 613 MB micro instances: per-request CPU
        # inflates linearly with concurrent requests (buffer churn, GC,
        # context switching).  A mode that saturates its web tier sees its
        # in-flight count — and therefore its effective service time — grow
        # with offered load, so its *throughput declines* past saturation:
        # the paper's "threshold beyond which the overall performance
        # suffers", which only the secured scenarios reach by 50 clients.
        self.pressure_threshold = pressure_threshold
        self.pressure_alpha = pressure_alpha
        self.inflight = 0
        self._workers = Resource(self.sim, max_workers)
        # Database connection pool: persistent connections, FIFO checkout.
        self._db_pool: Queue = Queue(self.sim)
        for _ in range(db_pool_size):
            self._db_pool.try_put(
                DbClient(node, tcp, db_addr, db_port, rng=rng, use_tls=db_use_tls)
            )
        self.listener = tcp.listen(port)
        self.sim.process(self._accept_loop(), name=f"web-accept-{node.name}")

    def _accept_loop(self) -> Generator:
        while True:
            conn = yield self.listener.accept()
            self.sim.process(self._serve_conn(conn), name=f"web-conn-{self.node.name}")

    def _serve_conn(self, conn) -> Generator:
        if self.tls_ctx is not None:
            from repro.tls.connection import TlsError, tls_server_handshake

            try:
                tls = yield from tls_server_handshake(conn, self.node, self.tls_ctx, self.rng)
            except (TlsError, TcpError):
                conn.abort()
                return
            stream = TlsStream(tls)
        else:
            stream = PlainStream(conn)
        reader = BufferedReader(stream)
        try:
            while True:
                request = yield from read_request(reader)
                req_slot = self._workers.request()
                yield req_slot
                try:
                    yield from self._handle(stream, request)
                finally:
                    self._workers.release(req_slot)
        except (StreamClosed, TcpError):
            return

    def _pressure_factor(self) -> float:
        excess = max(0, self.inflight - self.pressure_threshold)
        return 1.0 + self.pressure_alpha * excess

    def _handle(self, stream, request) -> Generator:
        self.stats.requests += 1
        self.inflight += 1
        try:
            yield from self._handle_inner(stream, request)
        finally:
            self.inflight -= 1

    def _handle_inner(self, stream, request) -> Generator:
        path = request.path.partition("?")[0]
        rt = _BY_PATH.get(path)
        if rt is None:
            yield from write_response(stream, HttpResponse(status=404, reason="Not Found"))
            self.stats.errors += 1
            return
        yield from self.node.cpu_work(rt.parse_cost * self._pressure_factor())
        db = yield self._db_pool.get()
        t0 = self.sim.now
        try:
            for kind, table, rows in rt.queries:
                key = request.path.partition("=")[2] or "0"
                yield from db.query(Query(kind=kind, table=table, key=key, rows=rows))
        except (QueryError, TcpError, StreamClosed):
            db.close()
            self._db_pool.try_put(db)
            self.stats.errors += 1
            yield from write_response(
                stream, HttpResponse(status=503, reason="DB Unavailable")
            )
            return
        self._db_pool.try_put(db)
        self.stats.db_time += self.sim.now - t0
        # Render times vary (template complexity, row counts): exponential
        # around the class mean, like the DB's service model.
        render = self.rng.expovariate(1.0 / rt.render_cost)
        yield from self.node.cpu_work(render * self._pressure_factor())
        response = HttpResponse(
            status=200,
            headers={"Server": "rubis-sim", "Content-Type": "text/html"},
            body=VirtualPayload(rt.page_bytes, tag=rt.name),
        )
        yield from write_response(stream, response)
        self.stats.responses += 1
