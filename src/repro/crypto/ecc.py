"""Elliptic-curve cryptography on NIST P-256: ECDSA and ECDH.

The paper notes (§IV-B) that "the latest version of HIP supports also
elliptic-curve cryptography that can curb the processing costs without
hardware acceleration" — so the HIP stack here can be configured with ECDSA
host identities, and the crypto-cost ablation benchmark quantifies exactly
that claim.

Points use Jacobian projective coordinates internally to avoid a modular
inversion per addition; only scalar-mult entry/exit converts to affine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.numtheory import bytes_to_int, int_to_bytes, modinv
from repro.crypto.sha import HASHES


@dataclass(frozen=True)
class Curve:
    """Short Weierstrass curve y^2 = x^3 + a*x + b over GF(p)."""

    name: str
    p: int
    a: int
    b: int
    gx: int
    gy: int
    n: int  # order of the base point

    @property
    def byte_length(self) -> int:
        return (self.p.bit_length() + 7) // 8


P256 = Curve(
    name="P-256",
    p=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF,
    a=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFC,
    b=0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B,
    gx=0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296,
    gy=0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5,
    n=0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551,
)

# The point at infinity in Jacobian coordinates.
_INFINITY = (0, 1, 0)


def _jacobian_double(pt: tuple[int, int, int], curve: Curve) -> tuple[int, int, int]:
    x, y, z = pt
    if not y or not z:
        return _INFINITY
    p = curve.p
    ysq = (y * y) % p
    s = (4 * x * ysq) % p
    m = (3 * x * x + curve.a * pow(z, 4, p)) % p
    nx = (m * m - 2 * s) % p
    ny = (m * (s - nx) - 8 * ysq * ysq) % p
    nz = (2 * y * z) % p
    return nx, ny, nz


def _jacobian_add(
    p1: tuple[int, int, int], p2: tuple[int, int, int], curve: Curve
) -> tuple[int, int, int]:
    if not p1[2]:
        return p2
    if not p2[2]:
        return p1
    p = curve.p
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    z1sq = (z1 * z1) % p
    z2sq = (z2 * z2) % p
    u1 = (x1 * z2sq) % p
    u2 = (x2 * z1sq) % p
    s1 = (y1 * z2sq * z2) % p
    s2 = (y2 * z1sq * z1) % p
    if u1 == u2:
        if s1 != s2:
            return _INFINITY
        return _jacobian_double(p1, curve)
    h = (u2 - u1) % p
    r = (s2 - s1) % p
    hsq = (h * h) % p
    hcu = (hsq * h) % p
    v = (u1 * hsq) % p
    nx = (r * r - hcu - 2 * v) % p
    ny = (r * (v - nx) - s1 * hcu) % p
    nz = (h * z1 * z2) % p
    return nx, ny, nz


def _to_affine(pt: tuple[int, int, int], curve: Curve) -> tuple[int, int] | None:
    x, y, z = pt
    if not z:
        return None
    p = curve.p
    zinv = modinv(z, p)
    zinv2 = (zinv * zinv) % p
    return (x * zinv2) % p, (y * zinv2 * zinv) % p


def scalar_mult(k: int, point: tuple[int, int] | None, curve: Curve) -> tuple[int, int] | None:
    """k * P via left-to-right double-and-add.  ``None`` is the point at infinity."""
    if point is None or k % curve.n == 0:
        return None
    k %= curve.n
    acc = _INFINITY
    base = (point[0], point[1], 1)
    for bit in bin(k)[2:]:
        acc = _jacobian_double(acc, curve)
        if bit == "1":
            acc = _jacobian_add(acc, base, curve)
    return _to_affine(acc, curve)


def point_add(
    p1: tuple[int, int] | None, p2: tuple[int, int] | None, curve: Curve
) -> tuple[int, int] | None:
    if p1 is None:
        return p2
    if p2 is None:
        return p1
    j = _jacobian_add((p1[0], p1[1], 1), (p2[0], p2[1], 1), curve)
    return _to_affine(j, curve)


def is_on_curve(point: tuple[int, int] | None, curve: Curve) -> bool:
    if point is None:
        return True
    x, y = point
    return (y * y - (x * x * x + curve.a * x + curve.b)) % curve.p == 0


@dataclass(frozen=True)
class EcdsaKeyPair:
    """ECDSA key pair on a given curve (default P-256)."""

    curve: Curve
    private: int
    public: tuple[int, int]

    @classmethod
    def generate(cls, rng: random.Random, curve: Curve = P256) -> "EcdsaKeyPair":
        private = rng.randrange(1, curve.n)
        public = scalar_mult(private, (curve.gx, curve.gy), curve)
        assert public is not None
        return cls(curve=curve, private=private, public=public)

    def public_bytes(self) -> bytes:
        """Uncompressed SEC1 encoding: 0x04 || X || Y."""
        size = self.curve.byte_length
        return b"\x04" + int_to_bytes(self.public[0], size) + int_to_bytes(self.public[1], size)

    @staticmethod
    def public_from_bytes(data: bytes, curve: Curve = P256) -> tuple[int, int]:
        size = curve.byte_length
        if len(data) != 1 + 2 * size or data[0] != 0x04:
            raise ValueError("expected uncompressed SEC1 point encoding")
        x = bytes_to_int(data[1 : 1 + size])
        y = bytes_to_int(data[1 + size :])
        point = (x, y)
        if not is_on_curve(point, curve):
            raise ValueError("point is not on the curve")
        return point

    def sign(self, message: bytes, rng: random.Random, hash_name: str = "sha256") -> bytes:
        """ECDSA signature, encoded as fixed-width r || s."""
        curve = self.curve
        e = _hash_to_int(message, curve, hash_name)
        while True:
            k = rng.randrange(1, curve.n)
            pt = scalar_mult(k, (curve.gx, curve.gy), curve)
            assert pt is not None
            r = pt[0] % curve.n
            if r == 0:
                continue
            s = (modinv(k, curve.n) * (e + r * self.private)) % curve.n
            if s == 0:
                continue
            size = curve.byte_length
            return int_to_bytes(r, size) + int_to_bytes(s, size)

    def ecdh(self, peer_public: tuple[int, int]) -> bytes:
        """ECDH shared secret: x-coordinate of d * Q_peer."""
        if not is_on_curve(peer_public, self.curve):
            raise ValueError("peer public point is not on the curve")
        pt = scalar_mult(self.private, peer_public, self.curve)
        if pt is None:
            raise ValueError("degenerate ECDH result")
        return int_to_bytes(pt[0], self.curve.byte_length)


def ecdsa_verify(
    public: tuple[int, int],
    message: bytes,
    signature: bytes,
    curve: Curve = P256,
    hash_name: str = "sha256",
) -> bool:
    """Verify a fixed-width r || s ECDSA signature; False on any failure."""
    size = curve.byte_length
    if len(signature) != 2 * size:
        return False
    r = bytes_to_int(signature[:size])
    s = bytes_to_int(signature[size:])
    if not (1 <= r < curve.n and 1 <= s < curve.n):
        return False
    if not is_on_curve(public, curve):
        return False
    e = _hash_to_int(message, curve, hash_name)
    w = modinv(s, curve.n)
    u1 = (e * w) % curve.n
    u2 = (r * w) % curve.n
    pt = point_add(
        scalar_mult(u1, (curve.gx, curve.gy), curve),
        scalar_mult(u2, public, curve),
        curve,
    )
    if pt is None:
        return False
    return pt[0] % curve.n == r


def _hash_to_int(message: bytes, curve: Curve, hash_name: str) -> int:
    digest = HASHES[hash_name](message)
    e = bytes_to_int(digest)
    # Left-truncate to the order's bit length per FIPS 186-4 (counting the
    # full digest width, including leading zero bits).
    excess = 8 * len(digest) - curve.n.bit_length()
    if excess > 0:
        e >>= excess
    return e
