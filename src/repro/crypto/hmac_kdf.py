"""HMAC (RFC 2104) and HKDF-style key derivation (RFC 5869) over our SHA.

HIP derives its ESP keys from the Diffie-Hellman secret via a KEYMAT
expansion (RFC 5201 §6.5) which is structurally HKDF-expand; TLS 1.2 uses a
P_hash PRF which is also provided here so both protocol stacks share one
audited primitive set.
"""

from __future__ import annotations

from repro.crypto.sha import BLOCK_SIZES, HASHES


def hmac_digest(key: bytes, message: bytes, hash_name: str = "sha256") -> bytes:
    """HMAC per RFC 2104."""
    try:
        hash_fn = HASHES[hash_name]
        block = BLOCK_SIZES[hash_name]
    except KeyError:
        raise ValueError(f"unknown hash {hash_name!r}") from None
    if len(key) > block:
        key = hash_fn(key)
    key = key.ljust(block, b"\x00")
    ipad = bytes(b ^ 0x36 for b in key)
    opad = bytes(b ^ 0x5C for b in key)
    return hash_fn(opad + hash_fn(ipad + message))


def hkdf_extract(salt: bytes, ikm: bytes, hash_name: str = "sha256") -> bytes:
    """HKDF-Extract: PRK = HMAC(salt, IKM)."""
    return hmac_digest(salt, ikm, hash_name)


def hkdf_expand(prk: bytes, info: bytes, length: int, hash_name: str = "sha256") -> bytes:
    """HKDF-Expand: derive ``length`` bytes of output keying material."""
    digest_len = len(hmac_digest(b"", b"", hash_name))
    if length > 255 * digest_len:
        raise ValueError("requested keying material too long")
    okm = b""
    t = b""
    counter = 1
    while len(okm) < length:
        t = hmac_digest(prk, t + info + bytes([counter]), hash_name)
        okm += t
        counter += 1
    return okm[:length]


def hip_keymat(dh_secret: bytes, hit_i: bytes, hit_r: bytes, length: int) -> bytes:
    """HIP KEYMAT generation (RFC 5201 §6.5).

    KEYMAT = K1 | K2 | ... where K1 = hash(Kij | sort(HIT-I, HIT-R) | 0x01)
    and Ki = hash(Kij | Ki-1 | i).  The sort uses the numeric HIT order so
    initiator and responder derive identical material.
    """
    lo, hi = sorted((hit_i, hit_r))
    hash_fn = HASHES["sha256"]
    out = b""
    prev = b""
    counter = 1
    while len(out) < length:
        if counter == 1:
            prev = hash_fn(dh_secret + lo + hi + bytes([counter]))
        else:
            prev = hash_fn(dh_secret + prev + bytes([counter & 0xFF]))
        out += prev
        counter += 1
    return out[:length]


def tls_prf(secret: bytes, label: bytes, seed: bytes, length: int) -> bytes:
    """TLS 1.2 PRF (RFC 5246 §5): P_SHA256(secret, label + seed)."""
    full_seed = label + seed
    out = b""
    a = full_seed
    while len(out) < length:
        a = hmac_digest(secret, a)
        out += hmac_digest(secret, a + full_seed)
    return out[:length]
