"""HMAC (RFC 2104) and HKDF-style key derivation (RFC 5869) over our SHA.

HIP derives its ESP keys from the Diffie-Hellman secret via a KEYMAT
expansion (RFC 5201 §6.5) which is structurally HKDF-expand; TLS 1.2 uses a
P_hash PRF which is also provided here so both protocol stacks share one
audited primitive set.

:class:`HmacKey` is the steady-state fast path: it folds the ipad and opad
key blocks through the hash **once at construction** and every subsequent
:meth:`HmacKey.digest` resumes from the cached midstates — zero
key-schedule or pad work per message, and two compression calls fewer than
the naive construction.  ESP security associations and TLS connections each
hold their ``HmacKey`` for the lifetime of the key (``repro/hip/esp.py``,
``repro/tls/connection.py``); ``hmac_digest`` stays as the one-shot
convenience wrapper.

Two interchangeable midstate engines produce byte-identical output:

* ``fast`` (default) — stdlib :mod:`hashlib` objects; ``.copy()`` *is*
  midstate resumption, at C speed.  ``hashlib`` is part of every CPython
  build, so this adds no dependency.
* ``pure`` — this package's own compression-function API
  (:mod:`repro.crypto.sha`), the auditable reference engine.

Select with ``REPRO_CRYPTO_BACKEND=pure|fast`` (read at import);
differential tests run both engines against each other and against
``hmac``/``hashlib``.  The pure SHA implementations remain the canonical
spec either way — HITs, puzzles and all one-shot ``sha1``/``sha256``
callers always use them.
"""

from __future__ import annotations

import hashlib
import os
import struct

from repro.metrics import METRICS
from repro.crypto.sha import (
    BLOCK_SIZES,
    COMPRESS,
    DIGEST_SIZES,
    HASHES,
    IVS,
    PACK_FORMATS,
    md_finish,
)

_HMAC_OPS = METRICS.counter("crypto.hmac_ops")
_HMAC_BYTES = METRICS.counter("crypto.hmac_bytes")

_HASHLIB = {"sha1": hashlib.sha1, "sha256": hashlib.sha256}
HMAC_BACKEND = os.environ.get("REPRO_CRYPTO_BACKEND", "fast")
if HMAC_BACKEND not in ("fast", "pure"):
    raise ValueError(f"REPRO_CRYPTO_BACKEND must be 'fast' or 'pure', got {HMAC_BACKEND!r}")


class HmacKey:
    """HMAC instance bound to one key, with cached ipad/opad midstates."""

    __slots__ = ("hash_name", "digest_size", "_compress", "_fmt", "_inner", "_outer")

    def __init__(self, key: bytes, hash_name: str = "sha256", backend: str | None = None) -> None:
        try:
            hash_fn = HASHES[hash_name]
            block = BLOCK_SIZES[hash_name]
            compress = COMPRESS[hash_name]
        except KeyError:
            raise ValueError(f"unknown hash {hash_name!r}") from None
        self.hash_name = hash_name
        self.digest_size = DIGEST_SIZES[hash_name]
        self._fmt = PACK_FORMATS[hash_name]
        if len(key) > block:
            key = hash_fn(key)
        key = key.ljust(block, b"\x00")
        ipad = bytes(b ^ 0x36 for b in key)
        opad = bytes(b ^ 0x5C for b in key)
        if (backend or HMAC_BACKEND) == "fast":
            self._compress = None
            self._inner = _HASHLIB[hash_name](ipad)
            self._outer = _HASHLIB[hash_name](opad)
        else:
            self._compress = compress
            iv = IVS[hash_name]
            self._inner = compress(iv, ipad)
            self._outer = compress(iv, opad)

    def digest(self, message: bytes) -> bytes:
        """HMAC(key, message), resuming from the cached pad midstates."""
        _HMAC_OPS.value += 1
        n = len(message)
        _HMAC_BYTES.value += n
        compress = self._compress
        if compress is None:
            h = self._inner.copy()
            h.update(message)
            outer = self._outer.copy()
            outer.update(h.digest())
            return outer.digest()
        state = self._inner
        full = n - (n % 64)
        for off in range(0, full, 64):
            state = compress(state, message, off)
        inner = struct.pack(self._fmt, *md_finish(compress, state, message[full:], n + 64))
        # The inner digest (20/32 bytes) always fits one padded block.
        return struct.pack(self._fmt, *md_finish(compress, self._outer, inner, 64 + len(inner)))


def hmac_digest(key: bytes, message: bytes, hash_name: str = "sha256") -> bytes:
    """HMAC per RFC 2104 (one-shot; hot paths cache an :class:`HmacKey`)."""
    return HmacKey(key, hash_name).digest(message)


def hkdf_extract(salt: bytes, ikm: bytes, hash_name: str = "sha256") -> bytes:
    """HKDF-Extract: PRK = HMAC(salt, IKM)."""
    return hmac_digest(salt, ikm, hash_name)


def hkdf_expand(prk: bytes, info: bytes, length: int, hash_name: str = "sha256") -> bytes:
    """HKDF-Expand: derive ``length`` bytes of output keying material."""
    try:
        digest_len = DIGEST_SIZES[hash_name]
    except KeyError:
        raise ValueError(f"unknown hash {hash_name!r}") from None
    if length > 255 * digest_len:
        raise ValueError("requested keying material too long")
    hk = HmacKey(prk, hash_name)
    okm = b""
    t = b""
    counter = 1
    while len(okm) < length:
        t = hk.digest(t + info + bytes([counter]))
        okm += t
        counter += 1
    return okm[:length]


def hip_keymat(dh_secret: bytes, hit_i: bytes, hit_r: bytes, length: int) -> bytes:
    """HIP KEYMAT generation (RFC 5201 §6.5).

    KEYMAT = K1 | K2 | ... where K1 = hash(Kij | sort(HIT-I, HIT-R) | 0x01)
    and Ki = hash(Kij | Ki-1 | i).  The sort uses the numeric HIT order so
    initiator and responder derive identical material.
    """
    lo, hi = sorted((hit_i, hit_r))
    hash_fn = HASHES["sha256"]
    out = b""
    prev = b""
    counter = 1
    while len(out) < length:
        if counter == 1:
            prev = hash_fn(dh_secret + lo + hi + bytes([counter]))
        else:
            prev = hash_fn(dh_secret + prev + bytes([counter & 0xFF]))
        out += prev
        counter += 1
    return out[:length]


def tls_prf(secret: bytes, label: bytes, seed: bytes, length: int) -> bytes:
    """TLS 1.2 PRF (RFC 5246 §5): P_SHA256(secret, label + seed)."""
    hk = HmacKey(secret)
    full_seed = label + seed
    out = b""
    a = full_seed
    while len(out) < length:
        a = hk.digest(a)
        out += hk.digest(a + full_seed)
    return out[:length]


def ct_equal(a: bytes, b: bytes) -> bool:
    """Constant-time equality for MACs, ICVs and Finished verify-data.

    A plain ``==`` short-circuits at the first differing byte, leaking the
    match length through timing — the classic MAC-forgery oracle.  Every
    comparison whose operands derive from key material must come through
    here; the ``SEC002`` analysis rule enforces that mechanically.  Length
    is not secret for fixed-size MACs, so a length mismatch may return
    early.
    """
    if len(a) != len(b):
        return False
    acc = 0
    for x, y in zip(a, b):
        acc |= x ^ y
    return acc == 0
