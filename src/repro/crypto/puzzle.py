"""HIP computational puzzles (RFC 5201 §4.1.2).

The responder includes a random value ``I`` and a difficulty ``K`` in R1;
the initiator must find ``J`` such that the ``K`` lowest-order bits of
``SHA-1(I | HIT-I | HIT-R | J)`` are zero.  Solving costs the initiator
O(2^K) hash operations on average while verification is a single hash —
this asymmetry is HIP's DoS-mitigation knob, which the puzzle ablation
benchmark sweeps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.sha import sha1

RHASH_LEN = 8  # bytes of I and J on the wire (RFC 5201 uses 64-bit values)


@dataclass(frozen=True)
class Puzzle:
    """A puzzle challenge as carried in the R1 packet."""

    i: bytes  # random value I, RHASH_LEN bytes
    k: int  # difficulty: number of low-order zero bits required
    lifetime: float = 60.0  # seconds the responder will accept solutions

    def __post_init__(self) -> None:
        if len(self.i) != RHASH_LEN:
            raise ValueError(f"puzzle I must be {RHASH_LEN} bytes")
        if not 0 <= self.k <= 40:
            raise ValueError("puzzle difficulty K out of supported range 0..40")

    @classmethod
    def fresh(cls, k: int, rng: random.Random, lifetime: float = 60.0) -> "Puzzle":
        return cls(i=bytes(rng.randrange(256) for _ in range(RHASH_LEN)), k=k,
                   lifetime=lifetime)


def _ltrunc_ok(digest: bytes, k: int) -> bool:
    """True if the k lowest-order bits of the digest are zero."""
    if k == 0:
        return True
    value = int.from_bytes(digest, "big")
    return value & ((1 << k) - 1) == 0


def solve_puzzle(puzzle: Puzzle, hit_i: bytes, hit_r: bytes, rng: random.Random) -> tuple[bytes, int]:
    """Find J solving the puzzle; returns (J, attempts).

    ``attempts`` is returned so simulations can charge the true number of
    hash operations spent, preserving the expected O(2^K) cost.
    """
    attempts = 0
    while True:
        attempts += 1
        j = rng.getrandbits(8 * RHASH_LEN).to_bytes(RHASH_LEN, "big")
        digest = sha1(puzzle.i + hit_i + hit_r + j)
        if _ltrunc_ok(digest, puzzle.k):
            return j, attempts


def verify_solution(puzzle: Puzzle, hit_i: bytes, hit_r: bytes, j: bytes) -> bool:
    """Responder-side check: one hash."""
    if len(j) != RHASH_LEN:
        return False
    return _ltrunc_ok(sha1(puzzle.i + hit_i + hit_r + j), puzzle.k)


def expected_attempts(k: int) -> float:
    """Mean number of hashes an honest solver needs: 2^K."""
    return float(1 << k)
