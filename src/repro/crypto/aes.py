"""AES block cipher (FIPS-197), pure Python.

Supports 128/192/256-bit keys.  The S-box is derived at import time from the
GF(2^8) multiplicative inverse plus the affine transform rather than being
transcribed, so a typo cannot silently corrupt the cipher; known-answer tests
in ``tests/crypto`` pin the FIPS-197 vectors.

This is the shared symmetric engine for both the HIP/ESP data plane and the
TLS record layer — deliberately so, because the paper's core performance
argument is that the two protocols use the same algorithms.
"""

from __future__ import annotations


def _xtime(a: int) -> int:
    """Multiply by x (i.e. {02}) in GF(2^8) with the AES polynomial 0x11B."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gf_mul(a: int, b: int) -> int:
    """GF(2^8) multiplication (schoolbook, used to build tables)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox() -> tuple[bytes, bytes]:
    # Multiplicative inverse table via exhaustive search (256 entries, import-time only).
    inv = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if _gf_mul(x, y) == 1:
                inv[x] = y
                break
    sbox = bytearray(256)
    for x in range(256):
        b = inv[x]
        # Affine transform: b ^ rot1 ^ rot2 ^ rot3 ^ rot4 ^ 0x63
        res = b
        for shift in (1, 2, 3, 4):
            res ^= ((b << shift) | (b >> (8 - shift))) & 0xFF
        sbox[x] = res ^ 0x63
    inv_sbox = bytearray(256)
    for x, s in enumerate(sbox):
        inv_sbox[s] = x
    return bytes(sbox), bytes(inv_sbox)


SBOX, INV_SBOX = _build_sbox()
_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_xtime(_RCON[-1]))

# Precomputed multiplication tables for MixColumns / InvMixColumns.
_MUL2 = bytes(_gf_mul(x, 2) for x in range(256))
_MUL3 = bytes(_gf_mul(x, 3) for x in range(256))
_MUL9 = bytes(_gf_mul(x, 9) for x in range(256))
_MUL11 = bytes(_gf_mul(x, 11) for x in range(256))
_MUL13 = bytes(_gf_mul(x, 13) for x in range(256))
_MUL14 = bytes(_gf_mul(x, 14) for x in range(256))

BLOCK_SIZE = 16


class AES:
    """AES block cipher instance bound to one key.

    Use through :mod:`repro.crypto.modes` (CBC/CTR) for anything longer than
    one block.
    """

    __slots__ = ("key", "rounds", "_round_keys")

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise ValueError(f"AES key must be 16/24/32 bytes, got {len(key)}")
        self.key = bytes(key)
        self.rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(self.key)

    def _expand_key(self, key: bytes) -> list[list[int]]:
        nk = len(key) // 4
        words = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        total_words = 4 * (self.rounds + 1)
        for i in range(nk, total_words):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]  # RotWord
                temp = [SBOX[b] for b in temp]  # SubWord
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [SBOX[b] for b in temp]
            words.append([words[i - nk][j] ^ temp[j] for j in range(4)])
        # Group into 16-byte round keys (flattened per round).
        round_keys = []
        for r in range(self.rounds + 1):
            rk = []
            for w in words[4 * r : 4 * r + 4]:
                rk.extend(w)
            round_keys.append(rk)
        return round_keys

    # State layout: flat list of 16 bytes, column-major as in FIPS-197
    # (state[4*c + r] is row r, column c).

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be 16 bytes, got {len(block)}")
        rk = self._round_keys
        s = [block[i] ^ rk[0][i] for i in range(16)]
        for rnd in range(1, self.rounds):
            s = self._round(s, rk[rnd])
        # Final round: no MixColumns.
        s = [SBOX[b] for b in s]
        s = self._shift_rows(s)
        return bytes(s[i] ^ rk[self.rounds][i] for i in range(16))

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be 16 bytes, got {len(block)}")
        rk = self._round_keys
        s = [block[i] ^ rk[self.rounds][i] for i in range(16)]
        s = self._inv_shift_rows(s)
        s = [INV_SBOX[b] for b in s]
        for rnd in range(self.rounds - 1, 0, -1):
            s = [s[i] ^ rk[rnd][i] for i in range(16)]
            s = self._inv_mix_columns(s)
            s = self._inv_shift_rows(s)
            s = [INV_SBOX[b] for b in s]
        return bytes(s[i] ^ rk[0][i] for i in range(16))

    # -- round building blocks -------------------------------------------------
    @staticmethod
    def _shift_rows(s: list[int]) -> list[int]:
        return [
            s[0], s[5], s[10], s[15],
            s[4], s[9], s[14], s[3],
            s[8], s[13], s[2], s[7],
            s[12], s[1], s[6], s[11],
        ]

    @staticmethod
    def _inv_shift_rows(s: list[int]) -> list[int]:
        return [
            s[0], s[13], s[10], s[7],
            s[4], s[1], s[14], s[11],
            s[8], s[5], s[2], s[15],
            s[12], s[9], s[6], s[3],
        ]

    def _round(self, s: list[int], rk: list[int]) -> list[int]:
        s = [SBOX[b] for b in s]
        s = self._shift_rows(s)
        out = [0] * 16
        for c in range(0, 16, 4):
            a0, a1, a2, a3 = s[c], s[c + 1], s[c + 2], s[c + 3]
            out[c] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
            out[c + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
            out[c + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
            out[c + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]
        return [out[i] ^ rk[i] for i in range(16)]

    @staticmethod
    def _inv_mix_columns(s: list[int]) -> list[int]:
        out = [0] * 16
        for c in range(0, 16, 4):
            a0, a1, a2, a3 = s[c], s[c + 1], s[c + 2], s[c + 3]
            out[c] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
            out[c + 1] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
            out[c + 2] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
            out[c + 3] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]
        return out
