"""AES block cipher (FIPS-197), pure Python, T-table fast path.

Supports 128/192/256-bit keys.  The S-box is derived at import time from the
GF(2^8) multiplicative inverse plus the affine transform rather than being
transcribed, so a typo cannot silently corrupt the cipher; known-answer tests
in ``tests/crypto`` pin the FIPS-197 vectors.

The hot path is the classic 32-bit T-table formulation: four 256-entry
tables fold SubBytes + ShiftRows + MixColumns into table lookups and XORs
over packed column words (and four TD tables for the equivalent inverse
cipher, with InvMixColumns pre-applied to the decryption round keys).  The
schoolbook byte-matrix implementation is retained as
``_encrypt_block_ref`` / ``_decrypt_block_ref``; differential tests assert
the two paths are byte-identical on random inputs.

This is the shared symmetric engine for both the HIP/ESP data plane and the
TLS record layer — deliberately so, because the paper's core performance
argument is that the two protocols use the same algorithms.
"""

from __future__ import annotations

import struct

from repro.metrics import METRICS

_AES_BLOCKS = METRICS.counter("crypto.aes_blocks")


def _xtime(a: int) -> int:
    """Multiply by x (i.e. {02}) in GF(2^8) with the AES polynomial 0x11B."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gf_mul(a: int, b: int) -> int:
    """GF(2^8) multiplication (schoolbook, used to build tables)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox() -> tuple[bytes, bytes]:
    # Multiplicative inverse table via exhaustive search (256 entries, import-time only).
    inv = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if _gf_mul(x, y) == 1:
                inv[x] = y
                break
    sbox = bytearray(256)
    for x in range(256):
        b = inv[x]
        # Affine transform: b ^ rot1 ^ rot2 ^ rot3 ^ rot4 ^ 0x63
        res = b
        for shift in (1, 2, 3, 4):
            res ^= ((b << shift) | (b >> (8 - shift))) & 0xFF
        sbox[x] = res ^ 0x63
    inv_sbox = bytearray(256)
    for x, s in enumerate(sbox):
        inv_sbox[s] = x
    return bytes(sbox), bytes(inv_sbox)


SBOX, INV_SBOX = _build_sbox()
_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_xtime(_RCON[-1]))

# Precomputed multiplication tables for MixColumns / InvMixColumns.
_MUL2 = bytes(_gf_mul(x, 2) for x in range(256))
_MUL3 = bytes(_gf_mul(x, 3) for x in range(256))
_MUL9 = bytes(_gf_mul(x, 9) for x in range(256))
_MUL11 = bytes(_gf_mul(x, 11) for x in range(256))
_MUL13 = bytes(_gf_mul(x, 13) for x in range(256))
_MUL14 = bytes(_gf_mul(x, 14) for x in range(256))


def _build_t_tables() -> tuple:
    """Encryption tables TE0..3 and decryption tables TD0..3.

    ``TE0[x]`` is MixColumns applied to the column ``(SBOX[x], 0, 0, 0)``
    packed big-endian; TE1..3 are byte rotations of TE0 so each covers one
    input row.  TD tables are the same construction over INV_SBOX with the
    InvMixColumns matrix.
    """
    te0, te1, te2, te3 = [0] * 256, [0] * 256, [0] * 256, [0] * 256
    td0, td1, td2, td3 = [0] * 256, [0] * 256, [0] * 256, [0] * 256
    for x in range(256):
        s = SBOX[x]
        t = (_MUL2[s] << 24) | (s << 16) | (s << 8) | _MUL3[s]
        te0[x] = t
        te1[x] = ((t >> 8) | (t << 24)) & 0xFFFFFFFF
        te2[x] = ((t >> 16) | (t << 16)) & 0xFFFFFFFF
        te3[x] = ((t >> 24) | (t << 8)) & 0xFFFFFFFF
        v = INV_SBOX[x]
        u = (_MUL14[v] << 24) | (_MUL9[v] << 16) | (_MUL13[v] << 8) | _MUL11[v]
        td0[x] = u
        td1[x] = ((u >> 8) | (u << 24)) & 0xFFFFFFFF
        td2[x] = ((u >> 16) | (u << 16)) & 0xFFFFFFFF
        td3[x] = ((u >> 24) | (u << 8)) & 0xFFFFFFFF
    return tuple(te0), tuple(te1), tuple(te2), tuple(te3), \
        tuple(td0), tuple(td1), tuple(td2), tuple(td3)


_TE0, _TE1, _TE2, _TE3, _TD0, _TD1, _TD2, _TD3 = _build_t_tables()

BLOCK_SIZE = 16

# One struct.pack call splits the four column words back into 16 bytes; a
# ``bytes`` subscript yields a cached small int, so this replaces the 24
# shift/mask operations per round that the obvious formulation needs.
_PACK4 = struct.Struct(">4I").pack


class AES:
    """AES block cipher instance bound to one key.

    Use through :mod:`repro.crypto.modes` (CBC/CTR) for anything longer than
    one block.  ``encrypt_words``/``decrypt_words`` are the zero-copy core
    the mode loops batch over; ``encrypt_block``/``decrypt_block`` wrap them
    for single-block byte callers.
    """

    __slots__ = ("key", "rounds", "_round_keys", "_rk_enc", "_rk_dec")

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise ValueError(f"AES key must be 16/24/32 bytes, got {len(key)}")
        self.key = bytes(key)
        self.rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(self.key)
        self._rk_enc, self._rk_dec = self._pack_round_keys(self._round_keys)

    def _expand_key(self, key: bytes) -> list[list[int]]:
        nk = len(key) // 4
        words = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        total_words = 4 * (self.rounds + 1)
        for i in range(nk, total_words):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]  # RotWord
                temp = [SBOX[b] for b in temp]  # SubWord
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [SBOX[b] for b in temp]
            words.append([words[i - nk][j] ^ temp[j] for j in range(4)])
        # Group into 16-byte round keys (flattened per round).
        round_keys = []
        for r in range(self.rounds + 1):
            rk = []
            for w in words[4 * r : 4 * r + 4]:
                rk.extend(w)
            round_keys.append(rk)
        return round_keys

    def _pack_round_keys(self, round_keys: list[list[int]]) -> tuple[tuple, tuple]:
        """Pack byte round keys into 32-bit words; derive decryption keys.

        The equivalent inverse cipher wants the encryption schedule in
        reverse order with InvMixColumns applied to the middle rounds.
        ``TD0[SBOX[b]]`` is InvMixColumns of the column ``(b, 0, 0, 0)``, so
        the transform is four lookups per word.

        Both schedules are returned pre-structured for the round loops as
        ``(first, pairs, penult, final)``: the whitening round, the middle
        rounds two at a time as flat 8-tuples, the one odd middle round left
        over (the middle-round count is odd for every AES key size), and the
        final round.  Unpacking a whole 8-tuple at the loop head costs one
        instruction and removes all per-round key indexing.
        """
        enc = []
        for rk in round_keys:
            for c in range(0, 16, 4):
                enc.append((rk[c] << 24) | (rk[c + 1] << 16) | (rk[c + 2] << 8) | rk[c + 3])
        dec = []
        for r in range(self.rounds, -1, -1):
            rk = round_keys[r]
            for c in range(0, 16, 4):
                if 0 < r < self.rounds:
                    dec.append(
                        _TD0[SBOX[rk[c]]] ^ _TD1[SBOX[rk[c + 1]]]
                        ^ _TD2[SBOX[rk[c + 2]]] ^ _TD3[SBOX[rk[c + 3]]]
                    )
                else:
                    dec.append((rk[c] << 24) | (rk[c + 1] << 16) | (rk[c + 2] << 8) | rk[c + 3])
        return self._structure_schedule(enc), self._structure_schedule(dec)

    def _structure_schedule(self, flat: list[int]) -> tuple:
        mid = [tuple(flat[4 * r : 4 * r + 4]) for r in range(1, self.rounds)]
        pairs = tuple(mid[j] + mid[j + 1] for j in range(0, len(mid) - 1, 2))
        return tuple(flat[0:4]), pairs, mid[-1], tuple(flat[4 * self.rounds :])

    # -- fast path: packed 32-bit column words ---------------------------------
    def encrypt_words(self, s0: int, s1: int, s2: int, s3: int) -> tuple[int, int, int, int]:
        """Encrypt one block given as four big-endian column words."""
        first, pairs, penult, final = self._rk_enc
        t0, t1, t2, t3 = _TE0, _TE1, _TE2, _TE3
        pk = _PACK4
        k0, k1, k2, k3 = first
        s0 ^= k0
        s1 ^= k1
        s2 ^= k2
        s3 ^= k3
        for k0, k1, k2, k3, m0, m1, m2, m3 in pairs:
            b = pk(s0, s1, s2, s3)
            u0 = t0[b[0]] ^ t1[b[5]] ^ t2[b[10]] ^ t3[b[15]] ^ k0
            u1 = t0[b[4]] ^ t1[b[9]] ^ t2[b[14]] ^ t3[b[3]] ^ k1
            u2 = t0[b[8]] ^ t1[b[13]] ^ t2[b[2]] ^ t3[b[7]] ^ k2
            u3 = t0[b[12]] ^ t1[b[1]] ^ t2[b[6]] ^ t3[b[11]] ^ k3
            b = pk(u0, u1, u2, u3)
            s0 = t0[b[0]] ^ t1[b[5]] ^ t2[b[10]] ^ t3[b[15]] ^ m0
            s1 = t0[b[4]] ^ t1[b[9]] ^ t2[b[14]] ^ t3[b[3]] ^ m1
            s2 = t0[b[8]] ^ t1[b[13]] ^ t2[b[2]] ^ t3[b[7]] ^ m2
            s3 = t0[b[12]] ^ t1[b[1]] ^ t2[b[6]] ^ t3[b[11]] ^ m3
        k0, k1, k2, k3 = penult
        b = pk(s0, s1, s2, s3)
        u0 = t0[b[0]] ^ t1[b[5]] ^ t2[b[10]] ^ t3[b[15]] ^ k0
        u1 = t0[b[4]] ^ t1[b[9]] ^ t2[b[14]] ^ t3[b[3]] ^ k1
        u2 = t0[b[8]] ^ t1[b[13]] ^ t2[b[2]] ^ t3[b[7]] ^ k2
        u3 = t0[b[12]] ^ t1[b[1]] ^ t2[b[6]] ^ t3[b[11]] ^ k3
        sb = SBOX
        f0, f1, f2, f3 = final
        b = pk(u0, u1, u2, u3)
        return (
            ((sb[b[0]] << 24) | (sb[b[5]] << 16) | (sb[b[10]] << 8) | sb[b[15]]) ^ f0,
            ((sb[b[4]] << 24) | (sb[b[9]] << 16) | (sb[b[14]] << 8) | sb[b[3]]) ^ f1,
            ((sb[b[8]] << 24) | (sb[b[13]] << 16) | (sb[b[2]] << 8) | sb[b[7]]) ^ f2,
            ((sb[b[12]] << 24) | (sb[b[1]] << 16) | (sb[b[6]] << 8) | sb[b[11]]) ^ f3,
        )

    def decrypt_words(self, s0: int, s1: int, s2: int, s3: int) -> tuple[int, int, int, int]:
        """Decrypt one block given as four big-endian column words."""
        first, pairs, penult, final = self._rk_dec
        t0, t1, t2, t3 = _TD0, _TD1, _TD2, _TD3
        pk = _PACK4
        k0, k1, k2, k3 = first
        s0 ^= k0
        s1 ^= k1
        s2 ^= k2
        s3 ^= k3
        for k0, k1, k2, k3, m0, m1, m2, m3 in pairs:
            b = pk(s0, s1, s2, s3)
            u0 = t0[b[0]] ^ t1[b[13]] ^ t2[b[10]] ^ t3[b[7]] ^ k0
            u1 = t0[b[4]] ^ t1[b[1]] ^ t2[b[14]] ^ t3[b[11]] ^ k1
            u2 = t0[b[8]] ^ t1[b[5]] ^ t2[b[2]] ^ t3[b[15]] ^ k2
            u3 = t0[b[12]] ^ t1[b[9]] ^ t2[b[6]] ^ t3[b[3]] ^ k3
            b = pk(u0, u1, u2, u3)
            s0 = t0[b[0]] ^ t1[b[13]] ^ t2[b[10]] ^ t3[b[7]] ^ m0
            s1 = t0[b[4]] ^ t1[b[1]] ^ t2[b[14]] ^ t3[b[11]] ^ m1
            s2 = t0[b[8]] ^ t1[b[5]] ^ t2[b[2]] ^ t3[b[15]] ^ m2
            s3 = t0[b[12]] ^ t1[b[9]] ^ t2[b[6]] ^ t3[b[3]] ^ m3
        k0, k1, k2, k3 = penult
        b = pk(s0, s1, s2, s3)
        u0 = t0[b[0]] ^ t1[b[13]] ^ t2[b[10]] ^ t3[b[7]] ^ k0
        u1 = t0[b[4]] ^ t1[b[1]] ^ t2[b[14]] ^ t3[b[11]] ^ k1
        u2 = t0[b[8]] ^ t1[b[5]] ^ t2[b[2]] ^ t3[b[15]] ^ k2
        u3 = t0[b[12]] ^ t1[b[9]] ^ t2[b[6]] ^ t3[b[3]] ^ k3
        sb = INV_SBOX
        f0, f1, f2, f3 = final
        b = pk(u0, u1, u2, u3)
        return (
            ((sb[b[0]] << 24) | (sb[b[13]] << 16) | (sb[b[10]] << 8) | sb[b[7]]) ^ f0,
            ((sb[b[4]] << 24) | (sb[b[1]] << 16) | (sb[b[14]] << 8) | sb[b[11]]) ^ f1,
            ((sb[b[8]] << 24) | (sb[b[5]] << 16) | (sb[b[2]] << 8) | sb[b[15]]) ^ f2,
            ((sb[b[12]] << 24) | (sb[b[9]] << 16) | (sb[b[6]] << 8) | sb[b[3]]) ^ f3,
        )

    # -- batched CBC cores -------------------------------------------------------
    # The mode loops in :mod:`repro.crypto.modes` delegate here so the round
    # structure (key-schedule tuples, T-tables, final-round S-box) is
    # unpacked once per *message* rather than once per block.  ``padded`` /
    # ``ciphertext`` must already be a multiple of 16 bytes; padding policy
    # stays in the modes layer.

    def cbc_encrypt_blocks(self, iv: bytes, padded: bytes) -> bytes:
        n = len(padded)
        words = struct.unpack(">%dI" % (n // 4), padded)
        out = bytearray(n)
        pack_into = struct.pack_into
        pk = _PACK4
        t0, t1, t2, t3 = _TE0, _TE1, _TE2, _TE3
        sb = SBOX
        first, pairs, penult, final = self._rk_enc
        a0, a1, a2, a3 = first
        n0, n1, n2, n3 = penult
        f0, f1, f2, f3 = final
        p0, p1, p2, p3 = struct.unpack(">4I", iv)
        for i in range(0, n // 4, 4):
            # Chaining XOR fused with the whitening round key.
            s0 = words[i] ^ p0 ^ a0
            s1 = words[i + 1] ^ p1 ^ a1
            s2 = words[i + 2] ^ p2 ^ a2
            s3 = words[i + 3] ^ p3 ^ a3
            for k0, k1, k2, k3, m0, m1, m2, m3 in pairs:
                b = pk(s0, s1, s2, s3)
                u0 = t0[b[0]] ^ t1[b[5]] ^ t2[b[10]] ^ t3[b[15]] ^ k0
                u1 = t0[b[4]] ^ t1[b[9]] ^ t2[b[14]] ^ t3[b[3]] ^ k1
                u2 = t0[b[8]] ^ t1[b[13]] ^ t2[b[2]] ^ t3[b[7]] ^ k2
                u3 = t0[b[12]] ^ t1[b[1]] ^ t2[b[6]] ^ t3[b[11]] ^ k3
                b = pk(u0, u1, u2, u3)
                s0 = t0[b[0]] ^ t1[b[5]] ^ t2[b[10]] ^ t3[b[15]] ^ m0
                s1 = t0[b[4]] ^ t1[b[9]] ^ t2[b[14]] ^ t3[b[3]] ^ m1
                s2 = t0[b[8]] ^ t1[b[13]] ^ t2[b[2]] ^ t3[b[7]] ^ m2
                s3 = t0[b[12]] ^ t1[b[1]] ^ t2[b[6]] ^ t3[b[11]] ^ m3
            b = pk(s0, s1, s2, s3)
            u0 = t0[b[0]] ^ t1[b[5]] ^ t2[b[10]] ^ t3[b[15]] ^ n0
            u1 = t0[b[4]] ^ t1[b[9]] ^ t2[b[14]] ^ t3[b[3]] ^ n1
            u2 = t0[b[8]] ^ t1[b[13]] ^ t2[b[2]] ^ t3[b[7]] ^ n2
            u3 = t0[b[12]] ^ t1[b[1]] ^ t2[b[6]] ^ t3[b[11]] ^ n3
            b = pk(u0, u1, u2, u3)
            p0 = ((sb[b[0]] << 24) | (sb[b[5]] << 16) | (sb[b[10]] << 8) | sb[b[15]]) ^ f0
            p1 = ((sb[b[4]] << 24) | (sb[b[9]] << 16) | (sb[b[14]] << 8) | sb[b[3]]) ^ f1
            p2 = ((sb[b[8]] << 24) | (sb[b[13]] << 16) | (sb[b[2]] << 8) | sb[b[7]]) ^ f2
            p3 = ((sb[b[12]] << 24) | (sb[b[1]] << 16) | (sb[b[6]] << 8) | sb[b[11]]) ^ f3
            pack_into(">4I", out, i * 4, p0, p1, p2, p3)
        return bytes(out)

    def cbc_decrypt_blocks(self, iv: bytes, ciphertext: bytes) -> bytes:
        n = len(ciphertext)
        words = struct.unpack(">%dI" % (n // 4), ciphertext)
        out = bytearray(n)
        pack_into = struct.pack_into
        pk = _PACK4
        t0, t1, t2, t3 = _TD0, _TD1, _TD2, _TD3
        sb = INV_SBOX
        first, pairs, penult, final = self._rk_dec
        a0, a1, a2, a3 = first
        n0, n1, n2, n3 = penult
        f0, f1, f2, f3 = final
        p0, p1, p2, p3 = struct.unpack(">4I", iv)
        for i in range(0, n // 4, 4):
            c0, c1, c2, c3 = words[i], words[i + 1], words[i + 2], words[i + 3]
            s0 = c0 ^ a0
            s1 = c1 ^ a1
            s2 = c2 ^ a2
            s3 = c3 ^ a3
            for k0, k1, k2, k3, m0, m1, m2, m3 in pairs:
                b = pk(s0, s1, s2, s3)
                u0 = t0[b[0]] ^ t1[b[13]] ^ t2[b[10]] ^ t3[b[7]] ^ k0
                u1 = t0[b[4]] ^ t1[b[1]] ^ t2[b[14]] ^ t3[b[11]] ^ k1
                u2 = t0[b[8]] ^ t1[b[5]] ^ t2[b[2]] ^ t3[b[15]] ^ k2
                u3 = t0[b[12]] ^ t1[b[9]] ^ t2[b[6]] ^ t3[b[3]] ^ k3
                b = pk(u0, u1, u2, u3)
                s0 = t0[b[0]] ^ t1[b[13]] ^ t2[b[10]] ^ t3[b[7]] ^ m0
                s1 = t0[b[4]] ^ t1[b[1]] ^ t2[b[14]] ^ t3[b[11]] ^ m1
                s2 = t0[b[8]] ^ t1[b[5]] ^ t2[b[2]] ^ t3[b[15]] ^ m2
                s3 = t0[b[12]] ^ t1[b[9]] ^ t2[b[6]] ^ t3[b[3]] ^ m3
            b = pk(s0, s1, s2, s3)
            u0 = t0[b[0]] ^ t1[b[13]] ^ t2[b[10]] ^ t3[b[7]] ^ n0
            u1 = t0[b[4]] ^ t1[b[1]] ^ t2[b[14]] ^ t3[b[11]] ^ n1
            u2 = t0[b[8]] ^ t1[b[5]] ^ t2[b[2]] ^ t3[b[15]] ^ n2
            u3 = t0[b[12]] ^ t1[b[9]] ^ t2[b[6]] ^ t3[b[3]] ^ n3
            b = pk(u0, u1, u2, u3)
            pack_into(
                ">4I", out, i * 4,
                (((sb[b[0]] << 24) | (sb[b[13]] << 16) | (sb[b[10]] << 8) | sb[b[7]]) ^ f0) ^ p0,
                (((sb[b[4]] << 24) | (sb[b[1]] << 16) | (sb[b[14]] << 8) | sb[b[11]]) ^ f1) ^ p1,
                (((sb[b[8]] << 24) | (sb[b[5]] << 16) | (sb[b[2]] << 8) | sb[b[15]]) ^ f2) ^ p2,
                (((sb[b[12]] << 24) | (sb[b[9]] << 16) | (sb[b[6]] << 8) | sb[b[3]]) ^ f3) ^ p3,
            )
            p0, p1, p2, p3 = c0, c1, c2, c3
        return bytes(out)

    # -- byte API ---------------------------------------------------------------
    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be 16 bytes, got {len(block)}")
        _AES_BLOCKS.value += 1
        w = int.from_bytes(block, "big")
        out = self.encrypt_words(w >> 96, (w >> 64) & 0xFFFFFFFF, (w >> 32) & 0xFFFFFFFF, w & 0xFFFFFFFF)
        return ((out[0] << 96) | (out[1] << 64) | (out[2] << 32) | out[3]).to_bytes(16, "big")

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be 16 bytes, got {len(block)}")
        _AES_BLOCKS.value += 1
        w = int.from_bytes(block, "big")
        out = self.decrypt_words(w >> 96, (w >> 64) & 0xFFFFFFFF, (w >> 32) & 0xFFFFFFFF, w & 0xFFFFFFFF)
        return ((out[0] << 96) | (out[1] << 64) | (out[2] << 32) | out[3]).to_bytes(16, "big")

    # -- reference path (pre-optimization, kept for differential tests) ---------
    # State layout: flat list of 16 bytes, column-major as in FIPS-197
    # (state[4*c + r] is row r, column c).

    def _encrypt_block_ref(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be 16 bytes, got {len(block)}")
        rk = self._round_keys
        s = [block[i] ^ rk[0][i] for i in range(16)]
        for rnd in range(1, self.rounds):
            s = self._round(s, rk[rnd])
        # Final round: no MixColumns.
        s = [SBOX[b] for b in s]
        s = self._shift_rows(s)
        return bytes(s[i] ^ rk[self.rounds][i] for i in range(16))

    def _decrypt_block_ref(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be 16 bytes, got {len(block)}")
        rk = self._round_keys
        s = [block[i] ^ rk[self.rounds][i] for i in range(16)]
        s = self._inv_shift_rows(s)
        s = [INV_SBOX[b] for b in s]
        for rnd in range(self.rounds - 1, 0, -1):
            s = [s[i] ^ rk[rnd][i] for i in range(16)]
            s = self._inv_mix_columns(s)
            s = self._inv_shift_rows(s)
            s = [INV_SBOX[b] for b in s]
        return bytes(s[i] ^ rk[0][i] for i in range(16))

    # -- round building blocks -------------------------------------------------
    @staticmethod
    def _shift_rows(s: list[int]) -> list[int]:
        return [
            s[0], s[5], s[10], s[15],
            s[4], s[9], s[14], s[3],
            s[8], s[13], s[2], s[7],
            s[12], s[1], s[6], s[11],
        ]

    @staticmethod
    def _inv_shift_rows(s: list[int]) -> list[int]:
        return [
            s[0], s[13], s[10], s[7],
            s[4], s[1], s[14], s[11],
            s[8], s[5], s[2], s[15],
            s[12], s[9], s[6], s[3],
        ]

    def _round(self, s: list[int], rk: list[int]) -> list[int]:
        s = [SBOX[b] for b in s]
        s = self._shift_rows(s)
        out = [0] * 16
        for c in range(0, 16, 4):
            a0, a1, a2, a3 = s[c], s[c + 1], s[c + 2], s[c + 3]
            out[c] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
            out[c + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
            out[c + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
            out[c + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]
        return [out[i] ^ rk[i] for i in range(16)]

    @staticmethod
    def _inv_mix_columns(s: list[int]) -> list[int]:
        out = [0] * 16
        for c in range(0, 16, 4):
            a0, a1, a2, a3 = s[c], s[c + 1], s[c + 2], s[c + 3]
            out[c] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
            out[c + 1] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
            out[c + 2] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
            out[c + 3] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]
        return out
