"""Retained pre-optimization reference implementations (pinned baseline).

These are the schoolbook SHA/HMAC/mode loops that shipped before the
fast-path rewrite of :mod:`repro.crypto.aes`, :mod:`repro.crypto.modes`,
:mod:`repro.crypto.sha` and :mod:`repro.crypto.hmac_kdf`.  They exist for
two reasons only:

1. **Differential tests** — ``tests/test_crypto_fastpath.py`` asserts the
   optimized primitives are byte-identical to these on random inputs, so a
   perf regression fix can never silently change outputs.
2. **The perf baseline** — ``benchmarks/bench_crypto.py`` measures both the
   reference and optimized paths and records the ratio in
   ``BENCH_crypto.json``.

The naive AES block functions live on :class:`repro.crypto.aes.AES` as
``_encrypt_block_ref`` / ``_decrypt_block_ref`` (they need the byte-form key
schedule); everything else is here.  Do not use any of this in protocol
code.
"""

from __future__ import annotations

import struct

from repro.crypto.aes import AES, BLOCK_SIZE
from repro.crypto.modes import pkcs7_pad, pkcs7_unpad

_MASK32 = 0xFFFFFFFF


def _rotl32(x: int, n: int) -> int:
    return ((x << n) | (x >> (32 - n))) & _MASK32


def _rotr32(x: int, n: int) -> int:
    return ((x >> n) | (x << (32 - n))) & _MASK32


def _md_pad(message: bytes) -> bytes:
    bit_len = len(message) * 8
    padded = message + b"\x80"
    padded += b"\x00" * ((56 - len(padded) % 64) % 64)
    return padded + struct.pack(">Q", bit_len)


def sha1_ref(message: bytes) -> bytes:
    """Pre-PR SHA-1: branchy 80-step loop with helper-function rotates."""
    h = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0]
    padded = _md_pad(message)
    for off in range(0, len(padded), 64):
        w = list(struct.unpack(">16I", padded[off : off + 64]))
        for t in range(16, 80):
            w.append(_rotl32(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1))
        a, b, c, d, e = h
        for t in range(80):
            if t < 20:
                f = (b & c) | (~b & d)
                k = 0x5A827999
            elif t < 40:
                f = b ^ c ^ d
                k = 0x6ED9EBA1
            elif t < 60:
                f = (b & c) | (b & d) | (c & d)
                k = 0x8F1BBCDC
            else:
                f = b ^ c ^ d
                k = 0xCA62C1D6
            temp = (_rotl32(a, 5) + f + e + k + w[t]) & _MASK32
            e, d, c, b, a = d, c, _rotl32(b, 30), a, temp
        h = [(x + y) & _MASK32 for x, y in zip(h, (a, b, c, d, e))]
    return struct.pack(">5I", *h)


_SHA256_K = (
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5, 0x3956C25B, 0x59F111F1,
    0x923F82A4, 0xAB1C5ED5, 0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174, 0xE49B69C1, 0xEFBE4786,
    0x0FC19DC6, 0x240CA1CC, 0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7, 0xC6E00BF3, 0xD5A79147,
    0x06CA6351, 0x14292967, 0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85, 0xA2BFE8A1, 0xA81A664B,
    0xC24B8B70, 0xC76C51A3, 0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5, 0x391C0CB3, 0x4ED8AA4A,
    0x5B9CCA4F, 0x682E6FF3, 0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
)

_SHA256_H0 = (
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
)


def sha256_ref(message: bytes) -> bytes:
    """Pre-PR SHA-256: per-step helper-function rotates."""
    h = list(_SHA256_H0)
    padded = _md_pad(message)
    for off in range(0, len(padded), 64):
        w = list(struct.unpack(">16I", padded[off : off + 64]))
        for t in range(16, 64):
            s0 = _rotr32(w[t - 15], 7) ^ _rotr32(w[t - 15], 18) ^ (w[t - 15] >> 3)
            s1 = _rotr32(w[t - 2], 17) ^ _rotr32(w[t - 2], 19) ^ (w[t - 2] >> 10)
            w.append((w[t - 16] + s0 + w[t - 7] + s1) & _MASK32)
        a, b, c, d, e, f, g, hh = h
        for t in range(64):
            big_s1 = _rotr32(e, 6) ^ _rotr32(e, 11) ^ _rotr32(e, 25)
            ch = (e & f) ^ (~e & g)
            temp1 = (hh + big_s1 + ch + _SHA256_K[t] + w[t]) & _MASK32
            big_s0 = _rotr32(a, 2) ^ _rotr32(a, 13) ^ _rotr32(a, 22)
            maj = (a & b) ^ (a & c) ^ (b & c)
            temp2 = (big_s0 + maj) & _MASK32
            hh, g, f, e, d, c, b, a = (
                g, f, e, (d + temp1) & _MASK32, c, b, a, (temp1 + temp2) & _MASK32,
            )
        h = [(x + y) & _MASK32 for x, y in zip(h, (a, b, c, d, e, f, g, hh))]
    return struct.pack(">8I", *h)


_HASHES_REF = {"sha1": sha1_ref, "sha256": sha256_ref}


def hmac_digest_ref(key: bytes, message: bytes, hash_name: str = "sha256") -> bytes:
    """Pre-PR HMAC: recomputes ipad/opad and both key blocks on every call."""
    hash_fn = _HASHES_REF[hash_name]
    block = 64
    if len(key) > block:
        key = hash_fn(key)
    key = key.ljust(block, b"\x00")
    ipad = bytes(b ^ 0x36 for b in key)
    opad = bytes(b ^ 0x5C for b in key)
    return hash_fn(opad + hash_fn(ipad + message))


def _xor_block_ref(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def cbc_encrypt_ref(cipher: AES, iv: bytes, plaintext: bytes) -> bytes:
    """Pre-PR CBC: per-byte generator XOR + per-block naive AES."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be {BLOCK_SIZE} bytes")
    padded = pkcs7_pad(plaintext)
    out = bytearray()
    prev = iv
    for i in range(0, len(padded), BLOCK_SIZE):
        block = _xor_block_ref(padded[i : i + BLOCK_SIZE], prev)
        prev = cipher._encrypt_block_ref(block)
        out += prev
    return bytes(out)


def cbc_decrypt_ref(cipher: AES, iv: bytes, ciphertext: bytes) -> bytes:
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be {BLOCK_SIZE} bytes")
    if len(ciphertext) % BLOCK_SIZE:
        raise ValueError("ciphertext length is not a multiple of the block size")
    out = bytearray()
    prev = iv
    for i in range(0, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[i : i + BLOCK_SIZE]
        out += _xor_block_ref(cipher._decrypt_block_ref(block), prev)
        prev = block
    return pkcs7_unpad(bytes(out))


def ctr_keystream_xor_ref(
    cipher: AES, nonce: bytes, data: bytes, counter0: int = 0
) -> bytes:
    """Pre-PR CTR: rebuilds the counter block by concatenation per block."""
    if len(nonce) != 8:
        raise ValueError("CTR nonce must be 8 bytes")
    out = bytearray()
    counter = counter0
    for i in range(0, len(data), BLOCK_SIZE):
        block = cipher._encrypt_block_ref(nonce + counter.to_bytes(8, "big"))
        chunk = data[i : i + BLOCK_SIZE]
        out += _xor_block_ref(chunk, block[: len(chunk)])
        counter += 1
    return bytes(out)
