"""Number-theoretic primitives: gcd, modular inverse, primality, prime search.

All asymmetric algorithms in this package (RSA, classic DH, ECDSA) sit on
these few functions.  Primality testing uses deterministic small-prime trial
division followed by Miller–Rabin with enough rounds for a < 2^-128 error
bound on random candidates.
"""

from __future__ import annotations

import random

# Primes below 1000 for cheap trial division before Miller-Rabin.
_SMALL_PRIMES: tuple[int, ...] = tuple(
    p
    for p in range(2, 1000)
    if all(p % q for q in range(2, int(p**0.5) + 1))
)


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: returns (g, x, y) with a*x + b*y == g == gcd(a, b)."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def modinv(a: int, m: int) -> int:
    """Modular inverse of ``a`` mod ``m``; raises ValueError if not coprime."""
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise ValueError(f"{a} has no inverse modulo {m} (gcd={g})")
    return x % m


def is_probable_prime(n: int, rounds: int = 40, rng: random.Random | None = None) -> bool:
    """Miller–Rabin primality test with trial division prefilter."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # n - 1 = d * 2^s with d odd
    d = n - 1
    s = 0
    while d % 2 == 0:
        d //= 2
        s += 1
    rng = rng or random
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(s - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def random_prime(bits: int, rng: random.Random) -> int:
    """Random prime of exactly ``bits`` bits (top two bits set, odd).

    Setting the top two bits guarantees the product of two such primes has
    exactly ``2*bits`` bits, which RSA key generation relies on.
    """
    if bits < 8:
        raise ValueError("prime size too small to be meaningful")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate


def random_safe_prime(bits: int, rng: random.Random) -> int:
    """Random safe prime p (p and (p-1)/2 both prime).  Slow; small bits only."""
    while True:
        q = random_prime(bits - 1, rng)
        p = 2 * q + 1
        if is_probable_prime(p, rng=rng):
            return p


def crt_pair(r1: int, m1: int, r2: int, m2: int) -> int:
    """Chinese remainder for two coprime moduli: x ≡ r1 (m1), x ≡ r2 (m2)."""
    g, x, _ = egcd(m1, m2)
    if g != 1:
        raise ValueError("moduli not coprime")
    return (r1 + (r2 - r1) * x % m2 * m1) % (m1 * m2)


def int_to_bytes(n: int, length: int | None = None) -> bytes:
    """Big-endian byte encoding; minimal length unless ``length`` given."""
    if n < 0:
        raise ValueError("negative integers are not encodable")
    if length is None:
        length = max(1, (n.bit_length() + 7) // 8)
    return n.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    return int.from_bytes(data, "big")
