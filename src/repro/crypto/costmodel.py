"""CPU cost model for cryptographic primitives.

The reproduction runs real crypto on real bytes, but pure-Python big-int
arithmetic is orders of magnitude slower than the C stacks (HIPL, OpenSSL)
the paper measured.  To keep the *measured shapes* faithful, protocol engines
charge simulated CPU seconds per primitive from this table instead of wall
time.  Defaults approximate ``openssl speed`` on a single ~2.5 GHz 2012-era
Xeon core (the hardware class behind EC2 "compute units"); instance types
scale them by their CPU share (an EC2 micro burns the same cycles but gets a
fraction of a core under load).

``CostModel.calibrate()`` can instead derive a self-consistent table from
live timings of this package's own implementations, for users who want the
model tied to the code it ships with.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CostModel:
    """Per-primitive CPU costs in seconds on one reference core."""

    # Asymmetric, per operation (1024/2048-bit RSA; 1536-bit DH baseline).
    rsa_sign_1024: float = 6.0e-4
    rsa_verify_1024: float = 3.0e-5
    rsa_sign_2048: float = 4.0e-3
    rsa_verify_2048: float = 1.2e-4
    dh_modexp_1536: float = 1.3e-3  # one modular exponentiation
    ecdsa_sign_p256: float = 2.5e-4
    ecdsa_verify_p256: float = 1.0e-3
    ecdh_p256: float = 9.0e-4

    # Symmetric, per byte.
    aes128_per_byte: float = 9.0e-9  # ~110 MB/s
    sha1_per_byte: float = 3.3e-9  # ~300 MB/s
    sha256_per_byte: float = 6.6e-9  # ~150 MB/s

    # Fixed per-message overheads.
    hash_fixed: float = 5.0e-7  # one compression-function call + dispatch
    hmac_fixed: float = 1.5e-6  # two extra hash invocations

    # Packet-path processing costs.  These model the *deployed* stacks the
    # paper measured, not idealized kernels: HIPL's BEET ESP and LSI/HIT
    # translation run partly in userspace (hipd), and Teredo's data path is
    # the miredo userspace daemon — per-packet costs are tens to hundreds of
    # microseconds, which is what separates the Figure-3 RTT bars.
    esp_encap_fixed: float = 1.4e-5  # SPI lookup, seq++, BEET header build
    esp_decap_fixed: float = 1.4e-5
    tls_record_fixed: float = 2.4e-5  # OpenVPN-style userspace record + tun hop
    lsi_translation: float = 1.4e-5  # IPv4 LSI <-> HIT rewrite per packet
    hit_translation: float = 4.0e-6  # HIT <-> locator mapping per packet
    teredo_encap: float = 1.5e-4  # userspace (miredo) IPv6-in-UDP-in-IPv4 per packet

    def scaled(self, factor: float) -> "CostModel":
        """Return a copy with every cost multiplied by ``factor``.

        Used for slower/faster CPUs: EC2 micro ≈ 1/ (its CPU share) of the
        reference core when throttled.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        fields = {name: getattr(self, name) * factor for name in self.__dataclass_fields__}
        return CostModel(**fields)

    # -- derived helpers --------------------------------------------------------
    def rsa_sign(self, bits: int) -> float:
        """Interpolate RSA signing cost: private-key ops scale ~cubically."""
        return self.rsa_sign_1024 * (bits / 1024.0) ** 3

    def rsa_verify(self, bits: int) -> float:
        """RSA verification scales ~quadratically (small fixed exponent)."""
        return self.rsa_verify_1024 * (bits / 1024.0) ** 2

    def dh_modexp(self, bits: int) -> float:
        return self.dh_modexp_1536 * (bits / 1536.0) ** 3

    def hash_cost(self, n_bytes: int, alg: str = "sha1") -> float:
        per_byte = self.sha1_per_byte if alg == "sha1" else self.sha256_per_byte
        return self.hash_fixed + per_byte * n_bytes

    def hmac_cost(self, n_bytes: int, alg: str = "sha256") -> float:
        return self.hmac_fixed + self.hash_cost(n_bytes, alg)

    def aes_cost(self, n_bytes: int) -> float:
        return self.aes128_per_byte * n_bytes

    def esp_encrypt_cost(self, payload_bytes: int) -> float:
        """ESP transform: AES-CBC + HMAC-SHA1 over the payload + fixed encap."""
        return (
            self.esp_encap_fixed
            + self.aes_cost(payload_bytes)
            + self.hmac_cost(payload_bytes, "sha1")
        )

    def esp_decrypt_cost(self, payload_bytes: int) -> float:
        return (
            self.esp_decap_fixed
            + self.aes_cost(payload_bytes)
            + self.hmac_cost(payload_bytes, "sha1")
        )

    def tls_record_cost(self, payload_bytes: int) -> float:
        """TLS record protection uses the same AES-CBC + HMAC algorithms."""
        return (
            self.tls_record_fixed
            + self.aes_cost(payload_bytes)
            + self.hmac_cost(payload_bytes, "sha1")
        )

    def puzzle_solve_cost(self, k: int, attempts: int | None = None) -> float:
        """Cost of solving a difficulty-K puzzle.

        If the actual attempt count is known (from :func:`solve_puzzle`), use
        it; otherwise charge the 2^K expectation.  Each attempt hashes
        I | HIT-I | HIT-R | J = 8 + 16 + 16 + 8 = 48 bytes.
        """
        n = attempts if attempts is not None else (1 << k)
        return n * self.hash_cost(48, "sha1")

    def puzzle_verify_cost(self) -> float:
        return self.hash_cost(48, "sha1")

    # -- calibration -----------------------------------------------------------
    @classmethod
    def calibrate(cls, reference_scale: float = 1.0, rng=None) -> "CostModel":
        """Build a table from live timings of this package's implementations.

        The resulting model is *self-consistent* (relative costs match the
        shipped code) but reflects pure-Python speed; ``reference_scale``
        rescales everything (e.g. pass the measured Python/C ratio to map
        back onto native-stack magnitudes).  ``rng`` feeds key generation;
        the default is a fixed named stream so repeated calibrations time
        identical keys.
        """
        from repro.crypto.aes import AES
        from repro.crypto.dh import DHKeyPair, MODP_GROUPS
        from repro.crypto.rsa import RsaKeyPair
        from repro.crypto.sha import sha1 as _sha1
        from repro.crypto.sha import sha256 as _sha256
        from repro.sim.rng import RngStreams

        if rng is None:
            rng = RngStreams(0xCA11B).stream("costmodel-calibrate")

        def timeit(fn, reps: int) -> float:
            # Calibration is the one sanctioned wall-clock consumer: its whole
            # job is to measure how long this host takes to run the primitives.
            start = time.perf_counter()  # repro: ignore[DET001] -- calibration measures real host CPU time by design
            for _ in range(reps):
                fn()
            return (time.perf_counter() - start) / reps  # repro: ignore[DET001] -- calibration measures real host CPU time by design

        rsa = RsaKeyPair.generate(1024, rng)
        msg = bytes(range(64))
        sig = rsa.sign(msg)
        t_sign = timeit(lambda: rsa.sign(msg), 5)
        t_verify = timeit(lambda: rsa.public.verify(msg, sig), 20)

        dh_params = MODP_GROUPS[5]
        kp = DHKeyPair.generate(dh_params, rng)
        t_dh = timeit(lambda: DHKeyPair.generate(dh_params, rng), 5)

        aes = AES(bytes(16))
        block = bytes(16)
        t_aes_block = timeit(lambda: aes.encrypt_block(block), 200)

        buf = bytes(4096)
        t_sha1 = timeit(lambda: _sha1(buf), 20) / len(buf)
        t_sha256 = timeit(lambda: _sha256(buf), 20) / len(buf)

        s = reference_scale
        base = cls()
        return replace(
            base,
            rsa_sign_1024=t_sign * s,
            rsa_verify_1024=t_verify * s,
            rsa_sign_2048=t_sign * 8 * s,
            rsa_verify_2048=t_verify * 4 * s,
            dh_modexp_1536=t_dh * s,
            aes128_per_byte=t_aes_block / 16 * s,
            sha1_per_byte=t_sha1 * s,
            sha256_per_byte=t_sha256 * s,
        )


@dataclass
class CryptoMeter:
    """Tallies crypto operations and their charged CPU seconds.

    Every protocol engine (HIP, TLS, ESP) owns a meter; experiment harnesses
    read them to report asymmetric-vs-symmetric cost splits (the §IV-B
    ablation).
    """

    ops: dict[str, int] = field(default_factory=dict)
    seconds: dict[str, float] = field(default_factory=dict)

    def charge(self, kind: str, cost: float, count: int = 1) -> float:
        """Record ``count`` ops of ``kind`` costing ``cost`` seconds total."""
        if cost < 0:
            raise ValueError("negative cost")
        self.ops[kind] = self.ops.get(kind, 0) + count
        self.seconds[kind] = self.seconds.get(kind, 0.0) + cost
        return cost

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def total_ops(self, prefix: str = "") -> int:
        return sum(v for k, v in self.ops.items() if k.startswith(prefix))

    def seconds_by(self, prefix: str) -> float:
        return sum(v for k, v in self.seconds.items() if k.startswith(prefix))

    def merged(self, other: "CryptoMeter") -> "CryptoMeter":
        out = CryptoMeter(dict(self.ops), dict(self.seconds))
        for k, v in other.ops.items():
            out.ops[k] = out.ops.get(k, 0) + v
        for k, v in other.seconds.items():
            out.seconds[k] = out.seconds.get(k, 0.0) + v
        return out
