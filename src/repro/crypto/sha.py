"""SHA-1 and SHA-256 implemented from the FIPS-180 specification.

HIP uses SHA-1 for HITs and puzzles (RFC 5201 era) and SHA-256 in later
revisions; TLS 1.2 PRF and our HMAC use SHA-256.  Both are implemented here
rather than taken from :mod:`hashlib` so the whole crypto substrate is
self-contained and auditable; tests cross-check every digest against
``hashlib`` on random inputs.
"""

from __future__ import annotations

import struct

_MASK32 = 0xFFFFFFFF


def _rotl32(x: int, n: int) -> int:
    return ((x << n) | (x >> (32 - n))) & _MASK32


def _rotr32(x: int, n: int) -> int:
    return ((x >> n) | (x << (32 - n))) & _MASK32


def _md_pad(message: bytes) -> bytes:
    """Merkle–Damgård strengthening: 0x80, zeros, 64-bit big-endian bit length."""
    bit_len = len(message) * 8
    padded = message + b"\x80"
    padded += b"\x00" * ((56 - len(padded) % 64) % 64)
    return padded + struct.pack(">Q", bit_len)


def sha1(message: bytes) -> bytes:
    """SHA-1 digest (20 bytes)."""
    h = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0]
    padded = _md_pad(message)
    for off in range(0, len(padded), 64):
        w = list(struct.unpack(">16I", padded[off : off + 64]))
        for t in range(16, 80):
            w.append(_rotl32(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1))
        a, b, c, d, e = h
        for t in range(80):
            if t < 20:
                f = (b & c) | (~b & d)
                k = 0x5A827999
            elif t < 40:
                f = b ^ c ^ d
                k = 0x6ED9EBA1
            elif t < 60:
                f = (b & c) | (b & d) | (c & d)
                k = 0x8F1BBCDC
            else:
                f = b ^ c ^ d
                k = 0xCA62C1D6
            temp = (_rotl32(a, 5) + f + e + k + w[t]) & _MASK32
            e, d, c, b, a = d, c, _rotl32(b, 30), a, temp
        h = [(x + y) & _MASK32 for x, y in zip(h, (a, b, c, d, e))]
    return struct.pack(">5I", *h)


_SHA256_K = (
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5, 0x3956C25B, 0x59F111F1,
    0x923F82A4, 0xAB1C5ED5, 0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174, 0xE49B69C1, 0xEFBE4786,
    0x0FC19DC6, 0x240CA1CC, 0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7, 0xC6E00BF3, 0xD5A79147,
    0x06CA6351, 0x14292967, 0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85, 0xA2BFE8A1, 0xA81A664B,
    0xC24B8B70, 0xC76C51A3, 0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5, 0x391C0CB3, 0x4ED8AA4A,
    0x5B9CCA4F, 0x682E6FF3, 0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
)

_SHA256_H0 = (
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
)


def sha256(message: bytes) -> bytes:
    """SHA-256 digest (32 bytes)."""
    h = list(_SHA256_H0)
    padded = _md_pad(message)
    for off in range(0, len(padded), 64):
        w = list(struct.unpack(">16I", padded[off : off + 64]))
        for t in range(16, 64):
            s0 = _rotr32(w[t - 15], 7) ^ _rotr32(w[t - 15], 18) ^ (w[t - 15] >> 3)
            s1 = _rotr32(w[t - 2], 17) ^ _rotr32(w[t - 2], 19) ^ (w[t - 2] >> 10)
            w.append((w[t - 16] + s0 + w[t - 7] + s1) & _MASK32)
        a, b, c, d, e, f, g, hh = h
        for t in range(64):
            big_s1 = _rotr32(e, 6) ^ _rotr32(e, 11) ^ _rotr32(e, 25)
            ch = (e & f) ^ (~e & g)
            temp1 = (hh + big_s1 + ch + _SHA256_K[t] + w[t]) & _MASK32
            big_s0 = _rotr32(a, 2) ^ _rotr32(a, 13) ^ _rotr32(a, 22)
            maj = (a & b) ^ (a & c) ^ (b & c)
            temp2 = (big_s0 + maj) & _MASK32
            hh, g, f, e, d, c, b, a = (
                g, f, e, (d + temp1) & _MASK32, c, b, a, (temp1 + temp2) & _MASK32,
            )
        h = [(x + y) & _MASK32 for x, y in zip(h, (a, b, c, d, e, f, g, hh))]
    return struct.pack(">8I", *h)


DIGEST_SIZES = {"sha1": 20, "sha256": 32}
BLOCK_SIZES = {"sha1": 64, "sha256": 64}
HASHES = {"sha1": sha1, "sha256": sha256}
