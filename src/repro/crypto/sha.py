"""SHA-1 and SHA-256 implemented from the FIPS-180 specification.

HIP uses SHA-1 for HITs and puzzles (RFC 5201 era) and SHA-256 in later
revisions; TLS 1.2 PRF and our HMAC use SHA-256.  Both are implemented here
rather than taken from :mod:`hashlib` so the whole crypto substrate is
self-contained and auditable; tests cross-check every digest against
``hashlib`` on random inputs.

The module exposes two layers:

* ``sha1(message)`` / ``sha256(message)`` — one-shot digests.
* A compression-function API — ``SHA1_IV``/``SHA256_IV`` initial states,
  ``sha1_compress``/``sha256_compress`` (one 512-bit block each) and
  ``md_finish`` (Merkle–Damgård padding over a < 64-byte tail given the
  true message length).  :class:`repro.crypto.hmac_kdf.HmacKey` uses it to
  cache the ipad/opad midstates once per key, which is the dominant saving
  on the per-packet HMAC path.

The compression loops are deliberately flat: rotations are inlined (a left
shift may carry bits above 2^32 — they only ever propagate *upward* through
additions and are stripped by the final ``& MASK``), the SHA-1 round
function is split into its four 20-step phases so there is no per-step
branching, and message schedules are built once per block.  Known-answer
and hashlib differential tests pin byte-identical output.
"""

from __future__ import annotations

import struct

_MASK32 = 0xFFFFFFFF

SHA1_IV = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)

_SHA256_K = (
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5, 0x3956C25B, 0x59F111F1,
    0x923F82A4, 0xAB1C5ED5, 0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174, 0xE49B69C1, 0xEFBE4786,
    0x0FC19DC6, 0x240CA1CC, 0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7, 0xC6E00BF3, 0xD5A79147,
    0x06CA6351, 0x14292967, 0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85, 0xA2BFE8A1, 0xA81A664B,
    0xC24B8B70, 0xC76C51A3, 0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5, 0x391C0CB3, 0x4ED8AA4A,
    0x5B9CCA4F, 0x682E6FF3, 0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
)

SHA256_IV = (
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
)


def sha1_compress(state: tuple, data, offset: int = 0) -> tuple:
    """One SHA-1 compression of the 64-byte block at ``data[offset:]``."""
    M = _MASK32
    w = list(struct.unpack_from(">16I", data, offset))
    append = w.append
    for t in range(16, 80):
        x = w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]
        append(((x << 1) | (x >> 31)) & M)
    a, b, c, d, e = state
    for t in range(0, 20):
        temp = (((a << 5) | (a >> 27)) + ((b & c) | (~b & d)) + e + 0x5A827999 + w[t]) & M
        e, d, c, b, a = d, c, ((b << 30) | (b >> 2)) & M, a, temp
    for t in range(20, 40):
        temp = (((a << 5) | (a >> 27)) + (b ^ c ^ d) + e + 0x6ED9EBA1 + w[t]) & M
        e, d, c, b, a = d, c, ((b << 30) | (b >> 2)) & M, a, temp
    for t in range(40, 60):
        temp = (((a << 5) | (a >> 27)) + ((b & c) | (b & d) | (c & d)) + e + 0x8F1BBCDC + w[t]) & M
        e, d, c, b, a = d, c, ((b << 30) | (b >> 2)) & M, a, temp
    for t in range(60, 80):
        temp = (((a << 5) | (a >> 27)) + (b ^ c ^ d) + e + 0xCA62C1D6 + w[t]) & M
        e, d, c, b, a = d, c, ((b << 30) | (b >> 2)) & M, a, temp
    h0, h1, h2, h3, h4 = state
    return ((h0 + a) & M, (h1 + b) & M, (h2 + c) & M, (h3 + d) & M, (h4 + e) & M)


def sha256_compress(state: tuple, data, offset: int = 0) -> tuple:
    """One SHA-256 compression of the 64-byte block at ``data[offset:]``."""
    M = _MASK32
    K = _SHA256_K
    w = list(struct.unpack_from(">16I", data, offset))
    append = w.append
    for t in range(16, 64):
        x = w[t - 15]
        s0 = (((x >> 7) | (x << 25)) ^ ((x >> 18) | (x << 14)) ^ (x >> 3)) & M
        y = w[t - 2]
        s1 = (((y >> 17) | (y << 15)) ^ ((y >> 19) | (y << 13)) ^ (y >> 10)) & M
        append((w[t - 16] + s0 + w[t - 7] + s1) & M)
    a, b, c, d, e, f, g, hh = state
    for t in range(64):
        big_s1 = (((e >> 6) | (e << 26)) ^ ((e >> 11) | (e << 21)) ^ ((e >> 25) | (e << 7))) & M
        temp1 = hh + big_s1 + ((e & f) ^ (~e & g)) + K[t] + w[t]
        big_s0 = (((a >> 2) | (a << 30)) ^ ((a >> 13) | (a << 19)) ^ ((a >> 22) | (a << 10))) & M
        temp2 = big_s0 + ((a & b) ^ (a & c) ^ (b & c))
        hh, g, f, e, d, c, b, a = (
            g, f, e, (d + temp1) & M, c, b, a, (temp1 + temp2) & M,
        )
    h = state
    return (
        (h[0] + a) & M, (h[1] + b) & M, (h[2] + c) & M, (h[3] + d) & M,
        (h[4] + e) & M, (h[5] + f) & M, (h[6] + g) & M, (h[7] + hh) & M,
    )


def md_finish(compress, state: tuple, tail: bytes, total_len: int) -> tuple:
    """Merkle–Damgård finalization: pad ``tail`` (< 64 bytes) and compress.

    ``total_len`` is the length in bytes of the *entire* message, including
    any blocks already folded into ``state`` (e.g. the HMAC ipad block).
    """
    padded = bytes(tail) + b"\x80" + b"\x00" * ((55 - len(tail)) % 64) + struct.pack(
        ">Q", total_len * 8
    )
    state = compress(state, padded)
    if len(padded) == 128:
        state = compress(state, padded, 64)
    return state


def _md_pad(message: bytes) -> bytes:
    """Merkle–Damgård strengthening: 0x80, zeros, 64-bit big-endian bit length."""
    bit_len = len(message) * 8
    padded = message + b"\x80"
    padded += b"\x00" * ((56 - len(padded) % 64) % 64)
    return padded + struct.pack(">Q", bit_len)


def sha1(message: bytes) -> bytes:
    """SHA-1 digest (20 bytes)."""
    state = SHA1_IV
    n = len(message)
    full = n - (n % 64)
    for off in range(0, full, 64):
        state = sha1_compress(state, message, off)
    return struct.pack(">5I", *md_finish(sha1_compress, state, message[full:], n))


def sha256(message: bytes) -> bytes:
    """SHA-256 digest (32 bytes)."""
    state = SHA256_IV
    n = len(message)
    full = n - (n % 64)
    for off in range(0, full, 64):
        state = sha256_compress(state, message, off)
    return struct.pack(">8I", *md_finish(sha256_compress, state, message[full:], n))


DIGEST_SIZES = {"sha1": 20, "sha256": 32}
BLOCK_SIZES = {"sha1": 64, "sha256": 64}
HASHES = {"sha1": sha1, "sha256": sha256}
IVS = {"sha1": SHA1_IV, "sha256": SHA256_IV}
COMPRESS = {"sha1": sha1_compress, "sha256": sha256_compress}
PACK_FORMATS = {"sha1": ">5I", "sha256": ">8I"}
