"""Classic finite-field Diffie-Hellman with the RFC 3526 MODP groups.

The HIP base exchange negotiates a DH group in R1 and completes the exchange
in I2; RFC 5201 mandates support for the 1536-bit MODP group and recommends
the 3072-bit one.  We ship groups 2 (1024), 5 (1536) and 14 (2048) plus a
small 512-bit test group for fast unit tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.numtheory import int_to_bytes

# RFC 3526 / RFC 2409 MODP primes.  All have generator 2 and (p-1)/2 prime.
_MODP_1024 = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF",
    16,
)
_MODP_1536 = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF",
    16,
)
_MODP_2048 = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
# RFC 2409 Oakley Group 1 (768-bit) — obsolete for security, kept as the
# fast group for unit tests and simulations where crypto time is charged
# through the cost model anyway.
_MODP_768 = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A63A3620FFFFFFFFFFFFFFFF",
    16,
)


@dataclass(frozen=True)
class DHParams:
    """A Diffie-Hellman group: prime modulus and generator."""

    group_id: int
    prime: int
    generator: int = 2

    @property
    def bits(self) -> int:
        return self.prime.bit_length()

    @property
    def byte_length(self) -> int:
        return (self.bits + 7) // 8


MODP_GROUPS: dict[int, DHParams] = {
    2: DHParams(group_id=2, prime=_MODP_1024),
    5: DHParams(group_id=5, prime=_MODP_1536),
    14: DHParams(group_id=14, prime=_MODP_2048),
    # RFC 2409 group 1; used as the fast group for tests and simulations
    1: DHParams(group_id=1, prime=_MODP_768),
}


@dataclass(frozen=True)
class DHKeyPair:
    """Ephemeral DH key pair bound to a group."""

    params: DHParams
    private: int
    public: int

    @classmethod
    def generate(cls, params: DHParams, rng: random.Random) -> "DHKeyPair":
        # Exponent of twice the security level of the group is plenty;
        # cap at p-2 for tiny test groups.
        exp_bits = min(2 * 128, params.bits - 2)
        private = rng.getrandbits(exp_bits) | (1 << (exp_bits - 1))
        public = pow(params.generator, private, params.prime)
        return cls(params=params, private=private, public=public)

    def shared_secret(self, peer_public: int) -> bytes:
        """Compute the shared secret, validating the peer's public value."""
        p = self.params.prime
        if not 2 <= peer_public <= p - 2:
            raise ValueError("peer DH public value out of range")
        secret = pow(peer_public, self.private, p)
        if secret in (0, 1, p - 1):
            raise ValueError("degenerate DH shared secret (small-subgroup attack?)")
        return int_to_bytes(secret, self.params.byte_length)

    def public_bytes(self) -> bytes:
        return int_to_bytes(self.public, self.params.byte_length)
