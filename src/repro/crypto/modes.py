"""Block-cipher modes of operation: CBC and CTR, plus PKCS#7 padding.

CBC + HMAC is the classic ESP transform (and the TLS 1.2 CBC suites); CTR is
provided for completeness and for the virtual-payload fast path (keystream
generation cost without ciphertext storage).
"""

from __future__ import annotations

from repro.crypto.aes import AES, BLOCK_SIZE


def pkcs7_pad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Append PKCS#7 padding (always adds at least one byte)."""
    if not 0 < block_size < 256:
        raise ValueError("block size must be in 1..255")
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len

def pkcs7_unpad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Strip and validate PKCS#7 padding; raises ValueError on malformed input."""
    if not data or len(data) % block_size:
        raise ValueError("ciphertext length is not a multiple of the block size")
    pad_len = data[-1]
    if pad_len < 1 or pad_len > block_size:
        raise ValueError("invalid padding length byte")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise ValueError("padding bytes are inconsistent")
    return data[:-pad_len]


def _xor_block(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def cbc_encrypt(cipher: AES, iv: bytes, plaintext: bytes) -> bytes:
    """CBC-encrypt ``plaintext`` (PKCS#7 padded internally)."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be {BLOCK_SIZE} bytes")
    padded = pkcs7_pad(plaintext)
    out = bytearray()
    prev = iv
    for i in range(0, len(padded), BLOCK_SIZE):
        block = _xor_block(padded[i : i + BLOCK_SIZE], prev)
        prev = cipher.encrypt_block(block)
        out += prev
    return bytes(out)


def cbc_decrypt(cipher: AES, iv: bytes, ciphertext: bytes) -> bytes:
    """CBC-decrypt and strip PKCS#7 padding."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be {BLOCK_SIZE} bytes")
    if len(ciphertext) % BLOCK_SIZE:
        raise ValueError("ciphertext length is not a multiple of the block size")
    out = bytearray()
    prev = iv
    for i in range(0, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[i : i + BLOCK_SIZE]
        out += _xor_block(cipher.decrypt_block(block), prev)
        prev = block
    return pkcs7_unpad(bytes(out))


def ctr_keystream_xor(cipher: AES, nonce: bytes, data: bytes, counter0: int = 0) -> bytes:
    """CTR mode: XOR ``data`` with the AES-CTR keystream.

    ``nonce`` is the first 8 bytes of the counter block; the remaining 8
    bytes are a big-endian block counter starting at ``counter0``.  Encryption
    and decryption are the same operation.
    """
    if len(nonce) != 8:
        raise ValueError("CTR nonce must be 8 bytes")
    out = bytearray()
    counter = counter0
    for i in range(0, len(data), BLOCK_SIZE):
        block = cipher.encrypt_block(nonce + counter.to_bytes(8, "big"))
        chunk = data[i : i + BLOCK_SIZE]
        out += _xor_block(chunk, block[: len(chunk)])
        counter += 1
    return bytes(out)
