"""Block-cipher modes of operation: CBC and CTR, plus PKCS#7 padding.

CBC + HMAC is the classic ESP transform (and the TLS 1.2 CBC suites); CTR is
provided for completeness and for the virtual-payload fast path (keystream
generation cost without ciphertext storage).

The mode loops are batched: input is unpacked to 32-bit words once with
``struct``, chaining/keystream XOR happens on words, and ciphertext is
packed straight into a preallocated ``bytearray`` — no per-byte generator
expressions, no per-block ``bytes`` round-trips through
``AES.encrypt_block``.  CBC delegates to ``AES.cbc_encrypt_blocks`` /
``cbc_decrypt_blocks`` so the whole message runs inside one round-loop
frame (key schedule and tables bound once per message, the chaining XOR
fused into the whitening round).  CTR derives each counter block from two
nonce words plus the 64-bit counter split into words, so no counter buffer
is ever (re)built or sliced.
"""

from __future__ import annotations

import struct

from repro.crypto.aes import AES, BLOCK_SIZE
from repro.metrics import METRICS

_AES_BLOCKS = METRICS.counter("crypto.aes_blocks")
_AES_BYTES = METRICS.counter("crypto.aes_bytes")

_MASK32 = 0xFFFFFFFF


def pkcs7_pad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Append PKCS#7 padding (always adds at least one byte)."""
    if not 0 < block_size < 256:
        raise ValueError("block size must be in 1..255")
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len

def pkcs7_unpad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Strip and validate PKCS#7 padding; raises ValueError on malformed input."""
    if not data or len(data) % block_size:
        raise ValueError("ciphertext length is not a multiple of the block size")
    pad_len = data[-1]
    if pad_len < 1 or pad_len > block_size:
        raise ValueError("invalid padding length byte")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise ValueError("padding bytes are inconsistent")
    return data[:-pad_len]


def _xor_block(a: bytes, b: bytes) -> bytes:
    n = min(len(a), len(b))
    return (int.from_bytes(a[:n], "big") ^ int.from_bytes(b[:n], "big")).to_bytes(n, "big")


def cbc_encrypt(cipher: AES, iv: bytes, plaintext: bytes) -> bytes:
    """CBC-encrypt ``plaintext`` (PKCS#7 padded internally)."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be {BLOCK_SIZE} bytes")
    padded = pkcs7_pad(plaintext)
    n = len(padded)
    _AES_BLOCKS.value += n // BLOCK_SIZE
    _AES_BYTES.value += n
    return cipher.cbc_encrypt_blocks(iv, padded)


def cbc_decrypt(cipher: AES, iv: bytes, ciphertext: bytes) -> bytes:
    """CBC-decrypt and strip PKCS#7 padding."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be {BLOCK_SIZE} bytes")
    n = len(ciphertext)
    if n % BLOCK_SIZE:
        raise ValueError("ciphertext length is not a multiple of the block size")
    _AES_BLOCKS.value += n // BLOCK_SIZE
    _AES_BYTES.value += n
    return pkcs7_unpad(cipher.cbc_decrypt_blocks(iv, ciphertext))


def ctr_keystream_xor(cipher: AES, nonce: bytes, data: bytes, counter0: int = 0) -> bytes:
    """CTR mode: XOR ``data`` with the AES-CTR keystream.

    ``nonce`` is the first 8 bytes of the counter block; the remaining 8
    bytes are a big-endian block counter starting at ``counter0``.  Encryption
    and decryption are the same operation.
    """
    if len(nonce) != 8:
        raise ValueError("CTR nonce must be 8 bytes")
    n = len(data)
    if n == 0:
        return b""
    nblocks = (n + BLOCK_SIZE - 1) // BLOCK_SIZE
    _AES_BLOCKS.value += nblocks
    _AES_BYTES.value += n
    n0, n1 = struct.unpack(">2I", nonce)
    enc = cipher.encrypt_words
    out = bytearray(n)
    pack_into = struct.pack_into
    full = n - (n % BLOCK_SIZE)
    counter = counter0
    if full:
        words = struct.unpack_from(">%dI" % (full // 4), data)
        for i in range(0, full // 4, 4):
            k0, k1, k2, k3 = enc(n0, n1, (counter >> 32) & _MASK32, counter & _MASK32)
            pack_into(
                ">4I", out, i * 4,
                words[i] ^ k0, words[i + 1] ^ k1, words[i + 2] ^ k2, words[i + 3] ^ k3,
            )
            counter += 1
    rem = n - full
    if rem:
        k = struct.pack(">4I", *enc(n0, n1, (counter >> 32) & _MASK32, counter & _MASK32))
        tail = data[full:]
        out[full:] = (
            int.from_bytes(tail, "big") ^ int.from_bytes(k[:rem], "big")
        ).to_bytes(rem, "big")
    return bytes(out)
