"""RSA: key generation, PKCS#1 v1.5 signatures and encryption.

HIP Host Identifiers are RSA public keys in the reference HIPL deployment;
TLS 1.2's RSA key-transport handshake uses RSAES-PKCS1-v1_5.  Private-key
operations use the CRT speedup.  Key sizes default to 1024 bits to match the
paper's 2012-era deployment, and tests use smaller keys for speed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.numtheory import (
    bytes_to_int,
    int_to_bytes,
    modinv,
    random_prime,
)
from repro.crypto.sha import HASHES

# DigestInfo DER prefixes for EMSA-PKCS1-v1_5 (RFC 8017 §9.2 note 1).
_DIGEST_INFO_PREFIX = {
    "sha1": bytes.fromhex("3021300906052b0e03021a05000414"),
    "sha256": bytes.fromhex("3031300d060960864801650304020105000420"),
}


class RsaError(Exception):
    """Signature verification or decryption failure."""


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public key (n, e)."""

    n: int
    e: int

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    def to_bytes(self) -> bytes:
        """Wire encoding: 2-byte e length, e, then n (used in HOST_ID params)."""
        e_bytes = int_to_bytes(self.e)
        return len(e_bytes).to_bytes(2, "big") + e_bytes + int_to_bytes(self.n)

    @classmethod
    def from_bytes(cls, data: bytes) -> "RsaPublicKey":
        if len(data) < 4:
            raise ValueError("truncated RSA public key encoding")
        e_len = int.from_bytes(data[:2], "big")
        if len(data) < 2 + e_len + 1:
            raise ValueError("truncated RSA public key encoding")
        e = bytes_to_int(data[2 : 2 + e_len])
        n = bytes_to_int(data[2 + e_len :])
        return cls(n=n, e=e)

    # -- raw and padded operations -------------------------------------------
    def _encrypt_int(self, m: int) -> int:
        if not 0 <= m < self.n:
            raise ValueError("message representative out of range")
        return pow(m, self.e, self.n)

    def verify(self, message: bytes, signature: bytes, hash_name: str = "sha256") -> bool:
        """RSASSA-PKCS1-v1_5 verification; returns False on any mismatch."""
        k = self.byte_length
        if len(signature) != k:
            return False
        em = int_to_bytes(self._encrypt_int(bytes_to_int(signature)), k)
        try:
            expected = _emsa_pkcs1_v15(message, k, hash_name)
        except ValueError:
            return False
        return em == expected

    def encrypt(self, message: bytes, rng: random.Random) -> bytes:
        """RSAES-PKCS1-v1_5 encryption (TLS-style key transport)."""
        k = self.byte_length
        if len(message) > k - 11:
            raise ValueError(f"message too long for RSA-{self.bits} PKCS#1 v1.5")
        ps = bytes(rng.randrange(1, 256) for _ in range(k - len(message) - 3))
        em = b"\x00\x02" + ps + b"\x00" + message
        return int_to_bytes(self._encrypt_int(bytes_to_int(em)), k)


@dataclass(frozen=True)
class RsaKeyPair:
    """RSA key pair with CRT components for fast private operations."""

    public: RsaPublicKey
    d: int
    p: int
    q: int
    d_p: int
    d_q: int
    q_inv: int

    @classmethod
    def generate(cls, bits: int, rng: random.Random, e: int = 65537) -> "RsaKeyPair":
        if bits < 128:
            raise ValueError("RSA modulus below 128 bits is not supported")
        if bits % 2:
            raise ValueError("RSA modulus size must be even")
        while True:
            p = random_prime(bits // 2, rng)
            q = random_prime(bits // 2, rng)
            if p == q:
                continue
            phi = (p - 1) * (q - 1)
            try:
                d = modinv(e, phi)
            except ValueError:
                continue  # e not coprime with phi; rare, retry
            n = p * q
            if n.bit_length() != bits:
                continue
            return cls(
                public=RsaPublicKey(n=n, e=e),
                d=d,
                p=p,
                q=q,
                d_p=d % (p - 1),
                d_q=d % (q - 1),
                q_inv=modinv(q, p),
            )

    def _decrypt_int(self, c: int) -> int:
        """Private-key operation via CRT (about 4x faster than pow(c, d, n))."""
        if not 0 <= c < self.public.n:
            raise ValueError("ciphertext representative out of range")
        m1 = pow(c % self.p, self.d_p, self.p)
        m2 = pow(c % self.q, self.d_q, self.q)
        h = (self.q_inv * (m1 - m2)) % self.p
        return m2 + h * self.q

    def sign(self, message: bytes, hash_name: str = "sha256") -> bytes:
        """RSASSA-PKCS1-v1_5 signature."""
        k = self.public.byte_length
        em = _emsa_pkcs1_v15(message, k, hash_name)
        return int_to_bytes(self._decrypt_int(bytes_to_int(em)), k)

    def decrypt(self, ciphertext: bytes) -> bytes:
        """RSAES-PKCS1-v1_5 decryption; raises RsaError on bad padding."""
        k = self.public.byte_length
        if len(ciphertext) != k:
            raise RsaError("ciphertext has wrong length")
        em = int_to_bytes(self._decrypt_int(bytes_to_int(ciphertext)), k)
        if not em.startswith(b"\x00\x02"):
            raise RsaError("bad PKCS#1 v1.5 padding header")
        try:
            sep = em.index(b"\x00", 2)
        except ValueError:
            raise RsaError("missing PKCS#1 v1.5 separator") from None
        if sep < 10:  # at least 8 bytes of PS
            raise RsaError("PKCS#1 v1.5 padding string too short")
        return em[sep + 1 :]


def _emsa_pkcs1_v15(message: bytes, em_len: int, hash_name: str) -> bytes:
    try:
        prefix = _DIGEST_INFO_PREFIX[hash_name]
        hash_fn = HASHES[hash_name]
    except KeyError:
        raise ValueError(f"unsupported hash {hash_name!r}") from None
    t = prefix + hash_fn(message)
    if em_len < len(t) + 11:
        raise ValueError("intended encoded message length too short")
    ps = b"\xff" * (em_len - len(t) - 3)
    return b"\x00\x01" + ps + b"\x00" + t
