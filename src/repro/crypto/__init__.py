"""From-scratch cryptographic substrate.

The paper's claim — "HIP and SSL have a very similar performance footprint as
they are essentially based on the same algorithms" — is structural: both
protocols pay for asymmetric operations at connection setup and symmetric
operations per byte.  To make that claim testable we implement the actual
algorithms (RSA, Diffie-Hellman, ECDSA P-256, AES, SHA-1/SHA-256, HMAC,
HKDF-style key derivation and RFC 5201 puzzles) in pure Python, operate on
real bytes everywhere, and let the simulator charge *calibrated* CPU time per
primitive through :mod:`repro.crypto.costmodel` so measured shapes do not
depend on the speed of Python big-int arithmetic.
"""

from repro.crypto.aes import AES
from repro.crypto.costmodel import CostModel, CryptoMeter
from repro.crypto.dh import DHKeyPair, DHParams, MODP_GROUPS
from repro.crypto.ecc import EcdsaKeyPair, P256
from repro.crypto.hmac_kdf import ct_equal, hkdf_expand, hkdf_extract, hmac_digest
from repro.crypto.modes import (
    cbc_decrypt,
    cbc_encrypt,
    ctr_keystream_xor,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.crypto.numtheory import is_probable_prime, modinv, random_prime
from repro.crypto.puzzle import Puzzle, solve_puzzle, verify_solution
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey
from repro.crypto.sha import sha1, sha256

__all__ = [
    "AES",
    "CostModel",
    "CryptoMeter",
    "DHKeyPair",
    "DHParams",
    "EcdsaKeyPair",
    "MODP_GROUPS",
    "P256",
    "Puzzle",
    "RsaKeyPair",
    "RsaPublicKey",
    "cbc_decrypt",
    "cbc_encrypt",
    "ct_equal",
    "ctr_keystream_xor",
    "hkdf_expand",
    "hkdf_extract",
    "hmac_digest",
    "is_probable_prime",
    "modinv",
    "pkcs7_pad",
    "pkcs7_unpad",
    "random_prime",
    "sha1",
    "sha256",
    "solve_puzzle",
    "verify_solution",
]
