"""Million-session RUBiS: the sharded + fluid-flow scale scenario.

One availability zone per shard.  Each zone is a self-contained copy of the
Figure-1 deployment grown sideways: a two-tier datacenter hosting the web
tier, a database, a media VM and a crowd of idle multi-tenant filler VMs; a
zone-local Internet stub with per-consumer WAN links; a keep-alive reverse
proxy out front.  Zones peer through inter-AZ links — cross-shard portals in
the sharded build, ordinary wires in the monolithic twin — and exchange UDP
heartbeats across them, so the conservative-lookahead boundary carries real
traffic for the boundary digests to referee.

A *session* is one JSON-API request/response over a persistent connection
(:data:`~repro.apps.rubis.SCALE_API_MIX`).  A tunable fraction of sessions
tack on a bulk media download served by a ``fluid=True`` listener — the
fluid fast-forward's stage: a cwnd-stabilised multi-megabyte transfer
collapses from thousands of per-packet events into a handful of rate-
integral chunks while still charging wire counters per virtual byte.  The
media listener disables the competing-flow fluid guard: its transfers are
window-limited (wnd/rtt far below any shared link's fair share), so
concurrent arrivals on the media tier are not modeling disturbances.

Zone-spanning **tenant fleets** exercise the shard-aware placement pass
(ROADMAP item 1): each fleet is a ring of chatty UDP members whose home
member is anchored to the fleet's home zone while the rest are assigned by
:func:`repro.net.topology.plan_shard_placement` to keep ring chat
shard-local ("affinity") — or deliberately scattered round-robin across
zones ("scatter", the baseline the benchmark compares against).  The plan
is computed in the parent from the parameters alone and pins each member to
a concrete physical host and guest address (``.200+`` inside the host's
/24, far above the ``.10``-up dynamic allocator), so forked shard workers
and the monolithic twin deploy the identical fleet without ever seeing each
other's objects.

Both builders derive every random stream from the zone's shard namespace
(``RngStreams(seed).spawn("shard:z<i>")``), so the sharded run, the
monolithic twin, and the multiprocessing run draw identical randomness
per zone — the per-zone session counts are directly comparable.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Generator

from repro.apps.database import DbServer, rubis_tables
from repro.apps.http import (
    HttpError,
    HttpRequest,
    read_response,
    write_request,
)
from repro.apps.proxy import Backend, ReverseProxy
from repro.apps.rubis import RubisWebServer, pick_scale_request, request_path
from repro.apps.streams import BufferedReader, PlainStream, StreamClosed
from repro.cloud.datacenter import DatacenterParams, Internet
from repro.cloud.iaas import PublicCloud
from repro.cloud.tenant import SpreadPlacement, Tenant
from repro.net.addresses import IPAddress, Prefix, ipv4, prefix
from repro.net.node import Node
from repro.net.packet import VirtualPayload
from repro.net.tcp import TcpError, TcpStack
from repro.net.topology import (
    PlacementPlan,
    plan_shard_placement,
    wire,
    wire_cross_shard,
)
from repro.net.udp import UdpStack
from repro.scenarios.rubis_cloud import DB_PORT, FRONTEND_PORT, WEB_PORT
from repro.sim import RngStreams, Simulator

MEDIA_PORT = 9000
HEARTBEAT_PORT = 7100
FLEET_PORT = 7200

# WAN one-way delays: metro-area consumers, a nearby LB, the paper's cloud.
CLIENT_WAN_DELAY = 2e-3
LB_WAN_DELAY = 1e-3
CLOUD_WAN_DELAY = 2e-3


@dataclass(frozen=True)
class ScaleParams:
    """Knobs for one scale run; defaults are test-sized, the benchmark
    scales them up (thousands of VMs, dozens of clients per zone)."""

    n_zones: int = 2
    n_clients: int = 4  # closed-loop consumers per zone, one node each
    n_web: int = 2
    n_filler_vms: int = 8  # idle multi-tenant VMs padding the plant
    n_racks: int = 1
    hosts_per_rack: int = 2
    media_prob: float = 0.02  # per-session chance of a bulk media fetch
    media_bytes: int = 8 * 1024 * 1024
    media_window: int = 262144  # media receive window (sets the fluid rate)
    fluid: bool = True  # media tier serves in fluid fast-forward mode
    think_time: float = 0.02  # mean think time between sessions
    inter_zone_delay: float = 5e-3  # inter-AZ latency == lookahead window
    inter_zone_bps: float = 10e9
    heartbeat_interval: float = 0.25
    # Zone-spanning tenant fleets (0 disables them): rings of chatty UDP
    # members whose zone assignment comes from the shard-aware placement
    # pass ("affinity") or a worst-case round-robin spread ("scatter").
    n_fleets: int = 0
    fleet_size: int = 3
    fleet_interval: float = 0.05
    fleet_placement: str = "affinity"  # "affinity" | "scatter"


@dataclass
class ZoneStats:
    """Picklable per-zone tallies (the shard's result payload)."""

    api_sessions: int = 0
    media_sessions: int = 0
    media_bytes: int = 0
    fluid_bytes: int = 0
    fluid_enters: int = 0
    fluid_exits: int = 0
    errors: int = 0
    heartbeats_sent: int = 0
    heartbeats_recv: int = 0
    fleet_sent: int = 0
    fleet_recv: int = 0

    @property
    def sessions(self) -> int:
        return self.api_sessions + self.media_sessions

    def as_dict(self) -> dict:
        out = asdict(self)
        out["sessions"] = self.sessions
        return out


@dataclass
class Zone:
    """Handles to one zone's pieces (the in-process view)."""

    name: str
    index: int
    provider: PublicCloud
    internet: Internet
    lb_node: Node
    client_nodes: list[Node]
    web_vms: list
    db_vm: object
    media_vm: object
    stats: ZoneStats


def _zone_base_octet(zone_index: int) -> int:
    return 10 + zone_index


def _cross_link_addrs(i: int, j: int) -> tuple[IPAddress, IPAddress]:
    """/30-style endpoint pair for the inter-AZ link between zones i and j."""
    a, b = sorted((i, j))
    net = ipv4(f"172.29.{a}.{4 * b}").value
    lo, hi = IPAddress(4, net + 1), IPAddress(4, net + 2)
    return (lo, hi) if i < j else (hi, lo)


def _ring_neighbors(i: int, n: int) -> list[int]:
    return sorted({(i - 1) % n, (i + 1) % n} - {i})


def _ring_next_hop(i: int, j: int, n: int) -> int:
    """Ring-shortest next hop from zone ``i`` toward zone ``j``.

    Ties (the antipodal zone on an even ring) break clockwise, and both
    builders use this helper, so sharded and monolithic runs forward
    multi-hop fleet traffic over the identical sequence of inter-AZ links.
    """
    forward = (j - i) % n
    backward = (i - j) % n
    return (i + 1) % n if forward <= backward else (i - 1) % n


def _build_zone(sim: Simulator, zrngs, zone_index: int, p: ScaleParams) -> Zone:
    """The shared guts: one zone's cloud, apps and consumers."""
    zname = f"z{zone_index}"
    dc_params = DatacenterParams(
        n_racks=p.n_racks,
        hosts_per_rack=p.hosts_per_rack,
        base_octet=_zone_base_octet(zone_index),
    )
    provider = PublicCloud(sim, name=f"{zname}-ec2", params=dc_params)
    # Spread the active tier across hosts so each VM gets its own uplink;
    # the micros pack in afterwards like any multi-tenant plant.
    provider.placement = SpreadPlacement()
    internet = Internet(sim, name=f"{zname}-inet")
    provider.datacenter.attach_gateway(
        internet.router,
        gateway_addr=ipv4(f"203.0.{100 + zone_index}.2"),
        core_addr=ipv4(f"203.0.{100 + zone_index}.1"),
        delay_s=CLOUD_WAN_DELAY,
    )

    tenant = Tenant(f"webshop-{zname}")
    web_vms = [
        provider.launch(tenant, "m1.large", name=f"{zname}-web{i}")
        for i in range(p.n_web)
    ]
    db_vm = provider.launch(tenant, "c1.xlarge", name=f"{zname}-db")
    media_vm = provider.launch(tenant, "c1.xlarge", name=f"{zname}-media")
    for t in range(p.n_filler_vms):
        filler = Tenant(f"{zname}-filler{t % 8}")
        provider.launch(filler, "t1.micro", name=f"{zname}-idle{t}")

    stats = ZoneStats()

    # --- stacks and services ------------------------------------------------
    web_tcp = {vm.name: TcpStack(vm) for vm in web_vms}
    db_tcp = TcpStack(db_vm)
    media_tcp = TcpStack(media_vm)
    DbServer(
        db_vm, db_tcp, DB_PORT, rubis_tables(),
        rng=zrngs.stream("db-service"),
    )
    for vm in web_vms:
        RubisWebServer(
            vm, web_tcp[vm.name], WEB_PORT,
            db_addr=db_vm.primary_address, db_port=DB_PORT,
            rng=zrngs.stream(f"web-{vm.name}"),
        )
    media_listener = media_tcp.listen(
        MEDIA_PORT, fluid=p.fluid, fluid_flow_guard=False
    )
    sim.process(
        _media_accept_loop(sim, stats, media_listener, p),
        name=f"{zname}-media-accept",
    )

    # --- the load balancer --------------------------------------------------
    lb_node = Node(sim, f"{zname}-lb", cpu_cores=8)
    frontend_addr = ipv4(f"198.51.{zone_index}.10")
    internet.attach(lb_node, frontend_addr, delay_s=LB_WAN_DELAY)
    lb_tcp = TcpStack(lb_node)
    backends = [
        Backend(addr=vm.primary_address, port=WEB_PORT, use_tls=False)
        for vm in web_vms
    ]
    ReverseProxy(
        lb_node, lb_tcp, FRONTEND_PORT, backends,
        rng=zrngs.stream("proxy"), algorithm="round-robin",
        backend_keepalive=True,
    )

    # --- consumers: one node per closed-loop client -------------------------
    client_base = ipv4(f"192.{100 + zone_index}.0.0").value
    client_nodes = []
    media_addr = media_vm.primary_address
    for c in range(p.n_clients):
        cnode = Node(sim, f"{zname}-c{c}", cpu_cores=2)
        internet.attach(
            cnode, IPAddress(4, client_base + 256 + c), delay_s=CLIENT_WAN_DELAY
        )
        client_nodes.append(cnode)
        sim.process(
            _client_loop(
                sim, stats, TcpStack(cnode), frontend_addr, media_addr,
                zrngs.stream(f"client-{c}"), p,
            ),
            name=f"{zname}-client{c}",
        )

    return Zone(
        name=zname, index=zone_index, provider=provider, internet=internet,
        lb_node=lb_node, client_nodes=client_nodes, web_vms=web_vms,
        db_vm=db_vm, media_vm=media_vm, stats=stats,
    )


# --------------------------------------------------------------- media tier --


def _media_accept_loop(sim, stats: ZoneStats, listener, p: ScaleParams) -> Generator:
    while True:
        conn = yield listener.accept()
        sim.process(_media_serve(stats, conn, p), name="media-serve")


def _media_serve(stats: ZoneStats, conn, p: ScaleParams) -> Generator:
    """Read the one-line request, push the blob, wait for the client's FIN."""
    try:
        request = yield conn.rx.get()
        if request:
            conn.write(VirtualPayload(p.media_bytes, tag="media"))
            while True:
                chunk = yield conn.rx.get()
                if not chunk:
                    break
        conn.close()
    except TcpError:
        pass
    stats.fluid_bytes += conn.fluid_bytes
    stats.fluid_enters += conn.fluid_enters
    stats.fluid_exits += conn.fluid_exits


# ---------------------------------------------------------------- consumers --


def _client_loop(
    sim, stats: ZoneStats, tcp: TcpStack, frontend_addr, media_addr,
    rng, p: ScaleParams,
) -> Generator:
    # Desynchronised start so a zone's clients don't march in phase.
    yield sim.timeout(rng.random() * 0.2)
    while True:
        try:
            conn = yield from tcp.open_connection(frontend_addr, FRONTEND_PORT)
        except TcpError:
            stats.errors += 1
            yield sim.timeout(0.2)
            continue
        stream = PlainStream(conn)
        reader = BufferedReader(stream)
        try:
            while True:
                rt = pick_scale_request(rng)
                request = HttpRequest(
                    "GET", request_path(rt, rng), headers={"Host": "rubis"}
                )
                yield from write_request(stream, request)
                response = yield from read_response(reader)
                if response.status == 200:
                    stats.api_sessions += 1
                else:
                    stats.errors += 1
                if rng.random() < p.media_prob:
                    yield from _fetch_media(sim, stats, tcp, media_addr, p)
                if p.think_time > 0.0:
                    yield sim.timeout(rng.expovariate(1.0 / p.think_time))
        except (TcpError, StreamClosed, HttpError):
            stats.errors += 1
            conn.abort()
            yield sim.timeout(0.1)


def _fetch_media(sim, stats: ZoneStats, tcp: TcpStack, media_addr, p) -> Generator:
    try:
        conn = yield from tcp.open_connection(
            media_addr, MEDIA_PORT, recv_window=p.media_window
        )
    except TcpError:
        stats.errors += 1
        return
    try:
        conn.write(b"GET /media HTTP/1.0\r\n\r\n")
        got = 0
        while got < p.media_bytes:
            chunk = yield conn.rx.get()
            if not chunk:
                stats.errors += 1
                conn.abort()
                return
            got += len(chunk)
        # Count on delivery, before teardown: the server tallies its fluid
        # counters on our FIN, so counting after the close handshake would
        # leave the last transfer of a run in one tally but not the other.
        stats.media_sessions += 1
        stats.media_bytes += got
        conn.close()
        while True:  # drain to EOF so both FINs complete the teardown
            chunk = yield conn.rx.get()
            if not chunk:
                break
    except TcpError:
        stats.errors += 1
        return


# ------------------------------------------------------------ tenant fleets --


@dataclass
class FleetPlan:
    """Picklable fleet deployment: every member pinned to zone/host/address.

    Computed once in the parent process from the parameters alone (no
    simulator objects), so forked shard workers and the monolithic twin can
    each deploy exactly their slice of the identical plan.
    """

    placement: str
    n_zones: int
    #: (fleet, member) -> (zone index, flat host index, guest address).
    members: dict[tuple[int, int], tuple[int, int, str]]
    #: Placement-quality stats from :meth:`PlacementPlan.quality`.
    quality: dict

    def zone_members(self, zone_index: int) -> list[tuple[int, int]]:
        return sorted(
            m for m, (zone, _h, _a) in self.members.items() if zone == zone_index
        )


def _fleet_edges(p: ScaleParams) -> list[tuple[tuple[int, int], tuple[int, int], float]]:
    """Undirected ring-chat edges between each fleet's members."""
    edges = []
    for f in range(p.n_fleets):
        seen: set[frozenset] = set()
        for k in range(p.fleet_size):
            a, b = (f, k), (f, (k + 1) % p.fleet_size)
            pair = frozenset((a, b))
            if a == b or pair in seen:
                continue
            seen.add(pair)
            edges.append((a, b, 1.0))
    return edges


def plan_fleet(p: ScaleParams) -> FleetPlan | None:
    """Assign every fleet member a zone, physical host, and guest address.

    ``affinity`` runs :func:`plan_shard_placement` with each fleet's member
    0 anchored to its home zone (``fleet % n_zones``) — the shard-aware
    pass that keeps ring chat inside one shard wherever balance allows.
    ``scatter`` is the adversarial baseline: members round-robin across
    zones starting at the home zone, so nearly every ring edge crosses a
    shard boundary.  Hosts fill round-robin per zone; addresses take the
    ``.200+`` tail of each host's /24 guest subnet, far above the dynamic
    allocator's ``.10``-up range.
    """
    if p.n_fleets <= 0:
        return None
    if p.fleet_placement not in ("affinity", "scatter"):
        raise ValueError(f"unknown fleet placement {p.fleet_placement!r}")
    items = [(f, k) for f in range(p.n_fleets) for k in range(p.fleet_size)]
    edges = _fleet_edges(p)
    anchors = {(f, 0): f % p.n_zones for f in range(p.n_fleets)}
    if p.fleet_placement == "affinity":
        plan = plan_shard_placement(items, edges, p.n_zones, anchors=anchors)
    else:
        assignment = {
            (f, k): (f % p.n_zones + k) % p.n_zones for f, k in items
        }
        plan = PlacementPlan(
            n_shards=p.n_zones,
            assignment=assignment,
            edges=edges,
            weights={item: 1.0 for item in items},
        )
    n_hosts = p.n_racks * p.hosts_per_rack
    per_zone = [0] * p.n_zones
    members: dict[tuple[int, int], tuple[int, int, str]] = {}
    for item in items:
        zone = plan.assignment[item]
        slot = per_zone[zone]
        per_zone[zone] += 1
        host_index = slot % n_hosts
        octet = 200 + slot // n_hosts
        if octet > 254:
            raise ValueError(
                f"zone z{zone} fleet membership exceeds pinned-address space"
            )
        rack = host_index // p.hosts_per_rack
        host_in_rack = host_index % p.hosts_per_rack
        addr = f"{_zone_base_octet(zone)}.{rack}.{host_in_rack + 1}.{octet}"
        members[item] = (zone, host_index, addr)
    return FleetPlan(
        placement=p.fleet_placement,
        n_zones=p.n_zones,
        members=members,
        quality=plan.quality(),
    )


def _fleet_chat_tx(sim, stats: ZoneStats, sock, peer_addr, fleet: int,
                   member: int, interval: float, rng) -> Generator:
    # Desynchronised start, from the zone's own RNG namespace.
    yield sim.timeout(rng.random() * interval)
    beat = 0
    while True:
        yield sim.timeout(interval)
        beat += 1
        sock.sendto(b"fleet:%d:%d:%d" % (fleet, member, beat),
                    peer_addr, FLEET_PORT)
        stats.fleet_sent += 1


def _fleet_chat_rx(stats: ZoneStats, sock) -> Generator:
    while True:
        yield sock.recvfrom()
        stats.fleet_recv += 1


def _deploy_fleet(sim, zrngs, zone: Zone, zone_index: int, plan: FleetPlan,
                  p: ScaleParams) -> None:
    """Launch this zone's slice of the fleet plan and start its chatter."""
    hosts = zone.provider.datacenter.hosts
    stats = zone.stats
    for f, k in plan.zone_members(zone_index):
        _zone, host_index, addr = plan.members[(f, k)]
        vm = zone.provider.launch(
            Tenant(f"fleet{f}"), "t1.micro", name=f"z{zone_index}-fleet{f}m{k}",
            host=hosts[host_index], address=ipv4(addr),
        )
        peer = (f, (k + 1) % p.fleet_size)
        sock = UdpStack(vm).bind(FLEET_PORT)
        sim.process(_fleet_chat_rx(stats, sock), name=f"{vm.name}-rx")
        if peer == (f, k):
            continue  # single-member fleet: nothing to chat with
        peer_addr = ipv4(plan.members[peer][2])
        sim.process(
            _fleet_chat_tx(sim, stats, sock, peer_addr, f, k,
                           p.fleet_interval, zrngs.stream(f"fleet-{f}-{k}")),
            name=f"{vm.name}-tx",
        )


# --------------------------------------------------------- cross-zone links --


def _heartbeat_tx(sim, stats: ZoneStats, sock, peers: dict[int, IPAddress],
                  interval: float) -> Generator:
    beat = 0
    while True:
        yield sim.timeout(interval)
        beat += 1
        payload = b"hb:%d" % beat
        for j in sorted(peers):
            sock.sendto(payload, peers[j], HEARTBEAT_PORT)
            stats.heartbeats_sent += 1


def _heartbeat_rx(stats: ZoneStats, sock) -> Generator:
    while True:
        yield sock.recvfrom()
        stats.heartbeats_recv += 1


def _start_heartbeats(sim, zname: str, stats: ZoneStats, border: Node,
                      peers: dict[int, IPAddress], p: ScaleParams) -> None:
    sock = UdpStack(border).bind(HEARTBEAT_PORT)
    sim.process(
        _heartbeat_tx(sim, stats, sock, peers, p.heartbeat_interval),
        name=f"{zname}-hb-tx",
    )
    sim.process(_heartbeat_rx(stats, sock), name=f"{zname}-hb-rx")


# ----------------------------------------------------------------- builders --


def build_scale_zone(shard, zone_index: int, n_zones: int,
                     params: ScaleParams | None = None,
                     fleet_plan: FleetPlan | None = None) -> Zone:
    """Shard builder (module-level, hence picklable for process workers)."""
    p = params or ScaleParams()
    sim = shard.sim
    zone = _build_zone(sim, shard.rngs, zone_index, p)
    border = zone.internet.router
    peers: dict[int, IPAddress] = {}
    neighbor_ifaces: dict[int, object] = {}
    for j in _ring_neighbors(zone_index, n_zones):
        my_addr, peer_addr = _cross_link_addrs(zone_index, j)
        iface = wire_cross_shard(
            shard, border, my_addr,
            out_port=f"x:z{zone_index}->z{j}", in_port=f"x:z{j}->z{zone_index}",
            dst_shard=f"z{j}", bandwidth_bps=p.inter_zone_bps,
            delay_s=p.inter_zone_delay,
        )
        border.routes.add(Prefix(peer_addr, 32), iface)
        peers[j] = peer_addr
        neighbor_ifaces[j] = iface
    # Cross-zone guest routes: every other zone's 10.x/8 guest space is
    # reachable over the ring-shortest inter-AZ hop, so zone-spanning
    # tenants (fleets) can talk VM-to-VM across shard boundaries.
    for j in range(n_zones):
        if j == zone_index or not neighbor_ifaces:
            continue
        nh = _ring_next_hop(zone_index, j, n_zones)
        border.routes.add(
            prefix(f"{_zone_base_octet(j)}.0.0.0/8"), neighbor_ifaces[nh]
        )
    if peers:
        _start_heartbeats(sim, zone.name, zone.stats, border, peers, p)
    if p.n_fleets > 0:
        plan = fleet_plan if fleet_plan is not None else plan_fleet(p)
        _deploy_fleet(sim, shard.rngs, zone, zone_index, plan, p)
    shard.result_fn = zone.stats.as_dict
    return zone


def scale_builders(p: ScaleParams) -> dict:
    """The ``ShardedSimulation`` builder map for a scale run."""
    plan = plan_fleet(p)
    return {
        f"z{i}": (build_scale_zone, {"zone_index": i, "n_zones": p.n_zones,
                                     "params": p, "fleet_plan": plan})
        for i in range(p.n_zones)
    }


def build_scale_monolithic(
    seed: int, p: ScaleParams, fast_path: bool | None = None
) -> tuple[Simulator, list[Zone]]:
    """The single-heap twin: same zones, same RNG namespaces, real wires.

    Used as the speedup baseline (with ``fluid=False``) and as the timing
    reference the sharded build must reproduce bit-identically.
    """
    sim = Simulator(fast_path=fast_path)
    root = RngStreams(seed)
    zone_rngs = [root.spawn(f"shard:z{i}") for i in range(p.n_zones)]
    zones = [
        _build_zone(sim, zone_rngs[i], i, p) for i in range(p.n_zones)
    ]
    linked: set[tuple[int, int]] = set()
    peer_map: dict[int, dict[int, IPAddress]] = {i: {} for i in range(p.n_zones)}
    iface_map: dict[tuple[int, int], object] = {}
    for i in range(p.n_zones):
        for j in _ring_neighbors(i, p.n_zones):
            pair = (min(i, j), max(i, j))
            if pair in linked:
                continue
            linked.add(pair)
            a, b = pair
            addr_a, addr_b = _cross_link_addrs(a, b)
            iface_a, iface_b, _ = wire(
                sim, zones[a].internet.router, zones[b].internet.router,
                addr_a=addr_a, addr_b=addr_b,
                bandwidth_bps=p.inter_zone_bps, delay_s=p.inter_zone_delay,
            )
            zones[a].internet.router.routes.add(Prefix(addr_b, 32), iface_a)
            zones[b].internet.router.routes.add(Prefix(addr_a, 32), iface_b)
            peer_map[a][b] = addr_b
            peer_map[b][a] = addr_a
            iface_map[(a, b)] = iface_a
            iface_map[(b, a)] = iface_b
    # Mirror the sharded builder's cross-zone /8 guest routes (ring-shortest
    # next hop, same tie-break) so both builds forward fleet traffic over
    # the identical link sequence.
    for i in range(p.n_zones):
        for j in range(p.n_zones):
            if i == j or not peer_map[i]:
                continue
            nh = _ring_next_hop(i, j, p.n_zones)
            zones[i].internet.router.routes.add(
                prefix(f"{_zone_base_octet(j)}.0.0.0/8"), iface_map[(i, nh)]
            )
    for i, zone in enumerate(zones):
        if peer_map[i]:
            _start_heartbeats(
                sim, zone.name, zone.stats, zone.internet.router, peer_map[i], p
            )
    if p.n_fleets > 0:
        plan = plan_fleet(p)
        for i, zone in enumerate(zones):
            _deploy_fleet(sim, zone_rngs[i], zone, i, plan, p)
    return sim, zones
