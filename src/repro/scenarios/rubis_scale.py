"""Million-session RUBiS: the sharded + fluid-flow scale scenario.

One availability zone per shard.  Each zone is a self-contained copy of the
Figure-1 deployment grown sideways: a two-tier datacenter hosting the web
tier, a database, a media VM and a crowd of idle multi-tenant filler VMs; a
zone-local Internet stub with per-consumer WAN links; a keep-alive reverse
proxy out front.  Zones peer through inter-AZ links — cross-shard portals in
the sharded build, ordinary wires in the monolithic twin — and exchange UDP
heartbeats across them, so the conservative-lookahead boundary carries real
traffic for the boundary digests to referee.

A *session* is one JSON-API request/response over a persistent connection
(:data:`~repro.apps.rubis.SCALE_API_MIX`).  A tunable fraction of sessions
tack on a bulk media download served by a ``fluid=True`` listener — the
fluid fast-forward's stage: a cwnd-stabilised multi-megabyte transfer
collapses from thousands of per-packet events into a handful of rate-
integral chunks while still charging wire counters per virtual byte.  The
media listener disables the competing-flow fluid guard: its transfers are
window-limited (wnd/rtt far below any shared link's fair share), so
concurrent arrivals on the media tier are not modeling disturbances.

Both builders derive every random stream from the zone's shard namespace
(``RngStreams(seed).spawn("shard:z<i>")``), so the sharded run, the
monolithic twin, and the multiprocessing run draw identical randomness
per zone — the per-zone session counts are directly comparable.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Generator

from repro.apps.database import DbServer, rubis_tables
from repro.apps.http import (
    HttpError,
    HttpRequest,
    read_response,
    write_request,
)
from repro.apps.proxy import Backend, ReverseProxy
from repro.apps.rubis import RubisWebServer, pick_scale_request, request_path
from repro.apps.streams import BufferedReader, PlainStream, StreamClosed
from repro.cloud.datacenter import DatacenterParams, Internet
from repro.cloud.iaas import PublicCloud
from repro.cloud.tenant import SpreadPlacement, Tenant
from repro.net.addresses import IPAddress, Prefix, ipv4
from repro.net.node import Node
from repro.net.packet import VirtualPayload
from repro.net.tcp import TcpError, TcpStack
from repro.net.topology import wire, wire_cross_shard
from repro.net.udp import UdpStack
from repro.scenarios.rubis_cloud import DB_PORT, FRONTEND_PORT, WEB_PORT
from repro.sim import RngStreams, Simulator

MEDIA_PORT = 9000
HEARTBEAT_PORT = 7100

# WAN one-way delays: metro-area consumers, a nearby LB, the paper's cloud.
CLIENT_WAN_DELAY = 2e-3
LB_WAN_DELAY = 1e-3
CLOUD_WAN_DELAY = 2e-3


@dataclass(frozen=True)
class ScaleParams:
    """Knobs for one scale run; defaults are test-sized, the benchmark
    scales them up (thousands of VMs, dozens of clients per zone)."""

    n_zones: int = 2
    n_clients: int = 4  # closed-loop consumers per zone, one node each
    n_web: int = 2
    n_filler_vms: int = 8  # idle multi-tenant VMs padding the plant
    n_racks: int = 1
    hosts_per_rack: int = 2
    media_prob: float = 0.02  # per-session chance of a bulk media fetch
    media_bytes: int = 8 * 1024 * 1024
    media_window: int = 262144  # media receive window (sets the fluid rate)
    fluid: bool = True  # media tier serves in fluid fast-forward mode
    think_time: float = 0.02  # mean think time between sessions
    inter_zone_delay: float = 5e-3  # inter-AZ latency == lookahead window
    inter_zone_bps: float = 10e9
    heartbeat_interval: float = 0.25


@dataclass
class ZoneStats:
    """Picklable per-zone tallies (the shard's result payload)."""

    api_sessions: int = 0
    media_sessions: int = 0
    media_bytes: int = 0
    fluid_bytes: int = 0
    fluid_enters: int = 0
    fluid_exits: int = 0
    errors: int = 0
    heartbeats_sent: int = 0
    heartbeats_recv: int = 0

    @property
    def sessions(self) -> int:
        return self.api_sessions + self.media_sessions

    def as_dict(self) -> dict:
        out = asdict(self)
        out["sessions"] = self.sessions
        return out


@dataclass
class Zone:
    """Handles to one zone's pieces (the in-process view)."""

    name: str
    index: int
    provider: PublicCloud
    internet: Internet
    lb_node: Node
    client_nodes: list[Node]
    web_vms: list
    db_vm: object
    media_vm: object
    stats: ZoneStats


def _zone_base_octet(zone_index: int) -> int:
    return 10 + zone_index


def _cross_link_addrs(i: int, j: int) -> tuple[IPAddress, IPAddress]:
    """/30-style endpoint pair for the inter-AZ link between zones i and j."""
    a, b = sorted((i, j))
    net = ipv4(f"172.29.{a}.{4 * b}").value
    lo, hi = IPAddress(4, net + 1), IPAddress(4, net + 2)
    return (lo, hi) if i < j else (hi, lo)


def _ring_neighbors(i: int, n: int) -> list[int]:
    return sorted({(i - 1) % n, (i + 1) % n} - {i})


def _build_zone(sim: Simulator, zrngs, zone_index: int, p: ScaleParams) -> Zone:
    """The shared guts: one zone's cloud, apps and consumers."""
    zname = f"z{zone_index}"
    dc_params = DatacenterParams(
        n_racks=p.n_racks,
        hosts_per_rack=p.hosts_per_rack,
        base_octet=_zone_base_octet(zone_index),
    )
    provider = PublicCloud(sim, name=f"{zname}-ec2", params=dc_params)
    # Spread the active tier across hosts so each VM gets its own uplink;
    # the micros pack in afterwards like any multi-tenant plant.
    provider.placement = SpreadPlacement()
    internet = Internet(sim, name=f"{zname}-inet")
    provider.datacenter.attach_gateway(
        internet.router,
        gateway_addr=ipv4(f"203.0.{100 + zone_index}.2"),
        core_addr=ipv4(f"203.0.{100 + zone_index}.1"),
        delay_s=CLOUD_WAN_DELAY,
    )

    tenant = Tenant(f"webshop-{zname}")
    web_vms = [
        provider.launch(tenant, "m1.large", name=f"{zname}-web{i}")
        for i in range(p.n_web)
    ]
    db_vm = provider.launch(tenant, "c1.xlarge", name=f"{zname}-db")
    media_vm = provider.launch(tenant, "c1.xlarge", name=f"{zname}-media")
    for t in range(p.n_filler_vms):
        filler = Tenant(f"{zname}-filler{t % 8}")
        provider.launch(filler, "t1.micro", name=f"{zname}-idle{t}")

    stats = ZoneStats()

    # --- stacks and services ------------------------------------------------
    web_tcp = {vm.name: TcpStack(vm) for vm in web_vms}
    db_tcp = TcpStack(db_vm)
    media_tcp = TcpStack(media_vm)
    DbServer(
        db_vm, db_tcp, DB_PORT, rubis_tables(),
        rng=zrngs.stream("db-service"),
    )
    for vm in web_vms:
        RubisWebServer(
            vm, web_tcp[vm.name], WEB_PORT,
            db_addr=db_vm.primary_address, db_port=DB_PORT,
            rng=zrngs.stream(f"web-{vm.name}"),
        )
    media_listener = media_tcp.listen(
        MEDIA_PORT, fluid=p.fluid, fluid_flow_guard=False
    )
    sim.process(
        _media_accept_loop(sim, stats, media_listener, p),
        name=f"{zname}-media-accept",
    )

    # --- the load balancer --------------------------------------------------
    lb_node = Node(sim, f"{zname}-lb", cpu_cores=8)
    frontend_addr = ipv4(f"198.51.{zone_index}.10")
    internet.attach(lb_node, frontend_addr, delay_s=LB_WAN_DELAY)
    lb_tcp = TcpStack(lb_node)
    backends = [
        Backend(addr=vm.primary_address, port=WEB_PORT, use_tls=False)
        for vm in web_vms
    ]
    ReverseProxy(
        lb_node, lb_tcp, FRONTEND_PORT, backends,
        rng=zrngs.stream("proxy"), algorithm="round-robin",
        backend_keepalive=True,
    )

    # --- consumers: one node per closed-loop client -------------------------
    client_base = ipv4(f"192.{100 + zone_index}.0.0").value
    client_nodes = []
    media_addr = media_vm.primary_address
    for c in range(p.n_clients):
        cnode = Node(sim, f"{zname}-c{c}", cpu_cores=2)
        internet.attach(
            cnode, IPAddress(4, client_base + 256 + c), delay_s=CLIENT_WAN_DELAY
        )
        client_nodes.append(cnode)
        sim.process(
            _client_loop(
                sim, stats, TcpStack(cnode), frontend_addr, media_addr,
                zrngs.stream(f"client-{c}"), p,
            ),
            name=f"{zname}-client{c}",
        )

    return Zone(
        name=zname, index=zone_index, provider=provider, internet=internet,
        lb_node=lb_node, client_nodes=client_nodes, web_vms=web_vms,
        db_vm=db_vm, media_vm=media_vm, stats=stats,
    )


# --------------------------------------------------------------- media tier --


def _media_accept_loop(sim, stats: ZoneStats, listener, p: ScaleParams) -> Generator:
    while True:
        conn = yield listener.accept()
        sim.process(_media_serve(stats, conn, p), name="media-serve")


def _media_serve(stats: ZoneStats, conn, p: ScaleParams) -> Generator:
    """Read the one-line request, push the blob, wait for the client's FIN."""
    try:
        request = yield conn.rx.get()
        if request:
            conn.write(VirtualPayload(p.media_bytes, tag="media"))
            while True:
                chunk = yield conn.rx.get()
                if not chunk:
                    break
        conn.close()
    except TcpError:
        pass
    stats.fluid_bytes += conn.fluid_bytes
    stats.fluid_enters += conn.fluid_enters
    stats.fluid_exits += conn.fluid_exits


# ---------------------------------------------------------------- consumers --


def _client_loop(
    sim, stats: ZoneStats, tcp: TcpStack, frontend_addr, media_addr,
    rng, p: ScaleParams,
) -> Generator:
    # Desynchronised start so a zone's clients don't march in phase.
    yield sim.timeout(rng.random() * 0.2)
    while True:
        try:
            conn = yield from tcp.open_connection(frontend_addr, FRONTEND_PORT)
        except TcpError:
            stats.errors += 1
            yield sim.timeout(0.2)
            continue
        stream = PlainStream(conn)
        reader = BufferedReader(stream)
        try:
            while True:
                rt = pick_scale_request(rng)
                request = HttpRequest(
                    "GET", request_path(rt, rng), headers={"Host": "rubis"}
                )
                yield from write_request(stream, request)
                response = yield from read_response(reader)
                if response.status == 200:
                    stats.api_sessions += 1
                else:
                    stats.errors += 1
                if rng.random() < p.media_prob:
                    yield from _fetch_media(sim, stats, tcp, media_addr, p)
                if p.think_time > 0.0:
                    yield sim.timeout(rng.expovariate(1.0 / p.think_time))
        except (TcpError, StreamClosed, HttpError):
            stats.errors += 1
            conn.abort()
            yield sim.timeout(0.1)


def _fetch_media(sim, stats: ZoneStats, tcp: TcpStack, media_addr, p) -> Generator:
    try:
        conn = yield from tcp.open_connection(
            media_addr, MEDIA_PORT, recv_window=p.media_window
        )
    except TcpError:
        stats.errors += 1
        return
    try:
        conn.write(b"GET /media HTTP/1.0\r\n\r\n")
        got = 0
        while got < p.media_bytes:
            chunk = yield conn.rx.get()
            if not chunk:
                stats.errors += 1
                conn.abort()
                return
            got += len(chunk)
        # Count on delivery, before teardown: the server tallies its fluid
        # counters on our FIN, so counting after the close handshake would
        # leave the last transfer of a run in one tally but not the other.
        stats.media_sessions += 1
        stats.media_bytes += got
        conn.close()
        while True:  # drain to EOF so both FINs complete the teardown
            chunk = yield conn.rx.get()
            if not chunk:
                break
    except TcpError:
        stats.errors += 1
        return


# --------------------------------------------------------- cross-zone links --


def _heartbeat_tx(sim, stats: ZoneStats, sock, peers: dict[int, IPAddress],
                  interval: float) -> Generator:
    beat = 0
    while True:
        yield sim.timeout(interval)
        beat += 1
        payload = b"hb:%d" % beat
        for j in sorted(peers):
            sock.sendto(payload, peers[j], HEARTBEAT_PORT)
            stats.heartbeats_sent += 1


def _heartbeat_rx(stats: ZoneStats, sock) -> Generator:
    while True:
        yield sock.recvfrom()
        stats.heartbeats_recv += 1


def _start_heartbeats(sim, zname: str, stats: ZoneStats, border: Node,
                      peers: dict[int, IPAddress], p: ScaleParams) -> None:
    sock = UdpStack(border).bind(HEARTBEAT_PORT)
    sim.process(
        _heartbeat_tx(sim, stats, sock, peers, p.heartbeat_interval),
        name=f"{zname}-hb-tx",
    )
    sim.process(_heartbeat_rx(stats, sock), name=f"{zname}-hb-rx")


# ----------------------------------------------------------------- builders --


def build_scale_zone(shard, zone_index: int, n_zones: int,
                     params: ScaleParams | None = None) -> Zone:
    """Shard builder (module-level, hence picklable for process workers)."""
    p = params or ScaleParams()
    sim = shard.sim
    zone = _build_zone(sim, shard.rngs, zone_index, p)
    border = zone.internet.router
    peers: dict[int, IPAddress] = {}
    for j in _ring_neighbors(zone_index, n_zones):
        my_addr, peer_addr = _cross_link_addrs(zone_index, j)
        iface = wire_cross_shard(
            shard, border, my_addr,
            out_port=f"x:z{zone_index}->z{j}", in_port=f"x:z{j}->z{zone_index}",
            dst_shard=f"z{j}", bandwidth_bps=p.inter_zone_bps,
            delay_s=p.inter_zone_delay,
        )
        border.routes.add(Prefix(peer_addr, 32), iface)
        peers[j] = peer_addr
    if peers:
        _start_heartbeats(sim, zone.name, zone.stats, border, peers, p)
    shard.result_fn = zone.stats.as_dict
    return zone


def scale_builders(p: ScaleParams) -> dict:
    """The ``ShardedSimulation`` builder map for a scale run."""
    return {
        f"z{i}": (build_scale_zone, {"zone_index": i, "n_zones": p.n_zones,
                                     "params": p})
        for i in range(p.n_zones)
    }


def build_scale_monolithic(
    seed: int, p: ScaleParams, fast_path: bool | None = None
) -> tuple[Simulator, list[Zone]]:
    """The single-heap twin: same zones, same RNG namespaces, real wires.

    Used as the speedup baseline (with ``fluid=False``) and as the timing
    reference the sharded build must reproduce bit-identically.
    """
    sim = Simulator(fast_path=fast_path)
    root = RngStreams(seed)
    zones = [
        _build_zone(sim, root.spawn(f"shard:z{i}"), i, p)
        for i in range(p.n_zones)
    ]
    linked: set[tuple[int, int]] = set()
    peer_map: dict[int, dict[int, IPAddress]] = {i: {} for i in range(p.n_zones)}
    for i in range(p.n_zones):
        for j in _ring_neighbors(i, p.n_zones):
            pair = (min(i, j), max(i, j))
            if pair in linked:
                continue
            linked.add(pair)
            a, b = pair
            addr_a, addr_b = _cross_link_addrs(a, b)
            iface_a, iface_b, _ = wire(
                sim, zones[a].internet.router, zones[b].internet.router,
                addr_a=addr_a, addr_b=addr_b,
                bandwidth_bps=p.inter_zone_bps, delay_s=p.inter_zone_delay,
            )
            zones[a].internet.router.routes.add(Prefix(addr_b, 32), iface_a)
            zones[b].internet.router.routes.add(Prefix(addr_a, 32), iface_b)
            peer_map[a][b] = addr_b
            peer_map[b][a] = addr_a
    for i, zone in enumerate(zones):
        if peer_map[i]:
            _start_heartbeats(
                sim, zone.name, zone.stats, zone.internet.router, peer_map[i], p
            )
    return sim, zones
