"""Runners for each measurement in the paper's evaluation section.

* :func:`run_fig2_point` — one cell of Figure 2: RUBiS throughput for a
  given security mode and concurrent-client count (closed loop, no DB
  cache).
* :func:`run_httperf_point` — the §V-B response-time experiment: open-loop
  120 req/s against a single web server with the query cache enabled.
* :func:`run_fig3` — the iperf/RTT measurement between two VMs inside the
  public cloud for the six addressing modes
  {IPv4, HIT(IPv4), LSI(IPv4), Teredo, HIT(Teredo), LSI(Teredo)}.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.iperf import run_iperf
from repro.apps.workload import ClosedLoopClients, OpenLoopGenerator, WorkloadResult
from repro.cloud.iaas import PublicCloud
from repro.cloud.tenant import Tenant
from repro.hip.daemon import HipConfig, HipDaemon
from repro.hip.identity import HostIdentity
from repro.net.addresses import ipv4
from repro.net.icmp import IcmpStack, ping
from repro.net.node import Node
from repro.net.tcp import TcpStack
from repro.net.teredo import TeredoClient, TeredoServer
from repro.net.udp import UdpStack
from repro.scenarios.rubis_cloud import FRONTEND_PORT, build_rubis_cloud
from repro.sim import RngStreams, Simulator


# --------------------------------------------------------------------- Figure 2 --

@dataclass
class Fig2Point:
    security: str
    clients: int
    throughput: float
    mean_latency: float
    successes: int
    failures: int


def run_fig2_point(
    security: str,
    n_clients: int,
    seed: int = 42,
    duration: float = 10.0,
    warmup: float = 2.0,
    provider_kind: str = "public",
    timeout: float = 2.0,
) -> Fig2Point:
    """One (security, clients) cell of the Figure-2 sweep."""
    dep = build_rubis_cloud(
        seed=seed, security=security, provider_kind=provider_kind,
        cache_enabled=False,
    )
    sim = dep.sim
    workload = ClosedLoopClients(
        dep.client_node, dep.client_tcp, dep.frontend_addr, FRONTEND_PORT,
        n_clients=n_clients, rng=dep.rngs.stream("workload"),
        timeout=timeout, warmup=warmup,
    )
    done = sim.process(workload.run(duration), name="fig2-workload")
    result: WorkloadResult = sim.run(until=done)
    sim.close()  # finalize abandoned handlers deterministically
    return Fig2Point(
        security=security, clients=n_clients,
        throughput=result.throughput, mean_latency=result.mean_latency(),
        successes=result.successes, failures=result.failures,
    )


# ----------------------------------------------------------- httperf (response time) --

@dataclass
class HttperfPoint:
    security: str
    rate: float
    mean_ms: float
    stdev_ms: float
    p95_ms: float
    successes: int
    failures: int


MICRO_BURST_SCALE = 1.25  # t1.micro at its 2-ECU burst rate


def run_httperf_point(
    security: str,
    rate: float = 120.0,
    seed: int = 42,
    duration: float = 10.0,
    provider_kind: str = "public",
) -> HttperfPoint:
    """§V-B: single web server, query cache on, fixed-rate open loop.

    The run is short (seconds), so the micro web server operates at its
    *burst* CPU rate ("up to 2 EC2 compute units") rather than the throttled
    sustained rate the long Figure-2 runs experience — without the burst, a
    single micro cannot absorb 120 req/s at all, while the paper measured a
    stable 116–132 ms mean.
    """
    from repro.metrics.stats import describe

    dep = build_rubis_cloud(
        seed=seed, security=security, provider_kind=provider_kind,
        n_web=1, cache_enabled=True, web_cpu_scale_override=MICRO_BURST_SCALE,
    )
    sim = dep.sim
    # httperf drives one URI at a fixed rate; the paper's run targeted a
    # dynamic page whose requests "almost always required a database
    # connection" — the browse page fits that description.
    generator = OpenLoopGenerator(
        dep.client_node, dep.client_tcp, dep.frontend_addr, FRONTEND_PORT,
        rate=rate, rng=dep.rngs.stream("httperf"), fixed_path="/browse",
    )
    done = sim.process(generator.run(duration), name="httperf")
    result: WorkloadResult = sim.run(until=done)
    sim.close()  # finalize abandoned handlers deterministically
    latencies_ms = [s * 1e3 for s in result.latencies()]
    summary = describe(latencies_ms)
    return HttperfPoint(
        security=security, rate=rate,
        mean_ms=summary.mean, stdev_ms=summary.stdev, p95_ms=summary.p95,
        successes=result.successes, failures=result.failures,
    )


# -------------------------------------------------------------------------- Figure 3 --

FIG3_MODES = ("ipv4", "hit-ipv4", "lsi-ipv4", "teredo", "hit-teredo", "lsi-teredo")


@dataclass
class Fig3Point:
    mode: str
    throughput_mbps: float
    rtt_ms: float


def run_fig3(
    modes: tuple[str, ...] = FIG3_MODES,
    seed: int = 42,
    transfer_bytes: int = 12_000_000,
    ping_count: int = 20,
    hip_rsa_bits: int = 1024,
) -> list[Fig3Point]:
    """Raw TCP throughput + ICMP RTT between two micro VMs in the cloud.

    Each mode gets a fresh, identical deployment (like re-running iperf on
    the same instance pair).  "teredo" modes run the flows over the VMs'
    Teredo addresses; "hit"/"lsi" modes run them over HIP with the locator
    family determined by the underlay (IPv4 or Teredo IPv6).
    """
    results = []
    for mode in modes:
        results.append(_run_fig3_mode(mode, seed, transfer_bytes, ping_count, hip_rsa_bits))
    return results


def _run_fig3_mode(
    mode: str, seed: int, transfer_bytes: int, ping_count: int, hip_rsa_bits: int
) -> Fig3Point:
    sim = Simulator()
    rngs = RngStreams(seed)
    cloud = PublicCloud(sim)
    # Spread the pair over two hosts so the path crosses the rack network,
    # as the paper's inter-VM measurement did.
    from repro.cloud.tenant import SpreadPlacement

    cloud.placement = SpreadPlacement()
    tenant = Tenant("bench")
    vm_a = cloud.launch(tenant, "t1.micro", name="iperf-a")
    vm_b = cloud.launch(tenant, "t1.micro", name="iperf-b")
    tcp_a, tcp_b = TcpStack(vm_a), TcpStack(vm_b)
    icmp_a, icmp_b = IcmpStack(vm_a), IcmpStack(vm_b)

    needs_teredo = "teredo" in mode
    needs_hip = mode.startswith(("hit", "lsi"))

    teredo = {}
    if needs_teredo:
        # EC2 has no native IPv6 (§V-B), so v6 connectivity rides Teredo.
        # The Teredo server lives outside the cloud.
        server_node = Node(sim, "teredo-server")
        udp_srv = UdpStack(server_node)
        from repro.cloud.datacenter import Internet

        internet = Internet(sim)
        cloud.datacenter.attach_gateway(
            internet.router, gateway_addr=ipv4("203.0.113.2"),
            core_addr=ipv4("203.0.113.1"), delay_s=8e-3,
        )
        internet.attach(server_node, ipv4("203.0.113.50"), delay_s=4e-3)
        TeredoServer(server_node, udp_srv)
        for vm, key in ((vm_a, "a"), (vm_b, "b")):
            udp = UdpStack(vm)
            teredo[key] = TeredoClient(vm, udp, ipv4("203.0.113.50"))

    daemons = {}
    if needs_hip:
        id_rng = rngs.stream("fig3-ident")
        ident = {
            "a": HostIdentity.generate(id_rng, "rsa", rsa_bits=hip_rsa_bits),
            "b": HostIdentity.generate(id_rng, "rsa", rsa_bits=hip_rsa_bits),
        }
        cfg = HipConfig(real_crypto=False)
        daemons["a"] = HipDaemon(vm_a, ident["a"], rng=rngs.stream("hipd-a"), config=cfg)
        daemons["b"] = HipDaemon(vm_b, ident["b"], rng=rngs.stream("hipd-b"), config=cfg)

    out: dict = {}

    def main():
        if needs_teredo:
            addr_a = yield sim.process(teredo["a"].qualify())
            addr_b = yield sim.process(teredo["b"].qualify())
        else:
            addr_a = vm_a.primary_address
            addr_b = vm_b.primary_address

        if needs_hip:
            # Locators are the underlay addresses for this mode.
            daemons["a"].add_peer(daemons["b"].hit, [addr_b])
            daemons["b"].add_peer(daemons["a"].hit, [addr_a])
            if mode.startswith("hit"):
                target = daemons["b"].hit
            else:
                target = daemons["a"].lsi_for_peer(daemons["b"].hit)
        else:
            target = addr_b

        rtts = yield sim.process(
            ping(icmp_a, target, count=ping_count, interval=0.05)
        )
        good = [r for r in rtts if r is not None]
        out["rtt"] = sum(good) / len(good) if good else float("nan")
        iperf = yield sim.process(
            run_iperf(tcp_b, tcp_a, target, n_bytes=transfer_bytes)
        )
        out["mbps"] = iperf.throughput_mbps

    done = sim.process(main(), name=f"fig3-{mode}")
    sim.run(until=done)
    sim.close()  # finalize abandoned handlers deterministically
    return Fig3Point(mode=mode, throughput_mbps=out["mbps"], rtt_ms=out["rtt"] * 1e3)
