"""End-to-end experiment scenarios reproducing the paper's evaluation.

:mod:`~repro.scenarios.rubis_cloud` builds the Figure-1 deployment (clients
→ load balancer → web tier → database, in a public or private IaaS cloud)
under any of the three security scenarios; :mod:`~repro.scenarios.experiments`
runs each of the paper's measurements on top of it.
"""

from repro.scenarios.rubis_cloud import RubisDeployment, build_rubis_cloud
from repro.scenarios.experiments import (
    run_fig2_point,
    run_fig3,
    run_httperf_point,
)

__all__ = [
    "RubisDeployment",
    "build_rubis_cloud",
    "run_fig2_point",
    "run_fig3",
    "run_httperf_point",
]
