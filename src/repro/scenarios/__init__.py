"""End-to-end experiment scenarios reproducing the paper's evaluation.

:mod:`~repro.scenarios.rubis_cloud` builds the Figure-1 deployment (clients
→ load balancer → web tier → database, in a public or private IaaS cloud)
under any of the three security scenarios; :mod:`~repro.scenarios.experiments`
runs each of the paper's measurements on top of it.
:mod:`~repro.scenarios.congestion` extends the evaluation into the contended
regimes the paper never measured: lossy links, bufferbloat, tenant fairness
and a security-mode loss sweep.
"""

from repro.scenarios.rubis_cloud import RubisDeployment, build_rubis_cloud
from repro.scenarios.experiments import (
    run_fig2_point,
    run_fig3,
    run_httperf_point,
)
from repro.scenarios.congestion import (
    jain_index,
    run_bufferbloat,
    run_fairness,
    run_loss_sweep,
    run_lossy_link,
    run_matrix,
)

__all__ = [
    "RubisDeployment",
    "build_rubis_cloud",
    "jain_index",
    "run_bufferbloat",
    "run_fairness",
    "run_fig2_point",
    "run_fig3",
    "run_httperf_point",
    "run_loss_sweep",
    "run_lossy_link",
    "run_matrix",
]
