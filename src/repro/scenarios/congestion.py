"""Congestion scenario matrix: the contended regimes the paper never measured.

The paper's iperf/RUBiS numbers were taken on a clean LAN; consolidated IaaS
tenants actually share lossy, queue-bloated, contended links.  This module
opens that workload space on top of the NewReno+SACK transport:

* :func:`run_lossy_link` — bulk goodput across a random-loss link, with the
  sender's recovery statistics (fast recoveries, retransmits, RTO count).
* :func:`run_bufferbloat` — RTT inflation through a deep FIFO bottleneck
  versus the same queue with RED-style ECN marking.
* :func:`run_fairness` — N competing tenant flows through one bottleneck,
  scored with Jain's fairness index.
* :func:`run_loss_sweep` — HIP vs TLS-VPN vs plain TCP goodput across a
  loss-rate sweep (tunnels established loss-free, then loss switched on, so
  the sweep measures steady-state transport behaviour, not handshake luck).
* :func:`run_matrix` — all of the above, each emitting a repro-metrics/1
  ``metrics.json``; the CLI entry point used by CI's smoke run.

Everything is seeded through :class:`~repro.sim.RngStreams`; every scenario
is deterministic and engine-mode independent.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Sequence

from repro.apps.iperf import run_iperf
from repro.metrics import METRICS
from repro.metrics.report import write_json_report
from repro.net.icmp import IcmpStack, ping
from repro.net.packet import VirtualPayload
from repro.net.tcp import TcpStack
from repro.net.topology import lan_pair
from repro.sim import RngStreams
from repro.sim.engine import Simulator

SECURITY_MODES = ("plain", "ssl", "hip")


def jain_index(xs: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly fair, 1/n = one flow hogs all."""
    if not xs:
        return float("nan")
    total = sum(xs)
    sumsq = sum(x * x for x in xs)
    if sumsq == 0.0:
        return float("nan")
    return total * total / (len(xs) * sumsq)


def _link_endpoints(node_a, node_b):
    return node_a.interface("eth0")._endpoint, node_b.interface("eth0")._endpoint


# ------------------------------------------------------------------ lossy link --

def run_lossy_link(
    seed: int = 42,
    loss_rate: float = 0.01,
    transfer_bytes: int = 2_000_000,
    bandwidth_bps: float = 20e6,
    delay_s: float = 0.025,
    cc: str = "newreno",
) -> dict:
    """Bulk goodput over a ``loss_rate`` random-loss, 2*``delay_s``-RTT link."""
    sim = Simulator()
    rngs = RngStreams(seed)
    node_a, node_b = lan_pair(
        sim, bandwidth_bps=bandwidth_bps, delay_s=delay_s,
        loss_rate=loss_rate, loss_rng=rngs.stream("loss"),
    )
    tcp_a, tcp_b = TcpStack(node_a), TcpStack(node_b)
    out: dict = {}

    def main():
        # The sender (tcp_a) carries the congestion-control flavour via the
        # listener-less client connect inside run_iperf, so tag both stacks'
        # defaults by monkeying the listen/connect is avoided: run_iperf's
        # client is tcp_a -> the cc knob rides on an explicit connection.
        from repro.apps.iperf import IPERF_PORT, IperfServer

        server = IperfServer(tcp_b, port=IPERF_PORT)
        measurement = sim.process(server.measure_once())
        conn = yield sim.process(
            tcp_a.open_connection(node_b.addresses()[0], IPERF_PORT, cc=cc)
        )
        conn.write(VirtualPayload(transfer_bytes, tag="lossy"))
        conn.close()
        result = yield measurement
        out["result"] = result
        out["conn"] = conn

    done = sim.process(main(), name="lossy-link")
    sim.run(until=done)
    sim.close()
    result, conn = out["result"], out["conn"]
    ep_a, ep_b = _link_endpoints(node_a, node_b)
    return {
        "scenario": "lossy_link",
        "cc": cc,
        "loss_rate": loss_rate,
        "transfer_bytes": transfer_bytes,
        "bandwidth_mbps": bandwidth_bps / 1e6,
        "rtt_ms": 2 * delay_s * 1e3,
        "goodput_mbps": result.throughput_mbps,
        "duration_s": result.duration,
        "segments_retransmitted": conn.segments_retransmitted,
        "fast_recoveries": conn.fast_recoveries,
        "packets_lost": ep_a.lost_packets + ep_b.lost_packets,
    }


# ----------------------------------------------------------------- bufferbloat --

def _bufferbloat_once(
    ecn_threshold: int | None,
    bandwidth_bps: float,
    delay_s: float,
    queue_packets: int,
    load_s: float,
    probe_count: int,
) -> dict:
    sim = Simulator()
    node_a, node_b = lan_pair(
        sim, bandwidth_bps=bandwidth_bps, delay_s=delay_s,
        queue_packets=queue_packets, ecn_threshold=ecn_threshold,
    )
    tcp_a, tcp_b = TcpStack(node_a), TcpStack(node_b)
    icmp_a, _icmp_b = IcmpStack(node_a), IcmpStack(node_b)
    addr_b = node_b.addresses()[0]
    out: dict = {}

    def sink():
        # A large advertised window lets cwnd, not flow control, fill the
        # queue — that is the bufferbloat condition.
        listener = tcp_b.listen(5001, recv_window=2_000_000)
        conn = yield listener.accept()
        while True:
            chunk = yield conn.recv()
            if isinstance(chunk, (bytes, bytearray)) and len(chunk) == 0:
                return

    def main():
        base = yield sim.process(
            ping(icmp_a, addr_b, count=probe_count, interval=0.05)
        )
        conn = yield sim.process(tcp_a.open_connection(addr_b, 5001))
        conn.write(VirtualPayload(int(bandwidth_bps), tag="bloat"))  # ~8 s of data
        yield sim.timeout(load_s)  # let the standing queue build
        loaded = yield sim.process(
            ping(icmp_a, addr_b, count=probe_count, interval=0.2, timeout=5.0)
        )
        base_ok = [r for r in base if r is not None]
        loaded_ok = [r for r in loaded if r is not None]
        out["base_rtt_ms"] = 1e3 * sum(base_ok) / len(base_ok)
        out["loaded_rtt_ms"] = (
            1e3 * sum(loaded_ok) / len(loaded_ok) if loaded_ok else float("inf")
        )
        out["probes_lost"] = sum(1 for r in loaded if r is None)
        out["ecn_reductions"] = conn.ecn_reductions
        out["retransmits"] = conn.segments_retransmitted

    sim.process(sink(), name="bloat-sink")
    done = sim.process(main(), name="bufferbloat")
    sim.run(until=done)
    sim.close()
    out["inflation"] = out["loaded_rtt_ms"] / out["base_rtt_ms"]
    return out


def run_bufferbloat(
    seed: int = 42,
    bandwidth_bps: float = 10e6,
    delay_s: float = 5e-3,
    queue_packets: int = 512,
    ecn_threshold: int = 32,
    load_s: float = 2.0,
    probe_count: int = 8,
) -> dict:
    """RTT inflation through a deep drop-tail queue, with and without ECN.

    ``seed`` is accepted for interface symmetry; the scenario is loss-free
    and fully deterministic.
    """
    fifo = _bufferbloat_once(
        None, bandwidth_bps, delay_s, queue_packets, load_s, probe_count,
    )
    ecn = _bufferbloat_once(
        ecn_threshold, bandwidth_bps, delay_s, queue_packets, load_s, probe_count,
    )
    return {
        "scenario": "bufferbloat",
        "seed": seed,
        "bandwidth_mbps": bandwidth_bps / 1e6,
        "queue_packets": queue_packets,
        "ecn_threshold": ecn_threshold,
        "fifo": fifo,
        "ecn": ecn,
        "inflation_fifo": fifo["inflation"],
        "inflation_ecn": ecn["inflation"],
    }


# -------------------------------------------------------------------- fairness --

def run_fairness(
    seed: int = 42,
    n_flows: int = 4,
    duration: float = 5.0,
    warmup: float = 1.0,
    bandwidth_bps: float = 20e6,
    delay_s: float = 10e-3,
) -> dict:
    """N tenant flows through one bottleneck; Jain index over their goodputs."""
    sim = Simulator()
    node_a, node_b = lan_pair(sim, bandwidth_bps=bandwidth_bps, delay_s=delay_s)
    tcp_a, tcp_b = TcpStack(node_a), TcpStack(node_b)
    addr_b = node_b.addresses()[0]
    received = [0] * n_flows
    t_start = warmup
    t_end = warmup + duration

    def serve(idx, conn):
        while True:
            chunk = yield conn.recv()
            if isinstance(chunk, (bytes, bytearray)) and len(chunk) == 0:
                return
            now = sim.now
            if t_start <= now <= t_end:
                received[idx] += len(chunk)

    def server():
        listener = tcp_b.listen(5001)
        for idx in range(n_flows):
            conn = yield listener.accept()
            sim.process(serve(idx, conn), name=f"fair-sink-{idx}")

    def client(idx):
        # Staggered joins, like tenants arriving one after another.
        yield sim.timeout(idx * 0.02)
        conn = yield sim.process(tcp_a.open_connection(addr_b, 5001))
        conn.write(VirtualPayload(int(bandwidth_bps), tag=f"flow{idx}"))

    sim.process(server(), name="fair-server")
    for i in range(n_flows):
        sim.process(client(i), name=f"fair-client-{i}")
    sim.run(until=t_end)
    sim.close()
    goodputs = [8 * r / duration / 1e6 for r in received]
    return {
        "scenario": "fairness",
        "seed": seed,
        "n_flows": n_flows,
        "duration_s": duration,
        "bandwidth_mbps": bandwidth_bps / 1e6,
        "per_flow_mbps": goodputs,
        "aggregate_mbps": sum(goodputs),
        "jain_index": jain_index(goodputs),
    }


# ------------------------------------------------------------------ loss sweep --

def _secured_pair(sim, rngs: RngStreams, mode: str, node_a, node_b):
    """Return (target_addr, establish_generator) for the security mode."""
    addr_a = node_a.addresses()[0]
    addr_b = node_b.addresses()[0]
    if mode == "plain":
        def establish():
            return
            yield  # pragma: no cover - generator marker
        return addr_b, establish
    if mode == "ssl":
        from repro.crypto.rsa import RsaKeyPair
        from repro.net.addresses import IPAddress
        from repro.tls.vpn import SslVpnDaemon, VPN_SUBNET

        key_rng = rngs.stream("ssl-keys")
        key_a = RsaKeyPair.generate(512, key_rng)
        key_b = RsaKeyPair.generate(512, key_rng)
        vpn_a = IPAddress(4, VPN_SUBNET.network.value + 1)
        vpn_b = IPAddress(4, VPN_SUBNET.network.value + 2)
        da = SslVpnDaemon(node_a, vpn_a, key_a, rng=rngs.stream("ssl-a"))
        db = SslVpnDaemon(node_b, vpn_b, key_b, rng=rngs.stream("ssl-b"))
        da.add_peer(vpn_b, addr_b, key_b.public)
        db.add_peer(vpn_a, addr_a, key_a.public)

        def establish():
            yield from da.connect(vpn_b, timeout=30.0)

        return vpn_b, establish
    if mode == "hip":
        from repro.hip.daemon import HipConfig, HipDaemon
        from repro.hip.identity import HostIdentity

        id_rng = rngs.stream("hip-ident")
        ident_a = HostIdentity.generate(id_rng, "rsa", rsa_bits=512)
        ident_b = HostIdentity.generate(id_rng, "rsa", rsa_bits=512)
        cfg = HipConfig(real_crypto=False)
        da = HipDaemon(node_a, ident_a, rng=rngs.stream("hip-a"), config=cfg)
        db = HipDaemon(node_b, ident_b, rng=rngs.stream("hip-b"), config=cfg)
        da.add_peer(db.hit, [addr_b])
        db.add_peer(da.hit, [addr_a])
        icmp_a, _ = IcmpStack(node_a), IcmpStack(node_b)

        def establish():
            # One ping over the HIT triggers the base exchange; the loss
            # sweep then measures data-plane behaviour only.
            yield sim.process(ping(icmp_a, db.hit, count=1, timeout=30.0))

        return db.hit, establish
    raise ValueError(f"unknown security mode {mode!r}")


def _sweep_point(
    seed: int,
    mode: str,
    loss_rate: float,
    transfer_bytes: int,
    bandwidth_bps: float,
    delay_s: float,
) -> dict:
    sim = Simulator()
    rngs = RngStreams(seed)
    # Build the link loss-free (the loss stream is attached but dormant) so
    # tunnel establishment cannot flake; loss starts with the measurement.
    node_a, node_b = lan_pair(
        sim, bandwidth_bps=bandwidth_bps, delay_s=delay_s,
        loss_rate=0.0, loss_rng=rngs.stream(f"loss-{mode}-{loss_rate}"),
    )
    tcp_a, tcp_b = TcpStack(node_a), TcpStack(node_b)
    target, establish = _secured_pair(sim, rngs, mode, node_a, node_b)
    out: dict = {}

    def main():
        yield from establish()
        ep_a, ep_b = _link_endpoints(node_a, node_b)
        ep_a.loss_rate = loss_rate
        ep_b.loss_rate = loss_rate
        result = yield sim.process(
            run_iperf(tcp_b, tcp_a, target, n_bytes=transfer_bytes)
        )
        out["goodput_mbps"] = result.throughput_mbps

    done = sim.process(main(), name=f"sweep-{mode}")
    sim.run(until=done)
    sim.close()
    return {
        "mode": mode,
        "loss_rate": loss_rate,
        "goodput_mbps": out["goodput_mbps"],
    }


def run_loss_sweep(
    seed: int = 42,
    loss_rates: Sequence[float] = (0.0, 0.005, 0.01, 0.02, 0.05),
    modes: Sequence[str] = SECURITY_MODES,
    transfer_bytes: int = 1_000_000,
    bandwidth_bps: float = 20e6,
    delay_s: float = 0.01,
) -> dict:
    """HIP vs TLS vs plain goodput across a loss sweep (fresh pair per cell)."""
    points = []
    for mode in modes:
        for rate in loss_rates:
            points.append(
                _sweep_point(seed, mode, rate, transfer_bytes, bandwidth_bps, delay_s)
            )
    return {
        "scenario": "loss_sweep",
        "seed": seed,
        "transfer_bytes": transfer_bytes,
        "bandwidth_mbps": bandwidth_bps / 1e6,
        "loss_rates": list(loss_rates),
        "modes": list(modes),
        "points": points,
    }


# ---------------------------------------------------------------------- matrix --

def run_matrix(out_dir: str | pathlib.Path, smoke: bool = False, seed: int = 42) -> dict:
    """Run every scenario, writing one ``metrics.json`` per scenario."""
    out_root = pathlib.Path(out_dir)
    if smoke:
        runs = {
            "lossy_link": lambda: run_lossy_link(seed, transfer_bytes=300_000),
            "bufferbloat": lambda: run_bufferbloat(seed, load_s=1.0, probe_count=5),
            "fairness": lambda: run_fairness(seed, n_flows=3, duration=2.0,
                                             warmup=0.5),
            "loss_sweep": lambda: run_loss_sweep(
                seed, loss_rates=(0.0, 0.01, 0.03), transfer_bytes=200_000,
            ),
        }
    else:
        runs = {
            "lossy_link": lambda: run_lossy_link(seed),
            "bufferbloat": lambda: run_bufferbloat(seed),
            "fairness": lambda: run_fairness(seed),
            "loss_sweep": lambda: run_loss_sweep(seed),
        }
    summary: dict = {"smoke": smoke, "seed": seed, "scenarios": {}}
    for name, runner in runs.items():
        METRICS.reset()
        result = runner()
        scenario_dir = out_root / name
        scenario_dir.mkdir(parents=True, exist_ok=True)
        write_json_report(scenario_dir / "metrics.json", extra=result)
        summary["scenarios"][name] = result
    METRICS.reset()
    return summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="congestion scenario matrix")
    parser.add_argument("--out", default="congestion_results",
                        help="output directory for per-scenario metrics.json")
    parser.add_argument("--smoke", action="store_true",
                        help="short seeded CI variant")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)
    summary = run_matrix(args.out, smoke=args.smoke, seed=args.seed)
    lossy = summary["scenarios"]["lossy_link"]
    bloat = summary["scenarios"]["bufferbloat"]
    fair = summary["scenarios"]["fairness"]
    print(f"lossy link:  {lossy['goodput_mbps']:.2f} Mbit/s at "
          f"{lossy['loss_rate']:.1%} loss "
          f"({lossy['fast_recoveries']} fast recoveries)")
    print(f"bufferbloat: RTT inflation {bloat['inflation_fifo']:.1f}x FIFO vs "
          f"{bloat['inflation_ecn']:.1f}x with ECN")
    print(f"fairness:    Jain {fair['jain_index']:.3f} over "
          f"{fair['n_flows']} flows ({fair['aggregate_mbps']:.2f} Mbit/s total)")
    for point in summary["scenarios"]["loss_sweep"]["points"]:
        print(f"loss sweep:  {point['mode']:>5} @ {point['loss_rate']:.1%} -> "
              f"{point['goodput_mbps']:.2f} Mbit/s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
