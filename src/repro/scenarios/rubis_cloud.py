"""Builder for the Figure-1 deployment.

::

    clients ──(WAN)── load balancer ──(WAN)── [ IaaS cloud ]
                                               web VM x N ── db VM

* The load balancer (HAProxy's role) sits *outside* the cloud, as in the
  paper, and terminates consumer HTTP.
* ``security="basic"`` runs everything in the clear; ``"ssl"`` wraps the
  LB→web and web→db hops in TLS; ``"hip"`` gives the LB, web and db nodes
  HIP daemons and addresses the same hops by LSI, so ESP protects them
  transparently (end users still speak plain HTTP — HIP's end-to-middle
  deployment).
* Web VMs are EC2 micros, the database a large instance, per §V-A.

For the grown-sideways, multi-zone version of this deployment (one
availability zone per simulation shard, a fluid-fast-forwarded media tier,
million-session runs) see :mod:`repro.scenarios.rubis_scale`.

The builder is deterministic in ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.apps.database import DbServer, rubis_tables
from repro.apps.proxy import Backend, ReverseProxy
from repro.apps.rubis import RubisWebServer
from repro.cloud.iaas import PrivateCloud, PublicCloud
from repro.cloud.datacenter import Internet
from repro.cloud.tenant import Tenant
from repro.cloud.vm import VirtualMachine
from repro.crypto.rsa import RsaKeyPair
from repro.hip.daemon import HipConfig, HipDaemon
from repro.hip.identity import HostIdentity
from repro.net.addresses import IPAddress, ipv4
from repro.net.node import Node
from repro.net.tcp import TcpStack
from repro.sim import RngStreams, Simulator
from repro.tls.connection import TlsServerContext

SECURITY_MODES = ("basic", "hip", "ssl")

WEB_PORT = 8080
DB_PORT = 3306
FRONTEND_PORT = 80

# WAN latencies (one-way).  Tuned so the httperf baseline lands near the
# paper's ~116 ms mean response time; see EXPERIMENTS.md.
CLIENT_WAN_DELAY = 4e-3
LB_WAN_DELAY = 1e-3
CLOUD_WAN_DELAY = 7e-3


@dataclass
class RubisDeployment:
    """Everything an experiment needs to drive the deployment."""

    sim: Simulator
    rngs: RngStreams
    security: str
    provider: object
    internet: Internet
    lb_node: Node
    lb: ReverseProxy
    frontend_addr: IPAddress
    client_node: Node
    client_tcp: TcpStack
    web_vms: list[VirtualMachine]
    web_servers: list[RubisWebServer]
    db_vm: VirtualMachine
    db_server: DbServer
    daemons: dict[str, HipDaemon] = field(default_factory=dict)
    vpn_daemons: dict[str, object] = field(default_factory=dict)

    def hip_meters(self):
        """Merged crypto meter across every HIP daemon (for ablations)."""
        from repro.crypto.costmodel import CryptoMeter

        merged = CryptoMeter()
        for daemon in self.daemons.values():
            merged = merged.merged(daemon.meter)
        return merged


def build_rubis_cloud(
    seed: int,
    security: str = "basic",
    provider_kind: str = "public",
    n_web: int = 3,
    cache_enabled: bool = False,
    hip_rsa_bits: int = 1024,
    extra_tenants: int = 1,
    web_cpu_scale_override: float | None = None,
) -> RubisDeployment:
    """Construct the full deployment; the simulation is ready to run.

    ``web_cpu_scale_override`` replaces the web micros' sustained CPU scale;
    the httperf experiment passes the t1.micro *burst* scale (2 EC2 compute
    units) because its run is short enough to stay within the burst budget,
    whereas the long closed-loop Figure-2 runs see the throttled sustained
    rate.
    """
    if security not in SECURITY_MODES:
        raise ValueError(f"security must be one of {SECURITY_MODES}")
    sim = Simulator()
    rngs = RngStreams(seed)
    internet = Internet(sim)

    if provider_kind == "public":
        provider = PublicCloud(sim)
        gw_core = ipv4("203.0.113.1")
        gw_inet = ipv4("203.0.113.2")
    elif provider_kind == "private":
        provider = PrivateCloud(sim)
        gw_core = ipv4("203.0.113.5")
        gw_inet = ipv4("203.0.113.6")
    else:
        raise ValueError(f"unknown provider kind {provider_kind!r}")
    provider.datacenter.attach_gateway(
        internet.router, gateway_addr=gw_inet, core_addr=gw_core,
        delay_s=CLOUD_WAN_DELAY,
    )

    # --- tenants and instances -------------------------------------------------
    tenant = Tenant("webshop-inc")
    web_vms = [
        provider.launch(tenant, "t1.micro", name=f"web{i}") for i in range(n_web)
    ]
    if web_cpu_scale_override is not None:
        for vm in web_vms:
            vm.cpu_scale = web_cpu_scale_override
    db_vm = provider.launch(tenant, "m1.large", name="db0")
    # Competing tenants co-located on the same plant (multi-tenancy realism).
    for t in range(extra_tenants):
        other = Tenant(f"rival-{t}")
        provider.launch(other, "t1.micro", name=f"rival{t}-vm")

    # --- the load balancer, outside the cloud -----------------------------------
    lb_node = Node(sim, "loadbalancer", cpu_cores=4)
    frontend_addr = ipv4("198.51.100.10")
    internet.attach(lb_node, frontend_addr, delay_s=LB_WAN_DELAY)

    # --- consumers ----------------------------------------------------------------
    client_node = Node(sim, "clients", cpu_cores=8)
    client_addr = ipv4("192.0.2.10")
    internet.attach(client_node, client_addr, delay_s=CLIENT_WAN_DELAY)

    # --- stacks --------------------------------------------------------------------
    tcp = {vm.name: TcpStack(vm) for vm in web_vms}
    tcp["db"] = TcpStack(db_vm)
    tcp["lb"] = TcpStack(lb_node)
    client_tcp = TcpStack(client_node)

    daemons: dict[str, HipDaemon] = {}
    vpn_daemons: dict[str, object] = {}
    # "ssl" models the paper's OpenVPN-style deployment: persistent TLS
    # tunnels between the LB, web and db nodes, with per-packet record
    # protection — the structural twin of HIP's ESP data path.
    use_tls = False

    if security == "ssl":
        from repro.net.addresses import IPAddress as _IP
        from repro.tls.vpn import SslVpnDaemon, VPN_SUBNET

        key_rng = rngs.stream("vpn-keys")
        vpn_base = VPN_SUBNET.network.value
        nodes = [("loadbalancer", lb_node), ("db0", db_vm)] + [
            (vm.name, vm) for vm in web_vms
        ]
        vpn_addrs = {}
        keypairs = {}
        for i, (name, node) in enumerate(nodes):
            vpn_addrs[name] = _IP(4, vpn_base + 10 + i)
            keypairs[name] = RsaKeyPair.generate(hip_rsa_bits, key_rng)
        for name, node in nodes:
            vpn_daemons[name] = SslVpnDaemon(
                node, vpn_addrs[name], keypairs[name],
                rng=rngs.stream(f"vpn-{name}"),
            )
        locators = {"loadbalancer": frontend_addr, "db0": db_vm.primary_address}
        for vm in web_vms:
            locators[vm.name] = vm.primary_address
        for vm in web_vms:
            for a, b in (("loadbalancer", vm.name), (vm.name, "db0")):
                vpn_daemons[a].add_peer(vpn_addrs[b], locators[b], keypairs[b].public)
                vpn_daemons[b].add_peer(vpn_addrs[a], locators[a], keypairs[a].public)

    if security == "hip":
        hip_cfg = HipConfig(real_crypto=False)  # bulk path: cost-model crypto
        id_rng = rngs.stream("hip-ident")
        identities = {
            node.name: HostIdentity.generate(id_rng, "rsa", rsa_bits=hip_rsa_bits)
            for node in [lb_node, db_vm, *web_vms]
        }
        for node in [lb_node, db_vm, *web_vms]:
            daemons[node.name] = HipDaemon(
                node, identities[node.name],
                rng=rngs.stream(f"hipd-{node.name}"), config=hip_cfg,
            )
        # hosts-file style peer wiring: LB <-> webs, webs <-> db.
        for vm in web_vms:
            daemons["loadbalancer"].add_peer(
                identities[vm.name].hit, [vm.primary_address]
            )
            daemons[vm.name].add_peer(
                identities["loadbalancer"].hit, [frontend_addr]
            )
            daemons[vm.name].add_peer(identities["db0"].hit, [db_vm.primary_address])
            daemons["db0"].add_peer(identities[vm.name].hit, [vm.primary_address])

    # --- database ---------------------------------------------------------------------
    db_tls_ctx = None
    db_server = DbServer(
        db_vm, tcp["db"], DB_PORT, rubis_tables(),
        cache_enabled=cache_enabled, tls_ctx=db_tls_ctx,
        rng=rngs.stream("db-service"),
    )

    # --- web tier -------------------------------------------------------------------
    web_servers = []
    for vm in web_vms:
        if security == "hip":
            db_addr = daemons[vm.name].lsi_for_peer(daemons["db0"].hit)
        elif security == "ssl":
            db_addr = vpn_daemons["db0"].vpn_addr
        else:
            db_addr = db_vm.primary_address
        web_servers.append(
            RubisWebServer(
                vm, tcp[vm.name], WEB_PORT, db_addr, DB_PORT,
                rng=rngs.stream(f"web-{vm.name}"),
                tls_ctx=None, db_use_tls=False,
            )
        )

    # --- the reverse proxy ---------------------------------------------------------------
    backends = []
    for vm in web_vms:
        if security == "hip":
            addr = daemons["loadbalancer"].lsi_for_peer(daemons[vm.name].hit)
        elif security == "ssl":
            addr = vpn_daemons[vm.name].vpn_addr
        else:
            addr = vm.primary_address
        backends.append(Backend(addr=addr, port=WEB_PORT, use_tls=False))
    lb = ReverseProxy(
        lb_node, tcp["lb"], FRONTEND_PORT, backends,
        rng=rngs.stream("proxy"), algorithm="round-robin",
    )

    return RubisDeployment(
        sim=sim, rngs=rngs, security=security, provider=provider,
        internet=internet, lb_node=lb_node, lb=lb, frontend_addr=frontend_addr,
        client_node=client_node, client_tcp=client_tcp,
        web_vms=web_vms, web_servers=web_servers,
        db_vm=db_vm, db_server=db_server, daemons=daemons,
        vpn_daemons=vpn_daemons,
    )
