"""Summary statistics for experiment outputs (pure Python, no numpy needed).

Kept dependency-free so benchmark report code can't drift from the library's
own accounting; numpy is reserved for the heavier analysis in benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def mean(xs: Sequence[float]) -> float:
    if not xs:
        return float("nan")
    return sum(xs) / len(xs)


def stdev(xs: Sequence[float]) -> float:
    if len(xs) < 2:
        return 0.0
    m = mean(xs)
    return math.sqrt(sum((x - m) ** 2 for x in xs) / (len(xs) - 1))


def percentile(xs: Sequence[float], p: float) -> float:
    """Linear-interpolation percentile, p in [0, 100]."""
    if not xs:
        return float("nan")
    if not 0 <= p <= 100:
        raise ValueError("percentile must be in [0, 100]")
    ordered = sorted(xs)
    if len(ordered) == 1:
        return ordered[0]
    rank = p / 100 * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


@dataclass(frozen=True)
class Summary:
    n: int
    mean: float
    stdev: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.4g} sd={self.stdev:.4g} "
            f"p50={self.p50:.4g} p95={self.p95:.4g} p99={self.p99:.4g}"
        )


def describe(xs: Iterable[float]) -> Summary:
    data = list(xs)
    if not data:
        return Summary(0, *([float("nan")] * 7))
    return Summary(
        n=len(data),
        mean=mean(data),
        stdev=stdev(data),
        p50=percentile(data, 50),
        p95=percentile(data, 95),
        p99=percentile(data, 99),
        minimum=min(data),
        maximum=max(data),
    )
