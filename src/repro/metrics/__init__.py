"""Measurement substrate shared by the stack, benchmarks and scenarios.

Two process-wide singletons anchor the observability layer:

* :data:`METRICS` — a :class:`~repro.metrics.registry.MetricsRegistry` of
  counters/gauges/histograms that instrumented modules bind handles to at
  import time (always on; a counter bump is a plain attribute add);
* :data:`RECORDER` — a :class:`~repro.metrics.recorder.FlightRecorder` ring
  buffer of structured trace events, **disabled by default**; hot paths
  guard every ``record()`` behind ``if RECORDER.enabled:``.

:mod:`repro.metrics.report` turns both into an end-of-run text report and a
JSON dump (schema ``repro-metrics/1``) that the benchmarks write next to
their ``bench_results/*.txt`` tables.
"""

from repro.metrics.recorder import FlightRecorder, TraceEvent
from repro.metrics.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.metrics.stats import describe, mean, percentile, stdev

# Process-wide singletons (see module docstring).
METRICS = MetricsRegistry()
RECORDER = FlightRecorder()

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "METRICS",
    "MetricsRegistry",
    "RECORDER",
    "TraceEvent",
    "describe",
    "mean",
    "percentile",
    "stdev",
]
