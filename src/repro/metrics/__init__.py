"""Measurement helpers shared by benchmarks and scenarios."""

from repro.metrics.stats import describe, mean, percentile, stdev

__all__ = ["describe", "mean", "percentile", "stdev"]
