"""End-of-run observability reports: text rendering and the JSON dump.

The JSON schema (version ``repro-metrics/1``) consumed by
``bench_results/*.metrics.json``::

    {
      "schema": "repro-metrics/1",
      "counters":   {"<layer>.<name>": int, ...},
      "gauges":     {"<layer>.<name>": float, ...},
      "histograms": {"<layer>.<name>": {"count": int, "mean": float,
                                        "p50": float, "p95": float,
                                        "p99": float, "min": float,
                                        "max": float, "reservoir": int}},
      "layers":     {"<layer>": {"<name>": int, ...}},   # counters regrouped
      "flight_recorder": {"enabled": bool, "capacity": int, "recorded": int,
                          "buffered": int, "dropped": int,
                          "by_event": {"<layer>.<event>": int, ...}},
      "trace": [[t, "<layer>", "<event>", {...fields}], ...],  # buffered ring
      "extra": {...}                                      # caller-supplied
    }

``trace`` carries at most the recorder's ring capacity; ``NaN`` never
appears (empty histograms serialize their statistics as ``null``) so the
dump is strict-JSON parseable.
"""

from __future__ import annotations

import json
import math
import pathlib

SCHEMA_VERSION = "repro-metrics/1"


def _layer_of(name: str) -> str:
    return name.split(".", 1)[0]


def _clean(value: float | None):
    """NaN/inf -> None so the dump stays strict JSON."""
    if value is None or (isinstance(value, float) and not math.isfinite(value)):
        return None
    return value


def metrics_json(registry=None, recorder=None, extra: dict | None = None) -> dict:
    """Build the full JSON-ready report for one run."""
    from repro.metrics import METRICS, RECORDER

    registry = registry if registry is not None else METRICS
    recorder = recorder if recorder is not None else RECORDER
    snap = registry.snapshot()
    layers: dict[str, dict[str, int]] = {}
    for name, value in sorted(snap["counters"].items()):
        layer = _layer_of(name)
        layers.setdefault(layer, {})[name.split(".", 1)[-1]] = value
    histograms = {
        name: {key: _clean(val) for key, val in summary.items()}
        for name, summary in sorted(snap["histograms"].items())
    }
    payload = {
        "schema": SCHEMA_VERSION,
        "counters": dict(sorted(snap["counters"].items())),
        "gauges": dict(sorted(snap["gauges"].items())),
        "histograms": histograms,
        "layers": layers,
        "flight_recorder": recorder.summary(),
        "trace": [
            [ev.t, ev.layer, ev.event, ev.fields] for ev in recorder.events()
        ],
    }
    if extra:
        payload["extra"] = extra
    return payload


def write_json_report(
    path: str | pathlib.Path, registry=None, recorder=None, extra: dict | None = None
) -> pathlib.Path:
    """Dump :func:`metrics_json` to ``path``; returns the path."""
    path = pathlib.Path(path)
    payload = metrics_json(registry, recorder, extra=extra)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def render_report(registry=None, recorder=None) -> list[str]:
    """Human-readable end-of-run report, grouped by layer."""
    payload = metrics_json(registry, recorder)
    lines = ["== metrics report =="]
    for layer, counters in sorted(payload["layers"].items()):
        parts = "  ".join(f"{name}={value}" for name, value in sorted(counters.items()))
        lines.append(f"{layer:>8s} | {parts}")
    for name, value in sorted(payload["gauges"].items()):
        lines.append(f"{'gauge':>8s} | {name}={value:.6g}")
    for name, summary in sorted(payload["histograms"].items()):
        if not summary["count"]:
            continue
        lines.append(
            f"{'hist':>8s} | {name}: n={summary['count']} "
            f"mean={summary['mean']:.4g} p50={summary['p50']:.4g} "
            f"p95={summary['p95']:.4g} p99={summary['p99']:.4g}"
        )
    fr = payload["flight_recorder"]
    state = "on" if fr["enabled"] else "off"
    lines.append(
        f"{'trace':>8s} | {state}: recorded={fr['recorded']} "
        f"buffered={fr['buffered']} dropped={fr['dropped']}"
    )
    for key, n in fr["by_event"].items():
        lines.append(f"{'trace':>8s} |   {key} x{n}")
    return lines
