"""Process-wide metrics primitives: counters, gauges, latency histograms.

The simulator creates and discards :class:`~repro.sim.engine.Simulator`
instances per scenario, but a benchmark wants one merged view of everything
that ran in the process.  So the registry is process-wide (see
``repro.metrics.METRICS``) and instrumented modules bind their handles once
at import time::

    _TX = METRICS.counter("link.tx_packets")
    ...
    _TX.inc()          # plain attribute add — cheap enough for hot paths

Metric names are dot-namespaced; the segment before the first dot is the
*layer* (``link``, ``tcp``, ``esp``, ``hip``, ``proxy``, ``sim``) and the
report module groups by it.

``reset()`` zeroes every metric **in place** — handles bound by instrumented
modules stay valid across resets, which is what lets one process run many
isolated measurements.
"""

from __future__ import annotations

from typing import Iterator

from repro.metrics.stats import mean, percentile

HISTOGRAM_RESERVOIR = 4096


class Counter:
    """Monotonic event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def _reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """Last-value-wins instantaneous measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def _reset(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Latency/size distribution with a bounded, deterministic reservoir.

    ``count``/``total``/``minimum``/``maximum`` are exact over every
    observation; percentiles are computed over the first ``capacity``
    samples (no random subsampling — determinism is a repo-wide invariant).
    """

    __slots__ = ("name", "capacity", "count", "total", "minimum", "maximum", "_values")

    def __init__(self, name: str, capacity: int = HISTOGRAM_RESERVOIR) -> None:
        if capacity <= 0:
            raise ValueError("histogram capacity must be positive")
        self.name = name
        self.capacity = capacity
        self._reset()

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        if len(self._values) < self.capacity:
            self._values.append(value)

    def percentile(self, p: float) -> float:
        return percentile(self._values, p)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def summary(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "min": self.minimum if self.minimum is not None else float("nan"),
            "max": self.maximum if self.maximum is not None else float("nan"),
            "reservoir": len(self._values),
        }

    def _reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None
        self._values: list[float] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count}>"


class MetricsRegistry:
    """Named collection of counters, gauges and histograms.

    ``counter``/``gauge``/``histogram`` are get-or-create, so any module can
    bind a handle without caring who registered the name first.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- handles -------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_name(name)
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_name(name)
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str, capacity: int = HISTOGRAM_RESERVOIR) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_name(name)
            metric = self._histograms[name] = Histogram(name, capacity)
        return metric

    def _check_name(self, name: str) -> None:
        if not name or name != name.strip():
            raise ValueError(f"bad metric name {name!r}")
        kinds = (self._counters, self._gauges, self._histograms)
        if sum(name in kind for kind in kinds):
            raise ValueError(f"metric {name!r} already registered with another type")

    # -- inspection ----------------------------------------------------------
    def counters(self) -> Iterator[Counter]:
        return iter(self._counters.values())

    def snapshot(self) -> dict:
        """JSON-ready view: counters/gauges as scalars, histogram summaries."""
        return {
            "counters": {c.name: c.value for c in self._counters.values()},
            "gauges": {g.name: g.value for g in self._gauges.values()},
            "histograms": {
                h.name: h.summary() for h in self._histograms.values()
            },
        }

    def reset(self) -> None:
        """Zero every metric in place; bound handles remain valid."""
        for kind in (self._counters, self._gauges, self._histograms):
            for metric in kind.values():
                metric._reset()
