"""FlightRecorder: a ring-buffer structured trace of simulator events.

The recorder answers "what did the simulator actually *do*" — per-layer
packet sends and receives, HIP base-exchange state transitions, ESP
seal/open and replay drops, TCP retransmits, proxy pool churn — without any
of the layers knowing about each other.

Cost model: the recorder ships **disabled**.  Every instrumentation site is
guarded (``if RECORDER.enabled: RECORDER.record(...)``), so the disabled
cost is one attribute read per site.  When enabled, events land in a
``deque(maxlen=capacity)`` ring: old events fall off the back, a running
per-(layer, event) tally survives eviction, and memory stays bounded no
matter how long the run is.

Timestamps are caller-supplied (simulated seconds) because the recorder is
process-wide while clocks are per-:class:`~repro.sim.engine.Simulator`.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, NamedTuple


class TraceEvent(NamedTuple):
    t: float  # simulated time (seconds) at the recording site
    layer: str  # "link" | "tcp" | "esp" | "hip" | "proxy" | "sim" | ...
    event: str  # e.g. "tx", "retransmit", "bex_state", "esp_seal"
    fields: dict  # free-form structured detail


class FlightRecorder:
    """Bounded in-memory trace with near-zero cost while disabled."""

    def __init__(self, capacity: int = 8192, enabled: bool = False) -> None:
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self.enabled = enabled
        self._buf: deque[TraceEvent] = deque(maxlen=capacity)
        self.recorded = 0  # total record() calls, including evicted events
        self._tally: dict[tuple[str, str], int] = {}
        # Optional per-event tap, called with each TraceEvent as it is
        # recorded (before ring eviction).  The replay sanitizer uses this to
        # digest the *full* stream, not just the buffered tail.
        self.sink = None

    # -- recording -----------------------------------------------------------
    def record(self, t: float, layer: str, event: str, **fields) -> None:
        """Append one event.  Callers guard on ``.enabled`` first; the

        re-check here just makes an unguarded call safe, not fast."""
        if not self.enabled:
            return
        self.recorded += 1
        key = (layer, event)
        self._tally[key] = self._tally.get(key, 0) + 1
        ev = TraceEvent(t, layer, event, fields)
        self._buf.append(ev)
        if self.sink is not None:
            self.sink(ev)

    # -- lifecycle -----------------------------------------------------------
    def enable(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity != self.capacity:
            if capacity <= 0:
                raise ValueError("flight recorder capacity must be positive")
            self.capacity = capacity
            self._buf = deque(self._buf, maxlen=capacity)
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self._buf.clear()
        self._tally.clear()
        self.recorded = 0

    def recording(self, capacity: int | None = None) -> "_Recording":
        """Context manager: enable around a block, restore state after."""
        return _Recording(self, capacity)

    # -- inspection ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._buf)

    @property
    def dropped(self) -> int:
        """Events evicted from the ring since the last ``clear()``."""
        return self.recorded - len(self._buf)

    def events(
        self, layer: str | None = None, event: str | None = None
    ) -> list[TraceEvent]:
        """Buffered events, oldest first, optionally filtered."""
        return [
            ev
            for ev in self._buf
            if (layer is None or ev.layer == layer)
            and (event is None or ev.event == event)
        ]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._buf)

    def tally(self) -> dict[str, int]:
        """Running per-``layer.event`` counts (including evicted events)."""
        return {f"{layer}.{event}": n for (layer, event), n in sorted(self._tally.items())}

    def summary(self) -> dict:
        """JSON-ready view used by :mod:`repro.metrics.report`."""
        return {
            "enabled": self.enabled,
            "capacity": self.capacity,
            "recorded": self.recorded,
            "buffered": len(self._buf),
            "dropped": self.dropped,
            "by_event": self.tally(),
        }


class _Recording:
    def __init__(self, recorder: FlightRecorder, capacity: int | None) -> None:
        self._recorder = recorder
        self._capacity = capacity
        self._was_enabled = False

    def __enter__(self) -> FlightRecorder:
        self._was_enabled = self._recorder.enabled
        self._recorder.enable(self._capacity)
        return self._recorder

    def __exit__(self, *exc) -> None:
        self._recorder.enabled = self._was_enabled
