#!/usr/bin/env python
"""Hybrid cloud: public web tier backed by a private-cloud database over HIP.

§III-D / §IV-A: "If an organization outsources only parts of its IT
environment to a third-party cloud, it should be possible for those
components to access securely the components residing in the organization's
private network.  In such a case, HIP can authenticate and protect the
traffic between private and public clouds."

This example keeps the database in an OpenNebula-like private cloud, bursts
the web tier into the EC2-like public cloud, and secures the *inter-cloud*
web->db traffic with HIP across the simulated Internet.

Run:  python examples/hybrid_cloud.py
"""

import random

from repro.apps.database import DbClient, DbServer, Query, rubis_tables
from repro.cloud import PrivateCloud, PublicCloud, Tenant
from repro.cloud.datacenter import Internet
from repro.hip import HipConfig, HipDaemon
from repro.hip.identity import HostIdentity
from repro.net.addresses import ipv4
from repro.net.tcp import TcpStack
from repro.sim import Simulator


def main() -> None:
    sim = Simulator()
    internet = Internet(sim)

    public = PublicCloud(sim)
    public.datacenter.attach_gateway(
        internet.router, gateway_addr=ipv4("203.0.113.2"),
        core_addr=ipv4("203.0.113.1"), delay_s=12e-3,
    )
    private = PrivateCloud(sim)
    private.datacenter.attach_gateway(
        internet.router, gateway_addr=ipv4("203.0.113.6"),
        core_addr=ipv4("203.0.113.5"), delay_s=6e-3,
    )

    org = Tenant("hybrid-org")
    web = public.launch(org, "t1.micro", name="web-burst")
    db_vm = private.launch(org, "m1.large", name="crown-jewels-db")
    print(f"web tier : {web.name} in {public.name} @ {web.primary_address}")
    print(f"database : {db_vm.name} in {private.name} @ {db_vm.primary_address}")

    gen = random.Random(21)
    cfg = HipConfig(real_crypto=False)
    d_web = HipDaemon(web, HostIdentity.generate(gen, "rsa", rsa_bits=512),
                      rng=random.Random(1), config=cfg)
    d_db = HipDaemon(db_vm, HostIdentity.generate(gen, "rsa", rsa_bits=512),
                     rng=random.Random(2), config=cfg)
    d_web.add_peer(d_db.hit, [db_vm.primary_address])
    d_db.add_peer(d_web.hit, [web.primary_address])

    tcp_web, tcp_db = TcpStack(web), TcpStack(db_vm)
    server = DbServer(db_vm, tcp_db, 3306, rubis_tables(), cache_enabled=True,
                      rng=random.Random(3))
    # The web tier addresses the database by the LSI for its HIT: unmodified
    # IPv4 database drivers work, and everything crossing the Internet
    # between the clouds is inside the ESP tunnel.
    db_lsi = d_web.lsi_for_peer(d_db.hit)
    client = DbClient(web, tcp_web, db_lsi, 3306)
    out = {}

    def scenario():
        t0 = sim.now
        rows, nbytes = yield from client.query(
            Query(kind="scan", table="items", key="electronics", rows=25)
        )
        out["first"] = (rows, nbytes, (sim.now - t0) * 1e3)
        t0 = sim.now
        rows, nbytes = yield from client.query(
            Query(kind="scan", table="items", key="electronics", rows=25)
        )
        out["second"] = (rows, nbytes, (sim.now - t0) * 1e3)

    done = sim.process(scenario())
    sim.run(until=done)

    print(f"\ndatabase LSI as seen by the web VM: {db_lsi}")
    rows, nbytes, ms = out["first"]
    print(f"first query : {rows} rows / {nbytes} B in {ms:.1f} ms "
          "(includes TCP + HIP base exchange across the Internet)")
    rows, nbytes, ms = out["second"]
    print(f"second query: {rows} rows / {nbytes} B in {ms:.1f} ms "
          "(amortized: warm tunnel + warm query cache)")
    assoc = d_web.assocs[d_db.hit]
    print(f"\ninter-cloud association: {assoc.state}, "
          f"{assoc.sa_out.packets_protected} packets protected, "
          f"{assoc.sa_in.packets_verified} verified")
    print(f"db query-cache hits: {server.stats.cache_hits}")


if __name__ == "__main__":
    main()
