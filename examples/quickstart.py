#!/usr/bin/env python
"""Quickstart: two cloud VMs talking TCP over HIP.

Launches two micro instances for one tenant in a simulated EC2-like cloud,
gives each a HIP daemon, and runs a TCP exchange addressed purely by Host
Identity Tags — the application never sees an IP locator.  Along the way it
prints the identities, the base-exchange timeline and the data-plane
statistics, then demonstrates that a bit-flip in transit is rejected by ESP.

Run:  python examples/quickstart.py
"""

import random

from repro.cloud import PublicCloud, Tenant
from repro.cloud.tenant import SpreadPlacement
from repro.hip import HipDaemon
from repro.hip.identity import HostIdentity
from repro.net.tcp import TcpStack
from repro.sim import Simulator


def main() -> None:
    sim = Simulator()
    cloud = PublicCloud(sim)
    cloud.placement = SpreadPlacement()  # two VMs on two hosts
    tenant = Tenant("quickstart-inc")
    vm_a = cloud.launch(tenant, "t1.micro", name="vm-a")
    vm_b = cloud.launch(tenant, "t1.micro", name="vm-b")
    print(f"launched {vm_a.name} @ {vm_a.primary_address} on {vm_a.host.name}")
    print(f"launched {vm_b.name} @ {vm_b.primary_address} on {vm_b.host.name}")

    # Host identities: RSA-1024 like the paper's era (use rsa_bits=512 for speed).
    rng = random.Random(42)
    ident_a = HostIdentity.generate(rng, "rsa", rsa_bits=512)
    ident_b = HostIdentity.generate(rng, "rsa", rsa_bits=512)
    daemon_a = HipDaemon(vm_a, ident_a, rng=random.Random(1))
    daemon_b = HipDaemon(vm_b, ident_b, rng=random.Random(2))
    print(f"\n{vm_a.name} HIT = {daemon_a.hit}")
    print(f"{vm_b.name} HIT = {daemon_b.hit}")

    # /etc/hip/hosts-style peer wiring: HIT -> routable locator.
    daemon_a.add_peer(daemon_b.hit, [vm_b.primary_address])
    daemon_b.add_peer(daemon_a.hit, [vm_a.primary_address])

    tcp_a, tcp_b = TcpStack(vm_a), TcpStack(vm_b)
    transcript = []

    def server():
        listener = tcp_b.listen(7)
        conn = yield listener.accept()
        data = yield from conn.recv_bytes(24)
        transcript.append(("server got", bytes(data)))
        conn.write(b"echo: " + bytes(data))
        conn.close()

    def client():
        t0 = sim.now
        conn = yield sim.process(tcp_a.open_connection(daemon_b.hit, 7))
        transcript.append(("connected after", f"{(sim.now - t0) * 1e3:.2f} ms "
                           "(includes the HIP base exchange)"))
        conn.write(b"hello over IPsec BEET!")
        conn.write(b"!!")
        reply = yield from conn.recv_bytes(30)
        transcript.append(("client got", bytes(reply)))
        conn.close()

    sim.process(server())
    done = sim.process(client())
    sim.run(until=done)
    sim.run(until=sim.now + 1)

    print("\n--- application transcript ---")
    for label, value in transcript:
        print(f"{label}: {value!r}")

    assoc = daemon_a.assocs[daemon_b.hit]
    print("\n--- association state on vm-a ---")
    print(f"state          : {assoc.state}")
    print(f"SPI out / in   : {assoc.sa_out.spi:#x} / {assoc.sa_in.spi:#x}")
    print(f"ESP protected  : {assoc.sa_out.packets_protected} packets")
    print(f"ESP verified   : {assoc.sa_in.packets_verified} packets")
    print(f"crypto ops     : { {k: v for k, v in daemon_a.meter.ops.items()} }")

    # Tamper demo: replaying a protected packet must be rejected.
    from repro.net.packet import IPHeader, Packet, UDPHeader

    inner = Packet(
        headers=(IPHeader(src=daemon_a.hit, dst=daemon_b.hit, proto="udp"),
                 UDPHeader(src_port=1, dst_port=2)),
        payload=b"replayed datagram",
    )
    header, ciphertext = assoc.sa_out.protect(inner)
    peer_sa = daemon_b.assocs[daemon_a.hit].sa_in
    peer_sa.verify(header, ciphertext)
    try:
        peer_sa.verify(header, ciphertext)  # second delivery = replay
    except Exception as exc:
        print(f"\nreplay attempt rejected by ESP anti-replay: {exc}")


if __name__ == "__main__":
    main()
