#!/usr/bin/env python
"""Mini Figure-2 run: the full RUBiS deployment under all three security modes.

Builds the paper's Figure-1 architecture (clients -> HAProxy-style load
balancer -> 3 micro web VMs -> large DB VM) in the EC2-like cloud, runs the
closed-loop workload at a few concurrency levels for each of basic / HIP /
SSL, and prints a compact version of Figure 2 plus the §V-B style breakdown.

This is a scaled-down interactive run; the full reproduction lives in
``benchmarks/test_bench_fig2_rubis.py``.

Run:  python examples/rubis_benchmark.py  (takes a couple of minutes)
"""

from repro.apps.workload import ClosedLoopClients
from repro.scenarios.rubis_cloud import FRONTEND_PORT, build_rubis_cloud

CLIENTS = (4, 10, 30)
MODES = ("basic", "hip", "ssl")


def run_point(security: str, n_clients: int) -> tuple[float, float]:
    dep = build_rubis_cloud(seed=7, security=security, hip_rsa_bits=512)
    sim = dep.sim
    workload = ClosedLoopClients(
        dep.client_node, dep.client_tcp, dep.frontend_addr, FRONTEND_PORT,
        n_clients=n_clients, rng=dep.rngs.stream("clients"), warmup=1.0,
    )
    done = sim.process(workload.run(4.0))
    result = sim.run(until=done)
    return result.throughput, result.mean_latency() * 1e3


def main() -> None:
    print("RUBiS on the simulated EC2 — successful requests/second")
    print(f"{'clients':>8s} | " + " | ".join(f"{m:>7s}" for m in MODES))
    table = {}
    for n in CLIENTS:
        row = []
        for mode in MODES:
            thr, lat = run_point(mode, n)
            table[(mode, n)] = (thr, lat)
            row.append(f"{thr:7.1f}")
        print(f"{n:8d} | " + " | ".join(row))

    print("\nmean response time at the top load (ms):")
    for mode in MODES:
        thr, lat = table[(mode, CLIENTS[-1])]
        print(f"  {mode:>6s}: {lat:6.1f} ms")

    basic = table[("basic", CLIENTS[-1])][0]
    hip = table[("hip", CLIENTS[-1])][0]
    ssl = table[("ssl", CLIENTS[-1])][0]
    print(f"\nsecurity cost at {CLIENTS[-1]} clients: "
          f"HIP {100 * (1 - hip / basic):.0f}% below basic, "
          f"SSL {100 * (1 - ssl / basic):.0f}% below basic "
          "(HIP ~ SSL, as the paper observes)")


if __name__ == "__main__":
    main()
