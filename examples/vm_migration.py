#!/usr/bin/env python
"""Live VM migration with HIP: secure state transfer + surviving connections.

Demonstrates §IV-C: the VM image moves between hypervisors through a
HIP-protected channel (scenario II — hypervisors have host identities), and
because the guest's own HIP associations are bound to its HIT rather than
its IP address, an RFC 5206 UPDATE re-homes them to the new locator — no
layer-2 adjacency between source and destination host required.

Run:  python examples/vm_migration.py
"""

import random

from repro.cloud import PublicCloud, Tenant, migrate_vm
from repro.cloud.tenant import SpreadPlacement
from repro.hip import HipConfig, HipDaemon
from repro.hip.identity import HostIdentity
from repro.net.icmp import IcmpStack, ping
from repro.net.tcp import TcpStack
from repro.sim import Simulator


def main() -> None:
    sim = Simulator()
    cloud = PublicCloud(sim)
    cloud.placement = SpreadPlacement()
    tenant = Tenant("migratable-inc")
    vm = cloud.launch(tenant, "t1.micro", name="app-vm")
    peer = cloud.launch(tenant, "t1.micro", name="client-vm")
    src_host = vm.host
    dst_host = next(h for h in cloud.datacenter.hosts
                    if h not in (vm.host, peer.host))
    print(f"{vm.name} on {src_host.name} @ {vm.primary_address}")
    print(f"{peer.name} on {peer.host.name} @ {peer.primary_address}")
    print(f"migration target: {dst_host.name}")

    gen = random.Random(9)
    cfg = HipConfig(real_crypto=False)
    # Hypervisor identities (scenario II) for the state-transfer channel.
    d_src = HipDaemon(src_host, HostIdentity.generate(gen, "rsa", rsa_bits=512),
                      rng=random.Random(1), config=cfg)
    d_dst = HipDaemon(dst_host, HostIdentity.generate(gen, "rsa", rsa_bits=512),
                      rng=random.Random(2), config=cfg)
    d_src.add_peer(d_dst.hit, [dst_host.addresses(4)[0]])
    d_dst.add_peer(d_src.hit, [src_host.addresses(4)[0]])
    # Guest identities (scenario I) for the application association.
    d_vm = HipDaemon(vm, HostIdentity.generate(gen, "rsa", rsa_bits=512),
                     rng=random.Random(3), config=cfg)
    d_peer = HipDaemon(peer, HostIdentity.generate(gen, "rsa", rsa_bits=512),
                       rng=random.Random(4), config=cfg)
    d_vm.add_peer(d_peer.hit, [peer.primary_address])
    d_peer.add_peer(d_vm.hit, [vm.primary_address])

    tcp_src, tcp_dst = TcpStack(src_host), TcpStack(dst_host)
    icmp_peer, _ = IcmpStack(peer), IcmpStack(vm)
    out = {}

    def scenario():
        yield from d_peer.associate(d_vm.hit)
        before = yield sim.process(ping(icmp_peer, d_vm.hit, count=3, interval=0.05))
        out["before_ms"] = [round(r * 1e3, 2) for r in before if r]

        report = yield from migrate_vm(
            vm, dst_host, tcp_src, tcp_dst, vm_daemon=d_vm, secured=True,
        )
        out["report"] = report
        yield sim.timeout(2.0)  # allow the UPDATE nonce-echo to verify

        after = yield sim.process(ping(icmp_peer, d_vm.hit, count=3, interval=0.05))
        out["after_ms"] = [round(r * 1e3, 2) for r in after if r]

    done = sim.process(scenario())
    sim.run(until=done)

    report = out["report"]
    print(f"\nping {peer.name} -> {vm.name} (HIT) before: {out['before_ms']} ms")
    print(f"image transferred : {report.bytes_transferred / 1e6:.0f} MB "
          f"(pre-copy {report.precopy_seconds:.2f} s, "
          f"downtime {report.downtime_seconds * 1e3:.0f} ms)")
    print(f"ESP-protected transfer packets at source hypervisor: "
          f"{d_src.data_packets_sent}")
    print(f"new guest address : {report.new_address} (was {out and vm.name})")
    print(f"ping after migration (same HIT!): {out['after_ms']} ms")
    print(f"peer's locator for {vm.name}: "
          f"{d_peer.assocs[d_vm.hit].peer_locator} — updated by RFC 5206 UPDATE")


if __name__ == "__main__":
    main()
