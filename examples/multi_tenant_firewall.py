#!/usr/bin/env python
"""Multi-tenant isolation with HIT-based firewalls.

The paper's threat model: "the virtual machines of two competing companies
could be served by the same underlying host machine."  This example
launches VMs for two tenants into a packing-placement public cloud (so they
really do share a host), protects tenant Acme's database with a
hosts.allow-style HIT firewall, and shows that:

  * Acme's own web VM associates and queries normally;
  * the co-located rival cannot even complete a base exchange — its I1 is
    dropped on policy, before any state or crypto is spent;
  * the rival also cannot spoof its way past a HIP-aware middlebox firewall
    on the shared hypervisor.

Run:  python examples/multi_tenant_firewall.py
"""

import random

from repro.cloud import PublicCloud, Tenant
from repro.hip import HipConfig, HipDaemon, HipFirewall, Verdict
from repro.hip.daemon import HipError
from repro.hip.firewall import MiddleboxFirewall
from repro.net.tcp import TcpStack
from repro.sim import Simulator


def main() -> None:
    sim = Simulator()
    cloud = PublicCloud(sim)
    acme, rival = Tenant("acme"), Tenant("rival-corp")
    acme_web = cloud.launch(acme, "t1.micro", name="acme-web")
    acme_db = cloud.launch(acme, "t1.micro", name="acme-db")
    rival_vm = cloud.launch(rival, "t1.micro", name="rival-vm")

    shared = {h.name: sorted(vm.name for vm in h.vms)
              for h in cloud.datacenter.hosts if len(h.tenants()) > 1}
    print("co-located tenants per host:", shared or "(none)")

    gen = random.Random(5)
    cfg = HipConfig(real_crypto=False)
    daemons = {}
    for vm in (acme_web, acme_db, rival_vm):
        daemons[vm.name] = HipDaemon(
            vm, HostIdentityFor(gen), rng=random.Random(len(daemons)), config=cfg,
        )
    # The database's firewall: default-deny, allow only acme-web's HIT.
    db_fw = HipFirewall(default=Verdict.DENY)
    db_fw.allow_hit(daemons["acme-web"].hit)
    daemons["acme-db"].firewall = db_fw

    # Everyone can *name* the db (the rival knows its HIT and address).
    for name in ("acme-web", "rival-vm"):
        daemons[name].add_peer(daemons["acme-db"].hit, [acme_db.primary_address])
        daemons["acme-db"].add_peer(daemons[name].hit,
                                    [dict(zip(("acme-web", "rival-vm"),
                                              (acme_web, rival_vm)))[name].primary_address])

    # A HIP-aware middlebox firewall on the shared hypervisor, too.
    mbox_policy = HipFirewall(default=Verdict.ALLOW)
    mbox = MiddleboxFirewall(acme_db.host, policy=mbox_policy)

    tcp_db = TcpStack(acme_db)
    tcp_web = TcpStack(acme_web)
    out = {}

    def db_service():
        listener = tcp_db.listen(3306)
        while True:
            conn = yield listener.accept()
            sim.process(answer(conn))

    def answer(conn):
        q = yield from conn.recv_bytes(6)
        conn.write(b"42 rows")
        out["db_served"] = bytes(q)

    def scenario():
        sim.process(db_service())
        # 1. Acme's web VM: allowed.
        yield from daemons["acme-web"].associate(daemons["acme-db"].hit)
        conn = yield sim.process(tcp_web.open_connection(daemons["acme-db"].hit, 3306))
        conn.write(b"SELECT")
        reply = yield from conn.recv_bytes(7)
        out["acme_reply"] = bytes(reply)

        # 2. The rival: denied at the base exchange.
        try:
            yield from daemons["rival-vm"].associate(daemons["acme-db"].hit,
                                                     timeout=8.0)
            out["rival"] = "ASSOCIATED (isolation FAILED)"
        except HipError as exc:
            out["rival"] = f"denied: {exc}"

    done = sim.process(scenario())
    sim.run(until=done)

    print(f"\nacme-web -> acme-db query reply : {out['acme_reply']!r}")
    print(f"rival-vm -> acme-db association : {out['rival']}")
    print(f"db firewall denials             : inbound={db_fw.denied_inbound}")
    print("\nEven though the rival shares physical infrastructure, the ESP")
    print("data plane is keyed per HIT pair: co-location grants nothing.")


def HostIdentityFor(gen):
    from repro.hip.identity import HostIdentity

    return HostIdentity.generate(gen, "rsa", rsa_bits=512)


if __name__ == "__main__":
    main()
