#!/usr/bin/env python
"""Power users behind NAT: HIP over Teredo into the cloud.

Recreates §IV-D/V-B's secondary deployment target: a developer workstation
behind a home/office NAT reaches a cloud VM *directly* over HIP, with the
IPv6 connectivity that HIP's locators need provided by Teredo (native HIP
NAT traversal was not yet available in 2012, and EC2 had no IPv6).

Topology::

    workstation --- NAT --- internet ---+--- teredo server
                                        +--- cloud gateway --- [VM]

Run:  python examples/nat_traversal_teredo.py
"""

import random

from repro.cloud import PublicCloud, Tenant
from repro.cloud.datacenter import Internet
from repro.hip import HipDaemon
from repro.hip.identity import HostIdentity
from repro.net.addresses import ipv4, prefix
from repro.net.icmp import IcmpStack, ping
from repro.net.nat import NatBox
from repro.net.node import Node
from repro.net.tcp import TcpStack
from repro.net.teredo import TeredoClient, TeredoServer
from repro.net.topology import wire
from repro.net.udp import UdpStack
from repro.sim import Simulator


def main() -> None:
    sim = Simulator()
    internet = Internet(sim)

    # --- the cloud side ------------------------------------------------------
    cloud = PublicCloud(sim)
    cloud.datacenter.attach_gateway(
        internet.router, gateway_addr=ipv4("203.0.113.2"),
        core_addr=ipv4("203.0.113.1"), delay_s=8e-3,
    )
    vm = cloud.launch(Tenant("devops"), "t1.micro", name="admin-target")

    # --- public infrastructure -----------------------------------------------
    teredo_server_node = Node(sim, "teredo-server")
    internet.attach(teredo_server_node, ipv4("203.0.113.50"), delay_s=4e-3)
    TeredoServer(teredo_server_node, UdpStack(teredo_server_node))

    # --- the developer behind a NAT --------------------------------------------
    workstation = Node(sim, "workstation")
    nat = NatBox(sim, "home-nat", external_addr=ipv4("198.51.100.1"))
    ws_if, nat_in, _ = wire(sim, workstation, nat,
                            addr_a=ipv4("192.168.1.10"), delay_s=1e-3)
    nat_in.add_address(ipv4("192.168.1.1"))
    nat.mark_inside(nat_in)
    nat_out, inet_if, _ = wire(sim, nat, internet.router, delay_s=6e-3)
    nat.set_outside(nat_out)
    internet.router.routes.add(prefix("198.51.100.0/24"), inet_if)
    workstation.routes.add(prefix("0.0.0.0/0"), ws_if)
    nat.routes.add(prefix("192.168.1.0/24"), nat_in)
    nat.routes.add(prefix("0.0.0.0/0"), nat_out)

    # Teredo on both tunnel endpoints (EC2 has no native IPv6).
    ws_teredo = TeredoClient(workstation, UdpStack(workstation), ipv4("203.0.113.50"))
    vm_teredo = TeredoClient(vm, UdpStack(vm), ipv4("203.0.113.50"))

    # HIP identities on both ends.
    gen = random.Random(3)
    d_ws = HipDaemon(workstation, HostIdentity.generate(gen, "rsa", rsa_bits=512),
                     rng=random.Random(1))
    d_vm = HipDaemon(vm, HostIdentity.generate(gen, "rsa", rsa_bits=512),
                     rng=random.Random(2))

    icmp_ws, _ = IcmpStack(workstation), IcmpStack(vm)
    tcp_ws, tcp_vm = TcpStack(workstation), TcpStack(vm)
    report = {}

    def scenario():
        ws_addr = yield sim.process(ws_teredo.qualify())
        vm_addr = yield sim.process(vm_teredo.qualify())
        report["teredo"] = (str(ws_addr), str(vm_addr))
        # HIP locators are the Teredo addresses: HIP-over-Teredo.
        d_ws.add_peer(d_vm.hit, [vm_addr])
        d_vm.add_peer(d_ws.hit, [ws_addr])

        rtts = yield sim.process(ping(icmp_ws, d_vm.hit, count=5, interval=0.1,
                                      timeout=10.0))
        report["hip_rtts_ms"] = [round(r * 1e3, 2) for r in rtts if r]

        # An "SSH session": TCP to the VM's HIT, authenticated by its key.
        def admin_shell():
            listener = tcp_vm.listen(22)
            conn = yield listener.accept()
            cmd = yield from conn.recv_bytes(6)
            conn.write(b"uid=0(root) gid=0(root)")
            report["vm_saw"] = bytes(cmd)

        sim.process(admin_shell())
        conn = yield sim.process(tcp_ws.open_connection(d_vm.hit, 22))
        conn.write(b"whoami")
        reply = yield from conn.recv_bytes(23)
        report["shell_reply"] = bytes(reply)

    done = sim.process(scenario())
    sim.run(until=done)

    print("workstation Teredo address:", report["teredo"][0])
    print("cloud VM Teredo address   :", report["teredo"][1])
    print("  (the NAT's mapped endpoint is embedded in the address)")
    print(f"\nping over HIP-over-Teredo : {report['hip_rtts_ms']} ms")
    print(f"VM received command       : {report['vm_saw']!r}")
    print(f"workstation received      : {report['shell_reply']!r}")
    print(f"\nNAT dropped unsolicited inbound packets: {nat.dropped_unsolicited}")
    print("traffic reached the VM only through the Teredo mapping + HIP/ESP")


if __name__ == "__main__":
    main()
