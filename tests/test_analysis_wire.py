"""Runtime wire-sanitizer tests.

Unit tests feed :class:`WireSanitizer` crafted byte strings (one per
contract clause), then the integration tests install the tap on the
simulated link and drive a real base exchange through it — clean traffic
must pass, a corrupted packet must raise at the send site.
"""

from __future__ import annotations

import struct
from types import SimpleNamespace

import pytest

from repro.analysis.wire import WireSanitizer, WireViolation, wire_sanitizer
from repro.hip import packets as hp
from repro.net.addresses import IPAddress
from repro.net.link import WIRE_TAPS

HIT_A = IPAddress(6, 0x2001 << 112 | 0xAAAA)
HIT_B = IPAddress(6, 0x2001 << 112 | 0xBBBB)


def _packet(params: list[hp.Param] | None = None) -> hp.HipPacket:
    pkt = hp.HipPacket(
        packet_type=hp.I2, sender_hit=HIT_A, receiver_hit=HIT_B,
        params=list(params or []),
    )
    return pkt


def _raw(params: list[hp.Param] | None = None) -> bytes:
    return _packet(params).serialize()


def check(raw: bytes) -> None:
    WireSanitizer().check_hip(raw)


class TestHeaderChecks:
    def test_valid_packet_passes(self):
        raw = _raw(
            [
                hp.Param(hp.PUZZLE, hp.build_puzzle(10, 2, 7, b"\x01" * 8)),
                hp.Param(hp.SEQ, hp.build_seq(3)),
            ]
        )
        check(raw)  # no exception

    def test_truncated_header(self):
        with pytest.raises(WireViolation, match="below the 40-byte header"):
            check(_raw()[:39])

    def test_wrong_version(self):
        raw = bytearray(_raw())
        raw[3] = (9 << 4) | 1
        with pytest.raises(WireViolation, match="version 9"):
            check(bytes(raw))

    def test_length_field_mismatch(self):
        raw = bytearray(_raw())
        raw[1] += 1
        with pytest.raises(WireViolation, match="length field declares"):
            check(bytes(raw))

    def test_unknown_packet_type(self):
        raw = bytearray(_raw())
        raw[2] = 250
        with pytest.raises(WireViolation, match="unknown packet type"):
            check(bytes(raw))


class TestTlvChecks:
    def test_nonzero_padding(self):
        # A 6-byte value leaves 6 padding bytes after the 4-byte TLV header.
        raw = bytearray(_raw([hp.Param(hp.PUZZLE, b"\x01" * 6)]))
        assert len(raw) == 56
        raw[55] = 0xFF
        with pytest.raises(WireViolation, match="non-zero padding"):
            check(bytes(raw))

    def test_descending_type_codes(self):
        pkt = _packet()
        body = (
            hp.Param(hp.SOLUTION, b"\x02" * 20).serialize()
            + hp.Param(hp.PUZZLE, b"\x01" * 12).serialize()
        )
        raw = pkt._header(len(body)) + body
        with pytest.raises(WireViolation, match="must ascend"):
            check(raw)

    def test_overlong_declared_value(self):
        pkt = _packet()
        body = struct.pack(">HH", hp.PUZZLE, 12) + b"\x01" * 4
        raw = pkt._header(len(body)) + body
        with pytest.raises(WireViolation, match="declares 12 value bytes"):
            check(raw)

    def test_roundtrip_reports_parser_rejection(self):
        with pytest.raises(WireViolation, match="parser rejected"):
            WireSanitizer()._check_roundtrip(b"\x00" * 39)


class TestTap:
    def test_ignores_non_hip_packets(self):
        tap = WireSanitizer()
        tap(SimpleNamespace(meta={}))
        assert tap.packets_seen == 1
        assert tap.hip_packets_checked == 0

    def test_checks_and_records_violations(self):
        tap = WireSanitizer()
        good = SimpleNamespace(meta={"hip_raw": _raw()})
        tap(good)
        assert tap.hip_packets_checked == 1
        assert tap.violations == []
        bad = SimpleNamespace(meta={"hip_raw": _raw()[:39]})
        with pytest.raises(WireViolation):
            tap(bad)
        assert len(tap.violations) == 1
        assert "40-byte header" in tap.violations[0]
        assert "1 violation" in tap.describe()

    def test_context_manager_installs_and_removes(self):
        before = len(WIRE_TAPS)
        with wire_sanitizer() as tap:
            assert tap in WIRE_TAPS
        assert len(WIRE_TAPS) == before
        assert tap not in WIRE_TAPS


class TestOnTheWire:
    def test_base_exchange_is_wire_clean(self, hip_pair, drive):
        sim, a, b, da, db = hip_pair
        with wire_sanitizer() as tap:
            assoc = drive(sim, da.associate(db.hit))
        assert assoc.is_established
        # I1, R1, I2, R2 at minimum crossed the link under inspection.
        assert tap.hip_packets_checked >= 4
        assert tap.violations == []

    def test_teardown_is_wire_clean(self, hip_pair, drive):
        sim, a, b, da, db = hip_pair
        with wire_sanitizer() as tap:
            drive(sim, da.associate(db.hit))
            da.close(db.hit)
            sim.run(until=sim.now + 5)
        assert da.assocs[db.hit].state == "CLOSED"
        assert tap.violations == []
        assert tap.hip_packets_checked >= 6  # BEX + CLOSE/CLOSE_ACK

    def test_corrupted_sender_trips_the_tap(self, hip_pair, drive, monkeypatch):
        """If the daemon ever serialized malformed bytes, the tap must fail
        the test at the send site — prove it by breaking the serializer."""
        sim, a, b, da, db = hip_pair

        real_serialize = hp.Param.serialize

        def bad_serialize(self):
            out = bytearray(real_serialize(self))
            if len(out) > 4 + len(self.data):  # has padding to corrupt
                out[-1] = 0xFF
            return bytes(out)

        monkeypatch.setattr(hp.Param, "serialize", bad_serialize)
        with wire_sanitizer() as tap:
            # The violation fires in whichever sim process sends the first
            # padded parameter; the engine re-raises it directly or wraps
            # it in its unhandled-crash RuntimeError.
            with pytest.raises((WireViolation, RuntimeError)):
                drive(sim, da.associate(db.hit))
        assert tap.violations
        assert "non-zero padding" in tap.violations[0]

    @pytest.mark.smoke
    def test_smoke_marker_installs_tap(self):
        assert any(isinstance(tap, WireSanitizer) for tap in WIRE_TAPS)
